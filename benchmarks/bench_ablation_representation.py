"""Ablation: graph representation choices (paper Sec. V).

"Even though most software packages represent graphs using CSR format,
the implementation details differ across packages.  There may be
significant performance differences among the various packages between
using directed or undirected, or weighted and unweighted graphs."

Measures, per system, the construction cost and BFS kernel cost across
the four representation combinations on the same vertex/edge
population, plus GAP's integer-weight build (the Sec. IV-A truncation
hazard quantified as a performance knob).
"""

import numpy as np
from conftest import write_artifact

from repro.core.report import format_table
from repro.datasets.homogenize import homogenize
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.graph.edgelist import EdgeList
from repro.systems import create_system

SYSTEMS = ("gap", "graphbig", "graphmat")


def _variants(tmp_path_factory):
    base = generate_kronecker(KroneckerSpec(scale=11, weighted=True))
    unweighted = EdgeList(base.src, base.dst, base.n_vertices,
                          directed=False, name="und-unw")
    weighted = EdgeList(base.src, base.dst, base.n_vertices,
                        weights=base.weights, directed=False,
                        name="und-w")
    d_unw = EdgeList(base.src, base.dst, base.n_vertices,
                     directed=True, name="dir-unw")
    d_w = EdgeList(base.src, base.dst, base.n_vertices,
                   weights=base.weights, directed=True, name="dir-w")
    out = {}
    for el in (unweighted, weighted, d_unw, d_w):
        out[el.name] = homogenize(
            el, tmp_path_factory.mktemp(el.name), n_roots=2)
    return out


def test_ablation_representation(benchmark, tmp_path_factory):
    datasets = _variants(tmp_path_factory)

    def run_all():
        rows = {}
        for system_name in SYSTEMS:
            system = create_system(system_name, n_threads=32)
            cells = []
            for variant in ("und-unw", "und-w", "dir-unw", "dir-w"):
                ds = datasets[variant]
                loaded = system.load(ds)
                res = system.run(loaded, "bfs", root=int(ds.roots[0]))
                cells.append((loaded.load_s, res.time_s,
                              loaded.n_arcs))
            rows[system_name] = cells
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "Representation ablation: load_s/bfs_s (scale-11 population)",
        ["und-unw", "und-w", "dir-unw", "dir-w"],
        {s: [f"{ld:.3g}/{t:.3g}" for ld, t, _ in cells]
         for s, cells in rows.items()})
    note = ("note: the weighted/unweighted columns coincide by design "
            "-- EPG* homogenization always materializes weights so SSSP "
            "can run on any dataset (Sec. III-B), so only the "
            "directed/undirected axis changes the stored structure.")
    write_artifact("ablation_representation.txt", table + "\n\n" + note)
    print("\n" + table + "\n" + note)

    for system_name, cells in rows.items():
        arcs = [c[2] for c in cells]
        # Directed builds store half the arcs of undirected ones.
        assert arcs[2] < arcs[0], system_name
        # BFS on the directed view is correspondingly cheaper.
        assert cells[2][1] < cells[0][1] * 1.1, system_name
