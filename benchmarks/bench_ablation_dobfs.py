"""Ablation: direction-optimizing BFS vs. plain top-down.

Design choice under test: GAP's alpha/beta switch heuristic (the paper
credits GAP's BFS wins to Beamer's algorithm, and blames the untuned
defaults for its dota-league loss).  Sweeps alpha over {off, default,
aggressive} on the Kronecker, dota-league, and cit-Patents workloads
and reports examined edges + simulated time per configuration, plus the
heuristic tuner's pick.
"""

from conftest import write_artifact

from repro.core.report import format_table
from repro.systems import create_system
from repro.systems.gap.tuning import heuristic_parameters

CONFIGS = {
    "top-down only (alpha->0)": dict(alpha=1e-9, beta=18.0),
    "defaults (15, 18)": dict(alpha=15.0, beta=18.0),
    "aggressive (64, 64)": dict(alpha=64.0, beta=64.0),
}


def _sweep(system, loaded, root):
    rows = {}
    for label, kw in CONFIGS.items():
        res = system.run(loaded, "bfs", root=root, **kw)
        rows[label] = (res.profile.total_units, res.time_s,
                       res.counters["bottom_up_steps"])
    return rows


def test_ablation_direction_optimization(benchmark, kron_dataset_bench,
                                         dota_dataset_bench,
                                         patents_dataset_bench):
    system = create_system("gap", n_threads=32)

    def run_all():
        out = {}
        for ds in (kron_dataset_bench, dota_dataset_bench,
                   patents_dataset_bench):
            loaded = system.load(ds)
            out[ds.name] = (_sweep(system, loaded, int(ds.roots[0])),
                            heuristic_parameters(loaded.data))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    blocks = []
    for ds_name, (rows, tuned) in results.items():
        table = format_table(
            f"DO-BFS ablation on {ds_name} "
            f"(tuner says alpha={tuned.alpha:g}, beta={tuned.beta:g}: "
            f"{tuned.rationale})",
            ["units", "time (s)", "bottom-up steps"],
            {label: [f"{u:.0f}", f"{t:.3g}", f"{b:.0f}"]
             for label, (u, t, b) in rows.items()})
        blocks.append(table)
    artifact = "\n\n".join(blocks)
    write_artifact("ablation_dobfs.txt", artifact)
    print("\n" + artifact)

    # On the skewed Kronecker graph, direction optimization must reduce
    # examined work versus pure top-down.
    kron_rows = results[kron_dataset_bench.name][0]
    assert kron_rows["defaults (15, 18)"][0] < \
        kron_rows["top-down only (alpha->0)"][0]
    # And the tuner picks the Beamer defaults for the scale-free graph.
    assert results[kron_dataset_bench.name][1].alpha == 15.0
