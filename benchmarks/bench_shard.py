"""Sharded engine gate: more cores, not one changed byte.

Two halves, mirroring ``bench_parallel.py``'s contract for the outer
scheduler:

* **Bit-identity (always runs).**  Every sharded driver -- BFS
  (direction-optimizing), bitmap BFS, delta-stepping SSSP, pull
  PageRank -- must reproduce its serial kernel *exactly* at every shard
  count and partitioning strategy: outputs, :class:`WorkProfile`
  arrays, ``serial_units``, and stats dicts, compared bytewise.  This
  is the invariant that keeps ``--shards N`` out of REPORT.md.
* **Speedup (needs >= 4 physical cores).**  Process-backed PageRank at
  ``shards=4`` must beat the serial kernel by ``SPEEDUP_FLOOR`` on the
  gate graph.  CI containers with fewer cores skip this half (fork +
  shared-memory overhead legitimately eats the win there), exactly as
  the parallel gate does.

``EPG_SHARD_SCALE`` picks the Kronecker scale (default 16; CI's
shard-smoke job runs 12 to fit its time budget).
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import write_artifact

from repro.algorithms.pagerank import pagerank
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.shard.drivers import (
    shard_bfs_bitmap,
    shard_delta_stepping,
    shard_dobfs,
    shard_pagerank,
)
from repro.shard.engine import ShardEngine
from repro.shard.partition import PARTITION_STRATEGIES
from repro.systems.gap.bfs import dobfs
from repro.systems.gap.graph import build_gap_graph
from repro.systems.gap.sssp import delta_stepping
from repro.systems.graph500.bfs import bfs_bitmap

SHARD_SCALE = int(os.environ.get("EPG_SHARD_SCALE", "16"))
SHARD_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0
MIN_CORES_FOR_SPEEDUP = 4
ROOT = 0


@pytest.fixture(scope="module")
def gate_graph():
    el = generate_kronecker(KroneckerSpec(scale=SHARD_SCALE,
                                          weighted=True))
    graph, _ = build_gap_graph(el, directed=True)
    return graph


@pytest.fixture(scope="module")
def serial_results(gate_graph):
    g = gate_graph
    return {
        "dobfs": dobfs(g, ROOT),
        "bitmap": bfs_bitmap(g.out, ROOT),
        "sssp": delta_stepping(g, ROOT),
        "pagerank": pagerank(g.out),
    }


def _assert_profiles_equal(serial, sharded, tag):
    a, b = serial.to_arrays(), sharded.to_arrays()
    for key in a:
        assert np.array_equal(a[key], b[key]), \
            f"{tag}: profile array {key!r} diverged"
    assert serial.serial_units == sharded.serial_units, tag


def _run_and_compare(g, engine, serial):
    p0, l0, prof0, st0 = serial["dobfs"]
    p1, l1, prof1, st1 = shard_dobfs(g, ROOT, engine)
    assert p0.tobytes() == p1.tobytes(), "dobfs parent diverged"
    assert l0.tobytes() == l1.tobytes(), "dobfs level diverged"
    _assert_profiles_equal(prof0, prof1, "dobfs")
    assert st0 == st1, "dobfs stats diverged"

    p0, l0, prof0, st0 = serial["bitmap"]
    p1, l1, prof1, st1 = shard_bfs_bitmap(g.out, ROOT, engine)
    assert p0.tobytes() == p1.tobytes(), "bitmap parent diverged"
    assert l0.tobytes() == l1.tobytes(), "bitmap level diverged"
    _assert_profiles_equal(prof0, prof1, "bitmap")
    assert st0 == st1, "bitmap stats diverged"

    d0, prof0, st0 = serial["sssp"]
    d1, prof1, st1 = shard_delta_stepping(g, ROOT, engine)
    assert d0.tobytes() == d1.tobytes(), "sssp dist diverged"
    _assert_profiles_equal(prof0, prof1, "sssp")
    assert st0 == st1, "sssp stats diverged"

    r0, it0 = serial["pagerank"]
    r1, it1 = shard_pagerank(g.out, engine)
    assert r0.tobytes() == r1.tobytes(), "pagerank ranks diverged"
    assert it0 == it1, "pagerank iteration count diverged"


@pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_shard_bit_identity(gate_graph, serial_results, strategy,
                            shards):
    """Inline engines: every (strategy, shard count) cell, all four
    kernels, byte-for-byte."""
    g = gate_graph
    with ShardEngine(g.out, g.inn, n_shards=shards, strategy=strategy,
                     inline=True) as engine:
        _run_and_compare(g, engine, serial_results)


def test_shard_bit_identity_process(gate_graph, serial_results):
    """Process-backed engine (real fork + shared memory): the same
    contract through the worker pool."""
    g = gate_graph
    with ShardEngine(g.out, g.inn, n_shards=2,
                     strategy="edge_blocks") as engine:
        assert not engine.inline
        _run_and_compare(g, engine, serial_results)


def test_shard_speedup_gate(gate_graph, benchmark):
    """Wall-clock gate: shards=4 PageRank vs serial, plus the committed
    artifacts -- identity numbers ride along so one file tells the
    whole story."""
    g = gate_graph
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    r0, it0 = pagerank(g.out)
    serial_s = time.perf_counter() - t0

    with ShardEngine(g.out, g.inn, n_shards=4,
                     strategy="edge_blocks") as engine:
        # Warm the worker pool before timing (fork cost is one-time).
        shard_pagerank(g.out, engine)
        t0 = time.perf_counter()
        r1, it1 = benchmark.pedantic(shard_pagerank, args=(g.out, engine),
                                     rounds=1, iterations=1)
        sharded_s = time.perf_counter() - t0
        rounds, nbytes = engine.rounds, engine.bytes_exchanged
        cut = engine.partition.cut_edges
        process_mode = not engine.inline

    identical = r0.tobytes() == r1.tobytes() and it0 == it1
    assert identical, "shards=4 PageRank diverged from serial"

    speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
    write_artifact(
        "shard_gate.txt",
        f"scale: {SHARD_SCALE}\n"
        f"cores: {cores}\n"
        f"process_mode: {str(process_mode).lower()}\n"
        f"serial_s: {serial_s:.3f}\n"
        f"shards4_s: {sharded_s:.3f}\n"
        f"speedup: {speedup:.2f}x\n"
        f"rounds: {rounds}\n"
        f"bytes_exchanged: {nbytes}\n"
        f"cut_edges: {cut}\n"
        f"bit_identical: {str(identical).lower()}")
    write_artifact(
        "BENCH_shard.json",
        json.dumps({
            "scale": SHARD_SCALE, "cores": cores,
            "process_mode": process_mode,
            "serial_s": round(serial_s, 4),
            "shards4_s": round(sharded_s, 4),
            "speedup": round(speedup, 3),
            "pagerank_iterations": it0,
            "rounds": rounds, "bytes_exchanged": nbytes,
            "cut_edges": int(cut),
            "shard_counts": list(SHARD_COUNTS),
            "strategies": sorted(PARTITION_STRATEGIES),
            "bit_identical": identical,
        }, indent=2))
    print(f"\nserial {serial_s:.3f}s  shards=4 {sharded_s:.3f}s  "
          f"speedup {speedup:.2f}x  ({cores} cores)")

    if cores < MIN_CORES_FOR_SPEEDUP:
        pytest.skip(f"{cores} core(s): speedup assertion needs "
                    f">= {MIN_CORES_FOR_SPEEDUP}; bit-identity checked")
    assert speedup >= SPEEDUP_FLOOR, \
        f"shards=4 speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
