"""Ablation: PowerGraph synchronous vs. asynchronous engine.

Design choice under test: PowerGraph ships both a bulk-synchronous and
an asynchronous fiber-scheduled engine; the paper runs the synchronous
default.  This bench quantifies the trade: the async engine's
best-first label-correcting relaxes far fewer edges for SSSP, but pays
queue/lock overhead per processed vertex -- whether it wins depends on
graph shape.
"""

from conftest import write_artifact

from repro.core.report import format_table
from repro.systems import create_system


def test_ablation_engines(benchmark, kron_dataset_bench,
                          dota_dataset_bench):
    def run_all():
        rows = {}
        for ds in (kron_dataset_bench, dota_dataset_bench):
            root = int(ds.roots[0])
            cells = {}
            for kind in ("sync", "async"):
                system = create_system("powergraph", engine=kind)
                loaded = system.load(ds)
                res = system.run(loaded, "sssp", root=root)
                cells[kind] = (res.counters["gathered_edges"],
                               res.time_s - res.sim.startup_s)
            rows[ds.name] = cells
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "PowerGraph engine ablation (SSSP): relaxed edges / "
        "above-startup seconds",
        ["sync", "async"],
        {name: [f"{c[k][0]:.0f} / {c[k][1]:.4g}"
                for k in ("sync", "async")]
         for name, c in rows.items()})
    write_artifact("ablation_engines.txt", table)
    print("\n" + table)

    for name, cells in rows.items():
        # Async always relaxes fewer edges ...
        assert cells["async"][0] < cells["sync"][0], name
