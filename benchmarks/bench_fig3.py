"""Fig 3: SSSP time and construction box plots.

Paper artifact (scale 22, 32 threads): SSSP times 0.1-2 s; GAP the
clear winner, PowerGraph slowest (engine overhead); the same 32 roots
as Fig 2; construction shown only for GAP and GraphMat (PowerGraph and
GraphBIG build while reading).
"""

from conftest import write_artifact

from repro.core.report import figure_series


def test_fig3(benchmark, kron_experiment):
    _, analysis = kron_experiment
    out = benchmark.pedantic(figure_series, args=(analysis, "fig3"),
                             rounds=1, iterations=1)
    write_artifact("fig3.txt", out)
    print("\n" + out)

    box = analysis.box("time")
    times = {k[0]: v.median for k, v in box.items() if k[1] == "sssp"}
    assert set(times) == {"gap", "graphbig", "graphmat", "powergraph"}
    assert times["gap"] == min(times.values())
    assert times["powergraph"] == max(times.values())

    builds = analysis.construction_box("sssp")
    assert set(k[0] for k in builds) == {"gap", "graphmat"}
    # "The data structure construction times for GAP and GraphMat are
    # consistent" across BFS and SSSP (same structure).
    bfs_builds = analysis.construction_box("bfs")
    for system in ("gap", "graphmat"):
        a = builds[(system, "sssp")].median
        b = bfs_builds[(system, "bfs")].median
        assert abs(a - b) / b < 0.2
