"""Fig 9: RAM and CPU power during BFS (box plots over 32 roots).

Paper artifact (scale 22, 32 threads): CPU power 20-100 W with the
sleep(10) baseline near 25 W; RAM power 10-20 W; GraphMat lowest RAM
power; the Graph500 contributes a single point (all roots in one
execution, one RAPL window).
"""

from conftest import write_artifact

from repro.core.report import figure_series
from repro.machine.spec import haswell_server


def test_fig9(benchmark, kron_experiment):
    _, analysis = kron_experiment
    out = benchmark.pedantic(figure_series, args=(analysis, "fig9"),
                             rounds=1, iterations=1)
    machine = haswell_server()
    out += (f"\n\nsleep baseline: CPU {machine.idle_pkg_watts:.2f} W, "
            f"RAM {machine.idle_dram_watts:.2f} W")
    write_artifact("fig9.txt", out)
    print("\n" + out)

    cpu = analysis.power_box("pkg_watts", "bfs")
    ram = analysis.power_box("dram_watts", "bfs")

    # Band checks (paper y-axes).
    for system, b in cpu.items():
        assert machine.idle_pkg_watts < b.mean <= 110.0, system
    for system, b in ram.items():
        assert machine.idle_dram_watts < b.mean <= 22.0, system

    # GraphMat lowest RAM power (paper callout).
    ram_means = {s: b.mean for s, b in ram.items()}
    assert ram_means["graphmat"] == min(ram_means.values())
    # Graph500: one data point.
    assert cpu["graph500"].n == 1
    # Everyone sits above the sleep baseline.
    assert min(b.minimum for b in cpu.values()) > machine.idle_pkg_watts
