"""Observability gate: tracing must be (nearly) free.

The tracer is designed so every harness layer can call it
unconditionally -- which only holds up if an enabled tracer costs a few
percent at most and a disabled one costs nothing measurable.  This gate
runs the same smoke experiment untraced and traced (best of three each,
to shave scheduler noise) and asserts the traced median stays within
5% wall-clock of the untraced one, then records both timings and the
span census as a benchmark artifact.
"""

import shutil
import time

from conftest import write_artifact

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.observability import Tracer, read_events, span_events

SMOKE_SCALE = 10
SMOKE_ROOTS = 2
ROUNDS = 3
MAX_OVERHEAD = 0.05


def _run_once(out_dir, tracer):
    cfg = ExperimentConfig(
        output_dir=out_dir, dataset="kronecker", scale=SMOKE_SCALE,
        n_roots=SMOKE_ROOTS, algorithms=("bfs", "sssp", "pagerank"))
    exp = Experiment(cfg, tracer=tracer)
    t0 = time.perf_counter()
    exp.run_all()
    return time.perf_counter() - t0


def test_tracing_overhead_under_five_percent(tmp_path_factory):
    base = tmp_path_factory.mktemp("bench-observability")
    plain_times, traced_times = [], []
    trace_dir = None
    for i in range(ROUNDS):
        plain_dir = base / f"plain{i}"
        plain_times.append(_run_once(plain_dir, Tracer()))
        shutil.rmtree(plain_dir)

        traced_out = base / f"traced{i}"
        tracer = Tracer(traced_out / "trace")
        traced_times.append(_run_once(traced_out, tracer))
        tracer.close()
        trace_dir = traced_out / "trace"
        if i < ROUNDS - 1:
            shutil.rmtree(traced_out)

    plain = min(plain_times)
    traced = min(traced_times)
    overhead = traced / plain - 1.0
    spans = len(span_events(read_events(trace_dir)))

    write_artifact(
        "observability_gate.txt",
        f"scale: {SMOKE_SCALE}, roots: {SMOKE_ROOTS}, "
        f"rounds: {ROUNDS}\n"
        f"untraced best: {plain:.3f}s  (all: "
        + ", ".join(f"{t:.3f}" for t in plain_times) + ")\n"
        f"traced best:   {traced:.3f}s  (all: "
        + ", ".join(f"{t:.3f}" for t in traced_times) + ")\n"
        f"spans recorded: {spans}\n"
        f"overhead: {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})")
    print(f"\ntracing overhead: {overhead:+.2%} over {plain:.3f}s "
          f"({spans} spans)")
    assert spans > 0
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:+.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget ({plain:.3f}s -> {traced:.3f}s)")
