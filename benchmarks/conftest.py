"""Shared benchmark fixtures.

Benchmarks regenerate every table and figure of the paper's evaluation
at reduced scale (see EXPERIMENTS.md for the paper-vs-measured ledger).
Each bench both *times* the workload under pytest-benchmark and *writes*
the rendered artifact under ``bench_results/`` so the numbers are
inspectable after the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment

#: Reduced-scale stand-in for the paper's scale-22 workload.
BENCH_SCALE = 12
#: Roots per graph (paper: 32; reduced for bench wall-time).
BENCH_ROOTS = 8

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def write_artifact(name: str, content: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def kron_experiment(tmp_path_factory):
    """One full EPG* run on the Kronecker workload (Figs 2-4, 9, T3)."""
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("bench-kron"),
        dataset="kronecker", scale=BENCH_SCALE, n_roots=BENCH_ROOTS,
        algorithms=("bfs", "sssp", "pagerank"))
    exp = Experiment(cfg)
    analysis = exp.run_all()
    return exp, analysis


@pytest.fixture(scope="session")
def dota_dataset_bench(tmp_path_factory):
    from repro.datasets.homogenize import homogenize
    from repro.datasets.realworld import dota_league

    return homogenize(dota_league(), tmp_path_factory.mktemp("dota"))


@pytest.fixture(scope="session")
def patents_dataset_bench(tmp_path_factory):
    from repro.datasets.homogenize import homogenize
    from repro.datasets.realworld import cit_patents

    return homogenize(cit_patents(), tmp_path_factory.mktemp("pat"))


@pytest.fixture(scope="session")
def kron_dataset_bench(tmp_path_factory):
    from repro.datasets.homogenize import homogenize
    from repro.datasets.kronecker import KroneckerSpec, generate_kronecker

    el = generate_kronecker(KroneckerSpec(scale=BENCH_SCALE,
                                          weighted=True))
    return homogenize(el, tmp_path_factory.mktemp("kron-ds"))


@pytest.fixture(scope="session")
def realworld_experiments(tmp_path_factory):
    """EPG* runs on both real-world stand-ins (Fig 8)."""
    out = {}
    for ds in ("dota-league", "cit-patents"):
        cfg = ExperimentConfig(
            output_dir=tmp_path_factory.mktemp(f"bench-{ds}"),
            dataset=ds, n_roots=BENCH_ROOTS,
            algorithms=("bfs", "sssp", "pagerank"))
        exp = Experiment(cfg)
        out[ds] = (exp, exp.run_all())
    return out
