"""Ablation: PageRank stopping criteria.

Design choice under test: Sec. IV-A's central methodological point --
the homogenized stopping criterion (L1 < 6e-8) vs. each system's
native behaviour.  Sweeps epsilon for the epsilon-driven systems and
contrasts GraphMat's criterion-free sweep count, quantifying how much
of Fig 4's iteration spread is the criterion rather than the engine.
"""

from conftest import write_artifact

from repro.core.report import format_table
from repro.systems import create_system

EPSILONS = (1e-3, 1e-5, 6e-8, 1e-10)
SYSTEMS = ("gap", "graphbig", "powergraph")


def test_ablation_stopping_criteria(benchmark, kron_dataset_bench):
    def sweep():
        iters = {}
        for name in SYSTEMS:
            system = create_system(name, n_threads=32)
            loaded = system.load(kron_dataset_bench)
            iters[name] = [
                system.run(loaded, "pagerank", epsilon=e).iterations
                for e in EPSILONS]
        gm = create_system("graphmat", n_threads=32)
        gm_loaded = gm.load(kron_dataset_bench)
        iters["graphmat"] = [gm.run(gm_loaded, "pagerank").iterations
                             ] * len(EPSILONS)
        return iters

    iters = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        "PageRank stopping-criterion ablation (iterations)",
        [f"eps={e:g}" for e in EPSILONS],
        {name: [str(v) for v in vals]
         for name, vals in iters.items()})
    note = ("graphmat ignores epsilon entirely (no |p - p'| is ever "
            "computed, Sec. IV-A); its row is its native no-change "
            "criterion.")
    write_artifact("ablation_stopping.txt", table + "\n\n" + note)
    print("\n" + table + "\n" + note)

    # Tightening epsilon monotonically increases iterations.
    for name in SYSTEMS:
        vals = iters[name]
        assert all(b >= a for a, b in zip(vals, vals[1:])), name
    # GraphMat's native criterion lands beyond everyone's 6e-8 count.
    idx = EPSILONS.index(6e-8)
    assert iters["graphmat"][0] > max(iters[s][idx] for s in SYSTEMS)
    # But with a loose epsilon the others stop far earlier -- the
    # criterion, not the engine, drives Fig 4's iteration spread.
    assert iters["gap"][0] < iters["gap"][idx]
