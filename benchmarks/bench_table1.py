"""Table I: Graphalytics tabulated sample run times, 32 threads.

Paper artifact: one run per experiment over {cit-Patents, dota-league}
x {BFS, CDLP, LCC, PR, SSSP, WCC} x {GraphBIG, PowerGraph, GraphMat},
plus the GraphMat log excerpt showing the buried file-read time.

Shape to reproduce (paper values at full size):

* SSSP on cit-Patents is N/A (unweighted dataset);
* PowerGraph rows sit nearly constant (ingest + engine dominate);
* GraphMat's cells include its load (the timing flaw);
* LCC is the most expensive column, worst for GraphBIG on dota-league
  (1073.7 s in the paper).
"""

from conftest import write_artifact

from repro.graphalytics import GraphalyticsHarness, render_table


def _run_matrix(dota, patents):
    h = GraphalyticsHarness(n_threads=32, seed=7)
    return h.run_matrix(dota) + h.run_matrix(patents)


def test_table1(benchmark, dota_dataset_bench, patents_dataset_bench):
    results = benchmark.pedantic(
        _run_matrix, args=(dota_dataset_bench, patents_dataset_bench),
        rounds=1, iterations=1)
    table = render_table(
        results,
        title="Table I (reduced scale): Graphalytics sample run times "
              "(seconds) with 32 threads, one run per experiment")

    # The GraphMat log excerpt below the table (as in the paper).
    from repro.core.logs import LogWriter
    from repro.systems import create_system

    gm = create_system("graphmat", n_threads=32)
    loaded = gm.load(dota_dataset_bench)
    res = gm.run(loaded, "pagerank", max_iterations=10)
    phases = gm.phase_breakdown(loaded, res)
    w = LogWriter("graphmat", dota_dataset_bench.name, 32, "pagerank")
    w.graphmat_block(
        root=-1, trial=0, read_s=phases.file_read_s,
        load_s=phases.load_graph_s, init_s=phases.init_engine_s,
        degree_s=phases.count_degree_s, algo_label=phases.algorithm_label,
        algo_s=phases.run_algorithm_s, print_s=phases.print_output_s,
        deinit_s=phases.deinit_engine_s)
    excerpt = "\n".join(w.lines[2:])

    artifact = (table + "\n\nGraphMat log excerpt (PageRank on "
                "dota-league):\n" + excerpt)
    write_artifact("table1.txt", artifact)
    print("\n" + artifact)

    # Shape assertions.
    by_cell = {(r.platform, r.dataset, r.algorithm): r for r in results}
    assert by_cell[("graphmat", "cit-Patents", "sssp")].not_available
    lcc_dota = {p: by_cell[(p, "dota-league", "lcc")].reported_s
                for p in ("graphbig", "powergraph", "graphmat")}
    assert lcc_dota["graphbig"] == max(lcc_dota.values())
