"""Fig 6: BFS parallel efficiency T1/(n*Tn), scale-23 Kronecker.

Paper artifact: efficiency curves with the ideal horizontal line at
1.0; Graph500 dipping below 0.5 at 2 threads; all systems below ~0.4
by 64 threads ("generally poor scaling for this size problem").
"""

from conftest import write_artifact

from repro.core.projection import PAPER_SCALING_SCALE, projected_scalability
from repro.core.report import format_series

SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")
THREADS = (1, 2, 4, 8, 16, 32, 64, 72)


def _project():
    return {s: projected_scalability(s, thread_counts=THREADS)
            for s in SYSTEMS}


def test_fig6_projection(benchmark):
    tables = benchmark.pedantic(_project, rounds=1, iterations=1)
    eff = {s: tables[s].efficiency() for s in SYSTEMS}
    out = format_series(
        f"Fig 6: BFS parallel efficiency T1/(n*Tn), scale "
        f"{PAPER_SCALING_SCALE} (projected)",
        "threads", list(THREADS), eff)
    write_artifact("fig6.txt", out)
    print("\n" + out)

    by = {s: dict(zip(THREADS, eff[s])) for s in SYSTEMS}
    # Graph500's 2-thread efficiency is below 0.5 (speedup < 1).
    assert by["graph500"][2] < 0.5
    # Everyone's serial efficiency is exactly 1.
    for s in SYSTEMS:
        assert by[s][1] == 1.0
    # Poor scaling: all below 0.5 efficiency at 64 threads.
    for s in SYSTEMS:
        assert by[s][64] < 0.5
    # Efficiency ordering at 72: GraphMat >= GAP > Graph500 > GraphBIG.
    assert by["graphmat"][72] >= by["gap"][72]
    assert by["gap"][72] > by["graph500"][72] > by["graphbig"][72]
