"""Serving gate: the daemon survives overload plus chaos, cleanly.

A scale-10 graph is served by an in-process daemon with a crash burst
injected on the GAP BFS 2-thread cell, a deliberately small admission
queue, and a fast breaker cooldown.  A closed-loop client fleet then
overloads it.  The gate asserts the serving acceptance criteria: every
response is well-formed (no 5xx other than 503, no transport errors),
queries succeed both during and after the burst, the circuit recloses,
and the latency/shed report is written as a benchmark artifact.
"""

import json
import threading
from contextlib import contextmanager

from conftest import write_artifact

from repro.resilience.retry import RetryPolicy
from repro.service import LoadGenerator, QueryDaemon, ServeConfig

GATE_SCALE = 10
FAULT_SPEC = "gap/bfs/t2:crash:4"
DURATION_S = 4.0
CLIENTS = 6


@contextmanager
def serving(data_dir):
    cfg = ServeConfig(
        data_dir=data_dir, graphs=(f"kron:{GATE_SCALE}",), port=0,
        workers=2, max_queue=4, max_inflight=2,
        batch_window_s=0.005, fault_spec=FAULT_SPEC,
        breaker_failures=2,
        breaker_policy=RetryPolicy(base_backoff_s=0.05,
                                   max_backoff_s=0.2))
    daemon = QueryDaemon(cfg)
    ready = threading.Event()
    rc = []
    thread = threading.Thread(
        target=lambda: rc.append(daemon.serve_forever(
            install_signal_handlers=False, ready_event=ready)),
        daemon=True)
    thread.start()
    assert ready.wait(120.0), "daemon never became ready"
    port = daemon._server.server_address[1]
    try:
        yield daemon, f"http://127.0.0.1:{port}"
    finally:
        daemon.request_shutdown()
        thread.join(60.0)
    assert rc == [0], "daemon did not drain cleanly"


def run_soak(data_dir):
    with serving(data_dir) as (daemon, base):
        gen = LoadGenerator(base, duration_s=DURATION_S,
                            clients=CLIENTS, mode="closed", seed=11,
                            systems=("gap",), algorithms=("bfs",),
                            n_threads=2)
        report = gen.run()
        stats = daemon.stats()
        return report, stats


def test_service_gate(benchmark, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench-service")
    report, stats = benchmark.pedantic(
        run_soak, args=(out,), rounds=1, iterations=1)

    d = report.to_dict()
    # The chaos-soak acceptance criteria.
    assert d["dirty_responses"] == 0, d
    assert report.count(200) > 0, d
    assert set(map(int, report.status_counts)) <= {200, 429, 503}, d
    # The fault burst surfaced, then the circuit reclosed.
    assert report.shed_reasons.get("fault", 0) >= 2, d
    breaker = stats["breakers"]["kron10/gap"]
    assert breaker["state"] == "closed", stats

    write_artifact("service_gate.json", json.dumps({
        "fault_spec": FAULT_SPEC,
        "load": d,
        "breakers": stats["breakers"],
        "admission": stats["admission"],
    }, indent=2))
    print("\n" + report.summary())
