"""Ablation: delta-stepping bucket width.

Design choice under test: GAP's SSSP delta (paper Sec. V lists it among
the untuned parameters).  Sweeps delta from near-Dijkstra (tiny
buckets, many phases, few wasted relaxations) to Bellman-Ford (one
bucket, few phases, many re-relaxations) and reports the phase count /
relaxation count / simulated time trade-off, plus the tuner's pick.
"""

from conftest import write_artifact

from repro.core.report import format_table
from repro.systems import create_system
from repro.systems.gap.tuning import heuristic_parameters

DELTAS = (0.02, 0.1, 0.25, 1.0, 1e6)


def test_ablation_delta(benchmark, kron_dataset_bench):
    system = create_system("gap", n_threads=32)
    loaded = system.load(kron_dataset_bench)
    root = int(kron_dataset_bench.roots[0])

    def sweep():
        rows = {}
        for delta in DELTAS:
            res = system.run(loaded, "sssp", root=root, delta=delta)
            rows[delta] = (res.counters["phases"],
                           res.counters["relaxations"], res.time_s)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tuned = heuristic_parameters(loaded.data)
    table = format_table(
        f"Delta-stepping ablation, {kron_dataset_bench.name} "
        f"(tuner delta = {tuned.delta:.3g})",
        ["phases", "relaxations", "time (s)"],
        {f"delta={d:g}": [f"{p:.0f}", f"{r:.0f}", f"{t:.3g}"]
         for d, (p, r, t) in rows.items()})
    write_artifact("ablation_delta.txt", table)
    print("\n" + table)

    # Structural trade-off: tiny delta maximizes phases, huge delta
    # minimizes them.
    phases = {d: rows[d][0] for d in DELTAS}
    assert phases[0.02] == max(phases.values())
    assert phases[1e6] == min(phases.values())
    # All settings produce identical distances (exactness is separate
    # from performance) -- spot-check via relaxation monotonicity only;
    # correctness is covered by tests/systems/test_gap.py.
    times = {d: rows[d][2] for d in DELTAS}
    best = min(times, key=times.get)
    assert times[best] <= times[0.02]
