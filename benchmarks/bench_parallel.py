"""Parallel scheduler gate: speedup without a single changed byte.

Runs the paper suite at bench scale serially and with ``jobs=4``, and
asserts the two REPORT.md files are byte-identical -- the scheduler's
core invariant, checked at gate scale on every benchmark run.  The
>= 2x speedup assertion additionally requires at least four physical
cores: on smaller machines (CI containers are often 1-2 cores) the
fork + pickle overhead legitimately exceeds the win, so the timing
half of the gate is skipped there while the byte-identity half always
runs.
"""

import os
import time

import pytest
from conftest import BENCH_ROOTS, BENCH_SCALE, write_artifact

from repro.core.suite import run_paper_suite

SPEEDUP_FLOOR = 2.0
MIN_CORES_FOR_SPEEDUP = 4


def test_parallel_gate(benchmark, tmp_path_factory):
    serial_out = tmp_path_factory.mktemp("bench-par-serial")
    parallel_out = tmp_path_factory.mktemp("bench-par-jobs4")
    params = dict(scale=BENCH_SCALE, n_roots=BENCH_ROOTS,
                  render_svg=False)

    t0 = time.perf_counter()
    serial_report = run_paper_suite(serial_out, jobs=1, **params)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_report = benchmark.pedantic(
        run_paper_suite, args=(parallel_out,),
        kwargs=dict(jobs=4, **params), rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    assert parallel_report.read_bytes() == serial_report.read_bytes(), \
        "jobs=4 changed REPORT.md bytes -- determinism invariant broken"

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    write_artifact(
        "parallel_gate.txt",
        f"cores: {cores}\n"
        f"serial_s: {serial_s:.2f}\n"
        f"jobs4_s: {parallel_s:.2f}\n"
        f"speedup: {speedup:.2f}x\n"
        f"byte_identical: true")
    print(f"\nserial {serial_s:.2f}s  jobs=4 {parallel_s:.2f}s  "
          f"speedup {speedup:.2f}x  ({cores} cores)")

    if cores < MIN_CORES_FOR_SPEEDUP:
        pytest.skip(f"{cores} core(s): speedup assertion needs "
                    f">= {MIN_CORES_FOR_SPEEDUP}; byte-identity checked")
    assert speedup >= SPEEDUP_FLOOR, \
        f"jobs=4 speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
