"""Structural-algorithm gate: exact agreement always, >=2x peeling.

The widened algorithm matrix (k-core / MIS / afforest CC, see
``docs/algorithms.md``) has two enforced halves, mirroring the frontier
kernel gate:

* **Exact agreement.**  Every system that implements a structural
  kernel must reproduce the reference answer bit for bit at bench
  scale -- core numbers, the greedy-by-priority MIS under the shared
  seed, and min-member component labels are all mathematically unique,
  so the comparison is ``array_equal``, never a tolerance.  Repeated
  runs must also be bit-identical (no hidden RNG or dict-order state).
* **Speedup.**  The bucket-queue peel (:func:`core_numbers`) must beat
  the ``O(n)``-rescan naive baseline (:func:`core_numbers_naive`) by at
  least ``SPEEDUP_FLOOR``x on a Kronecker graph at scale
  ``PEEL_SCALE`` -- the point of promoting GAP's lazy bucket queue
  into the shared frontier library.

Artifacts: ``bench_results/algorithms_gate.txt`` (human-readable) and
``bench_results/BENCH_algorithms.json`` (machine-readable, consumed by
the CI ``algorithms-smoke`` job).
"""

from __future__ import annotations

import json
import time

import numpy as np
from conftest import BENCH_SCALE, write_artifact

from repro.algorithms.cc import afforest
from repro.algorithms.kcore import core_numbers, core_numbers_naive
from repro.algorithms.mis import maximal_independent_set
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.graph.csr import CSRGraph
from repro.systems import create_system

SPEEDUP_FLOOR = 2.0
#: The ISSUE floor applies to the peel at Kronecker scale 14.
PEEL_SCALE = 14
#: Best-of-k timing on both sides, against scheduler noise.
TIMING_REPS = 3

#: system -> structural algorithms it implements (docs/algorithms.md).
MATRIX = {
    "gap": ("kcore", "mis", "cc"),
    "graphbig": ("kcore", "mis", "cc"),
    "graphmat": ("kcore", "mis"),
    "powergraph": ("kcore", "mis"),
}

OUTPUT_KEY = {"kcore": "core", "mis": "in_set", "cc": "labels"}


def _best_of(fn, *args):
    times = []
    fn(*args)  # warmup
    for _ in range(TIMING_REPS):
        t0 = time.perf_counter()
        fn(*args)
        times.append(time.perf_counter() - t0)
    return min(times)


def test_algorithms_gate(kron_dataset_bench):
    el = generate_kronecker(KroneckerSpec(scale=BENCH_SCALE,
                                          weighted=True))
    csr = CSRGraph.from_arrays(el.src, el.dst, el.n_vertices)
    refs = {
        "kcore": core_numbers(csr),
        "mis": maximal_independent_set(csr).astype(np.int64),
        "cc": afforest(csr),
    }

    # ------------------------------------------------------------------
    # 1. Exact agreement at bench scale, every implementing system.
    # ------------------------------------------------------------------
    checks = []
    for name, algorithms in MATRIX.items():
        system = create_system(name, n_threads=32)
        loaded = system.load(kron_dataset_bench)
        for algorithm in algorithms:
            key = OUTPUT_KEY[algorithm]
            first = system.run(loaded, algorithm).output[key]
            second = system.run(loaded, algorithm).output[key]
            assert np.array_equal(first, refs[algorithm]), \
                f"{name}/{algorithm}: disagrees with the reference"
            assert first.tobytes() == second.tobytes(), \
                f"{name}/{algorithm}: repeated runs not bit-identical"
            checks.append(f"{name}/{algorithm}")

    # ------------------------------------------------------------------
    # 2. Peeling speedup at PEEL_SCALE.
    # ------------------------------------------------------------------
    peel_el = generate_kronecker(KroneckerSpec(scale=PEEL_SCALE))
    peel_csr = CSRGraph.from_arrays(peel_el.src, peel_el.dst,
                                    peel_el.n_vertices)
    assert np.array_equal(core_numbers(peel_csr),
                          core_numbers_naive(peel_csr))
    naive_s = _best_of(core_numbers_naive, peel_csr)
    fast_s = _best_of(core_numbers, peel_csr)
    speedup = naive_s / max(fast_s, 1e-9)
    assert speedup >= SPEEDUP_FLOOR, (
        f"k-core peel speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x gate")

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    payload = {
        "identity_scale": BENCH_SCALE,
        "identity_checks": checks,
        "exact_agreement": True,
        "peel_scale": PEEL_SCALE,
        "peel_n_vertices": int(peel_csr.n_vertices),
        "peel_n_arcs": int(peel_csr.n_edges),
        "peel_naive_s": round(naive_s, 4),
        "peel_fast_s": round(fast_s, 4),
        "peel_speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    write_artifact("BENCH_algorithms.json", json.dumps(payload, indent=2))
    write_artifact("algorithms_gate.txt", "\n".join([
        f"identity_checks: {len(checks)} system/algorithm cells "
        f"(scale {BENCH_SCALE}) -- all exact and bit-identical",
        f"kcore_peel (kron scale {PEEL_SCALE}, {peel_csr.n_edges} "
        f"arcs): naive {naive_s:.3f}s bucket-queue {fast_s:.3f}s "
        f"speedup {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)",
    ]))
