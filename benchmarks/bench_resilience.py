"""Resilience gate: the full suite survives injected faults.

A scale-10 paper suite runs with a permanent crash fault on the GAP
BFS 32-thread cell and one retry budget.  The gate asserts the run
completes degraded -- no unhandled exception, the quarantined cell is
ledgered in REPORT.md's "Failures and retries" section -- and writes
the rendered section as a benchmark artifact.
"""

from conftest import write_artifact

from repro.core.suite import run_paper_suite
from repro.resilience import SuiteCheckpoint

GATE_SCALE = 10
GATE_ROOTS = 2
FAULT_SPEC = "gap/bfs/t32:crash"


def test_resilience_gate(benchmark, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench-resilience")
    report = benchmark.pedantic(
        run_paper_suite, args=(out,),
        kwargs=dict(scale=GATE_SCALE, n_roots=GATE_ROOTS,
                    render_svg=False, fault_spec=FAULT_SPEC,
                    max_retries=1),
        rounds=1, iterations=1)

    text = report.read_text(encoding="utf-8")
    assert "## Failures and retries" in text
    assert "gap/bfs/t32" in text and "quarantined" in text

    quarantined = SuiteCheckpoint.scan_quarantined(out)
    assert any("gap/bfs/t32" in q for q in quarantined)

    section = text[text.index("## Failures and retries"):]
    ledger = section.split("\n## ")[0].rstrip()
    write_artifact("resilience_gate.txt",
                   f"fault_spec: {FAULT_SPEC}\n"
                   f"quarantined: {', '.join(quarantined)}\n\n{ledger}")
    print("\n" + ledger)
