"""Frontier-kernel gate: byte-identity always, >=2x on the hot loop.

The shared frontier library (:mod:`repro.graph.frontier`) replaced the
per-system slot-expansion / lexsort-dedup / ``minimum.at``+``unique``
idioms.  Its contract has two halves, both enforced here on every
benchmark run:

* **Byte-identity.**  This file embeds the *pre-library* kernels
  verbatim (top-down/bottom-up dobfs, delta-stepping, Graph500 bitmap
  BFS, GraphBIG queue BFS / Bellman-Ford, the GAS gather/signal phases,
  reference BFS/CDLP/Dijkstra-dedup) and asserts that parent / level /
  dist / label arrays, WorkProfile round vectors, and stats dicts match
  the library-backed kernels *exactly* -- ``array_equal`` on every
  array, never a tolerance.
* **Speedup.**  The gathered-edge hot loop (always-top-down BFS over a
  symmetrized Kronecker graph at scale >= 16) must run at least
  ``SPEEDUP_FLOOR``x faster than the old idiom, and the relaxation
  scatter (``minimum.at`` + ``unique``) at least as much.

Artifacts: ``bench_results/kernels_gate.txt`` (human-readable) and
``bench_results/BENCH_kernels.json`` (machine-readable, consumed by the
CI ``kernel-smoke`` job).
"""

from __future__ import annotations

import json
import time
from types import SimpleNamespace

import numpy as np
from conftest import BENCH_SCALE, write_artifact

from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.graph.csr import CSRGraph
from repro.machine.threads import WorkProfile
from repro.systems.gap.bfs import dobfs
from repro.systems.gap.graph import GapGraph, build_gap_graph
from repro.systems.gap.sssp import delta_stepping
from repro.systems.graph500.bfs import bfs_bitmap
from repro.systems.graphbig.kernels import (PROPERTY_ACCESS_COST,
                                            bfs_queue, sssp_bellman_ford)
from repro.systems.powergraph.gas import GasEngine
from repro.systems.powergraph.partition import random_vertex_cut
from repro.systems.powergraph.programs import run_sssp

SPEEDUP_FLOOR = 2.0
#: The ISSUE floor applies at Kronecker scale 16+.
HOT_SCALE = 16
HOT_ROOTS = 3
#: Best-of-k timing on both sides, against scheduler noise.
TIMING_REPS = 3
IDENTITY_ROOTS = 4


# ======================================================================
# Verbatim pre-library kernels (the idioms the frontier module replaced)
# ======================================================================


def _ref_expand(csr, frontier):
    starts = csr.row_ptr[frontier]
    counts = csr.row_ptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.int64), 0)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    return csr.col_idx[slots], np.repeat(frontier, counts), slots, total


def _ref_top_down_step(graph, frontier, parent):
    out = graph.out
    nbrs, srcs, _, total = _ref_expand(out, frontier)
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    fresh = parent[nbrs] == -1
    nbrs = nbrs[fresh]
    srcs = srcs[fresh]
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64), total
    order = np.lexsort((srcs, nbrs))
    nbrs_s = nbrs[order]
    srcs_s = srcs[order]
    first = np.ones(nbrs_s.size, dtype=bool)
    first[1:] = nbrs_s[1:] != nbrs_s[:-1]
    new_v = nbrs_s[first]
    parent[new_v] = srcs_s[first]
    return new_v, total


def _ref_bottom_up_step(graph, in_frontier, parent):
    inn = graph.inn
    cand = np.flatnonzero(parent == -1)
    if cand.size == 0:
        return np.empty(0, dtype=np.int64), 0
    starts = inn.row_ptr[cand]
    ends = inn.row_ptr[cand + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    hits = in_frontier[inn.col_idx[slots]]
    hit_pos = np.flatnonzero(hits)
    if hit_pos.size == 0:
        return np.empty(0, dtype=np.int64), total
    seg_end = np.cumsum(counts)
    seg_start = seg_end - counts
    first_idx = np.searchsorted(hit_pos, seg_start)
    has_hit = (first_idx < hit_pos.size)
    first_hit = np.where(
        has_hit, hit_pos[np.minimum(first_idx, hit_pos.size - 1)], -1)
    found = has_hit & (first_hit < seg_end)
    new_v = cand[found]
    parent[new_v] = inn.col_idx[slots[first_hit[found]]]
    examined = np.where(found, first_hit - seg_start + 1, counts)
    return new_v, int(examined.sum())


def _ref_dobfs(graph, root, alpha=15.0, beta=18.0):
    n = graph.n
    out_deg = graph.out_degree()
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    edges_unexplored = int(out_deg.sum()) - int(out_deg[root])
    depth = 0
    steps = []
    bottom_up = False
    max_deg = float(out_deg.max()) if n else 0.0
    while frontier.size:
        depth += 1
        edges_front = int(out_deg[frontier].sum())
        if not bottom_up and edges_front * alpha > max(edges_unexplored, 1):
            bottom_up = True
        elif bottom_up and frontier.size * beta < n:
            bottom_up = False
        if bottom_up:
            mask = np.zeros(n, dtype=bool)
            mask[frontier] = True
            new_v, examined = _ref_bottom_up_step(graph, mask, parent)
            steps.append("bu")
        else:
            new_v, examined = _ref_top_down_step(graph, frontier, parent)
            steps.append("td")
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + frontier.size,
                          memory_bytes=12.0 * examined, skew=skew)
        level[new_v] = depth
        edges_unexplored -= int(out_deg[new_v].sum())
        frontier = new_v
    stats = {"depth": depth, "steps": "".join(
        "B" if s == "bu" else "T" for s in steps)}
    return parent, level, profile, stats


def _ref_relax(out, frontier, dist, light_mask):
    starts = out.row_ptr[frontier]
    counts = out.row_ptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    srcs = np.repeat(frontier, counts)
    if light_mask is not None:
        keep = light_mask[slots]
        slots = slots[keep]
        srcs = srcs[keep]
        if slots.size == 0:
            return np.empty(0, dtype=np.int64), total
    dsts = out.col_idx[slots]
    cand = dist[srcs] + out.weights[slots]
    better = cand < dist[dsts]
    dsts_b = dsts[better]
    cand_b = cand[better]
    if dsts_b.size == 0:
        return np.empty(0, dtype=np.int64), total
    np.minimum.at(dist, dsts_b, cand_b)
    return np.unique(dsts_b), total


def _ref_delta_stepping(graph, root, delta=0.25):
    out = graph.out
    n = graph.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    light = out.weights < delta
    profile = WorkProfile()
    max_deg = float(out.out_degrees().max()) if n else 0.0
    bucket = np.full(n, -1, dtype=np.int64)
    bucket[root] = 0
    relaxations = 0
    phases = 0
    current = 0
    while True:
        members = np.flatnonzero(bucket == current)
        if members.size == 0:
            ahead = bucket[bucket > current]
            if ahead.size == 0:
                break
            current = int(ahead.min())
            continue
        settled_this_bucket = []
        while members.size:
            phases += 1
            improved, examined = _ref_relax(out, members, dist, light)
            relaxations += examined
            skew = min(max_deg / max(examined, 1.0), 0.15)
            profile.add_round(units=examined + members.size,
                              memory_bytes=20.0 * examined, skew=skew)
            settled_this_bucket.append(members)
            bucket[members] = -2
            if improved.size:
                new_bucket = np.minimum(
                    (dist[improved] / delta).astype(np.int64),
                    np.iinfo(np.int64).max)
                stay = new_bucket == current
                bucket[improved] = new_bucket
                members = improved[stay]
            else:
                members = np.empty(0, dtype=np.int64)
        settled = np.unique(np.concatenate(settled_this_bucket))
        phases += 1
        improved, examined = _ref_relax(out, settled, dist, ~light)
        relaxations += examined
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + settled.size,
                          memory_bytes=20.0 * examined, skew=skew)
        if improved.size:
            nb = (dist[improved] / delta).astype(np.int64)
            bucket[improved] = np.maximum(nb, current + 1)
        current += 1
    stats = {"phases": phases, "relaxations": relaxations, "delta": delta}
    return dist, profile, stats


def _ref_bfs_bitmap(csr, root):
    n = csr.n_vertices
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    parent[root] = root
    level[root] = 0
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    examined_total = 0
    while frontier.size:
        depth += 1
        nbrs, srcs, _, total = _ref_expand(csr, frontier)
        if total == 0:
            break
        fresh = ~visited[nbrs]
        nbrs = nbrs[fresh]
        srcs = srcs[fresh]
        examined_total += total
        skew = min(max_deg / max(total, 1.0), 1.0)
        profile.add_round(units=total + frontier.size,
                          memory_bytes=9.0 * total, skew=skew)
        if nbrs.size == 0:
            break
        order = np.lexsort((srcs, nbrs))
        nbrs_s = nbrs[order]
        srcs_s = srcs[order]
        first = np.ones(nbrs_s.size, dtype=bool)
        first[1:] = nbrs_s[1:] != nbrs_s[:-1]
        new_v = nbrs_s[first]
        parent[new_v] = srcs_s[first]
        visited[new_v] = True
        level[new_v] = depth
        frontier = new_v
    return parent, level, profile, {"depth": depth,
                                    "edges_examined": examined_total}


def _ref_bfs_queue(pg, root):
    csr = pg.out
    n = pg.n
    level = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    while frontier.size:
        depth += 1
        nbrs, srcs, _, total = _ref_expand(csr, frontier)
        profile.add_round(
            units=total + PROPERTY_ACCESS_COST * frontier.size,
            memory_bytes=32.0 * total,
            skew=min(max_deg / max(total, 1.0), 1.0))
        if total == 0:
            break
        fresh = level[nbrs] == -1
        nbrs, srcs = nbrs[fresh], srcs[fresh]
        if nbrs.size == 0:
            break
        order = np.lexsort((srcs, nbrs))
        nbrs_s, srcs_s = nbrs[order], srcs[order]
        first = np.ones(nbrs_s.size, dtype=bool)
        first[1:] = nbrs_s[1:] != nbrs_s[:-1]
        new_v = nbrs_s[first]
        level[new_v] = depth
        parent[new_v] = srcs_s[first]
        frontier = new_v
    return parent, level, profile, {"depth": depth}


def _ref_sssp_bellman_ford(pg, root):
    csr = pg.out
    n = pg.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    active = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    supersteps = 0
    relaxations = 0
    while active.size:
        supersteps += 1
        nbrs, srcs, slots, total = _ref_expand(csr, active)
        relaxations += total
        profile.add_round(
            units=total + PROPERTY_ACCESS_COST * active.size,
            memory_bytes=28.0 * total,
            skew=min(max_deg / max(total, 1.0), 1.0))
        if total == 0:
            break
        cand = dist[srcs] + csr.weights[slots]
        better = cand < dist[nbrs]
        if not better.any():
            break
        targets = nbrs[better]
        np.minimum.at(dist, targets, cand[better])
        active = np.unique(targets)
    return dist, profile, {"supersteps": supersteps,
                           "relaxations": relaxations}


class _RefGasEngine(GasEngine):
    """GasEngine with the pre-library gather/signal phases."""

    def _gather_phase(self, program, state, targets):
        inn = self.inn
        starts = inn.row_ptr[targets]
        counts = inn.row_ptr[targets + 1] - starts
        total = int(counts.sum())
        gathered = np.full(targets.size, program.identity, dtype=np.float64)
        if total == 0:
            return gathered, 0
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        slots = np.repeat(starts - offsets, counts) + np.arange(total)
        srcs = inn.col_idx[slots]
        dst_rep = np.repeat(targets, counts)
        w = inn.weights[slots] if inn.weights is not None else None
        contributions = program.gather(state, srcs, dst_rep, w)
        idx = np.repeat(np.arange(targets.size), counts)
        if program.reduce == "sum":
            np.add.at(gathered, idx, contributions)
        else:
            np.minimum.at(gathered, idx, contributions)
        return gathered, total

    def _signaled(self, active):
        frontier = np.flatnonzero(active)
        out = self.out
        starts = out.row_ptr[frontier]
        counts = out.row_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        slots = np.repeat(starts - offsets, counts) + np.arange(total)
        return np.unique(out.col_idx[slots])


# ======================================================================
# Gate helpers
# ======================================================================


def _profiles_equal(a: WorkProfile, b: WorkProfile) -> bool:
    aa, bb = a.to_arrays(), b.to_arrays()
    return all(np.array_equal(aa[k], bb[k]) for k in aa)


def _assert_identical(label, got, want, checks):
    g_arrays, g_profile, g_stats = got
    w_arrays, w_profile, w_stats = want
    for ga, wa in zip(g_arrays, w_arrays):
        assert np.array_equal(ga, wa), f"{label}: output array diverged"
    assert _profiles_equal(g_profile, w_profile), \
        f"{label}: WorkProfile diverged"
    assert g_stats == w_stats, f"{label}: stats diverged"
    checks.append(label)


def _bench_graph(scale, weighted):
    el = generate_kronecker(KroneckerSpec(scale=scale, weighted=weighted))
    return el


def test_kernel_gate(benchmark):
    checks = []

    # ------------------------------------------------------------------
    # 1. Byte-identity at bench scale, several roots.
    # ------------------------------------------------------------------
    el = _bench_graph(BENCH_SCALE, weighted=True)
    gap, _ = build_gap_graph(el, directed=False)
    rng = np.random.default_rng(0)
    roots = rng.integers(0, gap.n, IDENTITY_ROOTS)

    for root in roots:
        root = int(root)
        p, l, prof, st = dobfs(gap, root)
        rp, rl, rprof, rst = _ref_dobfs(gap, root)
        _assert_identical(f"gap/dobfs[{root}]",
                          ((p, l), prof, st), ((rp, rl), rprof, rst),
                          checks)
        d, prof, st = delta_stepping(gap, root)
        rd, rprof, rst = _ref_delta_stepping(gap, root)
        _assert_identical(f"gap/delta_stepping[{root}]",
                          ((d,), prof, st), ((rd,), rprof, rst), checks)

    csr = gap.out
    pg = SimpleNamespace(out=csr, n=gap.n)
    for root in roots:
        root = int(root)
        got = bfs_bitmap(csr, root)
        ref = _ref_bfs_bitmap(csr, root)
        _assert_identical(f"graph500/bfs_bitmap[{root}]",
                          (got[:2], got[2], got[3]),
                          (ref[:2], ref[2], ref[3]), checks)
        got = bfs_queue(pg, root)
        ref = _ref_bfs_queue(pg, root)
        _assert_identical(f"graphbig/bfs_queue[{root}]",
                          (got[:2], got[2], got[3]),
                          (ref[:2], ref[2], ref[3]), checks)
        gd, gprof, gst = sssp_bellman_ford(pg, root)
        rd, rprof, rst = _ref_sssp_bellman_ford(pg, root)
        _assert_identical(f"graphbig/bellman_ford[{root}]",
                          ((gd,), gprof, gst), ((rd,), rprof, rst),
                          checks)

    # PowerGraph: full GAS SSSP on new vs pre-library engine phases.
    sym = el.symmetrized()
    out = CSRGraph.from_arrays(sym.src, sym.dst, sym.n_vertices,
                               weights=sym.weights)
    inn = CSRGraph.from_arrays(sym.dst, sym.src, sym.n_vertices,
                               weights=sym.weights)
    cut = random_vertex_cut(sym.src, sym.dst, sym.n_vertices, 4)
    root = int(roots[0])
    engine = GasEngine(inn, out, cut)
    ref_engine = _RefGasEngine(inn, out, cut)
    gd, git, gprof, gst = run_sssp(engine, root)
    rd, rit, rprof, rst = run_sssp(ref_engine, root)
    assert git == rit
    _assert_identical(f"powergraph/gas_sssp[{root}]",
                      ((gd,), gprof, gst), ((rd,), rprof, rst), checks)

    # ------------------------------------------------------------------
    # 2. Hot-loop speedup at scale >= 16 (plus identity re-check there).
    # ------------------------------------------------------------------
    hot_el = _bench_graph(HOT_SCALE, weighted=False)
    hot = CSRGraph.from_edge_list(hot_el, symmetrize=True)
    # Top-degree roots: deterministic, inside the giant component, and
    # each search sweeps essentially every arc (random roots on a
    # Kronecker graph often land on isolated vertices).
    hot_roots = [int(r) for r in
                 np.argsort(hot.out_degrees())[-HOT_ROOTS:]]

    # Warm both paths (sizes the scratch arena, faults the pages in).
    bfs_bitmap(hot, hot_roots[0])
    _ref_bfs_bitmap(hot, hot_roots[0])

    old_times, new_times = [], []
    ref_runs = new_runs = None
    for _ in range(TIMING_REPS):
        t0 = time.perf_counter()
        ref_runs = [_ref_bfs_bitmap(hot, r) for r in hot_roots]
        old_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        new_runs = [bfs_bitmap(hot, r) for r in hot_roots]
        new_times.append(time.perf_counter() - t0)
    old_s, new_s = min(old_times), min(new_times)
    benchmark.pedantic(lambda: [bfs_bitmap(hot, r) for r in hot_roots],
                       rounds=1, iterations=1)

    for r, got, want in zip(hot_roots, new_runs, ref_runs):
        _assert_identical(f"hot/bfs_bitmap[{r}]",
                          (got[:2], got[2], got[3]),
                          (want[:2], want[2], want[3]), checks)
    hot_speedup = old_s / max(new_s, 1e-9)

    # Relaxation scatter: minimum.at + unique vs segment_min_scatter.
    from repro.graph.frontier import segment_min_scatter
    from repro.graph.scratch import KernelScratch

    n = hot.n_vertices
    m = 2_000_000
    rng = np.random.default_rng(2)
    dsts = rng.integers(0, n, m)
    cand = rng.random(m)
    scratch = KernelScratch(n, m)
    dist_a = np.full(n, np.inf)
    dist_b = np.full(n, np.inf)
    segment_min_scatter(dist_b.copy(), dsts, cand, scratch)  # warm

    t0 = time.perf_counter()
    np.minimum.at(dist_a, dsts, cand)
    want_ids = np.unique(dsts)
    relax_old_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    got_ids = segment_min_scatter(dist_b, dsts, cand, scratch)
    relax_new_s = time.perf_counter() - t0
    assert np.array_equal(got_ids, want_ids)
    assert np.array_equal(dist_a, dist_b)
    relax_speedup = relax_old_s / max(relax_new_s, 1e-9)

    assert hot_speedup >= SPEEDUP_FLOOR, (
        f"hot-loop speedup {hot_speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x gate")

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    payload = {
        "identity_scale": BENCH_SCALE,
        "identity_checks": len(checks),
        "byte_identical": True,
        "hot_scale": HOT_SCALE,
        "hot_roots": HOT_ROOTS,
        "hot_n_vertices": int(hot.n_vertices),
        "hot_n_arcs": int(hot.n_edges),
        "hot_old_s": round(old_s, 4),
        "hot_new_s": round(new_s, 4),
        "hot_speedup": round(hot_speedup, 2),
        "relax_old_s": round(relax_old_s, 4),
        "relax_new_s": round(relax_new_s, 4),
        "relax_speedup": round(relax_speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    write_artifact("BENCH_kernels.json", json.dumps(payload, indent=2))
    write_artifact("kernels_gate.txt", "\n".join([
        f"identity_checks: {len(checks)} (scale {BENCH_SCALE}, "
        f"{IDENTITY_ROOTS} roots) -- all byte-identical",
        f"hot_loop (top-down BFS, kron scale {HOT_SCALE}, "
        f"{hot.n_edges} arcs): old {old_s:.3f}s new {new_s:.3f}s "
        f"speedup {hot_speedup:.2f}x (floor {SPEEDUP_FLOOR}x)",
        f"relax_scatter (2M edges): old {relax_old_s * 1e3:.1f}ms "
        f"new {relax_new_s * 1e3:.1f}ms speedup {relax_speedup:.2f}x",
    ]))
