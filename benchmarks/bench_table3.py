"""Table III: time / power / energy per BFS root, 32 threads.

Paper artifact (Kronecker scale 22):

===========================  ======  ========  ========  ========
row                          GAP     Graph500  GraphBIG  GraphMat
===========================  ======  ========  ========  ========
Time (s)                     0.01636  0.01884   1.600     1.424
Average Power per Root (W)   72.38    97.17     78.01     70.12
Energy per Root (J)          1.184    1.830     112.213   111.104
Sleeping Energy (J)          0.4046   0.4660    39.591    35.234
Increase over Sleep          2.926    3.928     2.834     3.153
===========================  ======  ========  ========  ========

Shape: power anchors are exact by calibration; times scale down with
the bench graph; the increase-over-sleep ratios are scale-free and land
in the paper's 2.8-3.9 band.
"""

from conftest import write_artifact

from repro.core.report import format_table

SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")


def _energy_table(analysis):
    return analysis.energy_table("bfs", threads=32)


def test_table3(benchmark, kron_experiment):
    _, analysis = kron_experiment
    table = benchmark.pedantic(_energy_table, args=(analysis,),
                               rounds=1, iterations=1)

    rows = {
        "Time (s)": [f"{table[s].time_s:.5g}" for s in SYSTEMS],
        "Average Power per Root (W)": [
            f"{table[s].avg_pkg_watts:.2f}" for s in SYSTEMS],
        "Energy per Root (J)": [
            f"{table[s].pkg_energy_j:.4g}" for s in SYSTEMS],
        "Sleeping Energy (J)": [
            f"{table[s].sleep_energy_j:.4g}" for s in SYSTEMS],
        "Increase over Sleep": [
            f"{table[s].increase_over_sleep:.3f}" for s in SYSTEMS],
    }
    out = format_table(
        "Table III (reduced scale): BFS energy, 32 threads",
        [s.upper() for s in SYSTEMS], rows)
    write_artifact("table3.txt", out)
    print("\n" + out)

    # Paper shapes.
    powers = {s: table[s].avg_pkg_watts for s in SYSTEMS}
    assert powers["graph500"] == max(powers.values())
    assert powers["graphmat"] == min(powers.values())
    for s in SYSTEMS:
        assert 2.0 < table[s].increase_over_sleep < 5.0
    # Fastest == most energy efficient (Sec. IV-D).
    fastest = min(SYSTEMS, key=lambda s: table[s].time_s)
    thriftiest = min(SYSTEMS, key=lambda s: table[s].pkg_energy_j)
    assert fastest == thriftiest
