"""Fig 4: PageRank time box plots and iteration counts.

Paper artifact (scale 22, 32 threads, homogenized epsilon = 6e-8 except
GraphMat's run-until-no-change): GAP fastest *and* fewest iterations;
GraphMat the most iterations; times span 0.2-100 s.

Reduced-scale caveat (EXPERIMENTS.md): GraphBIG's iteration count grows
with graph mixing time, so its paper-scale "slowest PageRank" rank
appears only above scale ~20; at bench scale PowerGraph's engine
startup is the largest absolute time instead.
"""

from conftest import write_artifact

from repro.core.report import figure_series


def test_fig4(benchmark, kron_experiment):
    _, analysis = kron_experiment
    out = benchmark.pedantic(figure_series, args=(analysis, "fig4"),
                             rounds=1, iterations=1)
    write_artifact("fig4.txt", out)
    print("\n" + out)

    box = analysis.box("time")
    times = {k[0]: v.median for k, v in box.items() if k[1] == "pagerank"}
    iters = analysis.iterations("pagerank")

    assert times["gap"] == min(times.values())
    assert iters["gap"] == min(iters.values())
    assert iters["graphmat"] == max(iters.values())
    # The paper's RSD remark: PR spreads tighter than SSSP per system.
    for system in ("gap", "graphbig", "graphmat"):
        pr_rsd = box[(system, "pagerank", analysis.datasets()[0], 32)].rsd
        ss_rsd = box[(system, "sssp", analysis.datasets()[0], 32)].rsd
        assert pr_rsd < ss_rsd
