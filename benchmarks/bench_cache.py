"""Artifact-cache gate: warm speedup without a single changed byte.

Runs the same bench-scale experiment three times -- uncached, cold
with a cache directory, and warm against the populated cache -- and
asserts all three ``results.csv`` files are byte-identical (the
cache's core invariant, checked at gate scale on every benchmark run)
and that the warm run is at least 2x faster than the cold one.  Unlike
the parallel gate, the speedup half needs no minimum core count: a
warm cache saves the same generation/homogenization/build work on any
machine.  A final zero-copy check confirms warm loads really are
views over the cached ``.npy`` memmaps, not private copies.
"""

import time

import numpy as np
import pytest
from conftest import BENCH_ROOTS, BENCH_SCALE, write_artifact

from repro.cache import ArtifactCache
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment

SPEEDUP_FLOOR = 2.0

#: Load-dominated slice of the bench workload: the cache accelerates
#: dataset prep and graph builds, so the gate scenario keeps kernel
#: time (which caching must NOT touch) from drowning the signal.
GATE_ROOTS = max(2, BENCH_ROOTS // 2)
GATE_ALGOS = ("bfs", "sssp")


def _memmap_backed(a) -> bool:
    while a is not None:
        if isinstance(a, np.memmap):
            return True
        a = getattr(a, "base", None)
    return False


def test_cache_gate(benchmark, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("bench-cache-store")
    params = dict(scale=BENCH_SCALE, n_roots=GATE_ROOTS,
                  algorithms=GATE_ALGOS)

    def run(out, **kw):
        cfg = ExperimentConfig(output_dir=out, **params, **kw)
        t0 = time.perf_counter()
        Experiment(cfg).run_all()
        return time.perf_counter() - t0

    nocache_out = tmp_path_factory.mktemp("bench-cache-none")
    cold_out = tmp_path_factory.mktemp("bench-cache-cold")
    warm_out = tmp_path_factory.mktemp("bench-cache-warm")

    run(nocache_out)
    cold_s = run(cold_out, cache_dir=cache_dir)

    t0 = time.perf_counter()
    benchmark.pedantic(run, args=(warm_out,),
                       kwargs=dict(cache_dir=cache_dir),
                       rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    nocache_csv = (nocache_out / "results.csv").read_bytes()
    assert (cold_out / "results.csv").read_bytes() == nocache_csv, \
        "cold cached run changed results.csv -- cache is not transparent"
    assert (warm_out / "results.csv").read_bytes() == nocache_csv, \
        "warm cached run changed results.csv -- cache is not transparent"

    # Zero-copy: a warm load's arrays are views over the cached memmaps.
    from repro.datasets.homogenize import homogenize
    from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
    from repro.systems import create_system

    cache = ArtifactCache(cache_dir)
    ds = homogenize(
        generate_kronecker(KroneckerSpec(scale=BENCH_SCALE), cache=cache),
        tmp_path_factory.mktemp("bench-cache-ds"), cache=cache,
        n_roots=GATE_ROOTS)
    create_system("gap").load(ds, cache=cache)  # ensure the entry exists
    warm_sys = create_system("gap")
    arrays, _ = warm_sys._pack_data(warm_sys.load(ds, cache=cache).data)
    assert arrays and all(_memmap_backed(a) for a in arrays.values()), \
        "warm GAP load is not memmap-backed -- workers would copy"
    assert cache.stats["hits"] >= 1, \
        "zero-copy check never hit the bench store"

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    write_artifact(
        "cache_gate.txt",
        f"cold_s: {cold_s:.2f}\n"
        f"warm_s: {warm_s:.2f}\n"
        f"speedup: {speedup:.2f}x\n"
        f"cache_bytes: {cache.total_bytes()}\n"
        f"byte_identical: true\n"
        f"zero_copy: true")
    print(f"\ncold {cold_s:.2f}s  warm {warm_s:.2f}s  "
          f"speedup {speedup:.2f}x")

    assert speedup >= SPEEDUP_FLOOR, \
        f"warm speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x floor"
