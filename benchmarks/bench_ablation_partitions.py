"""Ablation: PowerGraph vertex-cut partition count.

Design choice under test: the vertex-cut's replication factor grows
with the number of partitions, trading parallelism against mirror
synchronization -- the mechanism behind both PowerGraph's fixed
overhead (Figs 3-4) and its dense-graph tolerance (Sec. IV-C).
Sweeps the partition count and reports replication factor, mirrors,
and the simulated SSSP time.
"""

from conftest import write_artifact

from repro.core.report import format_table
from repro.systems import create_system

PARTITIONS = (2, 4, 8, 16, 32, 64)


def test_ablation_partitions(benchmark, kron_dataset_bench):
    def sweep():
        rows = {}
        for k in PARTITIONS:
            system = create_system("powergraph", n_threads=32,
                                   n_partitions=k)
            loaded = system.load(kron_dataset_bench)
            res = system.run(loaded, "sssp",
                             root=int(kron_dataset_bench.roots[0]))
            cut = loaded.data.cut
            rows[k] = (cut.replication_factor, cut.mirrors(), res.time_s)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        f"Vertex-cut ablation, {kron_dataset_bench.name} (SSSP, 32 "
        "threads)",
        ["replication", "mirrors", "time (s)"],
        {f"{k} partitions": [f"{r:.2f}", f"{m}", f"{t:.4g}"]
         for k, (r, m, t) in rows.items()})
    write_artifact("ablation_partitions.txt", table)
    print("\n" + table)

    reps = [rows[k][0] for k in PARTITIONS]
    # Replication factor grows monotonically with partition count ...
    assert all(b >= a for a, b in zip(reps, reps[1:]))
    # ... bounded by the partition count and by average degree.
    for k, (r, _, _) in rows.items():
        assert 1.0 <= r <= k
    # More partitions -> more mirror-sync work per superstep.
    assert rows[64][2] > rows[2][2]
