"""Dashboard gate: watching a run must be (nearly) free, and free of
side effects.

The dashboard's claim is that it is safe to leave attached to
production runs.  This gate quantifies both halves of that claim in
the deployed shape -- ``epg dash`` is its own process, so the watched
leg spawns the real CLI server plus a client subprocess hammering the
span/metric/timeline routes far faster than a browser's 2s refresh
would, while the traced smoke experiment runs in the bench process.
The watched median must stay within 5% wall-clock of the unwatched
one, and the watched run's results table must come out byte-identical
to an unwatched run's, because a read-only console that perturbs its
subject is lying about being read-only.
"""

import json
import shutil
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from conftest import write_artifact

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.observability import Tracer

REPO = Path(__file__).resolve().parents[1]

SMOKE_SCALE = 13
SMOKE_ROOTS = 4
ROUNDS = 3
MAX_OVERHEAD = 0.05
#: 4x a browser's 2s auto-refresh; the workload must be long enough
#: (seconds) for several full page-set polls to land mid-run.
POLL_PERIOD_S = 0.5

#: The browser stand-in: stdlib-only, so it needs no PYTHONPATH.
_CLIENT = r"""
import sys, time, urllib.request
base, run_id, out = sys.argv[1], sys.argv[2], sys.argv[3]
routes = ["/api/run/%s/spans" % run_id,
          "/api/run/%s/metrics" % run_id,
          "/run/%s/timeline.svg" % run_id]
polls = 0
while True:
    for route in routes:
        try:
            with urllib.request.urlopen(base + route, timeout=5) as r:
                r.read()
        except OSError:
            pass
        polls += 1
    with open(out, "w") as fh:
        fh.write(str(polls))
    time.sleep(float(sys.argv[4]))
"""


def _run_once(out_dir):
    cfg = ExperimentConfig(
        output_dir=out_dir, dataset="kronecker", scale=SMOKE_SCALE,
        n_roots=SMOKE_ROOTS, algorithms=("bfs", "sssp", "pagerank"))
    exp = Experiment(cfg, tracer=Tracer(out_dir / "trace"))
    t0 = time.perf_counter()
    exp.run_all()
    elapsed = time.perf_counter() - t0
    exp.tracer.close()
    return elapsed


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _wait_healthy(base: str, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(base + "/healthz",
                                        timeout=2) as resp:
                if json.loads(resp.read()).get("ok"):
                    return
        except OSError:
            time.sleep(0.05)
    raise AssertionError("dashboard subprocess never became healthy")


def _run_watched(out_dir, scratch):
    scratch.mkdir(parents=True, exist_ok=True)
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(PATH="/usr/bin:/bin",
               PYTHONPATH=str(REPO / "src"))
    dash = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "dash",
         str(out_dir.parent), "--port", str(port)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    count_file = scratch / "polls.txt"
    client = None
    try:
        _wait_healthy(base)
        client = subprocess.Popen(
            [sys.executable, "-c", _CLIENT, base, out_dir.name,
             str(count_file), str(POLL_PERIOD_S)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        elapsed = _run_once(out_dir)
    finally:
        if client is not None:
            client.kill()
            client.wait(10.0)
        dash.terminate()
        dash.wait(10.0)
    polls = 0
    if count_file.exists():
        polls = int(count_file.read_text() or 0)
    return elapsed, polls


def test_dashboard_overhead_under_five_percent(tmp_path_factory):
    base = tmp_path_factory.mktemp("bench-dashboard")
    plain_times, watched_times = [], []
    total_polls = 0
    plain_csv = watched_csv = None
    for i in range(ROUNDS):
        plain_dir = base / f"plain-root{i}" / "run"
        plain_times.append(_run_once(plain_dir))
        plain_csv = (plain_dir / "results.csv").read_bytes()
        shutil.rmtree(plain_dir.parent)

        watched_dir = base / f"watched-root{i}" / "run"
        watched_dir.mkdir(parents=True)
        elapsed, polls = _run_watched(watched_dir,
                                      base / f"scratch{i}")
        watched_times.append(elapsed)
        total_polls += polls
        watched_csv = (watched_dir / "results.csv").read_bytes()
        if i < ROUNDS - 1:
            shutil.rmtree(watched_dir.parent)

    assert watched_csv == plain_csv, (
        "attaching a dashboard changed the results table -- the "
        "read-only contract is broken")

    plain = min(plain_times)
    watched = min(watched_times)
    overhead = watched / plain - 1.0

    write_artifact(
        "dashboard_gate.txt",
        f"scale: {SMOKE_SCALE}, roots: {SMOKE_ROOTS}, "
        f"rounds: {ROUNDS}, poll period: {POLL_PERIOD_S}s\n"
        f"unwatched best: {plain:.3f}s  (all: "
        + ", ".join(f"{t:.3f}" for t in plain_times) + ")\n"
        f"watched best:   {watched:.3f}s  (all: "
        + ", ".join(f"{t:.3f}" for t in watched_times) + ")\n"
        f"dashboard polls answered: {total_polls}\n"
        f"overhead: {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})")
    print(f"\ndashboard overhead: {overhead:+.2%} over {plain:.3f}s "
          f"({total_polls} polls)")
    assert total_polls > 0, "the poller never exercised the dashboard"
    assert overhead < MAX_OVERHEAD, (
        f"dashboard overhead {overhead:+.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget ({plain:.3f}s -> {watched:.3f}s)")
