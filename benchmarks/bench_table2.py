"""Table II: Graphalytics on the Kronecker graph used everywhere else.

Paper artifact (scale 22, 32 threads, seconds):

==========================  ========  ========  ==========
algorithm                   GraphMat  GraphBIG  PowerGraph
==========================  ========  ========  ==========
Community Detection (CDLP)      45.8       7.4        55.6
PageRank                         8.9       4.7        46.4
Local Clustering Coeff.          401    1802.7       299.8
Weakly Conn. Comp.               7.4       2.4        40.5
BFS                             10.3       1.8          43
==========================  ========  ========  ==========

No SSSP row: "Graphalytics by default does not perform SSSP on
unweighted, undirected graphs" -- the synthetic graph is treated as
unweighted by Graphalytics even though EPG* generated weights for it,
so the harness is driven without the weighted variant here.
"""

from conftest import write_artifact

from repro.graphalytics import GraphalyticsHarness, render_table

#: Table II's algorithm rows (no SSSP).
ALGORITHMS = ("cdlp", "pagerank", "lcc", "wcc", "bfs")


def _run(dataset):
    h = GraphalyticsHarness(n_threads=32, seed=7)
    return h.run_matrix(dataset, algorithms=ALGORITHMS)


def test_table2(benchmark, kron_dataset_bench):
    results = benchmark.pedantic(_run, args=(kron_dataset_bench,),
                                 rounds=1, iterations=1)
    table = render_table(
        results,
        title="Table II (reduced scale): Graphalytics on the Kronecker "
              "graph, 32 threads")
    write_artifact("table2.txt", table)
    print("\n" + table)

    by_cell = {(r.platform, r.algorithm): r.reported_s for r in results}
    # LCC is every platform's most expensive kernel (dominant column).
    for p in ("graphbig", "powergraph", "graphmat"):
        algo_only = {a: by_cell[(p, a)] for a in ALGORITHMS}
        assert algo_only["lcc"] == max(algo_only.values()), p
    # GraphBIG does the most *work* per LCC (1802.7 s at paper scale).
    # At bench scale PowerGraph's 0.9 s engine startup hides inside its
    # kernel makespan, so compare above-startup work.
    from repro.systems import calibration

    algo_cell = {
        (r.platform, r.algorithm):
            r.breakdown["algorithm"]
            - calibration.cost_params(r.platform, "lcc").startup_s
        for r in results if r.algorithm == "lcc"}
    assert algo_cell[("graphbig", "lcc")] == max(algo_cell.values())
    # GraphMat's cells include its load, so its cheap kernels exceed
    # GraphBIG's (the flaw, again).
    assert by_cell[("graphmat", "bfs")] > by_cell[("graphbig", "bfs")]
