"""Streaming gate: bit-identity always, >=2x repair-vs-recompute.

The differential contract of the incremental kernels
(``docs/streaming.md``), enforced at Kronecker scale ``STREAM_SCALE``
over small mutation batches:

* **Bit-identity.**  After every batch, the repaired BFS parent+level
  and SSSP distance arrays must equal the from-scratch references byte
  for byte (their outputs are mathematically unique; see
  ``repro.algorithms.incremental``).  Warm PageRank must stay within
  the contraction bound of the cold result and never need more sweeps.
* **Speedup.**  Aggregated over the stream, repairing BFS and SSSP
  must beat recomputing by at least ``SPEEDUP_FLOOR``x.  Small batches
  touch small affected regions, so repair is sublinear where recompute
  pays the whole graph every time -- the entire point of the mutation
  log.  PageRank's warm/cold ratio is *recorded* but not gated: the
  warm start saves sweeps, not per-sweep cost, and the saving is
  modest (~1.2-1.6x).

Artifacts: ``bench_results/stream_gate.txt`` (human-readable) and
``bench_results/BENCH_stream.json`` (machine-readable, consumed by the
CI ``stream-smoke`` job).
"""

from __future__ import annotations

import json
import time

import numpy as np
from conftest import write_artifact

from repro.algorithms.bfs import bfs_parents
from repro.algorithms.incremental import (
    IncrementalBFS,
    IncrementalSSSP,
    pagerank_l1_bound,
    pagerank_warm,
)
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp_dijkstra
from repro.streaming import StreamSpec, build_scenario

SPEEDUP_FLOOR = 2.0
#: The ISSUE floor applies at Kronecker scale 14.
STREAM_SCALE = 14
#: Small batches: the regime where repair must win decisively.
N_BATCHES = 6
BATCH_EDGES = 48
#: Best-of-k timing on both sides, against scheduler noise.
TIMING_REPS = 3


def _best_of(fn, *args):
    times = []
    fn(*args)  # warmup (also builds memoized transpose/scratch)
    for _ in range(TIMING_REPS):
        t0 = time.perf_counter()
        fn(*args)
        times.append(time.perf_counter() - t0)
    return min(times)


def test_stream_gate():
    from repro.graph.dynamic import DynamicGraph

    spec = StreamSpec(scale=STREAM_SCALE, n_batches=N_BATCHES,
                      batch_edges=BATCH_EDGES, weighted=True)
    scenario = build_scenario(spec)
    graph = DynamicGraph(scenario.n_vertices, weighted=True)
    graph.apply(scenario.base)
    snap = graph.snapshot()
    root = scenario.root

    bfs = IncrementalBFS(snap, root)
    sssp = IncrementalSSSP(snap, root)
    pr_rank, _ = pagerank(snap)

    per_batch = []
    t_bfs_inc = t_bfs_ref = 0.0
    t_sssp_inc = t_sssp_ref = 0.0
    t_pr_warm = t_pr_cold = 0.0
    warm_sweeps_total = cold_sweeps_total = 0

    for i, batch in enumerate(scenario.batches):
        applied = graph.apply(batch)
        snap = graph.snapshot()

        # -- BFS: time repair (state restored per rep), then recompute.
        saved = (bfs.parent.copy(), bfs.level.copy())

        def bfs_repair():
            bfs.parent = saved[0].copy()
            bfs.level = saved[1].copy()
            bfs.update(snap, applied)

        bi = _best_of(bfs_repair)
        br = _best_of(bfs_parents, snap, root)
        p_ref, l_ref = bfs_parents(snap, root)
        assert bfs.parent.tobytes() == p_ref.tobytes(), \
            f"batch[{i}]: BFS parents diverged"
        assert bfs.level.tobytes() == l_ref.tobytes(), \
            f"batch[{i}]: BFS levels diverged"

        # -- SSSP: same discipline.
        saved_s = (sssp.dist.copy(), sssp.parent.copy())

        def sssp_repair():
            sssp.dist = saved_s[0].copy()
            sssp.parent = saved_s[1].copy()
            sssp.update(snap, applied)

        si = _best_of(sssp_repair)
        sr = _best_of(sssp_dijkstra, snap, root)
        d_ref = sssp_dijkstra(snap, root)
        assert sssp.dist.tobytes() == d_ref.tobytes(), \
            f"batch[{i}]: SSSP distances diverged"

        # -- PageRank: warm start from the pre-batch vector.
        prev = pr_rank
        pw = _best_of(pagerank_warm, snap, prev)
        pc = _best_of(pagerank, snap)
        pr_rank, warm_sweeps = pagerank_warm(snap, prev)
        cold_rank, cold_sweeps = pagerank(snap)
        l1 = float(np.abs(pr_rank - cold_rank).sum())
        assert l1 <= pagerank_l1_bound(), \
            f"batch[{i}]: warm PageRank {l1:.3e} beyond the bound"
        assert warm_sweeps <= cold_sweeps, \
            f"batch[{i}]: warm start needed more sweeps than cold"

        t_bfs_inc += bi
        t_bfs_ref += br
        t_sssp_inc += si
        t_sssp_ref += sr
        t_pr_warm += pw
        t_pr_cold += pc
        warm_sweeps_total += warm_sweeps
        cold_sweeps_total += cold_sweeps
        per_batch.append({
            "batch": i, "n_new": applied.n_new,
            "n_deleted": applied.n_deleted,
            "bfs_repair_s": bi, "bfs_recompute_s": br,
            "sssp_repair_s": si, "sssp_recompute_s": sr,
            "pr_warm_s": pw, "pr_cold_s": pc,
            "pr_warm_sweeps": warm_sweeps,
            "pr_cold_sweeps": cold_sweeps,
        })

    bfs_speedup = t_bfs_ref / t_bfs_inc
    sssp_speedup = t_sssp_ref / t_sssp_inc
    pr_speedup = t_pr_cold / t_pr_warm

    lines = [
        f"stream gate: kron-scale{STREAM_SCALE}, {N_BATCHES} batches "
        f"x {BATCH_EDGES} edges (weighted, root {root})",
        f"bit-identity: BFS + SSSP exact on every batch; PageRank "
        f"within {pagerank_l1_bound():.2e} (L1)",
        "",
        f"{'kernel':<10}{'repair (s)':>12}{'recompute (s)':>15}"
        f"{'speedup':>9}",
        "-" * 46,
        f"{'bfs':<10}{t_bfs_inc:>12.5f}{t_bfs_ref:>15.5f}"
        f"{bfs_speedup:>8.1f}x",
        f"{'sssp':<10}{t_sssp_inc:>12.5f}{t_sssp_ref:>15.5f}"
        f"{sssp_speedup:>8.1f}x",
        f"{'pagerank':<10}{t_pr_warm:>12.5f}{t_pr_cold:>15.5f}"
        f"{pr_speedup:>8.1f}x  (recorded; sweeps "
        f"{warm_sweeps_total} vs {cold_sweeps_total})",
        "",
        f"floor: >= {SPEEDUP_FLOOR}x on bfs and sssp",
    ]
    write_artifact("stream_gate.txt", "\n".join(lines))
    write_artifact("BENCH_stream.json", json.dumps({
        "scale": STREAM_SCALE, "n_batches": N_BATCHES,
        "batch_edges": BATCH_EDGES, "root": root,
        "speedup_floor": SPEEDUP_FLOOR,
        "bfs_speedup": bfs_speedup,
        "sssp_speedup": sssp_speedup,
        "pagerank_speedup": pr_speedup,
        "pagerank_warm_sweeps": warm_sweeps_total,
        "pagerank_cold_sweeps": cold_sweeps_total,
        "per_batch": per_batch,
    }, indent=2, sort_keys=True))

    assert bfs_speedup >= SPEEDUP_FLOOR, \
        f"BFS repair only {bfs_speedup:.2f}x over recompute"
    assert sssp_speedup >= SPEEDUP_FLOOR, \
        f"SSSP repair only {sssp_speedup:.2f}x over recompute"
