"""Fig 7: the Graphalytics HTML report (one page per platform).

Paper artifact: a screenshot of Graphalytics' GraphBIG HTML page over
real-world and synthetic datasets -- shown to contrast its single-trial
HTML output with EPG*'s distribution-bearing CSV/plots.
"""

from conftest import RESULTS_DIR, write_artifact

from repro.graphalytics import (
    GraphalyticsHarness,
    render_html_report,
    render_table,
)


def test_fig7_html_report(benchmark, dota_dataset_bench,
                          kron_dataset_bench):
    h = GraphalyticsHarness(n_threads=32, seed=7)

    def run_and_render():
        results = (h.run_matrix(dota_dataset_bench,
                                platforms=("graphbig",))
                   + h.run_matrix(kron_dataset_bench,
                                  platforms=("graphbig",)))
        paths = render_html_report(results, RESULTS_DIR / "fig7-html")
        return results, paths

    results, paths = benchmark.pedantic(run_and_render, rounds=1,
                                        iterations=1)
    write_artifact("fig7.txt", render_table(
        results, title="Fig 7 content: Graphalytics on GraphBIG, "
                       "real-world + synthetic, 32 threads"))

    assert len(paths) == 1
    body = paths[0].read_text()
    assert "GraphBIG" in body
    assert "dota-league" in body and "kron-scale12" in body
    # Single-trial output: no distribution information whatsoever.
    assert "std" not in body.lower()
