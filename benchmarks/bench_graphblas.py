"""Kernel-level profiling of the GraphBLAS building blocks (Sec. V).

Not a paper table -- the paper's future-work direction, quantified:
per-primitive cost tables for the three algorithms expressed in
GraphBLAS kernels, and the masked-vs-unmasked BFS work gap that
motivates masks in the standard.
"""

import numpy as np
from conftest import write_artifact

from repro.graph.csr import CSRGraph
from repro.graphblas import (
    LOR_LAND,
    GrbMatrix,
    KernelProfiler,
    grb_bfs,
    grb_pagerank,
    grb_sssp,
)


def test_graphblas_kernel_profile(benchmark, kron_dataset_bench):
    edges = kron_dataset_bench.load_edges()
    csr = CSRGraph.from_edge_list(edges, symmetrize=True)
    root = int(kron_dataset_bench.roots[0])

    def run_all():
        prof = KernelProfiler()
        pattern = GrbMatrix(csr, values=np.ones(csr.n_edges),
                            profiler=prof)
        weighted = GrbMatrix(csr, profiler=prof)
        grb_bfs(pattern, root)
        grb_sssp(weighted, root)
        grb_pagerank(pattern)
        return prof

    prof = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Masked vs unmasked BFS work.
    masked_prof = KernelProfiler()
    m1 = GrbMatrix(csr, values=np.ones(csr.n_edges),
                   profiler=masked_prof)
    level = grb_bfs(m1, root)
    depth = int(level.max())

    unmasked_prof = KernelProfiler()
    m2 = GrbMatrix(csr, values=np.ones(csr.n_edges),
                   profiler=unmasked_prof)
    frontier = np.zeros(csr.n_vertices)
    frontier[root] = 1.0
    for _ in range(depth):
        frontier = (m2.vxm(LOR_LAND, frontier) > 0).astype(float)

    artifact = (
        "GraphBLAS per-primitive profile (BFS + SSSP + PageRank, "
        f"{kron_dataset_bench.name}):\n" + prof.report()
        + "\n\nmasked BFS entries:   "
        + f"{masked_prof.total_entries:.0f}"
        + "\nunmasked BFS entries: "
        + f"{unmasked_prof.total_entries:.0f}"
        + "\n(the work-efficiency argument for masks in the standard)")
    write_artifact("graphblas_profile.txt", artifact)
    print("\n" + artifact)

    assert masked_prof.total_entries < unmasked_prof.total_entries
    assert any(k.startswith("mxv<min_plus>") for k in prof.stats)
