"""Fig 2: BFS time and data-structure construction box plots.

Paper artifact (scale 22, 32 threads, log y-axis): BFS times span
0.01-2 s with GAP ~0.016, Graph500 ~0.019, GraphBIG ~1.6, GraphMat
~1.42; construction spans 1.0-3.5 s for GAP / Graph500 / GraphMat,
with the Graph500 constructing once and GraphBIG omitted (fused load).
"""

from conftest import write_artifact

from repro.core.report import figure_series


def test_fig2(benchmark, kron_experiment):
    _, analysis = kron_experiment
    out = benchmark.pedantic(figure_series, args=(analysis, "fig2"),
                             rounds=1, iterations=1)
    write_artifact("fig2.txt", out)
    print("\n" + out)

    box = analysis.box("time")
    times = {k[0]: v.median for k, v in box.items() if k[1] == "bfs"}
    # Orderings of the left panel.
    assert times["gap"] == min(times.values())
    assert times["graphbig"] > 10 * times["gap"]
    assert "powergraph" not in times          # no BFS

    builds = analysis.construction_box("bfs")
    # Right panel: only the separable-construction systems appear.
    assert set(k[0] for k in builds) == {"gap", "graph500", "graphmat"}
    assert builds[("graph500", "bfs")].n == 1  # constructs once
    # GAP's construction is the fastest of the three (paper ratio ~2.6x).
    assert builds[("gap", "bfs")].median == min(
        b.median for b in builds.values())
