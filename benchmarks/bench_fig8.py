"""Fig 8: real-world dataset comparison (EPG* averages).

Paper artifact: mean runtimes per {BFS, PageRank, SSSP} x {dota,
Patents} x {GAP, GraphBIG, GraphMat, PowerGraph}; the BFS panel has no
PowerGraph bar (no BFS implementation); PowerGraph's vertex cut likes
the dense dota-league for SSSP; GraphBIG is the slowest PageRank but
strong at dota BFS; GraphMat does well across dota-league.
"""

from conftest import write_artifact

from repro.core.report import figure_series


def test_fig8(benchmark, realworld_experiments):
    dota_exp, dota = realworld_experiments["dota-league"]
    pat_exp, pat = realworld_experiments["cit-patents"]

    def render():
        from repro.core.analysis import Analysis

        merged = Analysis(dota.records + pat.records,
                          machine=dota.machine)
        return merged, figure_series(merged, "fig8")

    merged, out = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("fig8.txt", out)
    print("\n" + out)

    # No PowerGraph BFS anywhere.
    assert not any(k[0] == "powergraph" and k[1] == "bfs"
                   for k in merged.box("time"))
    assert "N/A" in out

    # GraphBIG slowest PageRank among the shared-memory frameworks.
    for ds in ("dota-league", "cit-Patents"):
        t = {s: merged.median_time(s, "pagerank", ds)
             for s in ("gap", "graphbig", "graphmat")}
        assert t["graphbig"] == max(t.values()), ds

    # Density amortization: GraphBIG's per-edge BFS cost improves on the
    # denser dota-league (the paper's dota BFS standout, Sec. IV-C).
    m_dota = dota_exp.dataset.n_edges * 2
    m_pat = pat_exp.dataset.n_edges
    per_edge_dota = merged.median_time("graphbig", "bfs",
                                       "dota-league") / m_dota
    per_edge_pat = merged.median_time("graphbig", "bfs",
                                      "cit-Patents") / m_pat
    assert per_edge_dota < per_edge_pat
