"""Fig 5: BFS speedup, scale-23 Kronecker graph, threads 1..72.

Paper artifact: log-log speedup curves for GraphBIG, Graph500,
GraphMat, GAP against the ideal line; GAP most scalable, GraphMat
passing it at 72 threads, Graph500 below 1 at 2 threads, GraphBIG
flattest; only 4 trials per point.

Two outputs: the calibrated projection at the paper's scale 23 (the
figure itself) and a real-kernel sweep at bench scale (where fixed
per-invocation costs -- genuinely -- flatten every curve).
"""

import pytest
from conftest import BENCH_ROOTS, write_artifact

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.projection import PAPER_SCALING_SCALE, projected_scalability
from repro.core.report import format_series

SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")
THREADS = (1, 2, 4, 8, 16, 32, 64, 72)


def _project():
    return {s: projected_scalability(s, thread_counts=THREADS)
            for s in SYSTEMS}


def test_fig5_projection(benchmark):
    tables = benchmark.pedantic(_project, rounds=1, iterations=1)
    out = format_series(
        f"Fig 5: BFS speedup T1/Tn, Kronecker scale "
        f"{PAPER_SCALING_SCALE} (projected)",
        "threads", list(THREADS),
        {s: tables[s].speedup() for s in SYSTEMS})
    write_artifact("fig5.txt", out)
    print("\n" + out)

    sp = {s: dict(zip(THREADS, tables[s].speedup())) for s in SYSTEMS}
    assert sp["graph500"][2] < 1.0            # the dip
    assert sp["gap"][32] == max(v[32] for v in sp.values())
    assert sp["graphmat"][72] > sp["gap"][72]  # crossover at 72
    assert sp["graphbig"][72] == min(v[72] for v in sp.values())


@pytest.fixture(scope="module")
def real_sweep(tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("fig5"),
        dataset="kronecker", scale=12, n_roots=4,
        algorithms=("bfs",), thread_counts=THREADS)
    return Experiment(cfg).run_all()


def test_fig5_real_kernels(benchmark, real_sweep):
    def series():
        return {s: real_sweep.scalability(s, "bfs").speedup()
                for s in SYSTEMS}

    sp = benchmark.pedantic(series, rounds=1, iterations=1)
    out = format_series(
        "Fig 5 (bench-scale real kernels): BFS speedup",
        "threads", list(THREADS), sp)
    write_artifact("fig5_real.txt", out)
    print("\n" + out)
    by = {s: dict(zip(THREADS, v)) for s, v in sp.items()}
    assert by["graph500"][2] < 1.0
    for s in SYSTEMS:
        assert by[s][32] > 1.0
