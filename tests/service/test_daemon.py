"""End-to-end daemon tests over real HTTP.

The in-process tests run :class:`QueryDaemon` on an ephemeral port in a
background thread; the subprocess test exercises the full ``epg serve``
/ ``epg loadgen`` CLI path including SIGKILL crash recovery and the
graceful SIGTERM drain.
"""

import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.resilience.retry import RetryPolicy
from repro.service import LoadGenerator, QueryDaemon, ServeConfig

REPO = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# In-process harness
# ----------------------------------------------------------------------

@contextlib.contextmanager
def running_daemon(data_dir: Path, **overrides):
    overrides.setdefault("batch_window_s", 0.005)
    cfg = ServeConfig(data_dir=data_dir, port=0, **overrides)
    daemon = QueryDaemon(cfg)
    ready = threading.Event()
    rc: list[int] = []
    thread = threading.Thread(
        target=lambda: rc.append(daemon.serve_forever(
            install_signal_handlers=False, ready_event=ready)),
        daemon=True)
    thread.start()
    assert ready.wait(60.0), "daemon never became ready"
    port = daemon._server.server_address[1]
    try:
        yield daemon, f"http://127.0.0.1:{port}"
    finally:
        daemon.request_shutdown()
        thread.join(30.0)
    assert rc == [0]


def http_get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def post_query(base: str, payload, client: str = "test"):
    req = urllib.request.Request(
        base + "/query", data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json",
                 "X-Client": client}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """One materialized kron:6 roster shared by every in-process test
    (each daemon reopens it from ``served.json``)."""
    root = tmp_path_factory.mktemp("serve-data")
    with running_daemon(root, graphs=("kron:6",)):
        pass
    return root


class TestDaemonHTTP:
    def test_health_graphs_and_query_roundtrip(self, data_dir):
        with running_daemon(data_dir) as (daemon, base):
            assert http_get(base + "/healthz")[0] == 200
            assert http_get(base + "/readyz")[0] == 200
            status, body = http_get(base + "/graphs")
            graphs = json.loads(body)["graphs"]
            assert [g["name"] for g in graphs] == ["kron6"]
            assert graphs[0]["n_vertices"] == 64

            status, body = post_query(base, {
                "graph": "kron6", "system": "gap",
                "algorithm": "bfs", "root": 3, "n_threads": 2})
            assert status == 200
            result = body["result"]
            assert result["root"] == 3
            assert result["n_vertices"] == 64
            assert result["reached"] >= 1
            assert body["batched"] is True

            status, metrics = http_get(base + "/metrics")
            assert status == 200
            assert "epg_serve_requests_total" in metrics
            stats = json.loads(http_get(base + "/stats")[1])
            assert stats["ready"] and not stats["draining"]
            # Versioned payload: external consumers (`epg dash`) key
            # on this to reject daemons they cannot interpret.
            from repro.service import STATS_SCHEMA_VERSION
            assert stats["schema_version"] == STATS_SCHEMA_VERSION

    def test_malformed_requests_get_4xx_never_5xx(self, data_dir):
        with running_daemon(data_dir) as (_, base):
            cases = [
                ([1, 2, 3], 400),                                # not an object
                ({"graph": "kron6"}, 400),                       # missing fields
                ({"graph": "nope", "system": "gap",
                  "algorithm": "bfs"}, 404),                     # unknown graph
                ({"graph": "kron6", "system": "gap",
                  "algorithm": "warp"}, 400),                    # unknown algo
                ({"graph": "kron6", "system": "gap",
                  "algorithm": "bfs", "root": 9999}, 400),       # root OOB
                ({"graph": "kron6", "system": "gap",
                  "algorithm": "bfs", "root": "x"}, 400),        # bad type
            ]
            for payload, expected in cases:
                status, body = post_query(base, payload)
                assert status == expected, (payload, status, body)
                assert "error" in body
            assert http_get(base + "/no-such-endpoint")[0] == 404

    def test_metrics_labels_are_bounded(self, data_dir):
        with running_daemon(data_dir) as (daemon, base):
            # Arbitrary 404 paths must not mint new endpoint labels.
            assert http_get(base + "/evil/arbitrary-path")[0] == 404
            # Client errors (400/404) are not load shedding.
            assert post_query(base, {"graph": "kron6"})[0] == 400
            status, metrics = http_get(base + "/metrics")
            assert status == 200
            assert "/evil/arbitrary-path" not in metrics
            assert 'endpoint="other"' in metrics
            assert daemon.telemetry.counter_total(
                "epg_serve_shed_total") == 0.0

    def test_batched_roots_share_one_response_shape(self, data_dir):
        with running_daemon(data_dir, batch_window_s=0.05) as (_, base):
            results: dict[int, tuple] = {}

            def one(root):
                results[root] = post_query(base, {
                    "graph": "kron6", "system": "gap",
                    "algorithm": "bfs", "root": root, "n_threads": 2})

            threads = [threading.Thread(target=one, args=(r,))
                       for r in (1, 2, 3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for root, (status, body) in results.items():
                assert status == 200
                assert body["result"]["root"] == root

    def test_queue_full_sheds_503_with_retry_after(self, data_dir):
        with running_daemon(data_dir, max_queue=0,
                            max_inflight=1) as (daemon, base):
            # Pin the only admission slot, then knock on the door.
            ticket = daemon.admission.try_admit()
            try:
                req = urllib.request.Request(
                    base + "/query",
                    data=json.dumps({
                        "graph": "kron6", "system": "gap",
                        "algorithm": "bfs"}).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST")
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(req, timeout=30)
                exc = exc_info.value
                assert exc.code == 503
                assert json.loads(exc.read().decode())["error"] == \
                    "queue_full"
                assert float(exc.headers["Retry-After"]) > 0
            finally:
                ticket.release()

    def test_per_client_rate_limit_is_429(self, data_dir):
        with running_daemon(data_dir,
                            max_rps_per_client=1.0) as (_, base):
            payload = {"graph": "kron6", "system": "gap",
                       "algorithm": "bfs"}
            assert post_query(base, payload, client="greedy")[0] == 200
            status, body = post_query(base, payload, client="greedy")
            assert status == 429 and body["error"] == "rate_limited"
            # Other clients are unaffected.
            assert post_query(base, payload, client="polite")[0] == 200

    def test_shutdown_executes_drain_body(self, data_dir, tmp_path):
        """Regression: serve_forever sets ``draining`` before calling
        drain(); the drain body (pool stop, telemetry close, manifest
        save) must still run exactly once, not be short-circuited."""
        trace_dir = tmp_path / "trace"
        with running_daemon(data_dir,
                            trace_dir=trace_dir) as (daemon, base):
            assert daemon.telemetry.enabled
            assert post_query(base, {
                "graph": "kron6", "system": "gap",
                "algorithm": "bfs"})[0] == 200
        assert daemon._drained
        assert daemon.pool._stopping
        # telemetry.close() ran: the tracer flushed its event log and
        # disabled itself.
        assert not daemon.telemetry.enabled
        assert (trace_dir / "events.jsonl").exists()
        assert (data_dir / "served.json").exists()

    def test_draining_daemon_sheds_and_fails_readyz(self, data_dir):
        with running_daemon(data_dir) as (daemon, base):
            daemon.draining = True
            status, body = post_query(base, {
                "graph": "kron6", "system": "gap",
                "algorithm": "bfs"})
            assert status == 503 and body["error"] == "draining"
            assert http_get(base + "/readyz")[0] == 503
            daemon.draining = False  # let the fixture drain cleanly


@pytest.mark.faulty
class TestChaos:
    def test_crash_burst_opens_then_recloses_circuit(self, data_dir):
        policy = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.2)
        with running_daemon(
                data_dir, fault_spec="gap/bfs/t2:crash:3",
                breaker_failures=2,
                breaker_policy=policy) as (daemon, base):
            payload = {"graph": "kron6", "system": "gap",
                       "algorithm": "bfs", "n_threads": 2}
            statuses, reasons = [], []
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                status, body = post_query(base, payload)
                statuses.append(status)
                if status != 200:
                    reasons.append(body["error"])
                else:
                    break
                time.sleep(0.05)
            # Faults and circuit-open sheds are well-formed 503s; the
            # burst ends and the half-open probe closes the circuit.
            assert set(statuses) <= {200, 503}
            assert statuses[-1] == 200
            assert reasons.count("fault") >= 2
            assert "circuit_open" in reasons
            snap = daemon.stats()["breakers"]["kron6/gap"]
            assert snap["state"] == "closed"
            assert daemon.telemetry.counter_total(
                "epg_serve_circuit_transitions_total") >= 3.0
            assert daemon.telemetry.counter_total(
                "epg_serve_faults_total") >= 3.0

    def test_hang_fault_quarantines_worker_not_daemon(self, data_dir):
        with running_daemon(
                data_dir, fault_spec="gap/bfs/t3:hang:1",
                workers=2, wedge_timeout_s=0.2,
                request_timeout_s=5.0) as (daemon, base):
            payload = {"graph": "kron6", "system": "gap",
                       "algorithm": "bfs", "n_threads": 3}
            status, body = post_query(base, payload)
            assert status == 503
            assert body["error"] in ("fault", "timeout")
            # The watchdog replaced the wedged worker; the daemon still
            # serves the very next query.
            status, _ = post_query(base, payload)
            assert status == 200
            deadline = time.monotonic() + 3.0
            while daemon.pool.quarantined == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert daemon.pool.quarantined == 1

    def test_corrupt_fault_is_caught_by_validation(self, data_dir):
        with running_daemon(
                data_dir,
                fault_spec="gap/bfs/t5:corrupt:1") as (_, base):
            payload = {"graph": "kron6", "system": "gap",
                       "algorithm": "bfs", "root": 2, "n_threads": 5}
            status, body = post_query(base, payload)
            assert status == 503 and body["error"] == "invalid"
            assert "validation" in body["detail"]
            status, body = post_query(base, payload)
            assert status == 200
            assert body["result"]["root"] == 2

    def test_loadgen_chaos_soak_is_clean(self, data_dir):
        """The acceptance loop in miniature: overload + faults, and
        every response is still well-formed."""
        policy = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.2)
        with running_daemon(
                data_dir, fault_spec="gap/bfs/t2:crash:4",
                max_queue=2, max_inflight=2, workers=2,
                breaker_policy=policy) as (daemon, base):
            gen = LoadGenerator(base, duration_s=2.0, clients=6,
                                mode="closed", seed=11,
                                systems=("gap",),
                                algorithms=("bfs",), n_threads=2)
            report = gen.run()
            assert report.requests > 10
            assert report.dirty_responses == 0
            assert report.count(200) > 0
            assert set(map(int, report.status_counts)) <= \
                {200, 429, 503}
            # Shed volume is bounded by capacity, not unbounded 500s.
            assert report.count(503) + report.count(200) == \
                report.requests


@pytest.mark.slow
class TestServeCLI:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return env

    def _wait_ready(self, port: int, proc, timeout=90.0) -> str:
        base = f"http://127.0.0.1:{port}"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    f"serve exited early: {proc.returncode}")
            try:
                if http_get(base + "/readyz")[0] == 200:
                    return base
            except (urllib.error.URLError, OSError):
                pass
            time.sleep(0.1)
        raise AssertionError("daemon never became ready")

    def _free_port(self) -> int:
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]

    def _serve(self, data_dir: Path, port: int, *extra):
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--data-dir", str(data_dir), "--port", str(port),
             "--workers", "2", *extra],
            env=self._env(), cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def test_sigkill_recovery_then_graceful_sigterm(self, tmp_path):
        data_dir = tmp_path / "serve"
        port = self._free_port()
        proc = self._serve(data_dir, port, "--graphs", "kron:6")
        try:
            base = self._wait_ready(port, proc)
            status, _ = post_query(base, {
                "graph": "kron6", "system": "gap",
                "algorithm": "bfs"})
            assert status == 200
            # Crash hard: no drain, no goodbye.
            proc.kill()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        # Damage the on-disk dataset before the restart.
        victim = next((data_dir / "graphs" / "kron6").rglob("*.el"))
        victim.write_bytes(b"not an edge list")

        proc = self._serve(data_dir, port)  # roster from served.json
        try:
            base = self._wait_ready(port, proc)
            stats = json.loads(http_get(base + "/stats")[1])
            assert stats["recovered_graphs"] == 1
            status, body = post_query(base, {
                "graph": "kron6", "system": "gap",
                "algorithm": "bfs", "root": 1})
            assert status == 200
            assert body["result"]["n_vertices"] == 64

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_loadgen_cli_writes_clean_report(self, tmp_path):
        data_dir = tmp_path / "serve"
        report_path = tmp_path / "load.json"
        port = self._free_port()
        proc = self._serve(data_dir, port, "--graphs", "kron:6",
                           "--fault-spec", "gap/bfs/t2:crash:2")
        try:
            self._wait_ready(port, proc)
            out = subprocess.run(
                [sys.executable, "-m", "repro.cli", "loadgen",
                 "--url", f"http://127.0.0.1:{port}",
                 "--duration", "2", "--clients", "4",
                 "--systems", "gap", "--algorithms", "bfs",
                 "--threads", "2",
                 "--report", str(report_path)],
                env=self._env(), cwd=REPO, capture_output=True,
                text=True, timeout=120)
            assert out.returncode == 0, out.stderr
            report = json.loads(report_path.read_text())
            assert report["dirty_responses"] == 0
            assert report["requests"] > 0
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
