"""Admission control and per-client rate limiting."""

import pytest

from repro.service.admission import AdmissionController, RateLimiter


class TestAdmission:
    def test_admits_until_capacity_then_sheds(self):
        ctrl = AdmissionController(max_queue=2, max_inflight=1)
        tickets = [ctrl.try_admit() for _ in range(3)]
        assert all(t is not None for t in tickets)
        assert ctrl.try_admit() is None
        assert ctrl.stats()["shed"] == 1

    def test_release_frees_capacity(self):
        ctrl = AdmissionController(max_queue=0, max_inflight=1)
        ticket = ctrl.try_admit()
        assert ctrl.try_admit() is None
        ticket.release()
        assert ctrl.try_admit() is not None

    def test_queue_to_inflight_transition(self):
        ctrl = AdmissionController(max_queue=4, max_inflight=2)
        ticket = ctrl.try_admit()
        assert ctrl.stats()["queued"] == 1
        ticket.start()
        stats = ctrl.stats()
        assert stats["queued"] == 0 and stats["inflight"] == 1
        ticket.release()
        assert ctrl.idle()

    def test_release_is_idempotent(self):
        ctrl = AdmissionController(max_queue=1, max_inflight=1)
        ticket = ctrl.try_admit()
        ticket.start()
        ticket.release()
        ticket.release()
        ticket.start()  # after release: a no-op, not a resurrection
        assert ctrl.idle()

    @pytest.mark.parametrize("queue,inflight", [(-1, 1), (0, 0)])
    def test_rejects_bad_bounds(self, queue, inflight):
        with pytest.raises(ValueError):
            AdmissionController(queue, inflight)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestRateLimiter:
    def test_unlimited_when_disabled(self):
        rl = RateLimiter(None)
        assert all(rl.allow("c") for _ in range(1000))

    def test_burst_then_throttle(self):
        clock = FakeClock()
        rl = RateLimiter(2.0, clock=clock)
        assert rl.allow("a")
        assert rl.allow("a")
        assert not rl.allow("a")       # bucket empty
        clock.t += 0.5                  # refills one token at 2 rps
        assert rl.allow("a")
        assert not rl.allow("a")

    def test_clients_are_independent(self):
        clock = FakeClock()
        rl = RateLimiter(1.0, clock=clock)
        assert rl.allow("a")
        assert not rl.allow("a")
        assert rl.allow("b")

    def test_client_table_is_bounded(self):
        clock = FakeClock()
        rl = RateLimiter(1.0, max_clients=2, clock=clock)
        for i in range(10):
            clock.t += 0.001
            rl.allow(f"client-{i}")
        assert len(rl._buckets) <= 2

    def test_retry_after_hint(self):
        assert RateLimiter(4.0).retry_after_s() == pytest.approx(0.25)
        assert RateLimiter(None).retry_after_s() == 0.0
