"""Circuit breaker state machine under a fake clock."""

import pytest

from repro.resilience.retry import RetryPolicy
from repro.service.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_breaker(clock, threshold=3, seed=7):
    return CircuitBreaker(("kron8", "gap"), failure_threshold=threshold,
                          policy=RetryPolicy(), seed=seed, clock=clock)


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        b = make_breaker(FakeClock())
        assert b.allow() == (True, 0.0)
        assert b.snapshot()["state"] == "closed"

    def test_opens_after_threshold_consecutive_failures(self):
        b = make_breaker(FakeClock(), threshold=3)
        for _ in range(2):
            b.on_failure()
        assert b.snapshot()["state"] == "closed"
        b.on_failure()
        assert b.snapshot()["state"] == "open"
        ok, retry_after = b.allow()
        assert not ok and retry_after > 0

    def test_success_resets_failure_streak(self):
        b = make_breaker(FakeClock(), threshold=2)
        b.on_failure()
        b.on_success()
        b.on_failure()
        assert b.snapshot()["state"] == "closed"

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        b = make_breaker(clock, threshold=1)
        b.on_failure()
        _, retry_after = b.allow()
        clock.advance(retry_after + 0.001)
        ok, _ = b.allow()
        assert ok                       # the probe
        assert b.snapshot()["state"] == "half_open"
        ok2, _ = b.allow()
        assert not ok2                  # probe already in flight
        b.on_success()
        assert b.snapshot()["state"] == "closed"
        assert b.snapshot()["times_opened"] == 0

    def test_failed_probe_reopens_with_longer_cooldown(self):
        clock = FakeClock()
        b = make_breaker(clock, threshold=1)
        b.on_failure()
        _, first_cooldown = b.allow()
        clock.advance(first_cooldown + 0.001)
        assert b.allow()[0]
        b.on_failure()                  # probe fails
        snap = b.snapshot()
        assert snap["state"] == "open"
        assert snap["times_opened"] == 2
        _, second_cooldown = b.allow()
        assert second_cooldown > first_cooldown

    def test_cooldown_is_deterministic_for_seed(self):
        a = make_breaker(FakeClock(), threshold=1, seed=13)
        b = make_breaker(FakeClock(), threshold=1, seed=13)
        a.on_failure()
        b.on_failure()
        assert a.allow()[1] == b.allow()[1]

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), threshold=0)
