"""Worker pool, batching, manifest, and resident-graph manager."""

import contextlib
import threading
import time

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.batching import (BatchingExecutor, Job, _corrupt_output,
                                    summarize, validate_output)
from repro.service.graphs import GraphSpec, ResidentGraphManager
from repro.service.manifest import (MANIFEST_NAME, ServedGraph,
                                    ServedManifest)
from repro.service.workers import Promise, WorkerPool


class TestPromise:
    def test_first_writer_wins(self):
        p = Promise()
        assert p.fulfill(42)
        assert not p.fail("fault", "too late")
        assert p.wait(0) == ("ok", 42)

    def test_fail_then_fulfill_keeps_error(self):
        p = Promise()
        assert p.fail("timeout", "deadline")
        assert not p.fulfill(1)
        assert p.wait(0) == ("error", ("timeout", "deadline"))

    def test_wait_times_out_to_none(self):
        assert Promise().wait(0.01) is None


class _Quick:
    def __init__(self):
        self.ran = threading.Event()

    def run(self, ctx):
        self.ran.set()

    def abandon(self, reason):
        pass


class _Wedged:
    """Cooperatively hangs until the watchdog abandons it."""

    def __init__(self):
        self.abandon_reason = None

    def run(self, ctx):
        ctx.abandoned.wait(5.0)

    def abandon(self, reason):
        self.abandon_reason = reason


class TestWorkerPool:
    def test_runs_submitted_tasks(self):
        pool = WorkerPool(2, wedge_timeout_s=5.0)
        pool.start()
        try:
            tasks = [_Quick() for _ in range(4)]
            for t in tasks:
                pool.submit(t)
            for t in tasks:
                assert t.ran.wait(2.0)
        finally:
            pool.stop()

    def test_watchdog_quarantines_and_replaces(self):
        pool = WorkerPool(1, wedge_timeout_s=0.08)
        pool.start()
        try:
            wedged = _Wedged()
            pool.submit(wedged)
            deadline = time.monotonic() + 3.0
            while wedged.abandon_reason is None \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert wedged.abandon_reason == "worker wedged"
            assert pool.quarantined == 1
            # The replacement worker keeps the pool serviceable.
            after = _Quick()
            pool.submit(after)
            assert after.ran.wait(2.0)
        finally:
            pool.stop()

    def test_task_exception_does_not_kill_worker(self):
        class Boom:
            def __init__(self):
                self.abandoned = None

            def run(self, ctx):
                raise RuntimeError("kernel exploded")

            def abandon(self, reason):
                self.abandoned = reason

        pool = WorkerPool(1, wedge_timeout_s=5.0)
        pool.start()
        try:
            boom = Boom()
            pool.submit(boom)
            after = _Quick()
            pool.submit(after)
            assert after.ran.wait(2.0)
            assert boom.abandoned == "internal error"
        finally:
            pool.stop()


# ----------------------------------------------------------------------
# Batching against a fake system: verifies coalescing without kernels.
# ----------------------------------------------------------------------

class _FakeResult:
    def __init__(self, algorithm, root, n):
        self.system = "fake"
        self.algorithm = algorithm
        self.time_s = 0.001
        self.root = root
        self.iterations = 2
        parent = np.arange(n, dtype=np.int64)
        self.output = {"parent": parent} if algorithm == "bfs" else {
            "labels": np.zeros(n, dtype=np.int64)}
        self.counters = {}


class _FakeLoaded:
    n_vertices = 16


class _FakeSystem:
    def __init__(self, calls):
        self.calls = calls

    def run_many(self, loaded, algorithm, roots=(), **params):
        self.calls.append(tuple(roots))
        if not roots:
            return [_FakeResult(algorithm, None, loaded.n_vertices)]
        return [_FakeResult(algorithm, r, loaded.n_vertices)
                for r in roots]


class _FakeManager:
    def __init__(self):
        self.calls = []

    @contextlib.contextmanager
    def lease(self, graph, system, n_threads):
        yield _FakeSystem(self.calls), _FakeLoaded()


class _InlinePool:
    """Runs each batch synchronously on the submitting thread."""

    def submit(self, task):
        class _Ctx:
            abandoned = threading.Event()
        task.run(_Ctx())


def make_job(root=0, *, algorithm="bfs", fault=None, solo=False):
    return Job(graph="g", system="fake", algorithm=algorithm,
               n_threads=2, root=root, fault=fault, solo=solo)


class TestBatching:
    def test_same_key_jobs_coalesce_into_one_sweep(self):
        mgr = _FakeManager()
        ex = BatchingExecutor(_InlinePool(), mgr, window_s=60.0,
                              max_batch=3)
        jobs = [make_job(root=r) for r in (3, 1, 3)]
        for job in jobs:
            ex.submit(job)          # third submit hits max_batch
        assert mgr.calls == [(3, 1, 3)]
        summaries = [j.promise.wait(0)[1] for j in jobs]
        assert [s["root"] for s in summaries] == [3, 1, 3]

    def test_rootless_batch_fulfills_every_job(self):
        # run_many executes a rootless kernel once; every co-batched
        # job must still get the (aliased) result, not just the first.
        mgr = _FakeManager()
        ex = BatchingExecutor(_InlinePool(), mgr, window_s=60.0,
                              max_batch=3)
        jobs = [make_job(root=None, algorithm="wcc")
                for _ in range(3)]
        for job in jobs:
            ex.submit(job)
        assert mgr.calls == [()]
        for job in jobs:
            outcome = job.promise.wait(0)
            assert outcome is not None
            kind, summary = outcome
            assert kind == "ok" and summary["components"] == 1

    def test_solo_job_flushes_alone(self):
        mgr = _FakeManager()
        ex = BatchingExecutor(_InlinePool(), mgr, window_s=60.0,
                              max_batch=8)
        ex.submit(make_job(root=1, solo=True))
        ex.submit(make_job(root=2, solo=True))
        assert mgr.calls == [(1,), (2,)]

    def test_crash_fault_spares_co_batched_jobs(self):
        class _Fault:
            kind = "crash"

        mgr = _FakeManager()
        ex = BatchingExecutor(_InlinePool(), mgr, window_s=60.0,
                              max_batch=2)
        doomed = make_job(root=5, fault=_Fault())
        innocent = make_job(root=6)
        ex.submit(doomed)
        ex.submit(innocent)
        assert doomed.promise.wait(0) == \
            ("error", ("fault", "injected crash"))
        kind, summary = innocent.promise.wait(0)
        assert kind == "ok" and summary["root"] == 6
        assert mgr.calls == [(6,)]

    def test_corrupt_fault_fails_validation_for_its_query_only(self):
        class _Fault:
            kind = "corrupt"

        mgr = _FakeManager()
        ex = BatchingExecutor(_InlinePool(), mgr, window_s=60.0,
                              max_batch=2)
        poisoned = make_job(root=4, fault=_Fault())
        clean = make_job(root=7)
        ex.submit(poisoned)
        ex.submit(clean)
        kind, detail = poisoned.promise.wait(0)
        assert kind == "error" and detail[0] == "invalid"
        assert clean.promise.wait(0)[0] == "ok"

    def test_draining_rejects_new_jobs(self):
        ex = BatchingExecutor(_InlinePool(), _FakeManager(),
                              window_s=60.0)
        ex.stop()
        assert ex.submit(make_job()) is False

    def test_linger_window_flushes_on_time(self):
        mgr = _FakeManager()
        ex = BatchingExecutor(_InlinePool(), mgr, window_s=0.02,
                              max_batch=64)
        ex.start()
        try:
            job = make_job(root=2)
            ex.submit(job)
            assert job.promise.wait(2.0)[0] == "ok"
            assert mgr.calls == [(2,)]
        finally:
            ex.stop()


class TestValidation:
    def test_bfs_accepts_consistent_parent(self):
        out = {"parent": np.arange(8, dtype=np.int64)}
        assert validate_output("bfs", out, 3) is None

    def test_bfs_rejects_bad_parent_root(self):
        out = {"parent": np.arange(8, dtype=np.int64)}
        out["parent"][3] = -7
        assert "parent" in validate_output("bfs", out, 3)

    def test_sssp_rejects_nonzero_root_distance(self):
        dist = np.zeros(8)
        assert validate_output("sssp", {"dist": dist}, 0) is None
        dist[0] = np.inf
        assert validate_output("sssp", {"dist": dist}, 0) is not None

    def test_generic_rejects_nonfinite_floats(self):
        out = {"pr": np.ones(4)}
        assert validate_output("pagerank", out, None) is None
        out["pr"][1] = np.nan
        assert "pr" in validate_output("pagerank", out, None)

    def test_corrupt_output_never_mutates_the_original(self):
        out = {"parent": np.arange(8, dtype=np.int64)}
        damaged = _corrupt_output("bfs", out, 2)
        assert out["parent"][2] == 2
        assert damaged["parent"][2] == -7

    def test_summarize_counts_reached(self):
        result = _FakeResult("bfs", 0, 8)
        result.output["parent"][5] = -1
        s = summarize(result, 8)
        assert s["reached"] == 7
        assert s["root"] == 0 and s["n_vertices"] == 8


class TestManifest:
    def entry(self, name="kron6"):
        return ServedGraph(name=name, spec="kron:6",
                           directory=f"graphs/{name}", bytes=123)

    def test_round_trip(self, tmp_path):
        m = ServedManifest(tmp_path)
        m.record(self.entry())
        again = ServedManifest.load(tmp_path)
        assert again.graphs["kron6"] == self.entry()

    def test_missing_file_is_cold_start(self, tmp_path):
        assert ServedManifest.load(tmp_path).graphs == {}

    def test_torn_file_is_cold_start(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"version": 1, "gra')
        assert ServedManifest.load(tmp_path).graphs == {}

    def test_foreign_version_is_cold_start(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            '{"version": 99, "graphs": [{"bogus": true}]}')
        assert ServedManifest.load(tmp_path).graphs == {}

    def test_malformed_entry_is_an_error(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            '{"version": 1, "graphs": [{"name": "x"}]}')
        with pytest.raises(ServiceError):
            ServedManifest.load(tmp_path)

    def test_forget_removes_and_saves(self, tmp_path):
        m = ServedManifest(tmp_path)
        m.record(self.entry())
        m.forget("kron6")
        assert ServedManifest.load(tmp_path).graphs == {}


class TestGraphSpec:
    @pytest.mark.parametrize("text,name,dataset", [
        ("kron:8", "kron8", "kronecker"),
        ("cit-patents", "cit-patents", "cit-patents"),
        ("dota-league:0.5", "dota-league", "dota-league"),
    ])
    def test_parses_good_specs(self, text, name, dataset):
        spec = GraphSpec.parse(text)
        assert spec.name == name and spec.dataset == dataset

    @pytest.mark.parametrize("text", [
        "kron", "kron:zero", "kron:0", "kron:31",
        "cit-patents:2.0", "cit-patents:x", "mystery-graph",
    ])
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ServiceError):
            GraphSpec.parse(text)


class TestResidentGraphManager:
    def make_manager(self, tmp_path, **kw):
        return ResidentGraphManager(tmp_path / "serve", seed=7, **kw)

    def test_add_graph_publishes_manifest(self, tmp_path):
        mgr = self.make_manager(tmp_path)
        dataset = mgr.add_graph("kron:6")
        assert dataset.n_vertices == 64
        assert (tmp_path / "serve" / MANIFEST_NAME).exists()
        assert "kron6" in ServedManifest.load(tmp_path / "serve").graphs

    def test_lease_loads_and_reuses_resident_entry(self, tmp_path):
        mgr = self.make_manager(tmp_path)
        mgr.add_graph("kron:6")
        with mgr.lease("kron6", "gap", 2) as (system, loaded):
            assert loaded.n_vertices == 64
        first = mgr.stats()["resident_entries"]
        with mgr.lease("kron6", "gap", 2):
            pass
        assert mgr.stats()["resident_entries"] == first
        assert len(first) == 1 and first[0]["in_use"] == 0

    def test_unknown_graph_is_a_service_error(self, tmp_path):
        mgr = self.make_manager(tmp_path)
        with pytest.raises(ServiceError):
            with mgr.lease("nope", "gap", 2):
                pass

    def test_lru_eviction_respects_budget_and_pins(self, tmp_path):
        mgr = self.make_manager(tmp_path, max_resident_bytes=1)
        mgr.add_graph("kron:6")
        with mgr.lease("kron6", "gap", 2):
            # Pinned: over budget but never evicted mid-use.
            assert len(mgr._residents) == 1
        with mgr.lease("kron6", "gap", 4):
            # The idle t2 entry is evicted to make room.
            keys = set(mgr._residents)
            assert keys == {("kron6", "gap", 4)}

    def test_recover_rebuilds_corrupt_graph(self, tmp_path):
        data_dir = tmp_path / "serve"
        mgr = self.make_manager(tmp_path)
        mgr.add_graph("kron:6")
        # Damage the dataset: byte total no longer matches the roster.
        victim = next((data_dir / "graphs" / "kron6").rglob("*.el"))
        victim.write_bytes(victim.read_bytes() + b"garbage")
        fresh = self.make_manager(tmp_path)
        assert fresh.recover() == 1
        assert "kron6" in fresh.datasets
        with fresh.lease("kron6", "gap", 2) as (_, loaded):
            assert loaded.n_vertices == 64

    def test_recover_intact_graph_without_rebuild(self, tmp_path):
        mgr = self.make_manager(tmp_path)
        mgr.add_graph("kron:6")
        fresh = self.make_manager(tmp_path)
        assert fresh.recover() == 0
        assert "kron6" in fresh.datasets
