"""Tests for the GraphBLAS building-blocks layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import bfs_levels, pagerank, sssp_dijkstra
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graphblas import (
    LOR_LAND,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    GrbMatrix,
    KernelProfiler,
    grb_bfs,
    grb_cc,
    grb_kcore,
    grb_mis,
    grb_pagerank,
    grb_sssp,
)


@pytest.fixture(scope="module")
def small_matrix(kron10_csr):
    return GrbMatrix(kron10_csr)


@pytest.fixture(scope="module")
def pattern_matrix(kron10_csr):
    return GrbMatrix(kron10_csr, values=np.ones(kron10_csr.n_edges))


class TestMxv:
    def test_plus_times_matches_scipy(self, kron10_csr, small_matrix):
        rng = np.random.default_rng(0)
        x = rng.random(kron10_csr.n_vertices)
        got = small_matrix.mxv(PLUS_TIMES, x)
        want = np.asarray(kron10_csr.to_scipy() @ x).ravel()
        assert np.allclose(got, want)

    def test_min_plus_empty_rows_get_identity(self):
        csr = CSRGraph.from_arrays(np.array([0]), np.array([1]), 3,
                                   weights=np.array([2.0]))
        m = GrbMatrix(csr)
        y = m.mxv(MIN_PLUS, np.array([1.0, 5.0, 9.0]))
        assert y[0] == 7.0
        assert np.isinf(y[1]) and np.isinf(y[2])

    def test_max_min_semiring(self):
        csr = CSRGraph.from_arrays(np.array([0, 0]), np.array([1, 2]), 3,
                                   weights=np.array([4.0, 10.0]))
        m = GrbMatrix(csr)
        y = m.mxv(MAX_MIN, np.array([0.0, 7.0, 3.0]))
        assert y[0] == max(min(4.0, 7.0), min(10.0, 3.0))

    def test_mask_suppresses_rows(self, small_matrix):
        x = np.ones(small_matrix.n)
        mask = np.zeros(small_matrix.n, dtype=bool)
        mask[5] = True
        y = small_matrix.mxv(PLUS_TIMES, x, mask=mask)
        assert (y != 0).sum() <= 1
        y2 = small_matrix.mxv(PLUS_TIMES, x, mask=mask,
                              complement_mask=True)
        assert y2[5] == 0.0

    def test_vxm_is_transpose_mxv(self, kron10_csr, small_matrix):
        rng = np.random.default_rng(1)
        x = rng.random(small_matrix.n)
        got = small_matrix.vxm(PLUS_TIMES, x)
        want = np.asarray(kron10_csr.to_scipy().T @ x).ravel()
        assert np.allclose(got, want)

    def test_transpose_cached_and_involutive(self, small_matrix):
        t = small_matrix.transpose()
        assert t.transpose() is small_matrix
        assert small_matrix.transpose() is t

    def test_length_mismatch(self, small_matrix):
        with pytest.raises(ConfigError):
            small_matrix.mxv(PLUS_TIMES, np.ones(3))

    def test_values_alignment_checked(self, kron10_csr):
        with pytest.raises(ConfigError):
            GrbMatrix(kron10_csr, values=np.ones(3))


class TestAlgorithms:
    def test_bfs_matches_reference(self, kron10_csr, pattern_matrix):
        for root in (0, 9):
            got = grb_bfs(pattern_matrix, root)
            assert np.array_equal(got, bfs_levels(kron10_csr, root))

    def test_sssp_matches_dijkstra(self, kron10_csr, small_matrix):
        got = grb_sssp(small_matrix, 3)
        want = sssp_dijkstra(kron10_csr, 3)
        finite = np.isfinite(want)
        assert np.array_equal(np.isfinite(got), finite)
        assert np.allclose(got[finite], want[finite])

    def test_pagerank_matches_reference(self, kron10_csr,
                                        pattern_matrix):
        got, iters = grb_pagerank(pattern_matrix)
        want, _ = pagerank(kron10_csr)
        assert np.abs(got - want).sum() < 1e-6
        assert iters > 1

    def test_kcore_matches_reference(self, kron10_csr, pattern_matrix):
        from repro.algorithms.kcore import core_numbers

        got = grb_kcore(pattern_matrix)
        assert np.array_equal(got, core_numbers(kron10_csr))
        assert np.array_equal(got, grb_kcore(pattern_matrix))

    def test_mis_matches_reference(self, kron10_csr, pattern_matrix):
        from repro.algorithms.mis import (maximal_independent_set,
                                          mis_priorities)

        pr = mis_priorities(kron10_csr.n_vertices)
        got = grb_mis(pattern_matrix, pr)
        assert np.array_equal(got, maximal_independent_set(kron10_csr))
        assert np.array_equal(got, grb_mis(pattern_matrix, pr))

    def test_cc_matches_reference(self, kron10_csr, pattern_matrix):
        from repro.algorithms.cc import afforest

        got = grb_cc(pattern_matrix)
        assert got.dtype == np.int64
        assert np.array_equal(got, afforest(kron10_csr))
        assert np.array_equal(got, grb_cc(pattern_matrix))

    def test_structural_kernels_on_loops_and_duplicates(self):
        """Self-loops and parallel edges vanish in the simple view."""
        from repro.algorithms.cc import afforest
        from repro.algorithms.kcore import core_numbers
        from repro.algorithms.mis import (maximal_independent_set,
                                          mis_priorities)

        src = np.array([0, 0, 0, 1, 2, 2, 4])
        dst = np.array([1, 1, 0, 2, 0, 2, 4])
        csr = CSRGraph.from_arrays(src, dst, 5)
        m = GrbMatrix(csr, values=np.ones(csr.n_edges))
        assert np.array_equal(grb_kcore(m), core_numbers(csr))
        pr = mis_priorities(5)
        assert np.array_equal(grb_mis(m, pr),
                              maximal_independent_set(csr))
        assert np.array_equal(grb_cc(m), afforest(csr))


class TestProfiler:
    def test_counts_primitives(self, kron10_csr):
        prof = KernelProfiler()
        m = GrbMatrix(kron10_csr, values=np.ones(kron10_csr.n_edges),
                      profiler=prof)
        grb_bfs(m, 0)
        assert prof.total_calls > 0
        assert any(k.startswith("mxv<lor_land>") for k in prof.stats)

    def test_masked_bfs_touches_fewer_entries_than_unmasked_sweeps(
            self, kron10_csr):
        """The work-efficiency argument for masks: a full-sweep SpMV
        BFS touches nnz per level; the masked one touches less."""
        prof = KernelProfiler()
        m = GrbMatrix(kron10_csr, values=np.ones(kron10_csr.n_edges),
                      profiler=prof)
        level = grb_bfs(m, 0)
        depth = int(level.max())
        masked_entries = prof.total_entries
        assert masked_entries < kron10_csr.n_edges * (depth + 1)

    def test_report_renders(self, kron10_csr):
        prof = KernelProfiler()
        m = GrbMatrix(kron10_csr, profiler=prof)
        m.mxv(PLUS_TIMES, np.ones(m.n))
        m.reduce(PLUS_TIMES, np.ones(m.n))
        out = prof.report()
        assert "mxv<plus_times>" in out
        assert "TOTAL" in out

    def test_reset(self):
        prof = KernelProfiler()
        prof.record("mxv", "plus_times", 10, 5)
        prof.reset()
        assert prof.total_calls == 0


class TestSemiringProperties:
    @given(vals=st.lists(st.floats(-100, 100, allow_nan=False),
                         min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_add_identity_neutral(self, vals):
        for sr in (PLUS_TIMES, MIN_PLUS, MAX_MIN):
            arr = np.array(vals + [sr.add_identity])
            reduced = sr.add.reduce(arr)
            assert reduced == pytest.approx(
                sr.add.reduce(np.array(vals)), rel=1e-12, abs=1e-12)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_mxv_distributes_over_masked_union(self, seed):
        """Computing masked halves separately equals one full mxv."""
        rng = np.random.default_rng(seed)
        n, m = 20, 60
        csr = CSRGraph.from_arrays(rng.integers(0, n, m),
                                   rng.integers(0, n, m), n,
                                   weights=rng.random(m))
        mat = GrbMatrix(csr)
        x = rng.random(n)
        mask = rng.random(n) < 0.5
        full = mat.mxv(PLUS_TIMES, x)
        lo = mat.mxv(PLUS_TIMES, x, mask=mask)
        hi = mat.mxv(PLUS_TIMES, x, mask=mask, complement_mask=True)
        merged = np.where(mask, lo, hi)
        assert np.allclose(merged, full)
