"""Integration: the qualitative claims of the paper's Sec. IV, checked
end-to-end through the full pipeline at reduced scale.

Each test names the paper statement it pins down.  Absolute numbers are
scale-dependent; orderings, ratios, and crossovers are what we assert
(see EXPERIMENTS.md for the quantitative ledger).
"""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment


@pytest.fixture(scope="module")
def kron_analysis(tmp_path_factory):
    """Figs 2-4, 9 workload: Kronecker graph, 32 threads."""
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("kron"),
        dataset="kronecker", scale=12, n_roots=8,
        algorithms=("bfs", "sssp", "pagerank"))
    return Experiment(cfg).run_all()


@pytest.fixture(scope="module")
def scaling_analysis(tmp_path_factory):
    """Figs 5-6 workload: thread sweep, few trials (paper Sec. IV-B).

    The paper uses scale 23 here precisely because per-invocation fixed
    costs distort scaling curves on small graphs; scale 15 is the
    smallest size at which the paper's curve shapes are stable."""
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("scal"),
        dataset="kronecker", scale=15, n_roots=3, n_trials=1,
        algorithms=("bfs",),
        thread_counts=(1, 2, 4, 8, 16, 32, 64, 72))
    return Experiment(cfg).run_all()


@pytest.fixture(scope="module")
def realworld_analyses(tmp_path_factory):
    """Fig 8 workload: both real-world stand-ins."""
    out = {}
    for ds in ("dota-league", "cit-patents"):
        cfg = ExperimentConfig(
            output_dir=tmp_path_factory.mktemp(ds),
            dataset=ds, n_roots=6,
            algorithms=("bfs", "sssp", "pagerank"))
        out[ds] = Experiment(cfg).run_all()
    return out


class TestFig2Bfs:
    def test_gap_is_the_clear_winner(self, kron_analysis):
        """Sec. IV-A: 'GAP is the clear winner in both cases.'"""
        box = kron_analysis.box("time")
        times = {k[0]: v.median for k, v in box.items() if k[1] == "bfs"}
        assert times["gap"] == min(times.values())

    def test_framework_systems_orders_of_magnitude_slower(
            self, kron_analysis):
        """Fig 2's y-axis spans 0.01-2 s: GraphBIG/GraphMat sit far
        above the two reference codes."""
        box = kron_analysis.box("time")
        times = {k[0]: v.median for k, v in box.items() if k[1] == "bfs"}
        assert times["graphbig"] > 10 * times["gap"]
        assert times["graphmat"] > 5 * times["gap"]

    def test_graphmat_comparable_to_graphbig_bfs(self, kron_analysis):
        """Table III: GraphMat 1.424 s vs GraphBIG 1.600 s -- close,
        with GraphMat at or below GraphBIG within a small margin (at
        reduced scale the two frameworks' fixed costs overlap)."""
        box = kron_analysis.box("time")
        times = {k[0]: v.median for k, v in box.items() if k[1] == "bfs"}
        assert times["graphmat"] < 1.15 * times["graphbig"]

    def test_construction_consistent_between_bfs_and_sssp(
            self, kron_analysis):
        """Sec. IV-A: GAP/GraphMat construction times are consistent
        across the two algorithms ('the platforms create the same data
        structure for both')."""
        builds = kron_analysis.construction_box()
        for system in ("gap", "graphmat"):
            b = builds[(system, "bfs")].median
            s = builds[(system, "sssp")].median
            assert b == pytest.approx(s, rel=0.15)


class TestFig3Sssp:
    def test_gap_wins_sssp(self, kron_analysis):
        box = kron_analysis.box("time")
        times = {k[0]: v.median for k, v in box.items() if k[1] == "sssp"}
        assert times["gap"] == min(times.values())

    def test_powergraph_slowest_sssp(self, kron_analysis):
        box = kron_analysis.box("time")
        times = {k[0]: v.median for k, v in box.items() if k[1] == "sssp"}
        assert times["powergraph"] == max(times.values())

    def test_no_graph500_sssp(self, kron_analysis):
        box = kron_analysis.box("time")
        assert ("graph500", "sssp", "kron-scale12", 32) not in box


class TestFig4Pagerank:
    def test_gap_fastest_and_fewest_iterations(self, kron_analysis):
        box = kron_analysis.box("time")
        times = {k[0]: v.median for k, v in box.items()
                 if k[1] == "pagerank"}
        iters = kron_analysis.iterations("pagerank")
        assert times["gap"] == min(times.values())
        assert iters["gap"] == min(iters.values())

    def test_graphmat_most_iterations(self, kron_analysis):
        """Fig 4: the no-change criterion costs GraphMat the most
        sweeps."""
        iters = kron_analysis.iterations("pagerank")
        assert iters["graphmat"] == max(iters.values())

    def test_pagerank_rsd_below_sssp_rsd(self, kron_analysis):
        """Sec. IV-A: 'Each platform in Fig 4 has a relative standard
        deviation between 1/4 and 1/2 that of the same system executing
        SSSP.'  We assert the direction (PR steadier than SSSP) for the
        systems running both."""
        box = kron_analysis.box("time")
        # PowerGraph excluded: its times are engine-startup dominated,
        # compressing both RSDs below the noise floor.
        for system in ("gap", "graphbig", "graphmat"):
            pr = box[(system, "pagerank", "kron-scale12", 32)].rsd
            ss = box[(system, "sssp", "kron-scale12", 32)].rsd
            assert pr < ss, system


class TestFig5Fig6Scalability:
    """Claims checked at the paper's own operating point (scale 23) via
    the calibrated projection (see repro.core.projection), plus
    small-scale real-kernel sanity checks."""

    @pytest.fixture(scope="class")
    def projections(self):
        from repro.core.projection import projected_scalability

        return {s: projected_scalability(s)
                for s in ("gap", "graph500", "graphbig", "graphmat")}

    def test_graph500_dips_below_one_at_two_threads(self, projections):
        """Fig 6: 'Graph500 dips below 1 because it is slower for 2
        threads than for 1.'"""
        tab = projections["graph500"]
        speedup = dict(zip(tab.threads, tab.speedup()))
        assert speedup[2] < 1.0
        assert speedup[8] > 1.0   # and recovers
        # No other system dips.
        for other in ("gap", "graphbig", "graphmat"):
            assert dict(zip(projections[other].threads,
                            projections[other].speedup()))[2] > 1.0

    def test_gap_most_scalable_through_32(self, projections):
        """Sec. IV-B: 'Overall, GAP is the most scalable.'"""
        sp = {s: dict(zip(t.threads, t.speedup()))
              for s, t in projections.items()}
        for n in (8, 16, 32):
            assert sp["gap"][n] == max(v[n] for v in sp.values()), n

    def test_graphbig_flattest(self, projections):
        sp = {s: dict(zip(t.threads, t.speedup()))
              for s, t in projections.items()}
        for n in (16, 32, 64, 72):
            assert sp["graphbig"][n] == min(v[n] for v in sp.values()), n

    def test_graphmat_overtakes_gap_at_72(self, projections):
        """Sec. IV-B: 'GraphMat close behind for larger threads and even
        slightly beating GAP at 72 threads.'"""
        sp_gap = dict(zip(projections["gap"].threads,
                          projections["gap"].speedup()))
        sp_gm = dict(zip(projections["graphmat"].threads,
                         projections["graphmat"].speedup()))
        assert sp_gm[72] > sp_gap[72]
        assert sp_gm[72] < 1.15 * sp_gap[72]   # "slightly"
        assert sp_gap[32] > sp_gm[32]          # GAP ahead earlier

    def test_poor_strong_scaling_overall(self, projections):
        """Sec. IV-B: 'generally poor scaling for this size problem.'"""
        for system, tab in projections.items():
            eff = dict(zip(tab.threads, tab.efficiency()))
            assert eff[64] < 0.5, system

    def test_real_kernels_scale_monotonically_to_32(self,
                                                    scaling_analysis):
        """Real-kernel sanity at bench scale: adding threads up to 32
        never slows the non-contended systems down."""
        for system in ("gap", "graphbig", "graphmat"):
            tab = scaling_analysis.scalability(system, "bfs")
            times = dict(zip(tab.threads, tab.mean_times))
            assert times[32] < times[1]

    def test_real_kernel_graph500_dip(self, scaling_analysis):
        """The contention dip also shows up in the real-kernel run."""
        tab = scaling_analysis.scalability("graph500", "bfs")
        speedup = dict(zip(tab.threads, tab.speedup()))
        assert speedup[2] < 1.0


class TestFig8RealWorld:
    def test_no_powergraph_bfs(self, realworld_analyses):
        a = realworld_analyses["dota-league"]
        assert not any(k[0] == "powergraph" and k[1] == "bfs"
                       for k in a.box("time"))

    def test_density_amortizes_graphbig_overhead(self, realworld_analyses):
        """Sec. IV-C: GraphBIG is strongest on the dense dota-league BFS
        (in the paper it even beats GAP).  The mechanism we model is
        per-visit property overhead amortizing over degree: GraphBIG's
        *per-edge* BFS cost must be substantially lower on dota-league
        than on cit-Patents.  (The absolute GraphBIG-beats-GAP cell is a
        documented deviation: our GAP's direction-optimization also
        thrives on density; see EXPERIMENTS.md.)
        """
        from repro.datasets.realworld import cit_patents, dota_league

        dota = realworld_analyses["dota-league"]
        pat = realworld_analyses["cit-patents"]
        m_dota = 2 * dota_league().n_edges      # undirected -> arcs
        m_pat = cit_patents().n_edges
        per_edge_dota = dota.median_time("graphbig", "bfs") / m_dota
        per_edge_pat = pat.median_time("graphbig", "bfs") / m_pat
        assert per_edge_dota < 0.6 * per_edge_pat

    def test_graphbig_slowest_pagerank(self, realworld_analyses):
        """Sec. IV-C: GraphBIG 'is by far the slowest for PageRank'
        among the shared-memory frameworks (PowerGraph's constant is
        engine startup, not PageRank)."""
        a = realworld_analyses["dota-league"]
        box = a.box("time")
        times = {k[0]: v.median for k, v in box.items()
                 if k[1] == "pagerank"}
        assert times["graphbig"] > times["gap"]
        assert times["graphbig"] > times["graphmat"]

    def test_powergraph_sssp_better_on_denser_dota(self,
                                                   realworld_analyses):
        """Sec. IV-C: 'PowerGraph is faster for SSSP [on dota-league]'
        -- its vertex cut likes dense hubs; compare its kernel work per
        edge across the datasets."""
        dota = realworld_analyses["dota-league"]
        pat = realworld_analyses["cit-patents"]
        t_dota = dota.mean_time("powergraph", "sssp")
        t_pat = pat.mean_time("powergraph", "sssp")
        # Startup dominates both; compare above-startup work normalized
        # by edge count (dota has ~4x the edges here).
        assert (t_dota - 0.9) / (t_pat - 0.9) < 8.0


class TestTable3AndFig9Power:
    def test_cpu_power_ordering(self, kron_analysis):
        """Table III: Graph500 hottest, GraphMat coolest."""
        power = kron_analysis.power_box("pkg_watts", "bfs")
        means = {s: b.mean for s, b in power.items()}
        assert means["graph500"] == max(means.values())
        assert means["graphmat"] == min(means.values())

    def test_cpu_power_near_table3_anchors(self, kron_analysis):
        power = kron_analysis.power_box("pkg_watts", "bfs")
        anchors = {"gap": 72.38, "graph500": 97.17, "graphbig": 78.01,
                   "graphmat": 70.12}
        for system, want in anchors.items():
            assert power[system].mean == pytest.approx(want, rel=0.05)

    def test_dram_power_band_and_graphmat_lowest(self, kron_analysis):
        """Fig 9 left: 10-20 W band, GraphMat lowest."""
        power = kron_analysis.power_box("dram_watts", "bfs")
        for b in power.values():
            assert 9.0 < b.mean < 22.0
        means = {s: b.mean for s, b in power.items()}
        assert means["graphmat"] == min(means.values())

    def test_fastest_is_most_energy_efficient(self, kron_analysis):
        """Sec. IV-D: 'In our case, the fastest code is also the most
        energy efficient.'"""
        table = kron_analysis.energy_table("bfs", threads=32)
        energies = {s: r.pkg_energy_j for s, r in table.items()}
        times = {s: r.time_s for s, r in table.items()}
        fastest = min(times, key=times.get)
        assert min(energies, key=energies.get) == fastest

    def test_increase_over_sleep_in_paper_band(self, kron_analysis):
        """Table III bottom row: 2.8x - 3.9x over the sleep baseline."""
        table = kron_analysis.energy_table("bfs", threads=32)
        for system, rep in table.items():
            assert 2.0 < rep.increase_over_sleep < 5.0, system
