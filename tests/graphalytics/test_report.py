"""Tests of the Graphalytics table / HTML report rendering."""

import pytest

from repro.graphalytics import (
    GraphalyticsHarness,
    render_html_report,
    render_table,
)


@pytest.fixture(scope="module")
def results(dota_dataset, patents_dataset):
    h = GraphalyticsHarness(n_threads=32, seed=7)
    return (h.run_matrix(dota_dataset, algorithms=("bfs", "pagerank",
                                                   "sssp"))
            + h.run_matrix(patents_dataset, algorithms=("bfs", "pagerank",
                                                        "sssp")))


def test_table_layout_matches_table1(results):
    out = render_table(results)
    lines = out.splitlines()
    # One block per platform, GraphBIG first (Table I order).
    assert any(line.startswith("GraphBIG") for line in lines)
    assert any(line.startswith("PowerGraph") for line in lines)
    assert any(line.startswith("GraphMat") for line in lines)
    assert out.index("GraphBIG") < out.index("PowerGraph") < \
        out.index("GraphMat")


def test_table_contains_na(results):
    out = render_table(results)
    assert "N/A" in out  # cit-Patents SSSP


def test_table_both_datasets(results):
    out = render_table(results)
    assert "dota-league" in out
    assert "cit-Patents" in out


def test_html_one_page_per_platform(results, tmp_path):
    paths = render_html_report(results, tmp_path)
    assert {p.name for p in paths} == {
        "report-graphbig.html", "report-powergraph.html",
        "report-graphmat.html"}
    body = paths[0].read_text()
    assert body.startswith("<!DOCTYPE html>")
    assert "<table" in body
    assert "One run per experiment" in body
