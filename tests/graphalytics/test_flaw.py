"""The paper's central evidence (Sec. II): Graphalytics' timing hooks
wrap different execution spans per platform, so its cross-platform
comparison is unfair.  These tests pin that flaw down quantitatively.
"""

import pytest

from repro.graphalytics import GraphalyticsHarness
from repro.systems import create_system


@pytest.fixture(scope="module")
def harness():
    return GraphalyticsHarness(n_threads=32, seed=7)


def test_graphmat_report_includes_file_read(harness, dota_dataset):
    """'Graphalytics reports a 6.3 second runtime but 2.7 seconds of
    that time GraphMat is simply reading the input file from disk.'"""
    r = harness.run_cell("graphmat", "pagerank", dota_dataset)
    assert "file_read" in r.breakdown
    assert r.reported_s == pytest.approx(
        r.breakdown["file_read"] + r.breakdown["build"]
        + r.breakdown["algorithm"], rel=1e-9)
    assert r.breakdown["file_read"] > 0


def test_graphbig_report_excludes_load(harness, dota_dataset):
    """'the GraphBIG timing does not include the time to read the
    dota-league file.'"""
    r = harness.run_cell("graphbig", "pagerank", dota_dataset)
    assert r.reported_s == pytest.approx(r.breakdown["algorithm"])
    assert "file_read" not in r.breakdown


def test_without_read_graphmat_would_be_much_faster(harness,
                                                    dota_dataset):
    """'If the time to read in the text file was ignored then GraphMat
    would complete nearly twice as quickly.'  At dota-league's size the
    load phases dominate GraphMat's reported PageRank time."""
    r = harness.run_cell("graphmat", "pagerank", dota_dataset)
    algo_only = r.breakdown["algorithm"]
    assert r.reported_s > 1.5 * algo_only


def test_epg_and_graphalytics_disagree_on_graphmat(harness,
                                                   dota_dataset):
    """EPG* times only the kernel; Graphalytics' GraphMat cell adds the
    load phases -- the two frameworks report different numbers for the
    same execution."""
    r = harness.run_cell("graphmat", "pagerank", dota_dataset)
    s = create_system("graphmat", n_threads=32)
    loaded = s.load(dota_dataset)
    epg_time = s.run(loaded, "pagerank",
                     max_iterations=10).time_s
    assert r.reported_s > epg_time
    # And the difference is explained by the load phases.
    assert r.reported_s - r.breakdown["algorithm"] == pytest.approx(
        r.breakdown["file_read"] + r.breakdown["build"], rel=1e-9)


def test_powergraph_makespan_includes_ingest(harness, dota_dataset):
    """Table I's PowerGraph rows sit near-constant across algorithms:
    ingest + engine spin-up dominates whatever kernel runs."""
    cheap = harness.run_cell("powergraph", "wcc", dota_dataset)
    assert cheap.breakdown["load"] > 0
    assert cheap.reported_s > cheap.breakdown["algorithm"]


def test_powergraph_rows_nearly_constant(harness, dota_dataset):
    times = [harness.run_cell("powergraph", a, dota_dataset).reported_s
             for a in ("bfs", "pagerank", "wcc", "sssp")]
    assert max(times) / min(times) < 1.5
