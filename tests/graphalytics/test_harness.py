"""Tests of the simulated Graphalytics comparator."""

import math

import pytest

from repro.errors import SystemCapabilityError
from repro.graphalytics import (
    GRAPHALYTICS_ALGORITHMS,
    GRAPHALYTICS_PLATFORMS,
    GraphalyticsHarness,
)


@pytest.fixture(scope="module")
def harness():
    return GraphalyticsHarness(n_threads=32, seed=7)


class TestCoverage:
    def test_platforms_match_paper_tables(self):
        assert set(GRAPHALYTICS_PLATFORMS) == {"graphbig", "powergraph",
                                               "graphmat"}

    def test_algorithm_columns_match_table1(self):
        assert tuple(GRAPHALYTICS_ALGORITHMS) == (
            "bfs", "cdlp", "lcc", "pagerank", "sssp", "wcc")

    def test_no_gap_driver(self, harness, kron10_dataset):
        """Graphalytics v0.3 had no GAP platform."""
        with pytest.raises(SystemCapabilityError):
            harness.run_cell("gap", "bfs", kron10_dataset)

    def test_unknown_algorithm(self, harness, kron10_dataset):
        with pytest.raises(SystemCapabilityError):
            harness.run_cell("graphmat", "bc", kron10_dataset)


class TestSsspNA:
    def test_sssp_na_on_unweighted(self, harness, patents_dataset):
        """Table I: cit-Patents SSSP is N/A (unweighted dataset)."""
        r = harness.run_cell("graphmat", "sssp", patents_dataset)
        assert r.not_available
        assert r.display == "N/A"
        assert math.isnan(r.reported_s)

    def test_sssp_runs_on_weighted(self, harness, dota_dataset):
        r = harness.run_cell("graphmat", "sssp", dota_dataset)
        assert not r.not_available
        assert r.reported_s > 0


class TestPowerGraphBfsDriver:
    def test_bfs_runs_despite_missing_toolkit(self, harness,
                                              kron10_dataset):
        """The Graphalytics driver supplies BFS for PowerGraph, which is
        why Tables I-II have PowerGraph BFS cells while Figs 2/8 do
        not."""
        r = harness.run_cell("powergraph", "bfs", kron10_dataset)
        assert r.reported_s > 0


class TestSingleRun:
    def test_one_run_per_experiment_is_deterministic(self, harness,
                                                     kron10_dataset):
        a = harness.run_cell("graphbig", "bfs", kron10_dataset)
        b = harness.run_cell("graphbig", "bfs", kron10_dataset)
        assert a.reported_s == b.reported_s  # same single-trial draw

    def test_matrix_covers_all_cells(self, harness, dota_dataset):
        results = harness.run_matrix(dota_dataset)
        assert len(results) == 3 * 6


class TestFixedIterationBudgets:
    def test_pagerank_budget(self, harness, kron10_dataset):
        """Graphalytics PR runs 10 iterations, not the epsilon criterion
        (the Table II vs Fig 4 discrepancy, Sec. IV-A)."""
        from repro.systems import create_system

        # Under EPG* rules GraphBIG needs far more than 10 sweeps.
        s = create_system("graphbig")
        loaded = s.load(kron10_dataset)
        converged = s.run(loaded, "pagerank", epsilon=6e-8)
        assert converged.iterations > 10
        # The Graphalytics cell prices exactly 10.
        r = harness.run_cell("graphbig", "pagerank", kron10_dataset)
        fixed = s.run(loaded, "pagerank", epsilon=0.0, max_iterations=10)
        assert r.breakdown["algorithm"] == pytest.approx(
            fixed.time_s, rel=0.3)
