"""Tests of the Granula-style operation-tree performance model."""

import pytest

from repro.errors import ConfigError
from repro.graphalytics import GraphalyticsHarness
from repro.graphalytics.granula import Operation, standard_job_model


def test_tree_totals_roll_up():
    model = standard_job_model()
    model.root.child("LoadGraph").child("ReadFile").duration_s = 2.0
    model.root.child("LoadGraph").child("BuildStructure").duration_s = 3.0
    model.root.child("ProcessGraph").child(
        "ExecuteAlgorithm").duration_s = 1.0
    assert model.root.child("LoadGraph").total_s() == 5.0
    assert model.root.total_s() == 6.0


def test_unknown_child_rejected():
    with pytest.raises(ConfigError):
        standard_job_model().root.child("Shuffle")


def test_attach_from_graphalytics_cell(dota_dataset):
    h = GraphalyticsHarness(seed=7)
    r = h.run_cell("graphmat", "pagerank", dota_dataset)
    model = standard_job_model()
    model.attach(r)
    load = model.root.child("LoadGraph").total_s()
    algo = model.root.child("ProcessGraph").total_s()
    assert load == pytest.approx(r.breakdown["file_read"]
                                 + r.breakdown["build"])
    assert algo == pytest.approx(r.breakdown["algorithm"])
    # The tree recovers the very split Graphalytics' own table hides.
    assert load + algo == pytest.approx(r.reported_s)


def test_report_renders_tree():
    model = standard_job_model("Job42")
    model.root.child("ProcessGraph").child(
        "ExecuteAlgorithm").duration_s = 0.5
    out = model.report()
    assert out.startswith("Job42")
    assert "ExecuteAlgorithm: 0.5000 s" in out


def test_operation_without_measurement_renders_question_mark():
    op = Operation("Mystery")
    assert "?" in op.render()


class TestFineGrainedFromKernel:
    def test_supersteps_sum_to_kernel_time(self, kron10_dataset):
        import pytest as _pytest

        from repro.graphalytics.granula import from_kernel_result
        from repro.systems import create_system

        system = create_system("gap", n_threads=32)
        loaded = system.load(kron10_dataset)
        result = system.run(loaded, "bfs",
                            root=int(kron10_dataset.roots[0]))
        model = from_kernel_result(system, loaded, result)
        exec_op = model.root.child("ProcessGraph").child(
            "ExecuteAlgorithm")
        # EngineStartup + one Superstep per recorded round.
        assert len(exec_op.children) == result.profile.n_rounds + 1
        total = sum(c.duration_s for c in exec_op.children)
        assert total == _pytest.approx(result.time_s, rel=0.05)

    def test_load_phases_attached(self, kron10_dataset):
        from repro.graphalytics.granula import from_kernel_result
        from repro.systems import create_system

        system = create_system("graphmat", n_threads=32)
        loaded = system.load(kron10_dataset)
        result = system.run(loaded, "pagerank")
        model = from_kernel_result(system, loaded, result)
        load = model.root.child("LoadGraph")
        assert load.child("ReadFile").duration_s == loaded.read_s
        assert load.child("BuildStructure").duration_s == loaded.build_s
        assert "Superstep" in model.report()
