"""Tests for the content-addressed artifact store itself."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, parse_size
from repro.cache.bundle import read_arrays, write_arrays
from repro.errors import CacheError, ConfigError

KEY_A = "aa" + "0" * 30
KEY_B = "bb" + "0" * 30
KEY_C = "cc" + "0" * 30


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestParseSize:
    @pytest.mark.parametrize("text,want", [
        ("512", 512), ("1K", 1024), ("500M", 500 * 2**20),
        ("2G", 2 * 2**30), ("1T", 2**40), ("1.5K", 1536), (64, 64),
        # Lowercase suffixes, fractional values, unit spellings.
        ("512k", 512 * 2**10), ("1.5G", int(1.5 * 2**30)),
        ("1.5g", int(1.5 * 2**30)), ("2m", 2 * 2**20),
        ("500MB", 500 * 2**20), ("2GiB", 2 * 2**30),
        ("512 kb", 512 * 2**10), ("4096B", 4096), (" 1K ", 1024),
    ])
    def test_accepts(self, text, want):
        assert parse_size(text) == want

    @pytest.mark.parametrize("text", [
        "", "lots", "12Q", "-1", "0", 0, "1e3", "inf", "nan", "-1.5G",
        "1.G", ".5G", "1.5GG", "K", "0.0000001K", True,
    ])
    def test_rejects_with_config_error(self, text):
        with pytest.raises(ConfigError) as exc:
            parse_size(text)
        assert "size" in str(exc.value)


class TestBundle:
    def test_round_trip_mmap(self, tmp_path):
        arrays = {"a": np.arange(10, dtype=np.int64),
                  "b": np.linspace(0, 1, 5)}
        write_arrays(tmp_path, arrays)
        back = read_arrays(tmp_path)
        assert set(back) == {"a", "b"}
        for name in arrays:
            assert np.array_equal(back[name], arrays[name])
            assert back[name].dtype == arrays[name].dtype
            assert not back[name].flags.writeable

    def test_rejects_traversal_names(self, tmp_path):
        with pytest.raises(CacheError):
            write_arrays(tmp_path, {"../evil": np.zeros(1)})
        with pytest.raises(CacheError):
            write_arrays(tmp_path, {".lru": np.zeros(1)})


class TestHitMissEvict:
    def test_miss_then_store_then_hit(self, cache):
        assert cache.get(KEY_A) is None
        assert cache.stats["misses"] == 1
        cache.put_arrays(KEY_A, "graph:test",
                         {"x": np.arange(8, dtype=np.int64)})
        assert cache.stats["stores"] == 1
        hit = cache.get_arrays(KEY_A, "graph:test")
        assert hit is not None
        arrays, meta = hit
        assert np.array_equal(arrays["x"], np.arange(8))
        assert cache.stats["hits"] == 1

    def test_meta_round_trips(self, cache):
        cache.put_arrays(KEY_A, "graph:test", {"x": np.zeros(2)},
                         {"n": 1024, "label": "kron"})
        _, meta = cache.get_arrays(KEY_A)
        assert meta == {"n": 1024, "label": "kron"}

    def test_put_is_idempotent(self, cache):
        cache.put_arrays(KEY_A, "k", {"x": np.zeros(4)})
        cache.put_arrays(KEY_A, "k", {"x": np.zeros(4)})
        assert cache.stats["stores"] == 1

    def test_corrupt_entry_evicted_and_regenerated(self, cache, caplog):
        cache.put_arrays(KEY_A, "graph:test", {"x": np.arange(64)})
        victim = next((cache.root / "objects").glob("*/*/x.npy"))
        victim.write_bytes(b"not an npy file")
        fresh = ArtifactCache(cache.root)  # no per-process verify memo
        with caplog.at_level("WARNING", logger="repro.cache"):
            assert fresh.get_arrays(KEY_A) is None
        assert any("cache evict" in r.getMessage()
                   for r in caplog.records)
        assert fresh.stats == {"hits": 0, "misses": 1, "stores": 0,
                               "evictions": 1}
        # Regeneration stores a clean copy that hits again.
        fresh.put_arrays(KEY_A, "graph:test", {"x": np.arange(64)})
        assert fresh.get_arrays(KEY_A) is not None

    def test_failed_build_leaves_no_entry(self, cache):
        with pytest.raises(RuntimeError):
            cache.put(KEY_A, "k", lambda tmp: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert not cache.contains(KEY_A)
        assert not any((cache.root / "tmp").iterdir())


class TestGc:
    def _fill(self, cache):
        # Three entries, ~512 payload bytes each, touched in order.
        for key in (KEY_A, KEY_B, KEY_C):
            cache.put_arrays(key, "k", {"x": np.zeros(64)})
            cache.get(key)  # refresh .lru in insertion order

    def test_lru_order(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        self._fill(cache)
        cache.get(KEY_A)  # A becomes most recent; B is now stalest
        per_entry = cache.total_bytes() // 3
        evicted = cache.gc(2 * per_entry)
        assert evicted == [KEY_B]
        assert cache.contains(KEY_A) and cache.contains(KEY_C)

    def test_gc_respects_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        self._fill(cache)
        budget = cache.total_bytes() // 3
        cache.gc(budget)
        assert cache.total_bytes() <= budget
        assert len(cache.entries()) == 1

    def test_auto_gc_on_put(self, tmp_path):
        per_entry = 512 + 128  # payload + meta slack
        cache = ArtifactCache(tmp_path / "c", max_bytes=2 * per_entry)
        self._fill(cache)
        assert cache.total_bytes() <= 2 * per_entry
        assert cache.stats["evictions"] >= 1

    def test_gc_without_budget_raises(self, cache):
        with pytest.raises(CacheError):
            cache.gc()


class TestMaintenance:
    def test_verify_reports_and_evicts(self, cache):
        cache.put_arrays(KEY_A, "k", {"x": np.zeros(8)})
        cache.put_arrays(KEY_B, "k", {"x": np.ones(8)})
        assert cache.verify() == []
        victim = cache._entry_dir(KEY_B) / "x.npy"
        victim.write_bytes(victim.read_bytes()[:-8] + b"corrupted")
        problems = cache.verify()
        assert len(problems) == 1 and KEY_B in problems[0]
        assert cache.contains(KEY_A) and not cache.contains(KEY_B)

    def test_clear(self, cache):
        cache.put_arrays(KEY_A, "k", {"x": np.zeros(4)})
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.total_bytes() == 0

    def test_entries_listing(self, cache):
        cache.put_arrays(KEY_A, "kron", {"x": np.zeros(4)})
        (entry,) = cache.entries()
        assert entry.key == KEY_A
        assert entry.kind == "kron"
        assert entry.size_bytes > 0

    def test_from_config_inactive(self, tmp_path):
        from repro.core.config import ExperimentConfig

        off = ExperimentConfig(output_dir=tmp_path / "o")
        assert ArtifactCache.from_config(off) is None
        disabled = off.with_(cache_dir=tmp_path / "c",
                             cache_enabled=False)
        assert ArtifactCache.from_config(disabled) is None
        on = off.with_(cache_dir=tmp_path / "c")
        cache = ArtifactCache.from_config(on)
        assert cache is not None and cache.root == tmp_path / "c"
