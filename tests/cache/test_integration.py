"""Cache integration: layer-1 dataset memoization, layer-2 zero-copy
graph sharing, and end-to-end byte-transparency.

The contract under test is the one docs/cache.md promises: a cached
run's numbers and artifacts are byte-identical to an uncached run, a
warm hit hands every system memmap-backed read-only arrays (one
physical copy shared by all worker processes), and a corrupted entry is
never trusted -- it is evicted, logged, and regenerated.
"""

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.cache.keys import loaded_graph_key
from repro.cache.prewarm import prewarm_loaded_graphs
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.systems import create_system

ALL_FIVE = ("gap", "graph500", "graphbig", "graphmat", "powergraph")


def memmap_backed(a) -> bool:
    """True when ``a`` is a view (at any depth) over an ``np.memmap``."""
    while a is not None:
        if isinstance(a, np.memmap):
            return True
        a = getattr(a, "base", None)
    return False


# ----------------------------------------------------------------------
# Layer 2: per-system loaded-graph caching
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_FIVE)
def test_warm_load_is_zero_copy_and_bit_identical(name, kron10_dataset,
                                                  tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cold_sys = create_system(name, n_threads=32)
    cold = cold_sys.load(kron10_dataset, cache=cache)
    assert cache.stats["stores"] == 1

    warm_sys = create_system(name, n_threads=32)
    warm = warm_sys.load(kron10_dataset, cache=cache)
    assert cache.stats["hits"] == 1

    # Pricing is re-simulated per instance: bit-identical, not close.
    assert warm.read_s == cold.read_s
    assert warm.build_s == cold.build_s
    assert warm.n_arcs == cold.n_arcs

    # Every packed array of the warm structure is a read-only view
    # over the cached .npy memmaps -- zero copies were made.
    arrays, _ = warm_sys._pack_data(warm.data)
    assert arrays, f"{name}: _pack_data returned no arrays"
    for aname, arr in arrays.items():
        assert memmap_backed(arr), \
            f"{name}: warm array {aname!r} is not memmap-backed"
        assert not arr.flags.writeable, \
            f"{name}: warm array {aname!r} is writeable"

    # And the kernels agree exactly.
    root = int(kron10_dataset.roots[0])
    if name == "powergraph":
        a = cold_sys.run_toolkit_extension(cold, "bfs-hops", root=root)
        b = warm_sys.run_toolkit_extension(warm, "bfs-hops", root=root)
    else:
        a = cold_sys.run(cold, "bfs", root=root)
        b = warm_sys.run(warm, "bfs", root=root)
    assert np.array_equal(a.output["level"], b.output["level"])
    assert a.time_s == b.time_s


def test_loaded_graph_key_is_thread_invariant(kron10_dataset, tmp_path):
    """One cached structure serves every thread count; only the priced
    build time differs, and it matches the uncached price exactly."""
    cache = ArtifactCache(tmp_path / "cache")
    create_system("gap", n_threads=8).load(kron10_dataset, cache=cache)

    s32_warm = create_system("gap", n_threads=32)
    s32_cold = create_system("gap", n_threads=32)
    assert loaded_graph_key(s32_warm, kron10_dataset) == \
        loaded_graph_key(create_system("gap", n_threads=8),
                         kron10_dataset)
    warm = s32_warm.load(kron10_dataset, cache=cache)
    cold = s32_cold.load(kron10_dataset)  # uncached reference
    assert cache.stats == {"hits": 1, "misses": 1, "stores": 1,
                           "evictions": 0}
    assert warm.build_s == cold.build_s
    assert warm.read_s == cold.read_s


def test_corrupt_graph_entry_evicted_and_rebuilt(kron10_dataset,
                                                 tmp_path, caplog):
    cache = ArtifactCache(tmp_path / "cache")
    system = create_system("gap", n_threads=32)
    reference = system.load(kron10_dataset, cache=cache)
    key = loaded_graph_key(system, kron10_dataset)
    victim = next(cache._entry_dir(key).glob("*.npy"))
    victim.write_bytes(b"garbage, not an npy header")

    fresh = ArtifactCache(tmp_path / "cache")  # no verify memo
    with caplog.at_level("WARNING", logger="repro.cache"):
        rebuilt = create_system("gap", n_threads=32).load(
            kron10_dataset, cache=fresh)
    assert any("cache evict" in r.getMessage() for r in caplog.records)
    assert fresh.stats["evictions"] == 1
    assert fresh.stats["stores"] == 1  # regenerated, re-published
    assert rebuilt.build_s == reference.build_s
    # The regenerated entry is clean: next load hits.
    again = ArtifactCache(tmp_path / "cache")
    create_system("gap", n_threads=32).load(kron10_dataset, cache=again)
    assert again.stats == {"hits": 1, "misses": 0, "stores": 0,
                           "evictions": 0}


# ----------------------------------------------------------------------
# Layer 1: dataset-prep memoization
# ----------------------------------------------------------------------
def test_kronecker_generation_hits_cache(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    spec = KroneckerSpec(scale=8, weighted=True)
    cold = generate_kronecker(spec, cache=cache)
    assert cache.stats["stores"] == 1
    warm = generate_kronecker(spec, cache=cache)
    assert cache.stats["hits"] == 1
    assert cold.src.tobytes() == warm.src.tobytes()
    assert cold.dst.tobytes() == warm.dst.tobytes()
    assert cold.weights.tobytes() == warm.weights.tobytes()
    assert memmap_backed(warm.src) and memmap_backed(warm.weights)

    # A different spec is a different key, never a false hit.
    other = generate_kronecker(KroneckerSpec(scale=8, seed=99,
                                             weighted=True), cache=cache)
    assert cache.stats["misses"] >= 2
    assert other.src.tobytes() != cold.src.tobytes()


def test_homogenize_restore_is_byte_identical(tmp_path):
    import hashlib

    from repro.datasets.homogenize import homogenize

    def tree(root):
        return {p.relative_to(root).as_posix():
                hashlib.sha256(p.read_bytes()).hexdigest()
                for p in sorted(root.rglob("*")) if p.is_file()}

    cache = ArtifactCache(tmp_path / "cache")
    edges = generate_kronecker(KroneckerSpec(scale=7, weighted=True))
    cold = homogenize(edges, tmp_path / "a", cache=cache)
    assert cache.stats["stores"] == 1
    warm = homogenize(edges, tmp_path / "b", cache=cache)
    assert cache.stats["hits"] == 1
    assert tree(warm.directory) == tree(cold.directory)
    assert np.array_equal(warm.roots, cold.roots)


# ----------------------------------------------------------------------
# Prewarm: the parent materializes everything before the fan-out
# ----------------------------------------------------------------------
def test_prewarm_fills_cache_once(kron10_dataset, tmp_path):
    from repro.core.config import ExperimentConfig

    cfg = ExperimentConfig(output_dir=tmp_path / "out", scale=10,
                           systems=ALL_FIVE,
                           thread_counts=(8, 32),
                           cache_dir=tmp_path / "cache")
    cache = ArtifactCache.from_config(cfg)
    built = prewarm_loaded_graphs(cfg, kron10_dataset, cache)
    # Thread-invariant keys: one entry per system, except PowerGraph,
    # whose partition count (a build knob) tracks the thread count.
    assert built == len(ALL_FIVE) + 1
    assert prewarm_loaded_graphs(cfg, kron10_dataset, cache) == 0

    # Workers' loads now degenerate to pure hits.
    worker_cache = ArtifactCache(tmp_path / "cache")
    for name in ALL_FIVE:
        create_system(name, n_threads=32).load(kron10_dataset,
                                               cache=worker_cache)
    assert worker_cache.stats["misses"] == 0
    assert worker_cache.stats["hits"] == len(ALL_FIVE)


# ----------------------------------------------------------------------
# End to end: warm parallel run == cold serial run, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_warm_jobs4_matches_cold_serial_and_nocache(tmp_path):
    from repro.core.config import ExperimentConfig
    from repro.core.experiment import Experiment

    base = dict(scale=9, n_roots=2, systems=("gap", "graphbig"),
                algorithms=("bfs", "sssp"), thread_counts=(32,))

    def results(out, **kw):
        cfg = ExperimentConfig(output_dir=out, **base, **kw)
        Experiment(cfg).run_all()
        return (out / "results.csv").read_bytes()

    cache_dir = tmp_path / "cache"
    nocache = results(tmp_path / "nocache")
    cold = results(tmp_path / "cold", cache_dir=cache_dir)
    warm = results(tmp_path / "warm", cache_dir=cache_dir, jobs=4)

    assert cold == nocache, "caching changed the reported numbers"
    assert warm == cold, "warm jobs=4 diverged from cold serial"
    # The warm run really did come from the cache.
    cache = ArtifactCache(cache_dir)
    assert len(cache.entries()) > 0
