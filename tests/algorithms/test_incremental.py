"""Differential tests for the incremental kernels.

BFS and SSSP repairs must be **bit-identical** to the from-scratch
references after every batch; warm PageRank must stay within the
contraction bound of the cold result.  Cases cover the repair paths
individually (cut tree arcs, disconnection, reconnection, weight
changes, pure inserts) plus randomized chains, both directed and via
hypothesis-driven interleavings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import bfs_parents
from repro.algorithms.incremental import (
    IncrementalBFS,
    IncrementalPageRank,
    IncrementalSSSP,
    RepairStats,
    pagerank_l1_bound,
    pagerank_warm,
)
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp_dijkstra
from repro.errors import ValidationError
from repro.graph.dynamic import DynamicGraph, MutationBatch


def _batch(ins=(), dels=(), w=None):
    ins = list(ins)
    dels = list(dels)
    return MutationBatch(
        insert_src=np.array([e[0] for e in ins], dtype=np.int64),
        insert_dst=np.array([e[1] for e in ins], dtype=np.int64),
        insert_weights=None if w is None else np.asarray(w, np.float64),
        delete_src=np.array([e[0] for e in dels], dtype=np.int64),
        delete_dst=np.array([e[1] for e in dels], dtype=np.int64))


def assert_bfs_matches(kernel, snap, root):
    p_ref, l_ref = bfs_parents(snap, root)
    assert kernel.level.tobytes() == l_ref.tobytes()
    assert kernel.parent.tobytes() == p_ref.tobytes()


def assert_sssp_matches(kernel, snap, root):
    d_ref = sssp_dijkstra(snap, root)
    assert kernel.dist.tobytes() == d_ref.tobytes()


class TestIncrementalBFS:
    def test_insert_only_shortens_paths(self):
        g = DynamicGraph(6)
        g.apply(_batch(ins=[(0, 1), (1, 2), (2, 3), (3, 4)]))
        k = IncrementalBFS(g.snapshot(), 0)
        applied = g.apply(_batch(ins=[(0, 4)]))
        snap = g.snapshot()
        stats = k.update(snap, applied)
        assert isinstance(stats, RepairStats)
        assert_bfs_matches(k, snap, 0)
        assert k.level[4] == 1

    def test_cut_tree_arc_orphans_subtree(self):
        # 0 -> 1 -> 2 -> 3 with a backup path 0 -> 4 -> 2.
        g = DynamicGraph(5)
        g.apply(_batch(ins=[(0, 1), (1, 2), (2, 3), (0, 4), (4, 2)]))
        k = IncrementalBFS(g.snapshot(), 0)
        applied = g.apply(_batch(dels=[(1, 2)]))
        snap = g.snapshot()
        stats = k.update(snap, applied)
        assert stats.n_cut == 1
        assert_bfs_matches(k, snap, 0)
        assert k.level[2] == 2 and k.parent[2] == 4

    def test_disconnect_then_reconnect(self):
        g = DynamicGraph(4)
        g.apply(_batch(ins=[(0, 1), (1, 2), (2, 3)]))
        k = IncrementalBFS(g.snapshot(), 0)
        applied = g.apply(_batch(dels=[(1, 2)]))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_bfs_matches(k, snap, 0)
        assert k.level[2] == -1 and k.level[3] == -1
        applied = g.apply(_batch(ins=[(0, 3), (3, 2)]))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_bfs_matches(k, snap, 0)
        assert k.level[3] == 1 and k.level[2] == 2

    def test_parent_tiebreak_min_witness(self):
        # Both 1 and 2 reach 3 at the same level; 1 must win.
        g = DynamicGraph(4)
        g.apply(_batch(ins=[(0, 1), (0, 2), (2, 3)]))
        k = IncrementalBFS(g.snapshot(), 0)
        applied = g.apply(_batch(ins=[(1, 3)]))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_bfs_matches(k, snap, 0)
        assert k.parent[3] == 1

    def test_empty_batch_is_noop(self):
        g = DynamicGraph(4)
        g.apply(_batch(ins=[(0, 1)]))
        k = IncrementalBFS(g.snapshot(), 0)
        applied = g.apply(_batch())
        snap = g.snapshot()
        stats = k.update(snap, applied)
        assert stats == RepairStats(0, 0, 0)
        assert_bfs_matches(k, snap, 0)

    def test_random_chain_bit_identical(self):
        rng = np.random.default_rng(11)
        for trial in range(10):
            n = int(rng.integers(5, 40))
            g = DynamicGraph(n)
            m0 = int(rng.integers(n, 3 * n))
            g.apply(_batch(ins=list(zip(rng.integers(0, n, m0),
                                        rng.integers(0, n, m0)))))
            root = int(rng.integers(0, n))
            k = IncrementalBFS(g.snapshot(), root)
            for _ in range(6):
                ki = int(rng.integers(0, 8))
                kd = int(rng.integers(0, 8))
                applied = g.apply(_batch(
                    ins=list(zip(rng.integers(0, n, ki),
                                 rng.integers(0, n, ki))),
                    dels=list(zip(rng.integers(0, n, kd),
                                  rng.integers(0, n, kd)))))
                snap = g.snapshot()
                k.update(snap, applied)
                assert_bfs_matches(k, snap, root)


class TestIncrementalSSSP:
    def test_requires_weights(self):
        g = DynamicGraph(3)
        g.apply(_batch(ins=[(0, 1)]))
        with pytest.raises(ValidationError, match="weighted"):
            IncrementalSSSP(g.snapshot(), 0)

    def test_weight_decrease_propagates(self):
        g = DynamicGraph(4, weighted=True)
        g.apply(_batch(ins=[(0, 1), (1, 2), (2, 3)], w=[1.0, 5.0, 1.0]))
        k = IncrementalSSSP(g.snapshot(), 0)
        applied = g.apply(_batch(ins=[(1, 2)], w=[0.5]))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_sssp_matches(k, snap, 0)
        assert k.dist[3] == 1.0 + 0.5 + 1.0

    def test_weight_increase_on_tree_arc_reroutes(self):
        g = DynamicGraph(4, weighted=True)
        g.apply(_batch(ins=[(0, 1), (1, 2), (0, 2)], w=[1.0, 1.0, 9.0]))
        k = IncrementalSSSP(g.snapshot(), 0)
        assert k.dist[2] == 2.0
        # Raising (1,2) makes the direct arc the shortest path.
        applied = g.apply(_batch(ins=[(1, 2)], w=[100.0]))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_sssp_matches(k, snap, 0)
        assert k.dist[2] == 9.0

    def test_delete_disconnects(self):
        g = DynamicGraph(3, weighted=True)
        g.apply(_batch(ins=[(0, 1), (1, 2)], w=[1.0, 1.0]))
        k = IncrementalSSSP(g.snapshot(), 0)
        applied = g.apply(_batch(dels=[(1, 2)]))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_sssp_matches(k, snap, 0)
        assert np.isinf(k.dist[2]) and k.parent[2] == -1

    def test_random_chain_bit_identical(self):
        rng = np.random.default_rng(13)
        for trial in range(10):
            n = int(rng.integers(5, 40))
            g = DynamicGraph(n, weighted=True)
            m0 = int(rng.integers(n, 3 * n))
            g.apply(_batch(ins=list(zip(rng.integers(0, n, m0),
                                        rng.integers(0, n, m0))),
                           w=rng.uniform(0.1, 2.0, m0)))
            root = int(rng.integers(0, n))
            k = IncrementalSSSP(g.snapshot(), root)
            for _ in range(6):
                ki = int(rng.integers(0, 8))
                kd = int(rng.integers(0, 8))
                applied = g.apply(_batch(
                    ins=list(zip(rng.integers(0, n, ki),
                                 rng.integers(0, n, ki))),
                    w=rng.uniform(0.1, 2.0, ki),
                    dels=list(zip(rng.integers(0, n, kd),
                                  rng.integers(0, n, kd)))))
                snap = g.snapshot()
                k.update(snap, applied)
                assert_sssp_matches(k, snap, root)


class TestIncrementalPageRank:
    def test_warm_start_within_bound(self):
        g = DynamicGraph(32)
        rng = np.random.default_rng(5)
        g.apply(_batch(ins=list(zip(rng.integers(0, 32, 96),
                                    rng.integers(0, 32, 96)))))
        k = IncrementalPageRank(g.snapshot())
        applied = g.apply(_batch(ins=[(0, 1), (5, 9)],
                                 dels=[(1, 0)]))
        snap = g.snapshot()
        sweeps = k.update(snap, applied)
        cold, cold_sweeps = pagerank(snap)
        assert float(np.abs(k.rank - cold).sum()) <= pagerank_l1_bound()
        assert sweeps <= cold_sweeps
        assert k.rank.sum() == pytest.approx(1.0, abs=1e-9)

    def test_warm_shape_mismatch_rejected(self):
        g = DynamicGraph(4)
        g.apply(_batch(ins=[(0, 1)]))
        with pytest.raises(ValidationError, match="shape"):
            pagerank_warm(g.snapshot(), np.ones(3) / 3)

    def test_warm_from_cold_converges_in_one_sweep_region(self):
        g = DynamicGraph(16)
        rng = np.random.default_rng(3)
        g.apply(_batch(ins=list(zip(rng.integers(0, 16, 48),
                                    rng.integers(0, 16, 48)))))
        snap = g.snapshot()
        cold, _ = pagerank(snap)
        rank, sweeps = pagerank_warm(snap, cold)
        assert sweeps <= 2
        assert float(np.abs(rank - cold).sum()) <= pagerank_l1_bound()

    def test_bound_formula(self):
        assert pagerank_l1_bound(0.85, 6e-8) == pytest.approx(
            2 * 6e-8 * 0.85 / 0.15)


@st.composite
def mutation_chains(draw, max_n=20):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m0 = draw(st.integers(min_value=1, max_value=3 * n))
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    base = draw(st.lists(pairs, min_size=m0, max_size=m0))
    steps = draw(st.lists(
        st.tuples(st.lists(pairs, max_size=6), st.lists(pairs, max_size=6)),
        min_size=1, max_size=4))
    root = draw(st.integers(0, n - 1))
    return n, base, steps, root


@given(mutation_chains())
@settings(max_examples=40, deadline=None)
def test_bfs_repair_bit_identical_hypothesis(case):
    n, base, steps, root = case
    g = DynamicGraph(n)
    g.apply(_batch(ins=base))
    k = IncrementalBFS(g.snapshot(), root)
    for ins, dels in steps:
        applied = g.apply(_batch(ins=ins, dels=dels))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_bfs_matches(k, snap, root)


@given(mutation_chains(), st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_sssp_repair_bit_identical_hypothesis(case, rnd):
    n, base, steps, root = case
    g = DynamicGraph(n, weighted=True)
    g.apply(_batch(ins=base, w=[rnd.uniform(0.1, 2.0) for _ in base]))
    k = IncrementalSSSP(g.snapshot(), root)
    for ins, dels in steps:
        applied = g.apply(_batch(
            ins=ins, w=[rnd.uniform(0.1, 2.0) for _ in ins], dels=dels))
        snap = g.snapshot()
        k.update(snap, applied)
        assert_sssp_matches(k, snap, root)
