"""Tests for the local clustering coefficient."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.lcc import lcc_wedge_count, local_clustering
from repro.graph.csr import CSRGraph


def _sym_csr(src, dst, n):
    s = np.concatenate([src, dst])
    d = np.concatenate([dst, src])
    return CSRGraph.from_arrays(s, d, n)


def test_triangle_is_fully_clustered():
    csr = _sym_csr(np.array([0, 1, 2]), np.array([1, 2, 0]), 3)
    assert np.allclose(local_clustering(csr), 1.0)


def test_path_has_zero_clustering():
    csr = _sym_csr(np.array([0, 1]), np.array([1, 2]), 3)
    assert np.allclose(local_clustering(csr), 0.0)


def test_matches_networkx(kron10_csr):
    got = local_clustering(kron10_csr)
    g = nx.Graph()
    g.add_nodes_from(range(kron10_csr.n_vertices))
    src = kron10_csr.source_ids()
    g.add_edges_from(zip(src.tolist(), kron10_csr.col_idx.tolist()))
    g.remove_edges_from(nx.selfloop_edges(g))
    want = nx.clustering(g)
    ref = np.array([want[i] for i in range(kron10_csr.n_vertices)])
    assert np.allclose(got, ref)


def test_batching_invariant(kron10_csr):
    a = local_clustering(kron10_csr, batch_rows=64)
    b = local_clustering(kron10_csr,
                         batch_rows=kron10_csr.n_vertices)
    assert np.allclose(a, b)


def test_self_loops_ignored():
    csr = _sym_csr(np.array([0, 1, 2, 0]), np.array([1, 2, 0, 0]), 3)
    assert np.allclose(local_clustering(csr), 1.0)


def test_degree_below_two_is_zero():
    csr = _sym_csr(np.array([0]), np.array([1]), 3)
    lcc = local_clustering(csr)
    assert lcc.tolist() == [0.0, 0.0, 0.0]


def test_wedge_count():
    # Triangle: each vertex has degree 2 -> d(d-1) = 2, total 6.
    csr = _sym_csr(np.array([0, 1, 2]), np.array([1, 2, 0]), 3)
    assert lcc_wedge_count(csr) == pytest.approx(6.0)


def test_dense_graph_has_more_wedges_than_sparse(dota_small,
                                                 patents_small):
    """The cost asymmetry behind Table I's LCC column."""
    d = CSRGraph.from_edge_list(dota_small, symmetrize=True)
    p = CSRGraph.from_edge_list(patents_small)
    per_vertex_d = lcc_wedge_count(d) / d.n_vertices
    per_vertex_p = lcc_wedge_count(p) / p.n_vertices
    assert per_vertex_d > 20 * per_vertex_p
