"""Oracle tests for k-core decomposition.

The reference oracle is the textbook Matula-Beck peel: repeatedly
remove a minimum-degree vertex of the *simple undirected* graph and
assign it the running maximum of the degrees seen at removal time.
Core numbers are mathematically unique, so every comparison is exact
integer equality -- including the fast bucket-queue peel against the
``O(n)``-rescan naive baseline it must match bit for bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.kcore import (core_numbers, core_numbers_naive,
                                    peel_cores)
from repro.graph.csr import CSRGraph
from repro.graph.simple import simple_undirected_view


@st.composite
def csr_graphs(draw, max_n=40, max_m=140):
    """Random CSR with self-loops and duplicate edges allowed."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    dst = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    return CSRGraph.from_arrays(src, dst, n)


def oracle_core_numbers(graph):
    """Vertex-at-a-time min-degree peel over the simple undirected view."""
    view = simple_undirected_view(graph.col_idx, graph.source_ids(),
                                  graph.n_vertices)
    adj = {v: set(view.indices[view.indptr[v]:view.indptr[v + 1]].tolist())
           for v in range(view.n)}
    deg = {v: len(adj[v]) for v in range(view.n)}
    remaining = set(range(view.n))
    core = np.zeros(view.n, dtype=np.int64)
    level = 0
    while remaining:
        v = min(remaining, key=lambda u: (deg[u], u))
        level = max(level, deg[v])
        core[v] = level
        remaining.remove(v)
        for w in adj[v]:
            if w in remaining:
                deg[w] -= 1
    return core


@given(csr_graphs())
@settings(max_examples=100, deadline=None)
def test_core_numbers_match_matula_beck_oracle(graph):
    assert np.array_equal(core_numbers(graph), oracle_core_numbers(graph))


@given(csr_graphs())
@settings(max_examples=100, deadline=None)
def test_fast_peel_matches_naive_rescan(graph):
    """Bucket-queue peel and the O(n)-rescan baseline agree exactly."""
    assert np.array_equal(core_numbers(graph), core_numbers_naive(graph))


@given(csr_graphs())
@settings(max_examples=60, deadline=None)
def test_core_numbers_bit_identical_across_runs(graph):
    first = core_numbers(graph)
    second = core_numbers(graph)
    assert first.dtype == np.int64
    assert np.array_equal(first, second)


def test_self_loops_and_duplicates_ignored():
    """Loops and parallel edges must not inflate core numbers."""
    src = np.array([0, 0, 0, 1, 2, 2], dtype=np.int64)
    dst = np.array([1, 1, 0, 2, 0, 2], dtype=np.int64)
    clean = CSRGraph.from_arrays(np.array([0, 1, 2]),
                                 np.array([1, 2, 0]), 3)
    noisy = CSRGraph.from_arrays(src, dst, 3)
    want = np.array([2, 2, 2], dtype=np.int64)  # the triangle is a 2-core
    assert np.array_equal(core_numbers(clean), want)
    assert np.array_equal(core_numbers(noisy), want)


def test_isolated_and_edgeless_vertices():
    graph = CSRGraph.from_arrays(np.array([0, 1]), np.array([1, 0]), 5)
    core = core_numbers(graph)
    assert np.array_equal(core, [1, 1, 0, 0, 0])

    empty = CSRGraph.from_arrays(np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=np.int64), 4)
    assert np.array_equal(core_numbers(empty), np.zeros(4, dtype=np.int64))


def test_known_nested_cores():
    """A 4-clique with a pendant path: cores 3 / 1 are forced."""
    clique_s, clique_d = zip(*[(a, b) for a in range(4) for b in range(4)
                               if a != b])
    src = np.array(list(clique_s) + [3, 4], dtype=np.int64)
    dst = np.array(list(clique_d) + [4, 5], dtype=np.int64)
    core = core_numbers(CSRGraph.from_arrays(src, dst, 6))
    assert np.array_equal(core, [3, 3, 3, 3, 1, 1])


def test_peel_cores_operates_on_view_directly():
    graph = CSRGraph.from_arrays(np.array([0, 1, 2]), np.array([1, 2, 0]), 3)
    view = simple_undirected_view(graph.col_idx, graph.source_ids(), 3)
    assert np.array_equal(peel_cores(view), core_numbers(graph))
