"""Reference BFS vs. networkx and structural invariants."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import bfs_levels, bfs_parents
from repro.graph.csr import CSRGraph
from repro.graph.validation import validate_bfs_parents


def _nx_digraph(csr):
    g = nx.DiGraph()
    g.add_nodes_from(range(csr.n_vertices))
    src = csr.source_ids()
    g.add_edges_from(zip(src.tolist(), csr.col_idx.tolist()))
    return g


def test_levels_match_networkx(kron10_csr):
    root = 3
    level = bfs_levels(kron10_csr, root)
    want = nx.single_source_shortest_path_length(_nx_digraph(kron10_csr),
                                                 root)
    for v in range(kron10_csr.n_vertices):
        if v in want:
            assert level[v] == want[v]
        else:
            assert level[v] == -1


def test_parents_validate(kron10_csr):
    parent, _ = bfs_parents(kron10_csr, 7)
    validate_bfs_parents(kron10_csr, 7, parent)


def test_tiny_graph_levels(tiny_csr):
    _, level = bfs_parents(tiny_csr, 0)
    assert level.tolist() == [0, 1, 1, 2, 3, -1]


def test_isolated_root():
    csr = CSRGraph.from_arrays(np.array([0]), np.array([1]), 3)
    parent, level = bfs_parents(csr, 2)
    assert level.tolist() == [-1, -1, 0]
    assert parent[2] == 2


def test_deterministic_parent_choice(tiny_csr):
    a, _ = bfs_parents(tiny_csr, 0)
    b, _ = bfs_parents(tiny_csr, 0)
    assert np.array_equal(a, b)
    # vertex 2 is adjacent to both 0 and 1 at level... its parent must
    # be the lowest-id frontier source: 0.
    assert a[2] == 0


@given(seed=st.integers(0, 2**31), n=st.integers(2, 60))
@settings(max_examples=30, deadline=None)
def test_bfs_tree_always_valid(seed, n):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 4 * n))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    csr = CSRGraph.from_arrays(both_src, both_dst, n)
    root = int(rng.integers(0, n))
    parent, level = bfs_parents(csr, root)
    got = validate_bfs_parents(csr, root, parent)
    assert np.array_equal(got, level)
