"""Reference SSSP vs. networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sssp import sssp_dijkstra
from repro.errors import ValidationError
from repro.graph.csr import CSRGraph


def test_tiny_distances(tiny_csr):
    d = sssp_dijkstra(tiny_csr, 0)
    # 0-1 (1), 0-2 (4) but 0-1-2 = 2, 2-3 (1), 3-4 (2); 5 unreachable.
    assert d.tolist() == [0.0, 1.0, 2.0, 3.0, 5.0, np.inf]


def test_matches_networkx(kron10_csr):
    root = 3
    d = sssp_dijkstra(kron10_csr, root)
    g = nx.DiGraph()
    g.add_nodes_from(range(kron10_csr.n_vertices))
    src = kron10_csr.source_ids()
    for s, t, w in zip(src.tolist(), kron10_csr.col_idx.tolist(),
                       kron10_csr.weights.tolist()):
        # parallel edges: keep the lightest (matches our dedup-min).
        if g.has_edge(s, t):
            g[s][t]["weight"] = min(g[s][t]["weight"], w)
        else:
            g.add_edge(s, t, weight=w)
    want = nx.single_source_dijkstra_path_length(g, root)
    for v in range(kron10_csr.n_vertices):
        if v in want:
            assert d[v] == pytest.approx(want[v], abs=1e-12)
        else:
            assert np.isinf(d[v])


def test_requires_weights(tiny_edges):
    csr = CSRGraph.from_arrays(tiny_edges.src, tiny_edges.dst, 6)
    with pytest.raises(ValidationError):
        sssp_dijkstra(csr, 0)


def test_rejects_negative_weights():
    csr = CSRGraph.from_arrays(np.array([0]), np.array([1]), 2,
                               weights=np.array([-1.0]))
    with pytest.raises(ValidationError):
        sssp_dijkstra(csr, 0)


def test_parallel_edges_use_min_weight():
    csr = CSRGraph.from_arrays(np.array([0, 0]), np.array([1, 1]), 2,
                               weights=np.array([5.0, 2.0]))
    d = sssp_dijkstra(csr, 0)
    assert d[1] == 2.0


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_triangle_inequality(seed):
    rng = np.random.default_rng(seed)
    n = 30
    m = 120
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    w = rng.uniform(0.01, 1.0, m)
    csr = CSRGraph.from_arrays(src, dst, n, weights=w)
    d = sssp_dijkstra(csr, 0)
    # For every arc (u, v, w): d[v] <= d[u] + w.
    s = csr.source_ids()
    finite = np.isfinite(d[s])
    assert np.all(d[csr.col_idx[finite]]
                  <= d[s[finite]] + csr.weights[finite] + 1e-9)
