"""Oracle tests for afforest-style connected components.

The converged labels are canonical (each vertex carries the minimum
member id of its component), which makes every comparison exact: against
a pure-Python union-find oracle, against scipy's connected components,
and against the repo's own hash-min WCC reference.  The sampling +
giant-component-skip phases must not change the answer -- only the work
-- so ``neighbor_rounds`` is swept too.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cc import DEFAULT_NEIGHBOR_ROUNDS, afforest
from repro.algorithms.wcc import weakly_connected_components
from repro.graph.csr import CSRGraph


@st.composite
def csr_graphs(draw, max_n=40, max_m=140):
    """Random CSR with self-loops and duplicate edges allowed."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    dst = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    return CSRGraph.from_arrays(src, dst, n)


def oracle_labels(graph):
    """Union-find with min-member canonicalization."""
    parent = list(range(graph.n_vertices))

    def find(v):
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for s, d in zip(graph.source_ids().tolist(), graph.col_idx.tolist()):
        rs, rd = find(s), find(d)
        if rs != rd:
            parent[max(rs, rd)] = min(rs, rd)
    labels = np.empty(graph.n_vertices, dtype=np.int64)
    mins = {}
    for v in range(graph.n_vertices):
        r = find(v)
        mins.setdefault(r, v)  # ids ascend, so first hit is the min
    for v in range(graph.n_vertices):
        labels[v] = mins[find(v)]
    return labels


@given(csr_graphs())
@settings(max_examples=100, deadline=None)
def test_afforest_matches_union_find_oracle(graph):
    assert np.array_equal(afforest(graph), oracle_labels(graph))


@given(csr_graphs())
@settings(max_examples=100, deadline=None)
def test_afforest_matches_hashmin_wcc(graph):
    """Both converge to min-member labels, so equality is exact."""
    assert np.array_equal(afforest(graph),
                          weakly_connected_components(graph))


@given(csr_graphs(), st.integers(0, 5))
@settings(max_examples=100, deadline=None)
def test_neighbor_rounds_never_change_the_answer(graph, rounds):
    """Sampling depth trades work, not correctness."""
    assert np.array_equal(afforest(graph, neighbor_rounds=rounds),
                          oracle_labels(graph))


@given(csr_graphs())
@settings(max_examples=60, deadline=None)
def test_labels_bit_identical_across_runs(graph):
    first = afforest(graph)
    second = afforest(graph, neighbor_rounds=DEFAULT_NEIGHBOR_ROUNDS)
    assert first.dtype == np.int64
    assert np.array_equal(first, second)


def test_direction_is_ignored():
    """Components are weak: a one-way chain is a single component."""
    graph = CSRGraph.from_arrays(np.array([0, 1, 2]),
                                 np.array([1, 2, 3]), 4)
    assert np.array_equal(afforest(graph), np.zeros(4, dtype=np.int64))


def test_disconnected_with_isolated_vertices():
    graph = CSRGraph.from_arrays(np.array([0, 3, 4]),
                                 np.array([1, 4, 5]), 8)
    want = np.array([0, 0, 2, 3, 3, 3, 6, 7], dtype=np.int64)
    assert np.array_equal(afforest(graph), want)


def test_giant_component_skip_keeps_small_components_exact():
    """A giant star plus late small components exercises the skip path:
    the rest-edge pass must still merge everything outside the giant."""
    n = 64
    star_s = np.zeros(40, dtype=np.int64)
    star_d = np.arange(1, 41, dtype=np.int64)
    tail_s = np.array([50, 51, 60, 62], dtype=np.int64)
    tail_d = np.array([51, 52, 61, 60], dtype=np.int64)
    graph = CSRGraph.from_arrays(np.concatenate([star_s, tail_s]),
                                 np.concatenate([star_d, tail_d]), n)
    assert np.array_equal(afforest(graph), oracle_labels(graph))


def test_edgeless_graph_is_all_singletons():
    empty = CSRGraph.from_arrays(np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=np.int64), 6)
    assert np.array_equal(afforest(empty), np.arange(6))
