"""Reference PageRank vs. networkx and stochastic invariants."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank
from repro.graph.csr import CSRGraph


def test_sums_to_one(kron10_csr):
    rank, _ = pagerank(kron10_csr)
    assert rank.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(rank > 0)


def test_matches_networkx_on_simple_graph():
    """Compare on a dedup'd graph (networkx collapses multi-edges)."""
    rng = np.random.default_rng(0)
    n, m = 64, 300
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    key = src * n + dst
    _, keep = np.unique(key, return_index=True)
    csr = CSRGraph.from_arrays(src[keep], dst[keep], n)
    rank, _ = pagerank(csr, epsilon=1e-12)

    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(src[keep].tolist(), dst[keep].tolist()))
    want = nx.pagerank(g, alpha=0.85, tol=1e-14, max_iter=1000)
    ref = np.array([want[i] for i in range(n)])
    assert np.abs(rank - ref).sum() < 1e-8


def test_dangling_mass_conserved():
    """A sink vertex must not leak rank."""
    csr = CSRGraph.from_arrays(np.array([0, 1]), np.array([1, 2]), 3)
    rank, _ = pagerank(csr)
    assert rank.sum() == pytest.approx(1.0, abs=1e-9)
    assert rank[2] > rank[0]  # sink accumulates


def test_uniform_on_cycle():
    n = 8
    src = np.arange(n)
    dst = (src + 1) % n
    csr = CSRGraph.from_arrays(src, dst, n)
    rank, _ = pagerank(csr)
    assert np.allclose(rank, 1.0 / n, atol=1e-9)


def test_epsilon_controls_iterations(kron10_csr):
    _, it_loose = pagerank(kron10_csr, epsilon=1e-3)
    _, it_tight = pagerank(kron10_csr, epsilon=1e-10)
    assert it_tight > it_loose


def test_max_iterations_cap(kron10_csr):
    rank, it = pagerank(kron10_csr, epsilon=1e-300, max_iterations=5)
    assert it == 5


def test_empty_graph():
    rank, it = pagerank(CSRGraph(row_ptr=np.array([0]),
                                 col_idx=np.array([], dtype=np.int64)))
    assert rank.size == 0
    assert it == 0


def test_higher_in_degree_higher_rank():
    """A hub with many in-links outranks leaves."""
    src = np.array([1, 2, 3, 4, 0])
    dst = np.array([0, 0, 0, 0, 1])
    csr = CSRGraph.from_arrays(src, dst, 5)
    rank, _ = pagerank(csr)
    assert rank[0] == rank.max()
