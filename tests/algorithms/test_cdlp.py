"""Tests for community detection by label propagation."""

import numpy as np

from repro.algorithms.cdlp import cdlp, propagate_labels_once
from repro.graph.csr import CSRGraph


def _csr(src, dst, n):
    return CSRGraph.from_arrays(np.asarray(src), np.asarray(dst), n)


def test_one_round_mode():
    """Vertex 3 hears labels {0, 0, 1}: mode is 0."""
    csr = _csr([0, 1, 2, 0], [3, 3, 3, 1], 4)
    labels = np.array([0, 0, 1, 3], dtype=np.int64)
    out = propagate_labels_once(csr.source_ids(), csr.col_idx, labels, 4)
    assert out[3] == 0


def test_tie_breaks_to_smallest():
    """Labels {7, 2} tie at one each: 2 wins."""
    csr = _csr([0, 1], [2, 2], 3)
    labels = np.array([7, 2, 9], dtype=np.int64)
    out = propagate_labels_once(csr.source_ids(), csr.col_idx, labels, 3)
    assert out[2] == 2


def test_isolated_vertex_keeps_label():
    csr = _csr([0], [1], 3)
    labels = np.arange(3, dtype=np.int64)
    out = propagate_labels_once(csr.source_ids(), csr.col_idx, labels, 3)
    assert out[2] == 2


def test_clique_converges_to_min_id():
    n = 6
    src, dst = [], []
    for i in range(n):
        for j in range(n):
            if i != j:
                src.append(i)
                dst.append(j)
    csr = _csr(src, dst, n)
    labels = cdlp(csr, iterations=5)
    assert np.all(labels == 0)


def test_two_cliques_separate():
    src, dst = [], []
    for block in (range(0, 4), range(4, 8)):
        for i in block:
            for j in block:
                if i != j:
                    src.append(i)
                    dst.append(j)
    csr = _csr(src, dst, 8)
    labels = cdlp(csr, iterations=5)
    assert np.all(labels[:4] == 0)
    assert np.all(labels[4:] == 4)


def test_deterministic(kron10_csr):
    a = cdlp(kron10_csr, 6)
    b = cdlp(kron10_csr, 6)
    assert np.array_equal(a, b)


def test_zero_iterations_identity(kron10_csr):
    labels = cdlp(kron10_csr, 0)
    assert np.array_equal(labels, np.arange(kron10_csr.n_vertices))


def test_empty_graph():
    csr = CSRGraph(row_ptr=np.zeros(4, dtype=np.int64),
                   col_idx=np.array([], dtype=np.int64))
    labels = cdlp(csr, 3)
    assert np.array_equal(labels, np.arange(3))
