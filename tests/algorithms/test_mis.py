"""Oracle tests for the deterministic Luby-style maximal independent set.

With *static* per-vertex priorities the parallel Luby rounds compute
exactly the set the sequential greedy sweep (visit vertices in
increasing priority, take unless a neighbor was taken) would -- that
set is unique for a given priority permutation, so agreement is exact.
The suites also check the defining properties directly: independence,
maximality, and seed-stable bit-identity across repeated runs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import (DEFAULT_MIS_SEED, luby_rounds,
                                  maximal_independent_set, mis_priorities)
from repro.graph.csr import CSRGraph
from repro.graph.simple import simple_undirected_view


@st.composite
def csr_graphs(draw, max_n=40, max_m=140):
    """Random CSR with self-loops and duplicate edges allowed."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    dst = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    return CSRGraph.from_arrays(src, dst, n)


def oracle_greedy(view, priorities):
    """Sequential greedy by increasing priority over the simple view."""
    order = np.argsort(priorities, kind="stable")
    in_set = np.zeros(view.n, dtype=bool)
    blocked = np.zeros(view.n, dtype=bool)
    for v in order:
        if blocked[v]:
            continue
        in_set[v] = True
        nbrs = view.indices[view.indptr[v]:view.indptr[v + 1]]
        blocked[nbrs] = True
    return in_set


def _view(graph):
    return simple_undirected_view(graph.col_idx, graph.source_ids(),
                                  graph.n_vertices)


@given(csr_graphs(), st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_luby_matches_sequential_greedy(graph, seed):
    pr = mis_priorities(graph.n_vertices, seed)
    view = _view(graph)
    in_set, rounds = luby_rounds(view, pr)
    assert np.array_equal(in_set, oracle_greedy(view, pr))
    assert rounds >= (1 if graph.n_vertices else 0)


@given(csr_graphs())
@settings(max_examples=100, deadline=None)
def test_result_is_independent_and_maximal(graph):
    in_set = maximal_independent_set(graph)
    view = _view(graph)
    src, dst = view.to_edge_arrays()
    # Independence: no simple edge joins two set members.
    assert not np.any(in_set[src] & in_set[dst])
    # Maximality: every non-member has a member neighbor (self-loop-free
    # view, so isolated vertices are always members).
    covered = in_set.copy()
    if src.size:
        covered |= np.bincount(src, weights=in_set[dst].astype(np.float64),
                               minlength=view.n) > 0
    assert covered.all()


@given(csr_graphs())
@settings(max_examples=60, deadline=None)
def test_default_seed_bit_identical_across_runs(graph):
    first = maximal_independent_set(graph)
    second = maximal_independent_set(graph, seed=DEFAULT_MIS_SEED)
    assert first.dtype == np.bool_
    assert np.array_equal(first, second)


def test_priorities_are_a_seeded_permutation():
    pr = mis_priorities(17, 123)
    assert pr.dtype == np.int64
    assert np.array_equal(np.sort(pr), np.arange(17))
    assert np.array_equal(pr, mis_priorities(17, 123))
    assert not np.array_equal(pr, mis_priorities(17, 124))


def test_self_loops_do_not_block_membership():
    """A self-looped vertex is still eligible: loops vanish in the
    simple view, so an isolated self-looper must join the set."""
    graph = CSRGraph.from_arrays(np.array([0, 1]), np.array([0, 2]), 3)
    in_set = maximal_independent_set(graph)
    assert in_set[0]


def test_path_graph_takes_alternating_set():
    """On a 3-path the unique MIS for any priority with middle vertex
    losing is both endpoints."""
    graph = CSRGraph.from_arrays(np.array([0, 1]), np.array([1, 2]), 3)
    pr = np.array([0, 1, 2], dtype=np.int64)
    in_set, _ = luby_rounds(_view(graph), pr)
    assert np.array_equal(in_set, [True, False, True])


def test_edgeless_graph_takes_everyone():
    empty = CSRGraph.from_arrays(np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=np.int64), 5)
    assert maximal_independent_set(empty).all()
