"""Reference WCC vs. networkx."""

import networkx as nx
import numpy as np

from repro.algorithms.wcc import (
    canonical_component_labels,
    weakly_connected_components,
)
from repro.graph.csr import CSRGraph


def test_two_components():
    csr = CSRGraph.from_arrays(np.array([0, 2]), np.array([1, 3]), 5)
    labels = weakly_connected_components(csr)
    assert labels.tolist() == [0, 0, 2, 2, 4]


def test_direction_ignored():
    """Weak connectivity: a->b joins them regardless of direction."""
    csr = CSRGraph.from_arrays(np.array([1]), np.array([0]), 2)
    labels = weakly_connected_components(csr)
    assert labels.tolist() == [0, 0]


def test_matches_networkx(patents_small):
    csr = CSRGraph.from_edge_list(patents_small)
    labels = weakly_connected_components(csr)
    g = nx.DiGraph()
    g.add_nodes_from(range(csr.n_vertices))
    src = csr.source_ids()
    g.add_edges_from(zip(src.tolist(), csr.col_idx.tolist()))
    for comp in nx.weakly_connected_components(g):
        comp = sorted(comp)
        assert np.all(labels[comp] == comp[0])


def test_canonical_labels_idempotent(kron10_csr):
    labels = weakly_connected_components(kron10_csr)
    assert np.array_equal(canonical_component_labels(labels), labels)


def test_canonical_relabeling():
    raw = np.array([5, 5, 2, 2, 5])
    got = canonical_component_labels(raw)
    assert got.tolist() == [0, 0, 2, 2, 0]


def test_empty():
    got = canonical_component_labels(np.array([], dtype=np.int64))
    assert got.size == 0
