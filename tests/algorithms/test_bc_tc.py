"""Tests for the Sec. V extension kernels: BC and triangle counting."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.bc import betweenness_centrality
from repro.algorithms.tc import triangle_count
from repro.graph.csr import CSRGraph


def _simple_sym(src, dst, n):
    s = np.concatenate([src, dst])
    d = np.concatenate([dst, src])
    key = s * n + d
    _, idx = np.unique(key, return_index=True)
    return CSRGraph.from_arrays(s[idx], d[idx], n)


@pytest.fixture(scope="module")
def random_graph():
    rng = np.random.default_rng(3)
    n, m = 50, 180
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    return _simple_sym(src[keep], dst[keep], n)


def _nx_graph(csr):
    g = nx.Graph()
    g.add_nodes_from(range(csr.n_vertices))
    src = csr.source_ids()
    g.add_edges_from(zip(src.tolist(), csr.col_idx.tolist()))
    return g


class TestBetweenness:
    def test_matches_networkx_exact(self, random_graph):
        got = betweenness_centrality(random_graph, normalize=False)
        want = nx.betweenness_centrality(_nx_graph(random_graph),
                                         normalized=False)
        ref = np.array([want[i] for i in range(random_graph.n_vertices)])
        # Our directed sweep counts each undirected path twice.
        assert np.allclose(got / 2, ref, atol=1e-9)

    def test_path_graph_center_highest(self):
        n = 7
        src = np.arange(n - 1)
        csr = _simple_sym(src, src + 1, n)
        bc = betweenness_centrality(csr, normalize=False)
        assert np.argmax(bc) == n // 2
        assert bc[0] == 0.0

    def test_star_center(self):
        n = 6
        src = np.zeros(n - 1, dtype=np.int64)
        dst = np.arange(1, n)
        csr = _simple_sym(src, dst, n)
        bc = betweenness_centrality(csr, normalize=False)
        assert bc[0] > 0
        assert np.allclose(bc[1:], 0.0)

    def test_sampled_estimates_exact(self, random_graph):
        exact = betweenness_centrality(random_graph, normalize=False)
        rng = np.random.default_rng(0)
        sources = rng.choice(random_graph.n_vertices, 25, replace=False)
        approx = betweenness_centrality(random_graph, sources=sources,
                                        normalize=True)
        # Correlated estimate (rank correlation on the top vertices).
        top_exact = set(np.argsort(exact)[-5:])
        top_approx = set(np.argsort(approx)[-5:])
        assert len(top_exact & top_approx) >= 3


class TestTriangleCount:
    def test_triangle(self):
        csr = _simple_sym(np.array([0, 1, 2]), np.array([1, 2, 0]), 3)
        assert triangle_count(csr) == 1

    def test_clique(self):
        n = 6
        src, dst = [], []
        for i in range(n):
            for j in range(i + 1, n):
                src.append(i)
                dst.append(j)
        csr = _simple_sym(np.array(src), np.array(dst), n)
        assert triangle_count(csr) == n * (n - 1) * (n - 2) // 6

    def test_triangle_free(self):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 4])
        csr = _simple_sym(src, dst, 5)
        assert triangle_count(csr) == 0

    def test_matches_networkx(self, random_graph):
        got = triangle_count(random_graph)
        want = sum(nx.triangles(_nx_graph(random_graph)).values()) // 3
        assert got == want

    def test_kron_matches_networkx(self, kron10_csr):
        got = triangle_count(kron10_csr)
        g = nx.Graph()
        g.add_nodes_from(range(kron10_csr.n_vertices))
        src = kron10_csr.source_ids()
        g.add_edges_from(zip(src.tolist(), kron10_csr.col_idx.tolist()))
        g.remove_edges_from(nx.selfloop_edges(g))
        want = sum(nx.triangles(g).values()) // 3
        assert got == want


class TestGapExtensionKernels:
    def test_gap_provides_all_nine(self):
        from repro.systems import create_system

        assert create_system("gap").provides == {
            "bfs", "sssp", "pagerank", "wcc", "bc", "tc",
            "kcore", "mis", "cc"}

    def test_bc_through_system(self, kron10_dataset):
        from repro.systems import create_system

        s = create_system("gap")
        loaded = s.load(kron10_dataset)
        res = s.run(loaded, "bc", n_sources=4)
        assert res.output["bc"].shape == (loaded.n_vertices,)
        assert res.counters["sources"] == 4
        assert res.time_s > 0

    def test_tc_through_system(self, kron10_dataset, kron10_csr):
        from repro.algorithms.tc import triangle_count
        from repro.systems import create_system

        s = create_system("gap")
        loaded = s.load(kron10_dataset)
        res = s.run(loaded, "tc")
        assert int(res.output["triangles"][0]) == triangle_count(
            kron10_csr)

    def test_other_systems_refuse(self, kron10_dataset):
        from repro.errors import SystemCapabilityError
        from repro.systems import create_system

        s = create_system("graphmat")
        loaded = s.load(kron10_dataset)
        with pytest.raises(SystemCapabilityError):
            s.run(loaded, "tc")
