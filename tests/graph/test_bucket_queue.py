"""Property-based tests for the lazy monotone :class:`BucketQueue`.

The queue was generalized out of GAP's delta-stepping so k-core peeling
could share it; its contract is that a pop yields *exactly* the
sorted-unique member set a full ``np.flatnonzero(key == k)`` scan of the
lowest occupied bucket would have produced, with stale entries (pushed
under a key that has since changed) skipped lazily.  The reference model
here is that literal scan over the caller-owned ``key`` array.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.frontier import BucketQueue


def scan_reference(key):
    """Lowest live bucket by brute-force scan: ``(k, sorted ids)``."""
    live = key >= 0
    if not live.any():
        return None
    k = int(key[live].min())
    return k, np.flatnonzero(key == k).astype(np.int64)


def drain(bq, key):
    """Pop-to-empty, retiring members (``key = -1``) after each pop."""
    out = []
    while (got := bq.pop(key)) is not None:
        k, members = got
        out.append((k, members.copy()))
        key[members] = -1
    return out


@st.composite
def key_arrays(draw, max_n=60, max_key=12):
    n = draw(st.integers(min_value=1, max_value=max_n))
    keys = draw(st.lists(st.integers(-1, max_key), min_size=n, max_size=n))
    return np.array(keys, dtype=np.int64)


@given(key_arrays())
@settings(max_examples=120, deadline=None)
def test_drain_matches_scan_reference(key):
    """Push everything once; each pop must equal the brute-force scan."""
    bq = BucketQueue()
    live = np.flatnonzero(key >= 0).astype(np.int64)
    bq.push(live, key[live])
    while (want := scan_reference(key)) is not None:
        got = bq.pop(key)
        assert got is not None
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])
        key[got[1]] = -1
    assert bq.pop(key) is None


@given(key_arrays(), st.data())
@settings(max_examples=120, deadline=None)
def test_decrease_key_repush_pops_at_new_key(key, data):
    """Re-pushing under a lower key makes the old entries stale: the
    vertex must surface in its *new* bucket and never in the old one."""
    bq = BucketQueue()
    live = np.flatnonzero(key >= 0).astype(np.int64)
    bq.push(live, key[live])
    if live.size:
        # Decrease a random subset of keys and re-push, as peel/relax do.
        k = data.draw(st.integers(1, live.size))
        idx = np.array(data.draw(st.lists(
            st.integers(0, live.size - 1), min_size=k, max_size=k,
            unique=True)), dtype=np.int64)
        moved = live[idx]
        key[moved] = np.maximum(key[moved] - data.draw(st.integers(1, 5)), 0)
        bq.push(moved, key[moved])
    popped = drain(bq, key.copy())
    keys_out = [k for k, _ in popped]
    assert keys_out == sorted(keys_out)  # monotone pop order
    seen = np.concatenate([m for _, m in popped]) if popped else \
        np.empty(0, dtype=np.int64)
    # Every live vertex appears exactly once, at its final (lowest) key.
    assert np.array_equal(np.sort(seen), np.sort(live))
    for k, members in popped:
        assert np.array_equal(key[members], np.full(members.size, k))


@given(key_arrays())
@settings(max_examples=120, deadline=None)
def test_duplicate_pushes_pop_sorted_unique(key):
    """Pushing the same vertices repeatedly must not duplicate pops."""
    bq = BucketQueue()
    live = np.flatnonzero(key >= 0).astype(np.int64)
    for _ in range(3):
        bq.push(live, key[live])
    popped = drain(bq, key.copy())
    seen = np.concatenate([m for _, m in popped]) if popped else \
        np.empty(0, dtype=np.int64)
    assert np.array_equal(np.sort(seen), np.sort(live))
    for _, members in popped:
        assert np.array_equal(members, np.unique(members))


def test_pop_skips_fully_stale_bucket():
    """A bucket whose every entry went stale is skipped, not returned
    empty -- the lazy-bucket part of the contract."""
    key = np.array([5, 5, 7], dtype=np.int64)
    bq = BucketQueue()
    bq.push(np.array([0, 1], dtype=np.int64), key[[0, 1]])
    key[[0, 1]] = 7  # both entries in bucket 5 are now stale
    bq.push(np.array([0, 1], dtype=np.int64), key[[0, 1]])
    bq.push(np.array([2], dtype=np.int64), key[[2]])
    got = bq.pop(key)
    assert got is not None
    k, members = got
    assert k == 7
    assert np.array_equal(members, [0, 1, 2])
    key[members] = -1
    assert bq.pop(key) is None


def test_empty_queue_pops_none():
    bq = BucketQueue()
    assert bq.pop(np.empty(0, dtype=np.int64)) is None
    bq.push(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    assert bq.pop(np.empty(0, dtype=np.int64)) is None


class TestPushAlignment:
    """Regression: misaligned push arrays must raise, not drop entries.

    A longer ``vertices`` array used to silently lose its tail after
    the ``vertices[order]`` fancy-indexing, leaving vertices with a
    live key but no pending entry -- they were never popped.
    """

    def test_longer_vertices_rejected(self):
        import pytest

        from repro.errors import ConfigError

        bq = BucketQueue()
        with pytest.raises(ConfigError, match=r"3.*!=.*2"):
            bq.push(np.array([0, 1, 2], dtype=np.int64),
                    np.array([4, 4], dtype=np.int64))

    def test_longer_vertices_with_empty_keys_rejected(self):
        import pytest

        from repro.errors import ConfigError

        bq = BucketQueue()
        # The old early-return on empty keys masked the mismatch.
        with pytest.raises(ConfigError):
            bq.push(np.array([0, 1], dtype=np.int64),
                    np.empty(0, dtype=np.int64))

    def test_longer_keys_rejected(self):
        import pytest

        from repro.errors import ConfigError

        bq = BucketQueue()
        with pytest.raises(ConfigError):
            bq.push(np.array([0], dtype=np.int64),
                    np.array([1, 2], dtype=np.int64))
