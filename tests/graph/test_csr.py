"""Unit tests for CSRGraph."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


class TestBuild:
    def test_from_arrays_sorted_rows(self):
        csr = CSRGraph.from_arrays(np.array([1, 0, 1]),
                                   np.array([2, 1, 0]), 3)
        assert csr.row_ptr.tolist() == [0, 1, 3, 3]
        assert csr.neighbors(1).tolist() == [0, 2]

    def test_from_edge_list_symmetrize(self, tiny_edges):
        csr = CSRGraph.from_edge_list(tiny_edges, symmetrize=True)
        assert csr.n_edges == 2 * tiny_edges.n_edges
        # Undirected: in-degree == out-degree.
        assert np.array_equal(csr.in_degrees(), csr.out_degrees())

    def test_empty_graph(self):
        csr = CSRGraph.from_arrays(np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64), 4)
        assert csr.n_vertices == 4
        assert csr.n_edges == 0

    def test_duplicate_edges_kept(self):
        csr = CSRGraph.from_arrays(np.array([0, 0]), np.array([1, 1]), 2)
        assert csr.n_edges == 2

    def test_invalid_row_ptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(row_ptr=np.array([0, 2, 1]),
                     col_idx=np.array([0, 1]))

    def test_row_ptr_must_end_at_nnz(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(row_ptr=np.array([0, 1]), col_idx=np.array([0, 1]))

    def test_weights_alignment_checked(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(row_ptr=np.array([0, 1]), col_idx=np.array([0]),
                     weights=np.array([1.0, 2.0]))


class TestAccessors:
    def test_neighbors_is_view(self, tiny_csr):
        nbrs = tiny_csr.neighbors(0)
        assert nbrs.base is tiny_csr.col_idx

    def test_degrees_sum_to_nnz(self, kron10_csr):
        assert kron10_csr.out_degrees().sum() == kron10_csr.n_edges
        assert kron10_csr.in_degrees().sum() == kron10_csr.n_edges

    def test_edge_weights_requires_weights(self):
        csr = CSRGraph.from_arrays(np.array([0]), np.array([1]), 2)
        with pytest.raises(GraphFormatError):
            csr.edge_weights(0)

    def test_has_arc(self, tiny_csr):
        assert tiny_csr.has_arc(0, 1)
        assert tiny_csr.has_arc(1, 0)
        assert not tiny_csr.has_arc(0, 4)
        assert not tiny_csr.has_arc(5, 0)


class TestDerived:
    def test_transpose_involution(self, kron10_csr):
        tt = kron10_csr.transposed().transposed()
        assert np.array_equal(tt.row_ptr, kron10_csr.row_ptr)
        assert np.array_equal(tt.col_idx, kron10_csr.col_idx)

    def test_transpose_swaps_degrees(self, patents_small):
        csr = CSRGraph.from_edge_list(patents_small)
        t = csr.transposed()
        assert np.array_equal(t.out_degrees(), csr.in_degrees())

    def test_source_ids_matches_row_ptr(self, kron10_csr):
        src = kron10_csr.source_ids()
        assert src.size == kron10_csr.n_edges
        deg = np.bincount(src, minlength=kron10_csr.n_vertices)
        assert np.array_equal(deg, kron10_csr.out_degrees())

    def test_to_scipy_shape_and_nnz(self, tiny_csr):
        mat = tiny_csr.to_scipy()
        assert mat.shape == (6, 6)
        assert mat.nnz == tiny_csr.n_edges

    def test_to_edge_arrays_roundtrip(self, kron10):
        csr = CSRGraph.from_edge_list(kron10)
        src, dst = csr.to_edge_arrays()
        back = CSRGraph.from_arrays(src, dst, csr.n_vertices)
        assert np.array_equal(back.col_idx, csr.col_idx)
        assert np.array_equal(back.row_ptr, csr.row_ptr)


class TestEndpointValidation:
    """Regression: out-of-range endpoints must raise GraphFormatError.

    An id ``>= n`` used to surface as a raw NumPy shape error out of
    the bincount/cumsum pair; a *negative* id silently corrupted the
    counting sort into an inconsistent row_ptr.
    """

    def test_src_at_or_above_n_rejected_with_index(self):
        with pytest.raises(GraphFormatError,
                           match=r"src\[1\] = 50.*\[0, 5\)"):
            CSRGraph.from_arrays(np.array([0, 50]), np.array([1, 2]), 5)

    def test_negative_dst_rejected_with_index(self):
        with pytest.raises(GraphFormatError,
                           match=r"dst\[0\] = -2"):
            CSRGraph.from_arrays(np.array([0]), np.array([-2]), 5)

    def test_negative_src_no_longer_corrupts_silently(self):
        with pytest.raises(GraphFormatError, match=r"src\[2\] = -1"):
            CSRGraph.from_arrays(np.array([0, 1, -1]),
                                 np.array([1, 2, 0]), 4)

    def test_dst_equal_n_rejected(self):
        with pytest.raises(GraphFormatError, match=r"dst\[0\] = 3"):
            CSRGraph.from_arrays(np.array([0]), np.array([3]), 3)

    def test_boundary_ids_accepted(self):
        csr = CSRGraph.from_arrays(np.array([0, 3]), np.array([3, 0]), 4)
        assert csr.n_edges == 2
