"""Property-based equivalence tests for the shared frontier primitives.

Every primitive in :mod:`repro.graph.frontier` carries a bit-identity
contract against the naive NumPy idiom it replaced; these tests state
the naive versions inline and compare outputs exactly (``array_equal``,
never ``allclose``) under hypothesis-generated graphs covering empty
frontiers, self-loops, duplicate edges, and single-vertex graphs.  Both
the sort-based small path and the mask-sweep large path are exercised
explicitly.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.dcsr import DCSRMatrix
from repro.graph.frontier import (DENSE_FRONTIER_DENSITY, Frontier,
                                  claim_first_parent, dedup_ids,
                                  gather_slots, segment_min_scatter)
from repro.graph.scratch import (COUNTERS, KernelScratch, consume_counters,
                                 scratch_for)

# ----------------------------------------------------------------------
# Naive references (the exact idioms the library replaced).
# ----------------------------------------------------------------------


def ref_gather(row_ptr, frontier):
    starts = row_ptr[frontier]
    counts = row_ptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    return slots, counts


def ref_claim(nbrs, srcs, visited, parent):
    """Fresh-filter + lexsort first-occurrence (min src per target)."""
    fresh = ~visited[nbrs]
    nbrs = nbrs[fresh]
    srcs = srcs[fresh]
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((srcs, nbrs))
    nbrs_s = nbrs[order]
    srcs_s = srcs[order]
    first = np.ones(nbrs_s.size, dtype=bool)
    first[1:] = nbrs_s[1:] != nbrs_s[:-1]
    new_v = nbrs_s[first]
    parent[new_v] = srcs_s[first]
    visited[new_v] = True
    return new_v


def ref_min_scatter(dist, dsts, cand):
    np.minimum.at(dist, dsts, cand)
    return np.unique(dsts)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def csr_graphs(draw, max_n=50, max_m=160, weighted=False):
    """Random CSR with self-loops and duplicate edges allowed; ``max_n``
    small enough that the mask (large) paths trigger, see below."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    dst = np.array(draw(st.lists(st.integers(0, n - 1),
                                 min_size=m, max_size=m)), dtype=np.int64)
    w = None
    if weighted:
        w = np.array(draw(st.lists(st.floats(0.001, 10.0, allow_nan=False),
                                   min_size=m, max_size=m)))
    return CSRGraph.from_arrays(src, dst, n, weights=w)


@st.composite
def graph_and_frontier(draw, **kwargs):
    csr = draw(csr_graphs(**kwargs))
    n = csr.n_vertices
    members = draw(st.lists(st.integers(0, n - 1), max_size=n))
    frontier = np.unique(np.array(members, dtype=np.int64))
    return csr, frontier


# ----------------------------------------------------------------------
# gather_slots
# ----------------------------------------------------------------------


@given(graph_and_frontier())
@settings(max_examples=120, deadline=None)
def test_gather_slots_matches_repeat_arange(case):
    csr, frontier = case
    scratch = KernelScratch(csr.n_vertices, csr.n_edges)
    want_slots, want_counts = ref_gather(csr.row_ptr, frontier)
    gs = gather_slots(csr.row_ptr, frontier, scratch)
    assert np.array_equal(gs.slots, want_slots)
    assert np.array_equal(gs.counts, want_counts)
    assert gs.total == want_slots.size
    want_offsets = (np.concatenate(([0], np.cumsum(want_counts)[:-1]))
                    if want_counts.size else np.empty(0, dtype=np.int64))
    assert np.array_equal(gs.offsets, want_offsets)


def test_gather_slots_empty_frontier():
    csr = CSRGraph.from_arrays(np.array([0, 1]), np.array([1, 0]), 2)
    scratch = KernelScratch(2, 2)
    gs = gather_slots(csr.row_ptr, np.empty(0, dtype=np.int64), scratch)
    assert gs.total == 0
    assert gs.slots.size == 0 and gs.counts.size == 0


def test_gather_slots_counts_edges():
    csr = CSRGraph.from_arrays(np.array([0, 0, 1]), np.array([1, 2, 2]), 3)
    scratch = KernelScratch(3, 3)
    consume_counters()
    gather_slots(csr.row_ptr, np.array([0, 1], dtype=np.int64), scratch)
    assert consume_counters()["gather_edges"] == 3.0


def test_gather_slots_grows_arena():
    """A gather larger than the initial arena must still be exact."""
    n = 8
    src = np.repeat(np.arange(n), n)
    dst = np.tile(np.arange(n), n)
    csr = CSRGraph.from_arrays(src, dst, n)
    scratch = KernelScratch(n, 1)  # deliberately undersized
    frontier = np.arange(n, dtype=np.int64)
    gs = gather_slots(csr.row_ptr, frontier, scratch)
    want, _ = ref_gather(csr.row_ptr, frontier)
    assert np.array_equal(gs.slots, want)


# ----------------------------------------------------------------------
# claim_first_parent
# ----------------------------------------------------------------------


def _run_claim_case(csr, frontier, visited0):
    n = csr.n_vertices
    scratch = KernelScratch(n, csr.n_edges)
    slots, counts = ref_gather(csr.row_ptr, frontier)
    nbrs = csr.col_idx[slots]
    srcs = np.repeat(frontier, counts)

    parent_ref = np.where(visited0, np.arange(n, dtype=np.int64), -1)
    visited_ref = visited0.copy()
    want_new = ref_claim(nbrs, srcs, visited_ref, parent_ref)

    parent_new = np.where(visited0, np.arange(n, dtype=np.int64), -1)
    visited_new = visited0.copy()
    got_new = claim_first_parent(nbrs, srcs, visited_new, parent_new,
                                 scratch)
    assert np.array_equal(got_new, want_new)
    assert np.array_equal(parent_new, parent_ref)
    assert np.array_equal(visited_new, visited_ref)
    # Scratch masks must come back all-False (the reuse contract).
    assert not scratch.mask("claim").any()


@given(graph_and_frontier(), st.data())
@settings(max_examples=120, deadline=None)
def test_claim_first_parent_matches_lexsort(case, data):
    csr, frontier = case
    n = csr.n_vertices
    visited0 = np.array(
        data.draw(st.lists(st.booleans(), min_size=n, max_size=n)),
        dtype=bool)
    _run_claim_case(csr, frontier, visited0)


def test_claim_small_path_large_graph():
    """n large vs few edges forces the sort-based branch."""
    n = 1000
    src = np.array([0, 0, 1, 1, 2], dtype=np.int64)
    dst = np.array([5, 7, 5, 999, 2], dtype=np.int64)  # dup target + loop
    csr = CSRGraph.from_arrays(src, dst, n)
    visited0 = np.zeros(n, dtype=bool)
    visited0[[0, 1, 2]] = True
    _run_claim_case(csr, np.array([0, 1, 2], dtype=np.int64), visited0)


def test_claim_mask_path_dense_graph():
    """Edge count >= n/16 forces the scatter branch."""
    rng = np.random.default_rng(7)
    n = 64
    m = 512
    src = np.sort(rng.integers(0, n, m))
    dst = rng.integers(0, n, m)
    csr = CSRGraph.from_arrays(src, dst, n)
    visited0 = np.zeros(n, dtype=bool)
    visited0[rng.integers(0, n, 8)] = True
    frontier = np.unique(rng.integers(0, n, 20))
    _run_claim_case(csr, frontier, visited0)


# ----------------------------------------------------------------------
# segment_min_scatter / dedup_ids
# ----------------------------------------------------------------------


@given(st.integers(1, 60), st.data())
@settings(max_examples=120, deadline=None)
def test_segment_min_scatter_matches_minimum_at(n, data):
    k = data.draw(st.integers(0, 200))
    dsts = np.array(data.draw(st.lists(st.integers(0, n - 1),
                                       min_size=k, max_size=k)),
                    dtype=np.int64)
    cand = np.array(data.draw(st.lists(
        st.floats(0.0, 50.0, allow_nan=False), min_size=k, max_size=k)))
    dist0 = np.array(data.draw(st.lists(
        st.floats(0.0, 50.0, allow_nan=False), min_size=n, max_size=n)))

    dist_ref = dist0.copy()
    want = (ref_min_scatter(dist_ref, dsts, cand) if k
            else np.empty(0, dtype=np.int64))

    scratch = KernelScratch(n)
    dist_new = dist0.copy()
    got = segment_min_scatter(dist_new, dsts, cand, scratch)
    assert np.array_equal(got, want)
    assert np.array_equal(dist_new, dist_ref)  # bitwise: min is exact
    assert not scratch.mask("dedup").any()


@given(st.integers(1, 80), st.data())
@settings(max_examples=120, deadline=None)
def test_dedup_ids_is_unique(n, data):
    k = data.draw(st.integers(0, 300))
    ids = np.array(data.draw(st.lists(st.integers(0, n - 1),
                                      min_size=k, max_size=k)),
                   dtype=np.int64)
    scratch = KernelScratch(n)
    got = dedup_ids(ids, n, scratch)
    assert np.array_equal(got, np.unique(ids))
    assert not scratch.mask("dedup").any()


def test_dedup_ids_both_paths():
    scratch = KernelScratch(1000)
    small = np.array([5, 3, 5, 999], dtype=np.int64)
    assert np.array_equal(dedup_ids(small, 1000, scratch),
                          np.unique(small))
    big = np.arange(500, dtype=np.int64).repeat(2)
    assert np.array_equal(dedup_ids(big, 1000, scratch), np.unique(big))
    assert not scratch.mask("dedup").any()


# ----------------------------------------------------------------------
# Frontier wrapper
# ----------------------------------------------------------------------


def test_frontier_ids_mask_coherence():
    scratch = KernelScratch(10)
    f = Frontier(10, scratch, np.array([1, 4], dtype=np.int64))
    assert f.size == 2 and bool(f)
    mask = f.as_mask()
    assert np.array_equal(np.flatnonzero(mask), [1, 4])
    f.replace(np.array([7], dtype=np.int64))
    mask = f.as_mask()
    assert np.array_equal(np.flatnonzero(mask), [7])
    f.release()
    assert not scratch.mask("frontier").any()
    assert not f


def test_frontier_density_switch():
    scratch = KernelScratch(64)
    f = Frontier(64, scratch, np.array([0], dtype=np.int64))
    assert not f.dense
    f.replace(np.arange(0, 64, 8, dtype=np.int64))
    assert f.density >= DENSE_FRONTIER_DENSITY
    assert f.dense


# ----------------------------------------------------------------------
# Scratch registry
# ----------------------------------------------------------------------


def test_scratch_for_memoizes_per_object():
    csr = CSRGraph.from_arrays(np.array([0]), np.array([1]), 2)
    s1 = scratch_for(csr, 2, 1)
    s2 = scratch_for(csr, 2, 1)
    assert s1 is s2
    other = CSRGraph.from_arrays(np.array([0]), np.array([1]), 2)
    assert scratch_for(other, 2, 1) is not s1


def test_scratch_reuse_counter():
    scratch = KernelScratch(8, 8)
    scratch.edge_i64(4)
    consume_counters()
    scratch.edge_i64(4)
    assert consume_counters()["scratch_reuse"] == 1.0
    assert COUNTERS["scratch_reuse"] == 0.0


# ----------------------------------------------------------------------
# CSRGraph / DCSRMatrix derived-structure regressions
# ----------------------------------------------------------------------


def test_source_ids_memoized_and_readonly():
    csr = CSRGraph.from_arrays(np.array([0, 0, 1]), np.array([1, 2, 0]), 3)
    s1 = csr.source_ids()
    assert s1 is csr.source_ids()
    assert not s1.flags.writeable
    with pytest.raises(ValueError):
        s1[0] = 9


def test_transposed_memoized():
    csr = CSRGraph.from_arrays(np.array([0, 2]), np.array([1, 0]), 3)
    t1 = csr.transposed()
    assert t1 is csr.transposed()
    assert np.array_equal(*map(np.sort, (t1.col_idx, np.array([0, 2]))))


def test_memo_caches_dropped_from_pickle():
    csr = CSRGraph.from_arrays(np.array([0, 1]), np.array([1, 2]), 3)
    csr.source_ids()
    csr.transposed()
    clone = pickle.loads(pickle.dumps(csr))
    assert "_source_ids" not in clone.__dict__
    assert "_transposed" not in clone.__dict__
    assert np.array_equal(clone.source_ids(), csr.source_ids())


def test_dcsr_row_sources_memoized():
    csr = CSRGraph.from_arrays(np.array([0, 0, 2]), np.array([1, 2, 0]), 3)
    d = DCSRMatrix.from_csr(csr)
    r1 = d.row_sources()
    assert r1 is d.row_sources()
    assert not r1.flags.writeable
    clone = pickle.loads(pickle.dumps(d))
    assert "_row_sources" not in clone.__dict__
    assert np.array_equal(clone.row_sources(), r1)


def test_to_scipy_no_unconditional_int32_cast():
    """Regression for the silent ``astype(int32)`` wrap: the export must
    hand scipy the int64 arrays and let it pick a safe index dtype, and
    the exported matrix must not alias the graph's arrays."""
    import inspect

    import scipy.sparse as sp

    assert "astype" not in inspect.getsource(CSRGraph.to_scipy)

    csr = CSRGraph.from_arrays(np.array([0, 1, 1]), np.array([1, 0, 2]), 3,
                               weights=np.array([0.5, 1.5, 2.5]))
    mat = csr.to_scipy()
    assert isinstance(mat, sp.csr_matrix)
    dense = mat.toarray()
    want = np.zeros((3, 3))
    want[0, 1], want[1, 0], want[1, 2] = 0.5, 1.5, 2.5
    assert np.array_equal(dense, want)
    # Mutating the export must not corrupt the graph.
    mat.data[:] = 0.0
    mat.indices[:] = 0
    assert np.array_equal(csr.col_idx, [1, 0, 2])
    assert np.array_equal(csr.weights, [0.5, 1.5, 2.5])
