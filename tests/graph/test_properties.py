"""Property-based tests of the core graph structures (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.dcsr import DCSRMatrix
from repro.graph.edgelist import EdgeList


@st.composite
def edge_lists(draw, max_n=40, max_m=120, weighted=None):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    if weighted is None:
        weighted = draw(st.booleans())
    weights = None
    if weighted:
        weights = np.array(draw(st.lists(
            st.floats(0.001, 100.0, allow_nan=False),
            min_size=m, max_size=m)))
    return EdgeList(np.array(src, dtype=np.int64),
                    np.array(dst, dtype=np.int64), n,
                    weights=weights, directed=draw(st.booleans()))


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_preserves_edge_multiset(el):
    csr = CSRGraph.from_edge_list(el)
    src, dst = csr.to_edge_arrays()
    want = sorted(zip(el.src.tolist(), el.dst.tolist()))
    got = sorted(zip(src.tolist(), dst.tolist()))
    assert got == want


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_row_ptr_invariants(el):
    csr = CSRGraph.from_edge_list(el)
    assert csr.row_ptr[0] == 0
    assert csr.row_ptr[-1] == csr.n_edges
    assert np.all(np.diff(csr.row_ptr) >= 0)
    assert csr.out_degrees().sum() == csr.n_edges
    # Rows are sorted.
    for v in range(csr.n_vertices):
        nbrs = csr.neighbors(v)
        assert np.all(np.diff(nbrs) >= 0)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_dcsr_csr_equivalence(el):
    csr = CSRGraph.from_edge_list(el)
    d = DCSRMatrix.from_csr(csr)
    back = d.to_csr()
    assert np.array_equal(back.row_ptr, csr.row_ptr)
    assert np.array_equal(back.col_idx, csr.col_idx)
    # Every stored row is genuinely non-empty.
    assert np.all(np.diff(d.row_ptr) > 0)
    assert d.nnz == csr.n_edges


@given(edge_lists(weighted=True))
@settings(max_examples=40, deadline=None)
def test_dcsr_spmv_agrees_with_scipy(el):
    csr = CSRGraph.from_edge_list(el)
    d = DCSRMatrix.from_csr(csr)
    x = np.linspace(0.5, 2.0, csr.n_vertices)
    got = d.spmv_plus_times(x)
    # scipy sums duplicates, matching plus-times semantics.
    want = np.asarray(csr.to_scipy() @ x).ravel()
    assert np.allclose(got, want)


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_symmetrized_degree_identity(el):
    sym = el.symmetrized()
    csr = CSRGraph.from_edge_list(sym)
    assert np.array_equal(csr.out_degrees(), csr.in_degrees())


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_transpose_preserves_multiset(el):
    csr = CSRGraph.from_edge_list(el)
    t = csr.transposed()
    s1, d1 = csr.to_edge_arrays()
    s2, d2 = t.to_edge_arrays()
    assert sorted(zip(s1.tolist(), d1.tolist())) == \
        sorted(zip(d2.tolist(), s2.tolist()))


@given(edge_lists(), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_permutation_preserves_structure(el, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(el.n_vertices).astype(np.int64)
    p = el.permuted(perm)
    assert p.n_edges == el.n_edges
    assert np.array_equal(
        np.sort(p.degrees()), np.sort(el.degrees()))
