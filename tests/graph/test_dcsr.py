"""Unit tests for the doubly-compressed sparse row matrix."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.dcsr import DCSRMatrix


@pytest.fixture
def sparse_csr():
    """Rows 0 and 3 non-empty out of 5."""
    return CSRGraph.from_arrays(np.array([0, 0, 3]),
                                np.array([1, 4, 2]), 5,
                                weights=np.array([1.0, 2.0, 3.0]))


class TestCompression:
    def test_empty_rows_removed(self, sparse_csr):
        d = DCSRMatrix.from_csr(sparse_csr)
        assert d.row_ids.tolist() == [0, 3]
        assert d.n_nonempty_rows == 2
        assert d.nnz == 3

    def test_roundtrip(self, sparse_csr):
        back = DCSRMatrix.from_csr(sparse_csr).to_csr()
        assert np.array_equal(back.row_ptr, sparse_csr.row_ptr)
        assert np.array_equal(back.col_idx, sparse_csr.col_idx)
        assert np.array_equal(back.weights, sparse_csr.weights)

    def test_kron_roundtrip(self, kron10_csr):
        back = DCSRMatrix.from_csr(kron10_csr).to_csr()
        assert np.array_equal(back.row_ptr, kron10_csr.row_ptr)
        assert np.array_equal(back.col_idx, kron10_csr.col_idx)

    def test_stored_empty_row_rejected(self):
        with pytest.raises(GraphFormatError):
            DCSRMatrix(n=3, row_ids=np.array([0, 1]),
                       row_ptr=np.array([0, 1, 1]),
                       col_idx=np.array([2]))

    def test_unsorted_row_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            DCSRMatrix(n=3, row_ids=np.array([1, 0]),
                       row_ptr=np.array([0, 1, 2]),
                       col_idx=np.array([2, 2]))

    def test_saves_memory_on_hypersparse(self, sparse_csr):
        d = DCSRMatrix.from_csr(sparse_csr)
        assert d.nbytes() < sparse_csr.nbytes()


class TestSemiringSpMV:
    def test_or_and_matches_dense(self, kron10_csr):
        d = DCSRMatrix.from_csr(kron10_csr)
        rng = np.random.default_rng(0)
        x = rng.random(kron10_csr.n_vertices) < 0.2
        got = d.spmv_or_and(x)
        mat = kron10_csr.to_scipy()
        want = np.asarray((mat @ x.astype(np.int64))).ravel() > 0
        assert np.array_equal(got, want)

    def test_min_plus_matches_dense(self, sparse_csr):
        d = DCSRMatrix.from_csr(sparse_csr)
        x = np.array([10.0, 1.0, 0.5, 2.0, 0.25])
        got = d.spmv_min_plus(x)
        assert got[0] == pytest.approx(min(1.0 + 1.0, 2.0 + 0.25))
        assert got[3] == pytest.approx(3.0 + 0.5)
        assert np.isinf(got[1]) and np.isinf(got[2]) and np.isinf(got[4])

    def test_min_plus_pattern_only_is_min_gather(self):
        csr = CSRGraph.from_arrays(np.array([0, 0]), np.array([1, 2]), 3)
        d = DCSRMatrix.from_csr(csr)
        got = d.spmv_min_plus(np.array([9.0, 5.0, 3.0]))
        assert got[0] == 3.0

    def test_plus_times_matches_dense(self, kron10_csr):
        d = DCSRMatrix.from_csr(kron10_csr)
        rng = np.random.default_rng(1)
        x = rng.random(kron10_csr.n_vertices)
        got = d.spmv_plus_times(x)
        want = np.asarray(kron10_csr.to_scipy() @ x).ravel()
        assert np.allclose(got, want)

    def test_plus_times_pattern_only_ignores_values(self, sparse_csr):
        d = DCSRMatrix.from_csr(sparse_csr)
        x = np.ones(5)
        got = d.spmv_plus_times(x, pattern_only=True)
        assert got[0] == 2.0  # two entries, values ignored
        assert got[3] == 1.0

    def test_empty_matrix_spmv(self):
        d = DCSRMatrix(n=3, row_ids=np.array([], dtype=np.int64),
                       row_ptr=np.array([0]),
                       col_idx=np.array([], dtype=np.int64))
        assert not d.spmv_or_and(np.ones(3, dtype=bool)).any()
        assert np.isinf(d.spmv_min_plus(np.zeros(3))).all()
        assert not d.spmv_plus_times(np.ones(3)).any()


class TestPlusTimesDtype:
    """Regression: integer-dtype x against float values must promote.

    ``values.astype(x.dtype)`` used to truncate every stored weight
    toward zero, so an all-ones int vector against 0.5-weighted rows
    summed to 0 instead of the weighted row sums.
    """

    def _weighted(self):
        return DCSRMatrix(
            n=4,
            row_ids=np.array([0, 2]),
            row_ptr=np.array([0, 2, 3]),
            col_idx=np.array([1, 3, 0]),
            values=np.array([0.5, 0.25, 1.5]))

    def test_integer_x_promotes_to_float64(self):
        d = self._weighted()
        y = d.spmv_plus_times(np.ones(4, dtype=np.int64))
        assert y.dtype == np.float64
        assert y.tolist() == [0.75, 0.0, 1.5, 0.0]

    def test_integer_x_pattern_only_keeps_int(self):
        d = self._weighted()
        y = d.spmv_plus_times(np.ones(4, dtype=np.int64),
                              pattern_only=True)
        assert y.dtype == np.int64
        assert y.tolist() == [2, 0, 1, 0]

    def test_float_x_dtype_unchanged(self):
        d = self._weighted()
        y32 = d.spmv_plus_times(np.ones(4, dtype=np.float32))
        assert y32.dtype == np.float32

    def test_integer_x_empty_matrix_promotes(self):
        d = DCSRMatrix(n=3, row_ids=np.empty(0, dtype=np.int64),
                       row_ptr=np.zeros(1, dtype=np.int64),
                       col_idx=np.empty(0, dtype=np.int64),
                       values=np.empty(0))
        y = d.spmv_plus_times(np.ones(3, dtype=np.int64))
        assert y.dtype == np.float64 and y.tolist() == [0.0, 0.0, 0.0]
