"""Property + unit tests for the dynamic graph (mutation-log ingest).

The load-bearing property: after ANY interleaving of insert/delete
batches -- duplicates, self-loops, weight overwrites, deletes of absent
arcs included -- :meth:`DynamicGraph.snapshot` is **byte-identical** to
``CSRGraph.from_arrays`` over the replayed arc set.  The reference
model is a plain dict ``{(src, dst): weight}`` replaying the same
semantics (deletes first, last-write-wins inserts).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import (
    AppliedBatch,
    DynamicGraph,
    MutationBatch,
    MutationLog,
)
from repro.graph.edgelist import EdgeList


def model_apply(model: dict, batch: MutationBatch) -> None:
    """Dict-based oracle: deletes first, then last-write-wins inserts."""
    for u, v in zip(batch.delete_src.tolist(), batch.delete_dst.tolist()):
        model.pop((u, v), None)
    w = batch.insert_weights
    for i, (u, v) in enumerate(zip(batch.insert_src.tolist(),
                                   batch.insert_dst.tolist())):
        model[(u, v)] = None if w is None else float(w[i])


def model_csr(model: dict, n: int, weighted: bool) -> CSRGraph:
    items = sorted(model.items())
    src = np.array([k[0] for k, _ in items], dtype=np.int64)
    dst = np.array([k[1] for k, _ in items], dtype=np.int64)
    weights = (np.array([v for _, v in items], dtype=np.float64)
               if weighted else None)
    return CSRGraph.from_arrays(src, dst, n, weights=weights)


def assert_snapshots_equal(got: CSRGraph, want: CSRGraph) -> None:
    assert got.row_ptr.tobytes() == want.row_ptr.tobytes()
    assert got.col_idx.tobytes() == want.col_idx.tobytes()
    if want.weights is None:
        assert got.weights is None
    else:
        assert got.weights.tobytes() == want.weights.tobytes()


@st.composite
def batch_sequences(draw, max_n=24, max_batches=6, max_ops=20):
    n = draw(st.integers(min_value=1, max_value=max_n))
    weighted = draw(st.booleans())
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    batches = []
    for _ in range(n_batches):
        ki = draw(st.integers(min_value=0, max_value=max_ops))
        kd = draw(st.integers(min_value=0, max_value=max_ops))
        ins_s = draw(st.lists(st.integers(0, n - 1), min_size=ki,
                              max_size=ki))
        ins_d = draw(st.lists(st.integers(0, n - 1), min_size=ki,
                              max_size=ki))
        del_s = draw(st.lists(st.integers(0, n - 1), min_size=kd,
                              max_size=kd))
        del_d = draw(st.lists(st.integers(0, n - 1), min_size=kd,
                              max_size=kd))
        w = None
        if weighted:
            w = np.array(draw(st.lists(
                st.floats(0.001, 10.0, allow_nan=False),
                min_size=ki, max_size=ki)))
        batches.append(MutationBatch(
            insert_src=np.array(ins_s, dtype=np.int64),
            insert_dst=np.array(ins_d, dtype=np.int64),
            insert_weights=w,
            delete_src=np.array(del_s, dtype=np.int64),
            delete_dst=np.array(del_d, dtype=np.int64)))
    return n, weighted, batches


@given(batch_sequences())
@settings(max_examples=80, deadline=None)
def test_snapshot_byte_identical_to_rebuild(case):
    """The tentpole property: snapshot == from_arrays over the replay."""
    n, weighted, batches = case
    g = DynamicGraph(n, weighted=weighted)
    model: dict = {}
    for batch in batches:
        g.apply(batch)
        model_apply(model, batch)
        assert_snapshots_equal(g.snapshot(), model_csr(model, n, weighted))


@given(batch_sequences(max_batches=4))
@settings(max_examples=40, deadline=None)
def test_snapshots_immutable_under_later_batches(case):
    """Copy-on-write: an old snapshot never changes, byte for byte."""
    n, weighted, batches = case
    g = DynamicGraph(n, weighted=weighted)
    taken = []
    for batch in batches:
        g.apply(batch)
        snap = g.snapshot()
        taken.append((snap, snap.row_ptr.copy(), snap.col_idx.copy(),
                      None if snap.weights is None
                      else snap.weights.copy()))
    for snap, rp, ci, w in taken:
        assert snap.row_ptr.tobytes() == rp.tobytes()
        assert snap.col_idx.tobytes() == ci.tobytes()
        if w is not None:
            assert snap.weights.tobytes() == w.tobytes()


@given(batch_sequences(max_batches=3))
@settings(max_examples=40, deadline=None)
def test_applied_delta_reconstructs_arc_set(case):
    """inserted/removed arc sets replayed on a dict match the graph."""
    n, weighted, batches = case
    g = DynamicGraph(n, weighted=weighted)
    arcs: set = set()
    for batch in batches:
        applied = g.apply(batch)
        arcs -= set(zip(applied.removed_src.tolist(),
                        applied.removed_dst.tolist()))
        arcs |= set(zip(applied.inserted_src.tolist(),
                        applied.inserted_dst.tolist()))
        src, dst, _ = g.arcs()
        assert arcs == set(zip(src.tolist(), dst.tolist()))


class TestSemantics:
    def test_delete_of_absent_is_noop(self):
        g = DynamicGraph(4)
        g.apply(MutationBatch(insert_src=[0], insert_dst=[1]))
        applied = g.apply(MutationBatch(delete_src=[2, 0],
                                        delete_dst=[3, 1]))
        assert applied.n_deleted == 1
        assert applied.removed_src.tolist() == [0]
        assert g.n_arcs == 0

    def test_duplicate_insert_last_write_wins(self):
        g = DynamicGraph(4, weighted=True)
        applied = g.apply(MutationBatch(
            insert_src=[1, 1], insert_dst=[2, 2],
            insert_weights=[5.0, 7.0]))
        assert applied.n_new == 1
        _, _, w = g.arcs()
        assert w.tolist() == [7.0]

    def test_reinsert_overwrites_weight_and_reports_removed(self):
        g = DynamicGraph(4, weighted=True)
        g.apply(MutationBatch(insert_src=[1], insert_dst=[2],
                              insert_weights=[5.0]))
        applied = g.apply(MutationBatch(insert_src=[1], insert_dst=[2],
                                        insert_weights=[6.0]))
        assert applied.n_new == 0
        assert applied.n_updated == 1
        # A weight change is a remove + insert for path repair.
        assert applied.removed_src.tolist() == [1]
        assert applied.inserted_src.tolist() == [1]

    def test_same_weight_reinsert_not_removed(self):
        g = DynamicGraph(4, weighted=True)
        g.apply(MutationBatch(insert_src=[1], insert_dst=[2],
                              insert_weights=[5.0]))
        applied = g.apply(MutationBatch(insert_src=[1], insert_dst=[2],
                                        insert_weights=[5.0]))
        assert applied.n_updated == 1
        assert applied.removed_src.size == 0

    def test_delete_then_reinsert_in_one_batch(self):
        g = DynamicGraph(4)
        g.apply(MutationBatch(insert_src=[1], insert_dst=[2]))
        applied = g.apply(MutationBatch(
            insert_src=[1], insert_dst=[2],
            delete_src=[1], delete_dst=[2]))
        # Deletes first: the arc is removed, then re-inserted fresh.
        assert applied.n_deleted == 1 and applied.n_new == 1
        assert g.has_arc(1, 2)

    def test_self_loops_stored(self):
        g = DynamicGraph(3)
        g.apply(MutationBatch(insert_src=[2], insert_dst=[2]))
        assert g.has_arc(2, 2)
        snap = g.snapshot()
        assert snap.neighbors(2).tolist() == [2]

    def test_symmetrized_batch(self):
        b = MutationBatch(insert_src=[0, 1], insert_dst=[1, 1],
                          delete_src=[2], delete_dst=[3]).symmetrized()
        assert sorted(zip(b.insert_src.tolist(),
                          b.insert_dst.tolist())) == [(0, 1), (1, 0),
                                                      (1, 1)]
        assert sorted(zip(b.delete_src.tolist(),
                          b.delete_dst.tolist())) == [(2, 3), (3, 2)]

    def test_from_edge_list_dedupes(self):
        el = EdgeList(np.array([0, 0]), np.array([1, 1]), 3,
                      weights=np.array([1.0, 2.0]))
        g = DynamicGraph.from_edge_list(el)
        assert g.n_arcs == 1
        _, _, w = g.arcs()
        assert w.tolist() == [2.0]     # last write wins


class TestValidation:
    def test_insert_id_out_of_range_names_index(self):
        g = DynamicGraph(8)
        with pytest.raises(GraphFormatError,
                           match=r"insert src\[1\] = 41"):
            g.apply(MutationBatch(insert_src=[0, 41],
                                  insert_dst=[1, 2]))

    def test_negative_delete_id_names_index(self):
        g = DynamicGraph(8)
        with pytest.raises(GraphFormatError,
                           match=r"delete dst\[0\] = -3"):
            g.apply(MutationBatch(delete_src=[0], delete_dst=[-3]))

    def test_length_mismatch(self):
        with pytest.raises(GraphFormatError, match="mismatch"):
            MutationBatch(insert_src=[0, 1], insert_dst=[1])

    def test_weights_required_iff_weighted(self):
        g = DynamicGraph(4, weighted=True)
        with pytest.raises(GraphFormatError, match="insert_weights"):
            g.apply(MutationBatch(insert_src=[0], insert_dst=[1]))
        g2 = DynamicGraph(4)
        with pytest.raises(GraphFormatError, match="unweighted"):
            g2.apply(MutationBatch(insert_src=[0], insert_dst=[1],
                                   insert_weights=[1.0]))

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphFormatError, match="insert_weights"):
            MutationBatch(insert_src=[0, 1], insert_dst=[1, 2],
                          insert_weights=[1.0])


class TestMutationLog:
    def test_replay_yields_applied_batches(self):
        log = MutationLog([
            MutationBatch(insert_src=[0, 1], insert_dst=[1, 2]),
            MutationBatch(delete_src=[0], delete_dst=[1]),
        ])
        g = DynamicGraph(4)
        out = list(log.replay(g))
        assert len(out) == 2
        assert all(isinstance(a, AppliedBatch) for _, a in out)
        assert out[0][1].n_new == 2
        assert out[1][1].n_deleted == 1
        assert g.n_arcs == 1

    def test_append_and_index(self):
        log = MutationLog()
        assert len(log) == 0
        b = MutationBatch(insert_src=[0], insert_dst=[1])
        log.append(b)
        assert len(log) == 1 and log[0] is b
        assert list(iter(log)) == [b]
