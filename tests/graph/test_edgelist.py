"""Unit tests for EdgeList."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList


def _el(src, dst, n, **kw):
    return EdgeList(np.asarray(src), np.asarray(dst), n, **kw)


class TestConstruction:
    def test_basic(self):
        el = _el([0, 1], [1, 2], 3)
        assert el.n_edges == 2
        assert el.n_vertices == 3
        assert not el.weighted

    def test_empty(self):
        el = _el([], [], 0)
        assert el.n_edges == 0
        assert el.nbytes() == 0

    def test_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            _el([0, 1], [1], 3)

    def test_out_of_range_vertex(self):
        with pytest.raises(GraphFormatError):
            _el([0], [3], 3)

    def test_negative_vertex(self):
        with pytest.raises(GraphFormatError):
            _el([-1], [0], 3)

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            _el([0], [1], 2, weights=np.array([1.0, 2.0]))

    def test_arrays_coerced_to_int64(self):
        el = _el(np.array([0], dtype=np.int32),
                 np.array([1], dtype=np.int32), 2)
        assert el.src.dtype == np.int64
        assert el.dst.dtype == np.int64


class TestDegrees:
    def test_out_degrees(self):
        el = _el([0, 0, 1], [1, 2, 2], 3)
        assert el.out_degrees().tolist() == [2, 1, 0]

    def test_undirected_degrees(self):
        el = _el([0, 0], [1, 2], 3)
        assert el.degrees().tolist() == [2, 1, 1]


class TestTransformations:
    def test_symmetrized_doubles_edges(self):
        el = _el([0, 1], [1, 2], 3)
        sym = el.symmetrized()
        assert sym.n_edges == 4
        assert sym.directed

    def test_symmetrized_keeps_self_loop_single(self):
        el = _el([0, 1], [0, 2], 3)
        sym = el.symmetrized()
        assert sym.n_edges == 3  # loop not duplicated

    def test_symmetrized_preserves_weights(self):
        el = _el([0], [1], 2, weights=np.array([5.0]))
        sym = el.symmetrized()
        assert sym.weights.tolist() == [5.0, 5.0]

    def test_deduplicated(self):
        el = _el([0, 0, 1], [1, 1, 2], 3)
        assert el.deduplicated().n_edges == 2

    def test_deduplicated_keeps_first_weight(self):
        el = _el([0, 0], [1, 1], 2, weights=np.array([3.0, 7.0]))
        de = el.deduplicated()
        assert de.weights.tolist() == [3.0]

    def test_without_self_loops(self):
        el = _el([0, 1], [0, 2], 3)
        assert el.without_self_loops().n_edges == 1

    def test_permuted_roundtrip(self):
        el = _el([0, 1, 2], [1, 2, 0], 3)
        perm = np.array([2, 0, 1])
        inv = np.argsort(perm)
        back = el.permuted(perm).permuted(inv)
        assert np.array_equal(back.src, el.src)
        assert np.array_equal(back.dst, el.dst)

    def test_permuted_rejects_non_permutation(self):
        el = _el([0], [1], 3)
        with pytest.raises(GraphFormatError):
            el.permuted(np.array([0, 0, 1]))

    def test_unit_weights(self):
        el = _el([0, 1], [1, 2], 3)
        assert el.with_unit_weights().weights.tolist() == [1.0, 1.0]

    def test_random_weights_deterministic(self):
        el = _el([0, 1], [1, 2], 3)
        a = el.with_random_weights(seed=1)
        b = el.with_random_weights(seed=1)
        assert np.array_equal(a.weights, b.weights)
        assert np.all((a.weights >= 0) & (a.weights < 1))

    def test_copy_is_independent(self):
        el = _el([0], [1], 2, weights=np.array([1.0]))
        cp = el.copy()
        cp.src[0] = 1
        assert el.src[0] == 0
