"""Unit tests for the Graph500-style result validators."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_parents
from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.validation import (
    validate_bfs_parents,
    validate_pagerank,
    validate_sssp_distances,
)


class TestBfsValidation:
    def test_accepts_reference_bfs(self, kron10_csr):
        parent, level = bfs_parents(kron10_csr, 0)
        got = validate_bfs_parents(kron10_csr, 0, parent)
        assert np.array_equal(got, level)

    def test_rejects_wrong_length(self, tiny_csr):
        with pytest.raises(ValidationError):
            validate_bfs_parents(tiny_csr, 0, np.zeros(3, dtype=np.int64))

    def test_rejects_root_not_self_parent(self, tiny_csr):
        parent, _ = bfs_parents(tiny_csr, 0)
        parent[0] = 1
        with pytest.raises(ValidationError):
            validate_bfs_parents(tiny_csr, 0, parent)

    def test_rejects_cycle(self, tiny_csr):
        parent = np.array([0, 2, 1, 2, 3, -1])
        with pytest.raises(ValidationError):
            validate_bfs_parents(tiny_csr, 0, parent)

    def test_rejects_non_graph_tree_edge(self, tiny_csr):
        parent, _ = bfs_parents(tiny_csr, 0)
        # Vertex 4's real parent is 3; claim 0 (no 0-4 edge).
        parent[4] = 0
        with pytest.raises(ValidationError):
            validate_bfs_parents(tiny_csr, 0, parent)

    def test_rejects_unreached_connected_vertex(self, tiny_csr):
        parent, _ = bfs_parents(tiny_csr, 0)
        parent[4] = -1
        with pytest.raises(ValidationError):
            validate_bfs_parents(tiny_csr, 0, parent)

    def test_rejects_level_skip(self, tiny_csr):
        # 0-1,0-2,1-2,2-3,3-4: claim 4's parent is 2 -> level gap via
        # edge (3,4): level[3]=2, fake level[4]=2 is fine... instead
        # claim parent chain that skips: parent[3]=0 (no edge 0-3).
        parent, _ = bfs_parents(tiny_csr, 0)
        parent[3] = 0
        with pytest.raises(ValidationError):
            validate_bfs_parents(tiny_csr, 0, parent)

    def test_directed_mode_accepts_dag_bfs(self, patents_small):
        csr = CSRGraph.from_edge_list(patents_small)
        deg = csr.out_degrees()
        root = int(np.argmax(deg))
        parent, level = bfs_parents(csr, root)
        got = validate_bfs_parents(csr, root, parent, directed=True)
        assert np.array_equal(got, level)

    def test_isolated_vertex_stays_unreached(self, tiny_csr):
        parent, level = bfs_parents(tiny_csr, 0)
        assert parent[5] == -1
        validate_bfs_parents(tiny_csr, 0, parent)


class TestSsspValidation:
    def test_accepts_equal(self):
        d = np.array([0.0, 1.0, np.inf])
        validate_sssp_distances(d, d.copy())

    def test_rejects_reachability_mismatch(self):
        with pytest.raises(ValidationError):
            validate_sssp_distances(np.array([0.0, 1.0]),
                                    np.array([0.0, np.inf]))

    def test_rejects_wrong_distance(self):
        with pytest.raises(ValidationError):
            validate_sssp_distances(np.array([0.0, 2.0]),
                                    np.array([0.0, 1.0]))

    def test_accepts_float32_noise(self):
        ref = np.array([0.0, 1.2345678])
        got = ref + np.array([0.0, 3e-8])
        validate_sssp_distances(got, ref)


class TestPagerankValidation:
    def test_accepts_reference(self, kron10_csr):
        from repro.algorithms.pagerank import pagerank

        rank, _ = pagerank(kron10_csr)
        validate_pagerank(rank, rank.copy())

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            validate_pagerank(np.array([1.0, 1.0]), np.array([0.5, 0.5]))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            validate_pagerank(np.array([1.1, -0.1]),
                              np.array([0.5, 0.5]))

    def test_rejects_large_l1_gap(self):
        a = np.array([0.9, 0.1])
        b = np.array([0.1, 0.9])
        with pytest.raises(ValidationError):
            validate_pagerank(a, b, tol=1e-4)
