"""Shared fixtures.

Session-scoped graph/dataset fixtures keep the suite fast: the scale-10
Kronecker graph and its homogenized directory are built once and shared
by every system test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.homogenize import homogenize
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.datasets.realworld import cit_patents, dota_league
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


@pytest.fixture(scope="session")
def kron10():
    """Weighted scale-10 Kronecker edge list (1024 vertices)."""
    return generate_kronecker(KroneckerSpec(scale=10, weighted=True))


@pytest.fixture(scope="session")
def kron10_unweighted():
    """Unweighted paper-seed scale-10 Kronecker edge list."""
    return generate_kronecker(KroneckerSpec(scale=10))


@pytest.fixture(scope="session")
def kron10_csr(kron10):
    """Symmetrized CSR of the scale-10 graph (the reference view)."""
    return CSRGraph.from_edge_list(kron10, symmetrize=True)


@pytest.fixture(scope="session")
def kron10_dataset(kron10, tmp_path_factory):
    """Homogenized dataset directory for the scale-10 graph."""
    out = tmp_path_factory.mktemp("homog")
    return homogenize(kron10, out)


@pytest.fixture(scope="session")
def patents_small():
    """Small synthetic cit-Patents (directed, unweighted)."""
    return cit_patents(1.0 / 1024.0)


@pytest.fixture(scope="session")
def dota_small():
    """Small synthetic dota-league (undirected, weighted, dense)."""
    return dota_league(1.0 / 512.0)


@pytest.fixture(scope="session")
def patents_dataset(patents_small, tmp_path_factory):
    return homogenize(patents_small, tmp_path_factory.mktemp("patents"))


@pytest.fixture(scope="session")
def dota_dataset(dota_small, tmp_path_factory):
    return homogenize(dota_small, tmp_path_factory.mktemp("dota"))


@pytest.fixture
def tiny_edges():
    """A 6-vertex hand-checkable weighted graph.

    0-1, 0-2, 1-2, 2-3, 3-4 (undirected); 5 isolated.
    """
    src = np.array([0, 0, 1, 2, 3])
    dst = np.array([1, 2, 2, 3, 4])
    w = np.array([1.0, 4.0, 1.0, 1.0, 2.0])
    return EdgeList(src, dst, 6, weights=w, directed=False, name="tiny")


@pytest.fixture
def tiny_csr(tiny_edges):
    return CSRGraph.from_edge_list(tiny_edges, symmetrize=True)
