"""Tests for the simulated RAPL counters."""

import pytest

from repro.errors import PowerMeasurementError
from repro.machine.clock import SimulatedClock
from repro.power.rapl import RAPL_ENERGY_UNIT_J, RaplCounters, RaplSimulator


@pytest.fixture
def clock():
    return SimulatedClock(idle_pkg_watts=25.0, idle_dram_watts=10.0)


def test_counters_monotone(clock):
    rapl = RaplSimulator(clock)
    a = rapl.sample()
    clock.advance(1.0, 80.0, 15.0)
    b = rapl.sample()
    assert b.package >= a.package
    assert b.dram >= a.dram


def test_delta_matches_timeline(clock):
    rapl = RaplSimulator(clock)
    before = rapl.sample()
    clock.advance(2.0, 75.0, 12.0)
    after = rapl.sample()
    pkg, dram, dur = RaplSimulator.delta_joules(before, after)
    assert dur == pytest.approx(2.0)
    assert pkg == pytest.approx(150.0, rel=1e-4)
    assert dram == pytest.approx(24.0, rel=1e-4)


def test_quantization(clock):
    """Counters advance in RAPL energy units (2^-16 J)."""
    rapl = RaplSimulator(clock)
    clock.advance(1e-9, 100.0, 10.0)  # 1e-7 J: below one unit
    s = rapl.sample()
    assert s.package * RAPL_ENERGY_UNIT_J < 1e-4


def test_wraparound_handled():
    span = 1 << RaplSimulator.COUNTER_BITS
    before = RaplCounters(package=span - 10, dram=span - 5,
                          timestamp_s=0.0)
    after = RaplCounters(package=5, dram=2, timestamp_s=1.0)
    pkg, dram, dur = RaplSimulator.delta_joules(before, after)
    assert pkg == pytest.approx(15 * RAPL_ENERGY_UNIT_J)
    assert dram == pytest.approx(7 * RAPL_ENERGY_UNIT_J)


def test_out_of_order_samples_rejected():
    a = RaplCounters(package=0, dram=0, timestamp_s=5.0)
    b = RaplCounters(package=0, dram=0, timestamp_s=1.0)
    with pytest.raises(PowerMeasurementError):
        RaplSimulator.delta_joules(a, b)


def test_joule_accessors():
    c = RaplCounters(package=1 << 16, dram=1 << 15, timestamp_s=0.0)
    assert c.package_joules() == pytest.approx(1.0)
    assert c.dram_joules() == pytest.approx(0.5)
