"""Tests for power parameters and Table III accounting."""

import pytest

from repro.errors import ConfigError
from repro.machine.spec import haswell_server
from repro.power.energy import (
    EnergyReport,
    PowerParams,
    instantaneous_power,
    sleep_baseline,
)


@pytest.fixture
def machine():
    return haswell_server()


def test_anchor_reproduced_at_32_threads(machine):
    """instantaneous_power at 32 threads returns the calibration anchor."""
    p = PowerParams(72.38, 16.5, smt_yield=0.42)
    pkg, dram = instantaneous_power(machine, p, 32)
    assert pkg == pytest.approx(72.38, rel=1e-6)
    assert dram == pytest.approx(16.5, rel=1e-6)


def test_power_grows_with_threads(machine):
    p = PowerParams(72.38, 16.5)
    vals = [instantaneous_power(machine, p, n)[0]
            for n in (1, 2, 8, 32, 72)]
    assert all(b >= a for a, b in zip(vals, vals[1:]))


def test_power_capped_at_envelope(machine):
    p = PowerParams(140.0, 21.0)
    pkg, dram = instantaneous_power(machine, p, 72)
    assert pkg <= machine.max_pkg_watts
    assert dram <= machine.max_dram_watts


def test_serial_power_above_idle(machine):
    p = PowerParams(72.38, 16.5)
    pkg, dram = instantaneous_power(machine, p, 1)
    assert machine.idle_pkg_watts < pkg < 72.38
    assert machine.idle_dram_watts < dram < 16.5


def test_sleep_baseline(machine):
    pkg, dram = sleep_baseline(machine)
    assert pkg == pytest.approx(24.74)
    assert dram == pytest.approx(9.6)
    with pytest.raises(ConfigError):
        sleep_baseline(machine, duration_s=0)


def test_invalid_power_params():
    with pytest.raises(ConfigError):
        PowerParams(0.0, 10.0)


class TestEnergyReport:
    def test_table3_gap_row(self, machine):
        """GAP column of Table III: 0.01636 s, 72.38 W -> 1.184 J,
        0.4046 J sleeping, 2.926x increase."""
        rep = EnergyReport.from_measurement(
            pkg_j=72.38 * 0.01636, dram_j=0.27, time_s=0.01636,
            machine=machine)
        assert rep.avg_pkg_watts == pytest.approx(72.38)
        assert rep.pkg_energy_j == pytest.approx(1.184, rel=1e-3)
        assert rep.sleep_energy_j == pytest.approx(0.4046, rel=1e-3)
        assert rep.increase_over_sleep == pytest.approx(2.926, rel=1e-3)

    def test_energy_identity(self, machine):
        """energy = mean power x time, the accounting invariant."""
        rep = EnergyReport.from_measurement(10.0, 2.0, 4.0, machine)
        assert rep.avg_pkg_watts * rep.time_s == pytest.approx(
            rep.pkg_energy_j)

    def test_zero_time(self, machine):
        rep = EnergyReport.from_measurement(0.0, 0.0, 0.0, machine)
        assert rep.increase_over_sleep == float("inf")

    def test_negative_time_rejected(self, machine):
        with pytest.raises(ConfigError):
            EnergyReport.from_measurement(1.0, 1.0, -1.0, machine)
