"""Tests for the WattProf-style trace backend (paper Sec. V)."""

import numpy as np
import pytest

from repro.errors import PowerMeasurementError
from repro.machine.clock import SimulatedClock
from repro.power.papi import power_rapl_end, power_rapl_init, power_rapl_start
from repro.power.wattprof import PowerTrace, WattProfBackend


@pytest.fixture
def clock():
    return SimulatedClock(idle_pkg_watts=24.74, idle_dram_watts=9.6)


def test_trace_shape_and_rate(clock):
    wp = WattProfBackend(clock, sample_hz=1000.0)
    wp.start()
    clock.advance(0.050, 80.0, 15.0)
    trace = wp.stop()
    assert trace.timestamps_s.size == 50
    assert np.allclose(trace.pkg_watts, 80.0)
    assert trace.duration_s == pytest.approx(0.050)


def test_energy_agrees_with_rapl_counters(clock):
    """Both backends share the interface and must agree on energy."""
    wp = WattProfBackend(clock, sample_hz=2000.0)
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    wp.start()
    clock.advance(0.030, 72.38, 16.5)
    clock.advance(0.010)            # idle gap inside the region
    clock.advance(0.020, 97.17, 18.5)
    trace = wp.stop()
    power_rapl_end(ps)
    pkg_j, dram_j = trace.energy_j()
    assert pkg_j == pytest.approx(ps.package_joules, rel=1e-3)
    assert dram_j == pytest.approx(ps.dram_joules, rel=1e-3)


def test_trace_resolves_phases(clock):
    """The whole point of fine-grained tracing: the trace shows the
    power steps that the two-counter RAPL difference averages away."""
    wp = WattProfBackend(clock, sample_hz=1000.0)
    wp.start()
    clock.advance(0.020, 100.0, 18.0)   # hot kernel
    clock.advance(0.020, 30.0, 10.0)    # cool phase
    trace = wp.stop()
    assert trace.peak_pkg_watts() == pytest.approx(100.0)
    assert trace.pkg_watts.min() == pytest.approx(30.0)
    # A RAPL-style average would sit in the middle.
    assert 30.0 < trace.pkg_watts.mean() < 100.0


def test_stop_without_start(clock):
    with pytest.raises(PowerMeasurementError):
        WattProfBackend(clock).stop()


def test_invalid_rate(clock):
    with pytest.raises(PowerMeasurementError):
        WattProfBackend(clock, sample_hz=0)


def test_csv_roundtrip(clock, tmp_path):
    wp = WattProfBackend(clock, sample_hz=500.0)
    wp.start()
    clock.advance(0.01, 50.0, 12.0)
    trace = wp.stop()
    p = trace.to_csv(tmp_path / "trace.csv")
    body = np.loadtxt(p, delimiter=",", skiprows=1, ndmin=2)
    assert body.shape == (trace.timestamps_s.size, 3)
    assert np.allclose(body[:, 1], trace.pkg_watts, atol=1e-5)


def test_svg_render(clock, tmp_path):
    from xml.etree import ElementTree

    wp = WattProfBackend(clock, sample_hz=200.0)
    wp.start()
    clock.advance(0.05, 60.0, 12.0)
    trace = wp.stop()
    p = trace.to_svg(tmp_path / "trace.svg")
    ElementTree.parse(p)


def test_trace_through_a_real_run(kron10_dataset, tmp_path):
    """Trace one GAP BFS execution end to end."""
    from repro.machine.spec import haswell_server
    from repro.power.energy import instantaneous_power
    from repro.systems import create_system

    machine = haswell_server()
    clock = SimulatedClock(idle_pkg_watts=machine.idle_pkg_watts,
                           idle_dram_watts=machine.idle_dram_watts)
    system = create_system("gap", n_threads=32)
    loaded = system.load(kron10_dataset)
    result = system.run(loaded, "bfs", root=int(kron10_dataset.roots[0]))
    pkg_w, dram_w = instantaneous_power(machine, system.power, 32)

    wp = WattProfBackend(clock, sample_hz=100000.0)
    wp.start()
    clock.advance(result.time_s, pkg_w, dram_w)
    trace = wp.stop()
    assert trace.duration_s == pytest.approx(result.time_s, rel=0.05)
    assert trace.pkg_watts.mean() == pytest.approx(pkg_w, rel=0.02)
