"""Tests for the Fig 10 power_rapl_* API."""

import pytest

from repro.errors import PowerMeasurementError
from repro.machine.clock import SimulatedClock
from repro.power.papi import (
    power_rapl_end,
    power_rapl_init,
    power_rapl_print,
    power_rapl_start,
)


@pytest.fixture
def clock():
    return SimulatedClock(idle_pkg_watts=24.74, idle_dram_watts=9.6)


def test_protocol(clock):
    """init -> start -> region -> end -> print, as in Fig 10."""
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    clock.advance(0.5, 72.38, 16.5)
    power_rapl_end(ps)
    assert ps.duration_s == pytest.approx(0.5)
    assert ps.package_joules == pytest.approx(36.19, rel=1e-3)
    assert ps.dram_joules == pytest.approx(8.25, rel=1e-3)


def test_print_format(clock):
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    clock.advance(1.0, 50.0, 12.0)
    power_rapl_end(ps)
    lines = power_rapl_print(ps)
    assert lines[0].startswith("PACKAGE_ENERGY:PACKAGE0 ")
    assert lines[1].startswith("DRAM_ENERGY:PACKAGE0 ")
    assert lines[0].endswith(" s")
    assert ps.lines == lines


def test_end_without_start_rejected(clock):
    ps = power_rapl_init(clock)
    with pytest.raises(PowerMeasurementError):
        power_rapl_end(ps)


def test_result_before_end_rejected(clock):
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    with pytest.raises(PowerMeasurementError):
        _ = ps.package_joules


def test_context_manager(clock):
    ps = power_rapl_init(clock)
    with ps:
        clock.advance(0.25, 100.0, 20.0)
    assert ps.duration_s == pytest.approx(0.25)


def test_restart_resets_end(clock):
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    clock.advance(0.1, 50, 10)
    power_rapl_end(ps)
    first = ps.package_joules
    power_rapl_start(ps)
    clock.advance(0.2, 50, 10)
    power_rapl_end(ps)
    assert ps.duration_s == pytest.approx(0.2)
    assert ps.package_joules == pytest.approx(2 * first, rel=1e-3)


def test_idle_region_measures_sleep_power(clock):
    """The Table III baseline: measuring around sleep(10)."""
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    clock.advance(10.0)  # idle
    power_rapl_end(ps)
    watts = ps.package_joules / ps.duration_s
    assert watts == pytest.approx(24.74, rel=1e-3)
