"""Tests for the streaming scenario builder and replay harness."""

import numpy as np
import pytest

from repro.errors import ConfigError, ValidationError
from repro.observability import read_events, validate_events
from repro.observability.tracer import Tracer
from repro.streaming import (
    StreamReplay,
    StreamSpec,
    build_scenario,
    write_results_csv,
)


@pytest.fixture(scope="module")
def small_scenario():
    return build_scenario(StreamSpec(scale=7, n_batches=4,
                                     batch_edges=24, weighted=True))


class TestSpecValidation:
    def test_bad_scale(self):
        with pytest.raises(ConfigError, match="scale"):
            StreamSpec(scale=0)

    def test_bad_delete_fraction(self):
        with pytest.raises(ConfigError, match="delete_fraction"):
            StreamSpec(scale=8, delete_fraction=1.5)

    def test_bad_base_fraction(self):
        with pytest.raises(ConfigError, match="base_fraction"):
            StreamSpec(scale=8, base_fraction=1.0)

    def test_bad_batches(self):
        with pytest.raises(ConfigError, match="n_batches"):
            StreamSpec(scale=8, n_batches=0)

    def test_stream_longer_than_tail_rejected(self):
        # scale 6 leaves ~154 tail tuples at base_fraction 0.85.
        with pytest.raises(ConfigError, match="insert tuples"):
            build_scenario(StreamSpec(scale=6, n_batches=100,
                                      batch_edges=64))

    def test_deletes_per_batch_rounding(self):
        spec = StreamSpec(scale=8, batch_edges=10, delete_fraction=0.25)
        assert spec.deletes_per_batch == 2


class TestScenario:
    def test_deterministic(self, small_scenario):
        again = build_scenario(small_scenario.spec)
        assert again.root == small_scenario.root
        assert (again.base.insert_src.tobytes()
                == small_scenario.base.insert_src.tobytes())
        for a, b in zip(again.batches, small_scenario.batches):
            assert a.insert_src.tobytes() == b.insert_src.tobytes()
            assert a.delete_src.tobytes() == b.delete_src.tobytes()
            assert a.insert_weights.tobytes() == b.insert_weights.tobytes()

    def test_batches_symmetrized(self, small_scenario):
        for b in small_scenario.batches:
            pairs = set(zip(b.insert_src.tolist(), b.insert_dst.tolist()))
            assert all((v, u) in pairs for u, v in pairs)

    def test_root_in_range(self, small_scenario):
        assert 0 <= small_scenario.root < small_scenario.n_vertices

    def test_unweighted_scenario_has_no_weights(self):
        sc = build_scenario(StreamSpec(scale=7, n_batches=2,
                                       batch_edges=16))
        assert sc.base.insert_weights is None


class TestReplay:
    def test_checked_replay_passes(self, small_scenario):
        replay = StreamReplay(small_scenario, check=True)
        rows = replay.run()
        assert len(rows) == 4
        assert all(r.checked == 3 for r in rows)
        assert all(r.n_arcs > 0 for r in rows)
        # Counters are filled for every requested algorithm.
        assert all(r.bfs_resettled >= 0 for r in rows)
        assert all(r.sssp_resettled >= 0 for r in rows)
        assert all(r.pagerank_sweeps >= 1 for r in rows)

    def test_algorithm_subset_leaves_sentinels(self, small_scenario):
        rows = StreamReplay(small_scenario,
                            algorithms=("bfs",)).run()
        assert all(r.sssp_resettled == -1 for r in rows)
        assert all(r.pagerank_sweeps == -1 for r in rows)
        assert all(r.bfs_resettled >= 0 for r in rows)

    def test_sssp_requires_weighted(self):
        sc = build_scenario(StreamSpec(scale=7, n_batches=2,
                                       batch_edges=16))
        with pytest.raises(ConfigError, match="weighted"):
            StreamReplay(sc, algorithms=("sssp",))

    def test_unknown_algorithm_rejected(self, small_scenario):
        with pytest.raises(ConfigError, match="unknown"):
            StreamReplay(small_scenario, algorithms=("bfs", "nope"))

    def test_empty_algorithms_rejected(self, small_scenario):
        with pytest.raises(ConfigError, match="at least one"):
            StreamReplay(small_scenario, algorithms=())

    def test_divergence_raises_validation_error(self, small_scenario):
        replay = StreamReplay(small_scenario, algorithms=("bfs",),
                              check=True)
        replay._init_base()
        # Corrupt the kernel state; the next oracle check must fail.
        replay._kernels["bfs"].level[small_scenario.root] = 99
        with pytest.raises(ValidationError, match="BFS diverged"):
            replay._check_batch(replay._graph.snapshot(), 0)

    def test_deterministic_rows(self, small_scenario):
        r1 = StreamReplay(small_scenario).run()
        r2 = StreamReplay(build_scenario(small_scenario.spec)).run()
        assert r1 == r2


class TestArtifacts:
    def test_csv_roundtrip(self, small_scenario, tmp_path):
        rows = StreamReplay(small_scenario).run()
        path = tmp_path / "stream_results.csv"
        write_results_csv(rows, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(rows) + 1
        assert lines[0].startswith("batch,n_inserted,")
        assert lines[1].split(",")[0] == "0"

    def test_trace_spans_and_metrics(self, small_scenario, tmp_path):
        tracer = Tracer(tmp_path / "trace")
        StreamReplay(small_scenario, tracer=tracer, check=True).run()
        tracer.close()
        events = read_events(tmp_path / "trace")
        stats = validate_events(events)
        assert "stream" in stats["categories"]
        names = {e["name"] for e in events if e.get("type") == "span"}
        assert {"stream", "stream:init", "batch[0]"} <= names
        counters = {e["name"] for e in events
                    if e.get("type") == "counter"}
        assert {"epg_stream_batches_total",
                "epg_stream_arcs_inserted_total",
                "epg_stream_arcs_removed_total",
                "epg_stream_resettled_total",
                "epg_stream_checks_total"} <= counters

    def test_batches_total_matches(self, small_scenario, tmp_path):
        tracer = Tracer(tmp_path / "trace")
        StreamReplay(small_scenario, tracer=tracer).run()
        tracer.close()
        total = sum(e["inc"] for e in read_events(tmp_path / "trace")
                    if e.get("type") == "counter"
                    and e["name"] == "epg_stream_batches_total")
        assert total == len(small_scenario.batches)
