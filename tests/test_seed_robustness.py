"""Seed robustness: the paper's qualitative conclusions must not be a
lottery of the default seed.

Runs the headline orderings across several experiment seeds (different
Kronecker graphs, different roots, different measurement noise) and
requires them to hold in every draw.
"""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment

SEEDS = (1, 97, 20170402)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_analysis(request, tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp(f"seed{request.param}"),
        dataset="kronecker", scale=10, n_roots=6, seed=request.param,
        algorithms=("bfs", "sssp", "pagerank"))
    return Experiment(cfg).run_all()


def test_gap_wins_bfs_every_seed(seeded_analysis):
    box = seeded_analysis.box("time")
    times = {k[0]: v.median for k, v in box.items() if k[1] == "bfs"}
    assert times["gap"] == min(times.values())


def test_gap_wins_sssp_every_seed(seeded_analysis):
    box = seeded_analysis.box("time")
    times = {k[0]: v.median for k, v in box.items() if k[1] == "sssp"}
    assert times["gap"] == min(times.values())
    assert times["powergraph"] == max(times.values())


def test_iteration_ordering_every_seed(seeded_analysis):
    iters = seeded_analysis.iterations("pagerank")
    assert iters["gap"] == min(iters.values())
    assert iters["graphmat"] == max(iters.values())


def test_power_identity_every_seed(seeded_analysis):
    power = seeded_analysis.power_box("pkg_watts", "bfs")
    means = {s: b.mean for s, b in power.items()}
    assert means["graph500"] == max(means.values())
    assert means["graphmat"] == min(means.values())
