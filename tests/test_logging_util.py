"""Tests for the harness logging helpers."""

import logging

import pytest

from repro.logging_util import enable_console_logging, get_logger, phase_timer


def test_namespaced_logger():
    assert get_logger().name == "repro"
    assert get_logger("repro.pipeline").name == "repro.pipeline"


def test_phase_timer_logs_duration(caplog):
    with caplog.at_level(logging.INFO, logger="repro.pipeline"):
        with phase_timer("parse"):
            pass
    assert "parse: starting" in caplog.text
    assert "parse: done in" in caplog.text


def test_phase_timer_logs_failure(caplog):
    with caplog.at_level(logging.ERROR, logger="repro.pipeline"):
        with pytest.raises(RuntimeError):
            with phase_timer("run"):
                raise RuntimeError("boom")
    assert "run: failed" in caplog.text


def test_enable_console_logging_idempotent():
    logger = get_logger()
    before = list(logger.handlers)
    enable_console_logging()
    enable_console_logging()
    stream_handlers = [h for h in logger.handlers
                       if isinstance(h, logging.StreamHandler)]
    assert len(stream_handlers) == max(1, len(
        [h for h in before if isinstance(h, logging.StreamHandler)]))
    # Clean up for other tests.
    for h in logger.handlers[:]:
        if h not in before:
            logger.removeHandler(h)
    logger.setLevel(logging.NOTSET)


def test_cli_verbose_flag(tmp_path, capsys):
    from repro.cli import main

    main(["--verbose", "setup", "--output", str(tmp_path)])
    # Cleanup the handler the flag installed.
    logger = get_logger()
    for h in logger.handlers[:]:
        logger.removeHandler(h)
    logger.setLevel(logging.NOTSET)
