"""Bit-identity of the sharded drivers against the serial kernels.

Small adversarial graphs (hubs, chains, disconnected pieces,
self-loops, duplicates) across every strategy and shard count 1-4 --
outputs, WorkProfile arrays, serial_units, and stats dicts must match
the serial kernels exactly, in both inline and process-backed modes.
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank
from repro.errors import SystemCapabilityError
from repro.graph.csr import CSRGraph
from repro.shard.drivers import (
    shard_bfs_bitmap,
    shard_delta_stepping,
    shard_dobfs,
    shard_pagerank,
)
from repro.shard.engine import ShardEngine
from repro.shard.partition import PARTITION_STRATEGIES
from repro.systems.gap.bfs import dobfs
from repro.systems.gap.graph import GapGraph
from repro.systems.gap.sssp import delta_stepping
from repro.systems.graph500.bfs import bfs_bitmap


def _gap_graph(src, dst, n, weights=None):
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    out = CSRGraph.from_arrays(src, dst, n, weights=weights)
    inn = CSRGraph.from_arrays(dst, src, n, weights=weights)
    return GapGraph(out=out, inn=inn, n=n, directed=True)


def _random_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    return _gap_graph(rng.integers(0, n, m), rng.integers(0, n, m), n,
                      weights=rng.uniform(0.001, 1.0, m))


GRAPHS = {
    "random": _random_graph(180, 900, 7),
    "hub": _gap_graph([0] * 50 + list(range(1, 51)),
                      list(range(1, 51)) + [0] * 50, 60,
                      weights=np.linspace(0.01, 1.0, 100)),
    "chain": _gap_graph(np.arange(39), np.arange(1, 40), 40,
                        weights=np.full(39, 0.25)),
    "disconnected": _gap_graph([0, 1, 10, 11], [1, 0, 11, 10], 20,
                               weights=np.array([1.0, 2.0, 3.0, 4.0])),
    "self-loops": _gap_graph([0, 0, 1, 2, 2], [0, 1, 2, 2, 0], 5,
                             weights=np.array([1.0, 0.5, 0.5, 1.0,
                                               0.25])),
}


def _profiles_equal(a, b):
    pa, pb = a.to_arrays(), b.to_arrays()
    return (all(np.array_equal(pa[k], pb[k]) for k in pa)
            and a.serial_units == b.serial_units)


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
@pytest.mark.parametrize("shards", [1, 2, 3, 4])
def test_inline_bit_identity(name, strategy, shards):
    g = GRAPHS[name]
    root = 0
    p0, l0, prof0, st0 = dobfs(g, root)
    d0, dprof0, dst0 = delta_stepping(g, root)
    bp0, bl0, bprof0, bst0 = bfs_bitmap(g.out, root)
    r0, it0 = pagerank(g.out)
    with ShardEngine(g.out, g.inn, n_shards=shards, strategy=strategy,
                     inline=True) as engine:
        p1, l1, prof1, st1 = shard_dobfs(g, root, engine)
        assert p0.tobytes() == p1.tobytes()
        assert l0.tobytes() == l1.tobytes()
        assert _profiles_equal(prof0, prof1)
        assert st0 == st1

        d1, dprof1, dst1 = shard_delta_stepping(g, root, engine)
        assert d0.tobytes() == d1.tobytes()
        assert _profiles_equal(dprof0, dprof1)
        assert dst0 == dst1

        bp1, bl1, bprof1, bst1 = shard_bfs_bitmap(g.out, root, engine)
        assert bp0.tobytes() == bp1.tobytes()
        assert bl0.tobytes() == bl1.tobytes()
        assert _profiles_equal(bprof0, bprof1)
        assert bst0 == bst1

        r1, it1 = shard_pagerank(g.out, engine)
        assert r0.tobytes() == r1.tobytes()
        assert it0 == it1


def test_process_backed_bit_identity_and_pool_reuse():
    """One process pool serving all four kernels back to back -- the
    resident-engine pattern the systems layer relies on."""
    g = GRAPHS["random"]
    with ShardEngine(g.out, g.inn, n_shards=2,
                     strategy="edge_blocks") as engine:
        assert not engine.inline
        for root in (0, 17, 93):
            p0, l0, prof0, st0 = dobfs(g, root)
            p1, l1, prof1, st1 = shard_dobfs(g, root, engine)
            assert p0.tobytes() == p1.tobytes()
            assert l0.tobytes() == l1.tobytes()
            assert _profiles_equal(prof0, prof1)
            assert st0 == st1

            d0, dprof0, dst0 = delta_stepping(g, root)
            d1, dprof1, dst1 = shard_delta_stepping(g, root, engine)
            assert d0.tobytes() == d1.tobytes()
            assert _profiles_equal(dprof0, dprof1)
            assert dst0 == dst1

        r0, it0 = pagerank(g.out)
        r1, it1 = shard_pagerank(g.out, engine)
        assert r0.tobytes() == r1.tobytes()
        assert it0 == it1


def test_exchange_accounting_resets_per_kernel():
    g = GRAPHS["random"]
    with ShardEngine(g.out, g.inn, n_shards=2, inline=True) as engine:
        shard_dobfs(g, 0, engine)
        first = (engine.rounds, engine.bytes_exchanged)
        assert first[0] > 0 and first[1] > 0
        shard_dobfs(g, 0, engine)
        assert (engine.rounds, engine.bytes_exchanged) == first


def test_sssp_capability_errors():
    g = GRAPHS["random"]
    unweighted = _gap_graph([0, 1], [1, 0], 2)
    with ShardEngine(unweighted.out, unweighted.inn, n_shards=2,
                     inline=True) as engine:
        with pytest.raises(SystemCapabilityError):
            shard_delta_stepping(unweighted, 0, engine)
    with ShardEngine(g.out, g.inn, n_shards=2, inline=True) as engine:
        with pytest.raises(SystemCapabilityError):
            shard_delta_stepping(g, 0, engine, delta=0.0)
