"""Sharded engine tests."""
