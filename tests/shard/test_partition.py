"""Property-based tests of the graph partitioners (hypothesis).

The partition invariants are what the bit-identity contract rests on:
every vertex mastered exactly once, every arc executed exactly once,
and the shard slices reassembling to the input graph byte-for-byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.shard.partition import (
    PARTITION_STRATEGIES,
    balanced_edge_blocks,
    contiguous_blocks,
    greedy_vertex_cut,
    partition_graph,
    reassemble_out_slices,
    shard_in_slice,
    shard_out_slice,
)


@st.composite
def csr_graphs(draw, max_n=50, max_m=200):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weights = None
    if draw(st.booleans()):
        weights = np.array(draw(st.lists(
            st.floats(0.001, 100.0, allow_nan=False),
            min_size=m, max_size=m)))
    return CSRGraph.from_arrays(np.array(src, dtype=np.int64),
                                np.array(dst, dtype=np.int64), n,
                                weights=weights)


shard_counts = st.integers(min_value=1, max_value=6)
strategies = st.sampled_from(PARTITION_STRATEGIES)


@given(csr_graphs(), shard_counts, strategies)
@settings(max_examples=80, deadline=None)
def test_each_vertex_has_one_owner(csr, n_shards, strategy):
    part = partition_graph(csr, n_shards, strategy)
    assert part.owner.shape == (csr.n_vertices,)
    assert np.all((part.owner >= 0) & (part.owner < n_shards))
    counts = np.zeros(csr.n_vertices, dtype=np.int64)
    for k in range(n_shards):
        counts[part.shard_vertices(k)] += 1
    assert np.all(counts == 1)


@given(csr_graphs(), shard_counts, strategies)
@settings(max_examples=80, deadline=None)
def test_each_edge_assigned_exactly_once(csr, n_shards, strategy):
    part = partition_graph(csr, n_shards, strategy)
    assert part.edge_shard.shape == (csr.n_edges,)
    assert np.all((part.edge_shard >= 0) & (part.edge_shard < n_shards))
    slot_count = np.zeros(csr.n_edges, dtype=np.int64)
    total = 0
    for k in range(n_shards):
        sl = shard_out_slice(csr, part, k)
        slot_count[sl.slot_map] += 1
        total += sl.n_edges
    assert total == csr.n_edges
    assert np.all(slot_count == 1)
    assert part.edge_balance().sum() == csr.n_edges


@given(csr_graphs(), shard_counts, strategies)
@settings(max_examples=60, deadline=None)
def test_reassembly_is_byte_identical(csr, n_shards, strategy):
    part = partition_graph(csr, n_shards, strategy)
    slices = [shard_out_slice(csr, part, k) for k in range(n_shards)]
    back = reassemble_out_slices(slices, csr)
    assert back.row_ptr.tobytes() == csr.row_ptr.tobytes()
    assert back.col_idx.tobytes() == csr.col_idx.tobytes()
    if csr.weights is None:
        assert back.weights is None
    else:
        assert back.weights.tobytes() == csr.weights.tobytes()


@given(csr_graphs(), shard_counts)
@settings(max_examples=60, deadline=None)
def test_edge_blocks_balance_tolerance(csr, n_shards):
    """No shard exceeds ``m / n_shards + max_in_degree`` arcs: a split
    point can only overshoot by the degree of the vertex it lands on."""
    part = balanced_edge_blocks(csr, n_shards)
    in_deg = np.bincount(csr.col_idx, minlength=csr.n_vertices)
    max_in = int(in_deg.max()) if csr.n_vertices else 0
    ceiling = csr.n_edges / n_shards + max_in
    assert int(part.edge_balance().max(initial=0)) <= ceiling


@given(csr_graphs(), shard_counts)
@settings(max_examples=60, deadline=None)
def test_blocks_are_contiguous(csr, n_shards):
    """Both block strategies master contiguous vertex ranges in shard
    order, and push arcs follow the destination's owner."""
    for part in (contiguous_blocks(csr, n_shards),
                 balanced_edge_blocks(csr, n_shards)):
        assert np.all(np.diff(part.owner) >= 0)
        assert np.array_equal(part.edge_shard, part.owner[csr.col_idx])


@given(csr_graphs(), shard_counts)
@settings(max_examples=40, deadline=None)
def test_vertex_cut_masters_are_hosts(csr, n_shards):
    """Every vertex with arcs is mastered on a shard that actually
    hosts one of its arcs (a replica), and the replication factor is
    at least 1."""
    part = greedy_vertex_cut(csr, n_shards)
    assert part.replication_factor >= 1.0 or csr.n_edges == 0
    src = csr.source_ids()
    hosted = np.zeros((csr.n_vertices, n_shards), dtype=bool)
    hosted[src, part.edge_shard] = True
    hosted[csr.col_idx, part.edge_shard] = True
    touched = hosted.any(axis=1)
    assert np.all(hosted[touched, part.owner[touched]])


@given(csr_graphs(), shard_counts, strategies)
@settings(max_examples=40, deadline=None)
def test_in_slices_cover_owned_rows_exactly(csr, n_shards, strategy):
    """Pull slices: complete in-rows of mastered vertices, each in-arc
    appearing in exactly one shard's slice."""
    inn = CSRGraph.from_arrays(csr.col_idx, csr.source_ids(),
                               csr.n_vertices, weights=csr.weights)
    part = partition_graph(csr, n_shards, strategy)
    in_deg = np.diff(inn.row_ptr)
    total = 0
    for k in range(n_shards):
        owned, sl = shard_in_slice(inn, part, k)
        assert np.array_equal(owned, part.shard_vertices(k))
        assert np.array_equal(np.diff(sl.row_ptr), in_deg[owned])
        total += sl.n_edges
    assert total == inn.n_edges


def test_partition_validation():
    csr = CSRGraph.from_arrays(np.array([0]), np.array([1]), 2)
    with pytest.raises(ConfigError):
        partition_graph(csr, 0, "blocks")
    with pytest.raises(ConfigError):
        partition_graph(csr, 2, "nope")
