"""Engine lifecycle: worker pool, shared-memory hygiene, failure paths.

The crash tests run in subprocesses so a SIGKILLed worker or an
exit-without-close can be observed from outside: clean stderr (no
resource-tracker noise, no tracebacks), exit code 0 where promised,
and nothing left behind in ``/dev/shm``.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigError, ShardError
from repro.graph.csr import CSRGraph
from repro.parallel.scheduler import resolve_jobs
from repro.shard.engine import ShardEngine, resolve_shards
from repro.shard.shm import ArenaSpec, ShmArena

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _graph(n=300, m=1500, seed=1, weighted=True):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.uniform(0.001, 1.0, size=m) if weighted else None
    out = CSRGraph.from_arrays(src, dst, n, weights=w)
    inn = CSRGraph.from_arrays(dst, src, n, weights=w)
    return out, inn


def _run_script(body: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run([sys.executable, "-c", textwrap.dedent(body)],
                          capture_output=True, text=True, timeout=120,
                          env=env)


# ----------------------------------------------------------------------
# resolve_shards
# ----------------------------------------------------------------------
def test_resolve_shards_defaults_to_core_count():
    assert resolve_shards(None) == resolve_jobs(None)


@pytest.mark.parametrize("bad", [0, -1])
def test_resolve_shards_rejects_nonpositive(bad):
    with pytest.raises(ConfigError):
        resolve_shards(bad)


# ----------------------------------------------------------------------
# Arena basics
# ----------------------------------------------------------------------
def test_arena_roundtrip_and_idempotent_destroy():
    arrays = {"a": np.arange(7, dtype=np.int64),
              "b": np.linspace(0, 1, 5),
              "c": np.zeros(3, dtype=bool)}
    arena = ShmArena.create(arrays)
    try:
        for key, arr in arrays.items():
            assert np.array_equal(arena[key], arr)
        other = ShmArena.attach(arena.spec)
        other["a"][0] = 99
        assert arena["a"][0] == 99  # same pages, no copy
        other.close()
    finally:
        arena.destroy()
        arena.destroy()  # idempotent
    assert arena.closed


def test_attach_to_vanished_segment_raises():
    spec = ArenaSpec(segment="epg-shard-definitely-not-there",
                     layout=(("x", "<i8", (1,), 0),))
    with pytest.raises(ShardError, match="vanished"):
        ShmArena.attach(spec)


# ----------------------------------------------------------------------
# Engine lifecycle
# ----------------------------------------------------------------------
def test_process_pool_spawns_and_closes():
    out, inn = _graph()
    engine = ShardEngine(out, inn, n_shards=2, inline=False)
    assert not engine.inline
    assert len(engine._workers) == 2
    assert all(p.is_alive() for p in engine._workers)
    engine.close()
    assert not engine._workers
    engine.close()  # idempotent
    assert os.listdir("/dev/shm") == []


def test_context_manager_cleans_up():
    out, inn = _graph()
    with ShardEngine(out, inn, n_shards=2, inline=False) as engine:
        assert any("epg-shard" in p.name for p in engine._workers)
    assert os.listdir("/dev/shm") == []


def test_inline_fallback_under_daemon_parent():
    """A daemonic parent (e.g. a suite cell worker) cannot fork: the
    engine must auto-select the inline path and still work."""
    def child(q):
        out, inn = _graph(n=60, m=200)
        engine = ShardEngine(out, inn, n_shards=3)
        q.put(engine.inline)
        engine.close()

    ctx = multiprocessing.get_context("fork")
    q = ctx.Queue()
    proc = ctx.Process(target=child, args=(q,), daemon=True)
    proc.start()
    inline = q.get(timeout=60)
    proc.join(timeout=60)
    assert inline is True
    assert proc.exitcode == 0


def test_inline_engine_has_no_segments():
    out, inn = _graph()
    engine = ShardEngine(out, inn, n_shards=4, inline=True)
    assert engine._static_arena is None and engine._dyn_arena is None
    assert len(engine._contexts) == 4
    engine.close()


# ----------------------------------------------------------------------
# Failure paths (observed from outside)
# ----------------------------------------------------------------------
def test_sigkilled_worker_raises_shard_error_cleanly():
    """SIGKILL one worker mid-pool: the next superstep must raise
    ShardError naming the dead worker, leave /dev/shm empty, and emit
    no tracker noise or stray tracebacks on stderr."""
    proc = _run_script("""
        import numpy as np, os, signal
        from repro.errors import ShardError
        from repro.graph.csr import CSRGraph
        from repro.shard.engine import ShardEngine

        rng = np.random.default_rng(1)
        n, m = 300, 1500
        out = CSRGraph.from_arrays(rng.integers(0, n, m),
                                   rng.integers(0, n, m), n)
        inn = CSRGraph.from_arrays(out.col_idx, out.source_ids(), n)
        engine = ShardEngine(out, inn, n_shards=2, inline=False,
                             step_timeout_s=5.0)
        os.kill(engine._workers[0].pid, signal.SIGKILL)
        try:
            engine.top_down(np.array([0], dtype=np.int64))
        except ShardError as exc:
            assert "epg-shard-0" in str(exc), exc
            print("SHARD_ERROR_OK")
        assert os.listdir("/dev/shm") == []
        print("SHM_CLEAN")
    """)
    assert proc.returncode == 0, proc.stderr
    assert "SHARD_ERROR_OK" in proc.stdout
    assert "SHM_CLEAN" in proc.stdout
    assert "Traceback" not in proc.stderr
    assert "resource_tracker" not in proc.stderr


def test_exit_without_close_is_clean():
    """Forgetting close(): the exit-finalizer chain (engine before
    arenas) must
    shut down without a segfault, tracker warnings, or leaked
    segments."""
    proc = _run_script("""
        import numpy as np
        from repro.graph.csr import CSRGraph
        from repro.shard.engine import ShardEngine

        rng = np.random.default_rng(0)
        n, m = 300, 1500
        out = CSRGraph.from_arrays(rng.integers(0, n, m),
                                   rng.integers(0, n, m), n)
        inn = CSRGraph.from_arrays(out.col_idx, out.source_ids(), n)
        engine = ShardEngine(out, inn, n_shards=2, inline=False)
        engine.top_down(np.array([0], dtype=np.int64))
        print("DONE")  # exits with live workers and mapped arenas
    """)
    assert proc.returncode == 0, (proc.returncode, proc.stderr)
    assert "DONE" in proc.stdout
    assert "Traceback" not in proc.stderr
    assert "resource_tracker" not in proc.stderr
    assert os.listdir("/dev/shm") == []


def test_pool_worker_hosting_engine_exits_cleanly():
    """A non-daemonic ProcessPoolExecutor worker (the suite's --jobs
    cell workers, which also SIG_IGN SIGTERM) hosting a process-backed
    engine must shut down promptly at executor shutdown: its exit path
    runs ``util._exit_function``, which joins children *before* plain
    atexit would fire -- the engine's finalizer has to win that race
    or the worker deadlocks forever (the --jobs x --shards
    regression)."""
    proc = _run_script("""
        import signal
        import numpy as np
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        def cell(_):
            # The suite's cell workers ignore SIGTERM (checkpointing
            # parents drain them); reproduce that hostile inheritance.
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            from repro.graph.csr import CSRGraph
            from repro.shard.engine import ShardEngine
            rng = np.random.default_rng(3)
            n, m = 200, 800
            out = CSRGraph.from_arrays(rng.integers(0, n, m),
                                       rng.integers(0, n, m), n)
            inn = CSRGraph.from_arrays(out.col_idx, out.source_ids(), n)
            engine = ShardEngine(out, inn, n_shards=2, inline=False)
            assert not engine.inline
            ids, _, _ = engine.top_down(np.array([0], dtype=np.int64))
            return int(ids.size)   # exit WITHOUT close(): the worker's
                                   # finalizer chain must handle it

        if __name__ == "__main__":
            with ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=get_context("fork")) as pool:
                assert pool.submit(cell, 0).result(timeout=60) > 0
            print("POOL_SHUTDOWN_OK")
        """)
    assert proc.returncode == 0, (proc.returncode, proc.stderr)
    assert "POOL_SHUTDOWN_OK" in proc.stdout
    assert "Traceback" not in proc.stderr
    assert "resource_tracker" not in proc.stderr
    assert os.listdir("/dev/shm") == []


def test_orphaned_workers_self_reap():
    """SIGKILL the engine's owner: shard workers must notice the
    parent is gone and exit on their own (no zombie pool blocked on a
    ``go`` token that will never come), after which the shared
    resource tracker sweeps the leaked segments."""
    inner = textwrap.dedent("""
        import numpy as np, os, sys, time
        import repro.shard.engine as engine_mod
        from repro.graph.csr import CSRGraph

        engine_mod.ORPHAN_POLL_S = 0.3
        rng = np.random.default_rng(5)
        n, m = 200, 800
        out = CSRGraph.from_arrays(rng.integers(0, n, m),
                                   rng.integers(0, n, m), n)
        inn = CSRGraph.from_arrays(out.col_idx, out.source_ids(), n)
        engine = engine_mod.ShardEngine(out, inn, n_shards=2,
                                        inline=False)
        print(" ".join(str(p.pid) for p in engine._workers),
              flush=True)
        time.sleep(120)   # parent is SIGKILLed long before this ends
    """)
    env = dict(os.environ, PYTHONPATH=SRC)
    owner = subprocess.Popen([sys.executable, "-c", inner], env=env,
                             stdout=subprocess.PIPE, text=True)
    try:
        pids = [int(p) for p in owner.stdout.readline().split()]
        assert len(pids) == 2
        os.kill(owner.pid, signal.SIGKILL)
        owner.wait(timeout=30)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            alive = [p for p in pids if _pid_alive(p)]
            if not alive and os.listdir("/dev/shm") == []:
                break
            time.sleep(0.2)
        assert not alive, f"orphaned shard workers survived: {alive}"
        assert os.listdir("/dev/shm") == []
    finally:
        owner.stdout.close()
        for p in pids:
            if _pid_alive(p):
                os.kill(p, signal.SIGKILL)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def test_worker_exception_surfaces_without_breaking_pool():
    """An op exception lands in the ring header, raises ShardError in
    the parent, and the pool keeps serving supersteps afterwards."""
    out, inn = _graph()
    with ShardEngine(out, inn, n_shards=2, inline=False) as engine:
        with pytest.raises(ShardError, match="shard"):
            # Out-of-range frontier ids make the gather throw inside
            # the worker.
            engine.top_down(np.array([10 ** 9], dtype=np.int64))
        ids, _, examined = engine.top_down(np.array([0], dtype=np.int64))
        assert np.all(np.diff(ids) > 0)
        assert examined >= ids.size
