"""--shards plumbing: systems, config, CLI, suite manifest, serve.

The outer contract: a sharded run must be indistinguishable from a
serial one everywhere results are recorded (outputs, priced times,
counters, provenance digests), while the knob itself reaches every
execution layer.
"""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.errors import ConfigError
from repro.service.daemon import ServeConfig
from repro.service.graphs import ResidentGraphManager
from repro.systems.registry import create_system


@pytest.fixture(scope="module")
def kron_ds(tmp_path_factory):
    from repro.datasets.homogenize import homogenize
    from repro.datasets.kronecker import KroneckerSpec, generate_kronecker

    el = generate_kronecker(KroneckerSpec(scale=9, weighted=True))
    return homogenize(el, tmp_path_factory.mktemp("shard-kron"))


@pytest.mark.parametrize("system,algos", [("gap", ("bfs", "sssp")),
                                          ("graph500", ("bfs",))])
def test_system_results_identical_under_sharding(kron_ds, system, algos):
    serial = create_system(system, n_threads=4)
    sharded = create_system(system, n_threads=4, shards=2)
    l0 = serial.load(kron_ds)
    l1 = sharded.load(kron_ds)
    for algo in algos:
        for root in (0, 3):
            r0 = serial.run(l0, algo, root=root)
            r1 = sharded.run(l1, algo, root=root)
            assert r0.time_s == r1.time_s
            assert r0.iterations == r1.iterations
            assert r0.counters == r1.counters
            for key in r0.output:
                assert np.array_equal(r0.output[key], r1.output[key])


def test_shard_metrics_emitted_only_when_sharded(kron_ds, tmp_path):
    from repro.observability import Tracer

    serial = create_system("gap", n_threads=4)
    sharded = create_system("gap", n_threads=4, shards=2)
    # The default tracer is a no-op; give each a live one, as the
    # runner does.
    serial.tracer = Tracer(tmp_path / "serial")
    sharded.tracer = Tracer(tmp_path / "sharded")
    serial.run(serial.load(kron_ds), "bfs", root=0)
    sharded.run(sharded.load(kron_ds), "bfs", root=0)
    assert serial.tracer.metrics.counter(
        "epg_shard_rounds_total").total() == 0
    rounds = sharded.tracer.metrics.counter("epg_shard_rounds_total")
    nbytes = sharded.tracer.metrics.counter("epg_shard_bytes_total")
    assert rounds.value(system="gap", algorithm="bfs", shards=2) > 0
    assert nbytes.value(system="gap", algorithm="bfs", shards=2) > 0


def test_engine_cached_on_loaded_graph(kron_ds):
    system = create_system("gap", n_threads=4, shards=2)
    loaded = system.load(kron_ds)
    system.run(loaded, "bfs", root=0)
    engines = loaded.__dict__["_shard_engines"]
    assert len(engines) == 1
    system.run(loaded, "sssp", root=0)
    assert len(engines) == 1  # bfs and sssp share the pull engine
    engine = next(iter(engines.values()))
    system.run(loaded, "bfs", root=1)
    assert next(iter(engines.values())) is engine  # reused, not rebuilt
    engine.close()


def test_experiment_config_shards(tmp_path):
    cfg = ExperimentConfig(output_dir=tmp_path, shards=4)
    assert cfg.shards == 4
    # An execution detail: never in provenance dicts.
    assert "shards" not in cfg.to_dict()
    with pytest.raises(ConfigError, match="shards"):
        ExperimentConfig(output_dir=tmp_path, shards=0)


def test_system_rejects_bad_shards():
    from repro.errors import SystemCapabilityError

    with pytest.raises(SystemCapabilityError):
        create_system("gap", shards=0)


def test_cli_exposes_shards():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["run", "--output", "/tmp/x", "--shards",
                              "4"])
    assert args.shards == 4
    args = parser.parse_args(["serve", "--data-dir", "/tmp/x",
                              "--shards", "2"])
    assert args.shards == 2


def test_serve_manager_forwards_shards(tmp_path, monkeypatch):
    cfg = ServeConfig(data_dir=tmp_path, shards=3)
    assert cfg.shards == 3
    mgr = ResidentGraphManager(tmp_path, shards=3)
    assert mgr.shards == 3

    seen = {}

    def fake_create(system, **kwargs):
        seen.update(kwargs)
        raise RuntimeError("stop here")

    import repro.service.graphs as graphs_mod

    monkeypatch.setattr(graphs_mod, "create_system", fake_create)
    monkeypatch.setattr(mgr, "datasets", {"g": object()})
    monkeypatch.setattr(graphs_mod, "available_systems",
                        lambda: ["gap"])
    with pytest.raises(RuntimeError, match="stop here"):
        mgr._acquire("g", "gap", 4)
    assert seen.get("shards") == 3
