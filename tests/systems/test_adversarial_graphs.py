"""Adversarial graph structures through every system.

Degenerate shapes stress different code paths than the Kronecker
fixture: a star (one hub), a long chain (maximal diameter), two
disconnected cliques, self-loops, and duplicate edges.  Every system's
output must still match the reference kernels.
"""

import numpy as np
import pytest

from repro.algorithms import bfs_levels, pagerank, sssp_dijkstra
from repro.algorithms import weakly_connected_components
from repro.datasets.homogenize import homogenize
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.validation import (
    validate_pagerank,
    validate_sssp_distances,
)
from repro.systems import create_system

BFS_SYSTEMS = ("gap", "graphbig", "graphmat")
SSSP_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")


def _star(n=64):
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    w = np.linspace(0.1, 1.0, n - 1)
    return EdgeList(src, dst, n, weights=w, directed=False, name="star")


def _chain(n=200):
    src = np.arange(n - 1, dtype=np.int64)
    w = np.full(n - 1, 0.5)
    return EdgeList(src, src + 1, n, weights=w, directed=False,
                    name="chain")


def _two_cliques(k=12):
    src, dst = [], []
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                src.append(base + i)
                dst.append(base + j)
    m = len(src)
    return EdgeList(np.array(src), np.array(dst), 2 * k,
                    weights=np.linspace(0.2, 2.0, m), directed=False,
                    name="cliques")


def _messy(n=40, seed=5):
    """Self-loops and duplicate edges (the Graph500 contract allows
    both in its edge lists)."""
    rng = np.random.default_rng(seed)
    m = 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    # Force some loops and duplicates.
    src[:5] = dst[:5] = np.arange(5)
    src[5:10] = 7
    dst[5:10] = 9
    return EdgeList(src, dst, n, weights=rng.uniform(0.1, 1.0, m),
                    directed=False, name="messy")


GRAPHS = {"star": _star, "chain": _chain, "cliques": _two_cliques,
          "messy": _messy}


@pytest.fixture(scope="module", params=sorted(GRAPHS))
def adversarial(request, tmp_path_factory):
    edges = GRAPHS[request.param]()
    dataset = homogenize(edges, tmp_path_factory.mktemp(request.param),
                         n_roots=4)
    csr = CSRGraph.from_edge_list(edges, symmetrize=True)
    return request.param, dataset, csr


@pytest.mark.parametrize("system_name", BFS_SYSTEMS)
def test_bfs_on_adversarial(system_name, adversarial):
    name, dataset, csr = adversarial
    system = create_system(system_name)
    loaded = system.load(dataset)
    for root in dataset.roots[:2]:
        root = int(root)
        res = system.run(loaded, "bfs", root=root)
        assert np.array_equal(res.output["level"],
                              bfs_levels(csr, root)), (system_name, name)


@pytest.mark.parametrize("system_name", SSSP_SYSTEMS)
def test_sssp_on_adversarial(system_name, adversarial):
    name, dataset, csr = adversarial
    system = create_system(system_name)
    loaded = system.load(dataset)
    root = int(dataset.roots[0])
    res = system.run(loaded, "sssp", root=root)
    validate_sssp_distances(res.output["dist"], sssp_dijkstra(csr, root),
                            rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("system_name", SSSP_SYSTEMS)
def test_pagerank_on_adversarial(system_name, adversarial):
    name, dataset, csr = adversarial
    system = create_system(system_name)
    loaded = system.load(dataset)
    res = system.run(loaded, "pagerank")
    validate_pagerank(res.output["rank"], pagerank(csr)[0], tol=5e-3)


def test_wcc_sees_two_cliques(tmp_path):
    edges = _two_cliques()
    dataset = homogenize(edges, tmp_path, n_roots=4)
    csr = CSRGraph.from_edge_list(edges, symmetrize=True)
    ref = weakly_connected_components(csr)
    assert len(np.unique(ref)) == 2
    for system_name in ("gap", "graphbig", "graphmat", "powergraph"):
        system = create_system(system_name)
        loaded = system.load(dataset)
        res = system.run(loaded, "wcc")
        assert np.array_equal(res.output["labels"], ref), system_name


def test_chain_depth_equals_distance(tmp_path):
    """A 200-vertex chain: BFS must go ~100 levels from mid-chain roots
    (maximal-depth frontier loop exercise)."""
    edges = _chain()
    dataset = homogenize(edges, tmp_path, n_roots=4)
    system = create_system("gap")
    loaded = system.load(dataset)
    res = system.run(loaded, "bfs", root=0)
    assert res.counters["depth"] >= 199
