"""Seed-stability of sampled-BC pivot selection across processes.

``bc`` approximates Brandes from a seeded sample of pivot sources
(``np.random.default_rng(seed).choice(n, size, replace=False)``).  For
cross-run and cross-machine comparability the sampled pivot set must be
a pure function of ``(seed, n, n_sources)`` -- no process state, hash
randomization, or worker identity may leak in.  The golden digest below
pins the exact pivot set for the default ``seed=27`` at ``n=1024``
(the scale-10 Kronecker vertex count); fresh interpreter processes and
a ``jobs=4`` experiment must all reproduce it bit for bit.
"""

import hashlib
import subprocess
import sys

import numpy as np
import pytest

from repro.systems import create_system

#: sha256 of the int64 bytes of default_rng(27).choice(1024, 16, False).
GOLDEN_PIVOT_DIGEST = \
    "ae21de9ae9369dfff2fe3cb8721b33c00f5a27534718a993d9df915331ba41d2"

#: The pivot ids themselves (sorted), so a digest break is debuggable.
GOLDEN_PIVOTS = [2, 10, 122, 200, 203, 215, 317, 328, 442, 604, 704,
                 759, 805, 924, 947, 993]

BC_SEED = 27
N_SOURCES = 16
N_VERTICES = 1024


def _pivots(n, seed, size):
    return np.random.default_rng(seed).choice(n, size=size,
                                              replace=False)


def _digest(arr):
    return hashlib.sha256(np.asarray(arr, dtype=np.int64)
                          .tobytes()).hexdigest()


def test_pivot_digest_matches_golden():
    pivots = _pivots(N_VERTICES, BC_SEED, N_SOURCES)
    assert sorted(pivots.tolist()) == GOLDEN_PIVOTS
    assert _digest(pivots) == GOLDEN_PIVOT_DIGEST


def test_pivot_digest_stable_in_fresh_processes():
    """Two cold interpreters (no shared numpy state) agree bitwise."""
    script = (
        "import hashlib, numpy as np\n"
        f"p = np.random.default_rng({BC_SEED}).choice({N_VERTICES}, "
        f"size={N_SOURCES}, replace=False)\n"
        "print(hashlib.sha256(p.astype(np.int64).tobytes())"
        ".hexdigest())\n")
    procs = [subprocess.Popen([sys.executable, "-c", script],
                              stdout=subprocess.PIPE, text=True)
             for _ in range(2)]
    digests = [p.communicate()[0].strip() for p in procs]
    assert all(p.returncode == 0 for p in procs)
    assert digests == [GOLDEN_PIVOT_DIGEST] * 2


def test_bc_scores_bit_identical_across_runs(kron10_dataset):
    system = create_system("gap", n_threads=32)
    loaded = system.load(kron10_dataset)
    first = system.run(loaded, "bc").output["bc"]
    second = system.run(loaded, "bc").output["bc"]
    assert first.tobytes() == second.tobytes()


@pytest.mark.slow
def test_bc_experiment_identical_under_four_jobs(tmp_path):
    """A ``jobs=4`` experiment reproduces the serial run's results.csv
    byte for byte -- worker processes must not perturb pivot sampling
    (or anything else that feeds the records)."""
    from repro.core.config import ExperimentConfig
    from repro.core.experiment import Experiment

    csvs = {}
    for jobs in (1, 4):
        cfg = ExperimentConfig(output_dir=tmp_path / f"jobs{jobs}",
                               scale=8, n_roots=2, jobs=jobs,
                               algorithms=("bc",))
        exp = Experiment(cfg)
        exp.run_all()
        csvs[jobs] = (cfg.output_dir / "results.csv").read_bytes()
    assert csvs[1] == csvs[4]
