"""GraphBIG-specific behaviour: property graph, vertex-centric kernels."""

import numpy as np
import pytest

from repro.algorithms import bfs_levels, sssp_dijkstra
from repro.systems import create_system


@pytest.fixture(scope="module")
def gbig(kron10_dataset):
    s = create_system("graphbig", n_threads=32)
    return s, s.load(kron10_dataset)


class TestPropertyGraph:
    def test_property_arrays_allocated(self, gbig):
        _, loaded = gbig
        props = loaded.data.properties
        for key in ("level", "color", "rank", "distance"):
            assert props[key].shape == (loaded.n_vertices,)

    def test_kernels_update_properties(self, gbig, kron10_dataset):
        s, loaded = gbig
        root = int(kron10_dataset.roots[0])
        s.run(loaded, "bfs", root=root)
        assert loaded.data.properties["level"][root] == 0
        s.run(loaded, "pagerank")
        assert loaded.data.properties["rank"].sum() == pytest.approx(
            1.0, abs=1e-6)


class TestKernels:
    def test_bfs_no_direction_switch_work(self, gbig, kron10_dataset,
                                          kron10_csr):
        """Plain top-down: examined edges ~ all reached out-edges,
        unlike GAP's pruned bottom-up."""
        s, loaded = gbig
        root = int(kron10_dataset.roots[0])
        res = s.run(loaded, "bfs", root=root)
        reached = res.output["level"] >= 0
        deg = kron10_csr.out_degrees()
        assert res.profile.total_units >= 0.5 * deg[reached].sum()

    def test_sssp_supersteps_bounded(self, gbig, kron10_dataset):
        s, loaded = gbig
        root = int(kron10_dataset.roots[1])
        res = s.run(loaded, "sssp", root=root)
        assert 1 <= res.counters["supersteps"] < loaded.n_vertices

    def test_wcc_rounds_close_to_diameter(self, gbig, kron10_csr):
        s, loaded = gbig
        res = s.run(loaded, "wcc")
        lev = bfs_levels(kron10_csr, 0)
        diameter_bound = lev.max() * 2 + 2
        assert res.iterations <= diameter_bound + 2

    def test_lcc_reports_wedges(self, gbig):
        s, loaded = gbig
        res = s.run(loaded, "lcc")
        assert res.counters["wedges"] > 0

    def test_fused_load_includes_build_cost(self, kron10_dataset):
        """GraphBIG's lumped load must be bigger than a bare file read
        of the same bytes (construction is inside it)."""
        s = create_system("graphbig")
        loaded = s.load(kron10_dataset)
        from repro.systems import calibration

        bare_read = loaded.input_bytes / (
            calibration.read_rate_mbs("csv") * 1e6)
        assert loaded.read_s > bare_read

    def test_pagerank_fixed_budget_mode(self, gbig):
        """Graphalytics drives PR with epsilon=0 and a fixed budget."""
        s, loaded = gbig
        res = s.run(loaded, "pagerank", epsilon=0.0, max_iterations=7)
        assert res.iterations == 7
