"""Cross-system differential tests: the five systems against *each
other*, not just against the reference oracles.

The paper's comparison is only meaningful if every system is solving
the same problem: identical BFS depth arrays, SSSP distances within
float tolerance, PageRank within 1e-4.  Any pairwise disagreement
means at least one implementation is wrong even if it happens to pass
its own oracle check.  The Graph500-spec parent-tree validator is
applied to every system that emits a parent array (PowerGraph's
Graphalytics driver computes hop counts only -- the paper's
PowerGraph-has-no-BFS hole).
"""

import numpy as np
import pytest

from repro.graph.validation import validate_bfs_parents
from repro.systems import create_system

ALL_FIVE = ("gap", "graph500", "graphbig", "graphmat", "powergraph")

#: Systems whose BFS emits a Graph500-style parent tree.
PARENT_TREE_SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")

#: SSSP / PageRank providers (the Graph500 defines only BFS).
SSSP_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")
PR_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")

TOL = 1e-4


@pytest.fixture(scope="module")
def kron_systems(kron10_dataset):
    out = {}
    for name in ALL_FIVE:
        s = create_system(name, n_threads=32)
        out[name] = (s, s.load(kron10_dataset))
    return out


@pytest.fixture(scope="module")
def kron_roots(kron10_dataset):
    return [int(r) for r in kron10_dataset.roots[:2]]


def _bfs_levels(systems, root):
    """Every system's depth array, via its own BFS entry point."""
    levels = {}
    for name, (system, loaded) in systems.items():
        if name == "powergraph":
            res = system.run_toolkit_extension(loaded, "bfs-hops",
                                               root=root)
        else:
            res = system.run(loaded, "bfs", root=root)
        levels[name] = res.output["level"]
    return levels


def _pairs(names):
    names = list(names)
    return [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]


# ----------------------------------------------------------------------
# BFS: depth arrays identical across all five systems
# ----------------------------------------------------------------------
def test_bfs_depths_agree_all_five(kron_systems, kron_roots):
    for root in kron_roots:
        levels = _bfs_levels(kron_systems, root)
        for a, b in _pairs(ALL_FIVE):
            assert np.array_equal(levels[a], levels[b]), \
                f"BFS depth arrays differ: {a} vs {b} (root {root})"


@pytest.mark.parametrize("name", PARENT_TREE_SYSTEMS)
def test_graph500_parent_validator_every_system(name, kron_systems,
                                                kron_roots, kron10_csr):
    """The Graph500 spec's five parent-tree checks, per system."""
    system, loaded = kron_systems[name]
    for root in kron_roots:
        res = system.run(loaded, "bfs", root=root)
        validate_bfs_parents(kron10_csr, root, res.output["parent"])


# ----------------------------------------------------------------------
# SSSP: distances within tolerance, identical reachability
# ----------------------------------------------------------------------
def test_sssp_distances_agree(kron_systems, kron_roots):
    for root in kron_roots:
        dists = {}
        for name in SSSP_SYSTEMS:
            system, loaded = kron_systems[name]
            dists[name] = system.run(loaded, "sssp",
                                     root=root).output["dist"]
        for a, b in _pairs(SSSP_SYSTEMS):
            da, db = dists[a], dists[b]
            reach_a, reach_b = np.isfinite(da), np.isfinite(db)
            assert np.array_equal(reach_a, reach_b), \
                f"SSSP reachability differs: {a} vs {b} (root {root})"
            diff = np.abs(da[reach_a] - db[reach_a])
            assert diff.size == 0 or diff.max() < TOL, \
                (f"SSSP distances differ: {a} vs {b} (root {root}), "
                 f"max |d| = {diff.max():.3g}")


# ----------------------------------------------------------------------
# PageRank: values within 1e-4 pairwise
# ----------------------------------------------------------------------
def test_pagerank_agrees(kron_systems):
    ranks = {}
    for name in PR_SYSTEMS:
        system, loaded = kron_systems[name]
        ranks[name] = system.run(loaded, "pagerank").output["rank"]
    for a, b in _pairs(PR_SYSTEMS):
        diff = np.abs(ranks[a] - ranks[b]).max()
        assert diff < TOL, \
            f"PageRank differs: {a} vs {b}, max |d| = {diff:.3g}"


# ----------------------------------------------------------------------
# Isolated / sink roots: a root with no outgoing edges must terminate
# with itself as the only reachable vertex (parent[root] == root,
# dist[root] == 0) in every system -- including a vertex id past the
# last nonempty CSR row.
# ----------------------------------------------------------------------
ISOLATED_ROOT = 7  # max vertex id, zero edges: CSR row past the last


@pytest.fixture(scope="module")
def isolated_dataset(tmp_path_factory):
    """Undirected 8-vertex graph whose max-id vertex 7 is isolated.

    Named ``kron-...`` so the Graph500 wrapper accepts it too.
    """
    from repro.datasets.homogenize import homogenize
    from repro.graph.edgelist import EdgeList

    src = np.array([0, 0, 1, 2, 3, 4])
    dst = np.array([1, 2, 3, 4, 5, 6])
    w = np.linspace(0.2, 1.0, 6)
    edges = EdgeList(src, dst, 8, weights=w, directed=False,
                     name="kron-isolated")
    return homogenize(edges, tmp_path_factory.mktemp("isolated"),
                      n_roots=4)


def test_bfs_from_isolated_root_all_five(isolated_dataset):
    for name in ALL_FIVE:
        system = create_system(name, n_threads=32)
        loaded = system.load(isolated_dataset)
        if name == "powergraph":
            res = system.run_toolkit_extension(loaded, "bfs-hops",
                                               root=ISOLATED_ROOT)
        else:
            res = system.run(loaded, "bfs", root=ISOLATED_ROOT)
        level = res.output["level"]
        assert level[ISOLATED_ROOT] == 0, \
            f"{name}: isolated root must be its own depth-0 tree"
        others = np.delete(level, ISOLATED_ROOT)
        assert (others == -1).all(), \
            f"{name}: isolated root reached other vertices"
        if name in PARENT_TREE_SYSTEMS:
            parent = res.output["parent"]
            assert parent[ISOLATED_ROOT] == ISOLATED_ROOT, \
                f"{name}: parent[root] must be root"
            assert (np.delete(parent, ISOLATED_ROOT) == -1).all()


def test_sssp_from_isolated_root(isolated_dataset):
    for name in SSSP_SYSTEMS:
        system = create_system(name, n_threads=32)
        loaded = system.load(isolated_dataset)
        dist = system.run(loaded, "sssp",
                          root=ISOLATED_ROOT).output["dist"]
        assert dist[ISOLATED_ROOT] == 0.0, f"{name}: dist[root] != 0"
        assert not np.isfinite(np.delete(dist, ISOLATED_ROOT)).any(), \
            f"{name}: isolated root reached other vertices"


def test_bfs_sssp_from_directed_sink_root(tmp_path_factory):
    """Directed variant: a root with in-edges but zero out-edges (plus
    an isolated max-id vertex) reaches only itself in the four systems
    that load directed graphs."""
    from repro.datasets.homogenize import homogenize
    from repro.graph.edgelist import EdgeList

    # 3 is a sink (in-edges only); 5 is isolated with the max id.
    src = np.array([0, 0, 1, 2, 4])
    dst = np.array([1, 2, 3, 3, 0])
    edges = EdgeList(src, dst, 6,
                     weights=np.array([1.0, 2.0, 1.0, 2.0, 1.0]),
                     directed=True, name="sink")
    ds = homogenize(edges, tmp_path_factory.mktemp("sink"), n_roots=4)
    for root in (3, 5):
        for name in ("gap", "graphbig", "graphmat", "powergraph"):
            system = create_system(name, n_threads=32)
            loaded = system.load(ds)
            if name == "powergraph":
                res = system.run_toolkit_extension(loaded, "bfs-hops",
                                                   root=root)
            else:
                res = system.run(loaded, "bfs", root=root)
            level = res.output["level"]
            assert level[root] == 0, f"{name}: level[{root}] != 0"
            assert (np.delete(level, root) == -1).all(), \
                f"{name}: sink root {root} reached other vertices"
            dist = system.run(loaded, "sssp", root=root).output["dist"]
            assert dist[root] == 0.0
            assert not np.isfinite(np.delete(dist, root)).any(), \
                f"{name}: sink root {root} has finite distances"


# ----------------------------------------------------------------------
# Real-world fixture graphs: the same agreements hold off-Kronecker
# (the Graph500 only loads its own generator's graphs, so four systems)
# ----------------------------------------------------------------------
def test_bfs_depths_agree_on_directed_patents(patents_dataset,
                                              patents_small):
    from repro.graph.csr import CSRGraph

    csr = CSRGraph.from_edge_list(patents_small)
    root = int(patents_dataset.roots[0])
    levels = {}
    for name in ("gap", "graphbig", "graphmat", "powergraph"):
        s = create_system(name)
        loaded = s.load(patents_dataset)
        if name == "powergraph":
            res = s.run_toolkit_extension(loaded, "bfs-hops", root=root)
        else:
            res = s.run(loaded, "bfs", root=root)
            validate_bfs_parents(csr, root, res.output["parent"],
                                 directed=True)
        levels[name] = res.output["level"]
    for a, b in _pairs(levels):
        assert np.array_equal(levels[a], levels[b]), \
            f"cit-Patents BFS depths differ: {a} vs {b}"


# ----------------------------------------------------------------------
# Structural kernels: k-core / MIS / CC.  All three are defined on the
# simple undirected view and have mathematically unique answers (core
# numbers; greedy-by-priority MIS under the shared seeded priorities;
# min-member component labels), so every comparison is exact integer
# equality -- against the reference oracle, pairwise across systems,
# and across repeated runs (bit-identity).
# ----------------------------------------------------------------------
KCORE_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")
MIS_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")
CC_SYSTEMS = ("gap", "graphbig")


def _structural_outputs(systems, names, algorithm, key):
    """Each system's output array, run twice to pin bit-identity."""
    outs = {}
    for name in names:
        system, loaded = systems[name]
        first = system.run(loaded, algorithm).output[key]
        second = system.run(loaded, algorithm).output[key]
        assert np.array_equal(first, second), \
            f"{name}: {algorithm} not bit-identical across runs"
        assert first.dtype == np.int64, \
            f"{name}: {algorithm} must emit int64 {key}"
        outs[name] = first
    return outs


def test_kcore_agrees_with_oracle_and_pairwise(kron_systems, kron10_csr):
    from repro.algorithms.kcore import core_numbers

    want = core_numbers(kron10_csr)
    cores = _structural_outputs(kron_systems, KCORE_SYSTEMS, "kcore",
                                "core")
    for name, got in cores.items():
        assert np.array_equal(got, want), f"{name}: core numbers differ"
    for a, b in _pairs(KCORE_SYSTEMS):
        assert np.array_equal(cores[a], cores[b]), \
            f"k-core differs: {a} vs {b}"


def test_mis_agrees_with_oracle_and_pairwise(kron_systems, kron10_csr):
    from repro.algorithms.mis import maximal_independent_set

    want = maximal_independent_set(kron10_csr).astype(np.int64)
    sets = _structural_outputs(kron_systems, MIS_SYSTEMS, "mis", "in_set")
    for name, got in sets.items():
        assert np.array_equal(got, want), f"{name}: MIS differs"
    for a, b in _pairs(MIS_SYSTEMS):
        assert np.array_equal(sets[a], sets[b]), \
            f"MIS differs: {a} vs {b}"


def test_cc_agrees_with_oracle_and_wcc(kron_systems, kron10_csr):
    """Afforest labels equal the hash-min WCC labels exactly: both are
    canonical min-member labelings of the same components."""
    from repro.algorithms.cc import afforest

    want = afforest(kron10_csr)
    labels = _structural_outputs(kron_systems, CC_SYSTEMS, "cc", "labels")
    for name, got in labels.items():
        assert np.array_equal(got, want), f"{name}: CC labels differ"
    gap_system, gap_loaded = kron_systems["gap"]
    wcc = gap_system.run(gap_loaded, "wcc").output["labels"]
    assert np.array_equal(labels["gap"], wcc), \
        "afforest CC and Shiloach-Vishkin WCC labels diverge"


def test_structural_kernels_on_isolated_vertex(isolated_dataset):
    """Disconnected graph with an isolated max-id vertex: vertex 7 must
    come back core 0, an MIS member, and its own component."""
    from repro.algorithms.cc import afforest
    from repro.algorithms.kcore import core_numbers
    from repro.algorithms.mis import maximal_independent_set
    from repro.graph.csr import CSRGraph

    src = np.array([0, 0, 1, 2, 3, 4])
    dst = np.array([1, 2, 3, 4, 5, 6])
    ref_csr = CSRGraph.from_arrays(src, dst, 8)
    refs = {
        "kcore": ("core", core_numbers(ref_csr)),
        "mis": ("in_set",
                maximal_independent_set(ref_csr).astype(np.int64)),
        "cc": ("labels", afforest(ref_csr)),
    }
    assert refs["kcore"][1][ISOLATED_ROOT] == 0
    assert refs["mis"][1][ISOLATED_ROOT] == 1
    assert refs["cc"][1][ISOLATED_ROOT] == ISOLATED_ROOT

    matrix = [("kcore", KCORE_SYSTEMS), ("mis", MIS_SYSTEMS),
              ("cc", CC_SYSTEMS)]
    for algorithm, names in matrix:
        key, want = refs[algorithm]
        for name in names:
            system = create_system(name, n_threads=32)
            loaded = system.load(isolated_dataset)
            got = system.run(loaded, algorithm).output[key]
            assert np.array_equal(got, want), \
                f"{name}: {algorithm} differs on the isolated-vertex graph"


def test_structural_kernels_on_directed_graph(tmp_path_factory):
    """Directed input: all three kernels are defined on the simple
    undirected view, so edge direction must not change any answer."""
    from repro.algorithms.cc import afforest
    from repro.algorithms.kcore import core_numbers
    from repro.algorithms.mis import maximal_independent_set
    from repro.datasets.homogenize import homogenize
    from repro.graph.csr import CSRGraph
    from repro.graph.edgelist import EdgeList

    # 3 is a sink (in-edges only); 5 is isolated with the max id.
    src = np.array([0, 0, 1, 2, 4])
    dst = np.array([1, 2, 3, 3, 0])
    edges = EdgeList(src, dst, 6,
                     weights=np.array([1.0, 2.0, 1.0, 2.0, 1.0]),
                     directed=True, name="sink-structural")
    ds = homogenize(edges, tmp_path_factory.mktemp("sink_structural"),
                    n_roots=4)
    ref_csr = CSRGraph.from_arrays(src, dst, 6)
    refs = {
        "kcore": ("core", core_numbers(ref_csr)),
        "mis": ("in_set",
                maximal_independent_set(ref_csr).astype(np.int64)),
        "cc": ("labels", afforest(ref_csr)),
    }
    matrix = [("kcore", KCORE_SYSTEMS), ("mis", MIS_SYSTEMS),
              ("cc", CC_SYSTEMS)]
    for algorithm, names in matrix:
        key, want = refs[algorithm]
        for name in names:
            system = create_system(name, n_threads=32)
            loaded = system.load(ds)
            got = system.run(loaded, algorithm).output[key]
            assert np.array_equal(got, want), \
                f"{name}: {algorithm} differs on the directed sink graph"


def test_sssp_and_pagerank_agree_on_weighted_dota(dota_dataset):
    root = int(dota_dataset.roots[0])
    dists, ranks = {}, {}
    for name in SSSP_SYSTEMS:
        s = create_system(name)
        loaded = s.load(dota_dataset)
        dists[name] = s.run(loaded, "sssp", root=root).output["dist"]
        ranks[name] = s.run(loaded, "pagerank").output["rank"]
    for a, b in _pairs(SSSP_SYSTEMS):
        reach = np.isfinite(dists[a])
        assert np.array_equal(reach, np.isfinite(dists[b]))
        diff = np.abs(dists[a][reach] - dists[b][reach])
        assert diff.size == 0 or diff.max() < TOL, \
            f"dota SSSP differs: {a} vs {b}"
        pd = np.abs(ranks[a] - ranks[b]).max()
        assert pd < TOL, f"dota PageRank differs: {a} vs {b}"
