"""Tests for the alpha/beta/delta heuristic tuner (paper Sec. V)."""

import pytest

from repro.systems import create_system
from repro.systems.gap.graph import build_gap_graph
from repro.systems.gap.tuning import heuristic_parameters, sweep_alpha_beta


def test_dense_graph_gets_aggressive_bottom_up(dota_small):
    g, _ = build_gap_graph(dota_small, directed=False)
    p = heuristic_parameters(g)
    assert p.alpha > 15.0
    assert p.beta > 18.0
    assert "dense" in p.rationale


def test_scale_free_gets_beamer_defaults(kron10):
    g, _ = build_gap_graph(kron10, directed=False)
    p = heuristic_parameters(g)
    assert (p.alpha, p.beta) == (15.0, 18.0)


def test_sparse_low_skew_avoids_bottom_up():
    import numpy as np

    from repro.graph.edgelist import EdgeList

    # A long path: maximal diameter, no skew.
    n = 512
    src = np.arange(n - 1)
    dst = src + 1
    el = EdgeList(src, dst, n, directed=False,
                  weights=np.ones(n - 1))
    g, _ = build_gap_graph(el, directed=False)
    p = heuristic_parameters(g)
    assert p.alpha < 1.0


def test_delta_scales_with_weights(dota_small):
    g, _ = build_gap_graph(dota_small, directed=False)
    p = heuristic_parameters(g)
    avg_w = float(g.out.weights.mean())
    assert p.delta >= avg_w


def test_sweep_returns_all_pairs(kron10_dataset):
    system = create_system("gap")
    loaded = system.load(kron10_dataset)
    res = sweep_alpha_beta(system, loaded, int(kron10_dataset.roots[0]),
                           alphas=(1e-9, 15.0), betas=(4.0, 18.0))
    assert len(res) == 4
    assert all(t > 0 for t in res.values())


def test_sweep_shows_direction_optimization_wins_on_kron(kron10_dataset):
    """On a low-diameter Kronecker graph, some bottom-up beats none."""
    system = create_system("gap")
    loaded = system.load(kron10_dataset)
    res = sweep_alpha_beta(system, loaded, int(kron10_dataset.roots[0]),
                           alphas=(1e-9, 15.0), betas=(18.0,))
    assert res[(15.0, 18.0)] < res[(1e-9, 18.0)]
