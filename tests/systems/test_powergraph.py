"""PowerGraph-specific behaviour: vertex cut, GAS engine, overhead."""

import numpy as np
import pytest

from repro.algorithms import sssp_dijkstra
from repro.systems import create_system
from repro.systems.powergraph.gas import GasEngine, VertexProgram
from repro.systems.powergraph.partition import random_vertex_cut


class TestVertexCut:
    def test_every_edge_assigned(self, kron10):
        cut = random_vertex_cut(kron10.src, kron10.dst,
                                kron10.n_vertices, 16)
        assert cut.edge_partition.size == kron10.n_edges
        assert cut.edge_partition.min() >= 0
        assert cut.edge_partition.max() < 16

    def test_replication_factor_bounds(self, kron10):
        cut = random_vertex_cut(kron10.src, kron10.dst,
                                kron10.n_vertices, 16)
        assert 1.0 <= cut.replication_factor <= 16.0

    def test_high_degree_vertices_replicate_more(self, kron10):
        """The property behind PowerGraph's dense-graph advantage
        (Sec. IV-C): hubs spread over many partitions."""
        cut = random_vertex_cut(kron10.src, kron10.dst,
                                kron10.n_vertices, 16)
        deg = kron10.degrees()
        hubs = deg >= np.percentile(deg[deg > 0], 95)
        leaves = (deg > 0) & (deg <= 2)
        assert cut.replicas[hubs].mean() > cut.replicas[leaves].mean()

    def test_master_is_a_hosting_partition(self, kron10):
        cut = random_vertex_cut(kron10.src, kron10.dst,
                                kron10.n_vertices, 8)
        present = cut.replicas > 0
        assert np.all(cut.master[present] >= 0)
        assert np.all(cut.master[~present] == -1)

    def test_deterministic(self, kron10):
        a = random_vertex_cut(kron10.src, kron10.dst,
                              kron10.n_vertices, 8, seed=3)
        b = random_vertex_cut(kron10.src, kron10.dst,
                              kron10.n_vertices, 8, seed=3)
        assert np.array_equal(a.edge_partition, b.edge_partition)

    def test_partition_count_validated(self, kron10):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            random_vertex_cut(kron10.src, kron10.dst,
                              kron10.n_vertices, 0)


class TestGasEngine:
    def test_quiesces(self, kron10_dataset):
        s = create_system("powergraph")
        loaded = s.load(kron10_dataset)
        res = s.run(loaded, "sssp", root=int(kron10_dataset.roots[0]))
        assert res.iterations < 10_000  # reached quiescence, not cap

    def test_initially_active_scatter_once(self):
        """Regression: the SSSP root's unchanged apply must still
        scatter on superstep 1."""
        from repro.graph.csr import CSRGraph
        from repro.systems.powergraph import programs

        src = np.array([0, 1])
        dst = np.array([1, 2])
        w = np.array([1.0, 1.0])
        inn = CSRGraph.from_arrays(dst, src, 3, weights=w)
        out = CSRGraph.from_arrays(src, dst, 3, weights=w)
        cut = random_vertex_cut(src, dst, 3, 2)
        engine = GasEngine(inn, out, cut)
        dist, _, _, _ = programs.run_sssp(engine, 0)
        assert dist.tolist() == [0.0, 1.0, 2.0]

    def test_unknown_reduce_rejected(self):
        from repro.graph.csr import CSRGraph

        src = np.array([0])
        dst = np.array([1])
        inn = CSRGraph.from_arrays(dst, src, 2)
        out = CSRGraph.from_arrays(src, dst, 2)
        cut = random_vertex_cut(src, dst, 2, 2)
        engine = GasEngine(inn, out, cut)
        prog = VertexProgram(name="bad", gather=lambda *a: a[1] * 0.0,
                             reduce="median", apply=lambda s, v, g: g)
        with pytest.raises(ValueError):
            engine.run(prog, np.zeros(2), np.ones(2, dtype=bool))

    def test_mirror_sync_charged(self, kron10_dataset):
        """Per-superstep work includes replication traffic."""
        s = create_system("powergraph")
        loaded = s.load(kron10_dataset)
        res = s.run(loaded, "pagerank")
        rep = res.counters["replication_factor"]
        assert rep > 1.0
        n = loaded.n_vertices
        per_sweep = res.profile.rounds[0].units
        assert per_sweep >= loaded.n_arcs + n + rep * n - 1


class TestOverheadBehaviour:
    def test_engine_startup_dominates_small_graphs(self, kron10_dataset):
        """Sec. VI: 'the overhead of these frameworks may dominate for
        smaller problem sizes.'"""
        s = create_system("powergraph")
        loaded = s.load(kron10_dataset)
        res = s.run(loaded, "sssp", root=int(kron10_dataset.roots[0]))
        assert res.sim.startup_s / res.time_s > 0.5

    def test_slowest_sssp_of_all_systems(self, kron10_dataset):
        """Fig 3: PowerGraph is the slowest SSSP."""
        root = int(kron10_dataset.roots[0])
        times = {}
        for name in ("gap", "graphbig", "graphmat", "powergraph"):
            s = create_system(name)
            loaded = s.load(kron10_dataset)
            times[name] = s.run(loaded, "sssp", root=root).time_s
        assert times["powergraph"] == max(times.values())


class TestAsyncEngine:
    """PowerGraph's --engine async (min-programs via best-first
    label-correcting instead of BSP sweeps)."""

    def test_sssp_matches_sync(self, kron10_dataset):
        root = int(kron10_dataset.roots[0])
        sync = create_system("powergraph", engine="sync")
        asy = create_system("powergraph", engine="async")
        d_sync = sync.run(sync.load(kron10_dataset), "sssp",
                          root=root).output["dist"]
        d_async = asy.run(asy.load(kron10_dataset), "sssp",
                          root=root).output["dist"]
        assert np.allclose(np.nan_to_num(d_sync, posinf=-1),
                           np.nan_to_num(d_async, posinf=-1))

    def test_wcc_matches_sync(self, kron10_dataset):
        sync = create_system("powergraph", engine="sync")
        asy = create_system("powergraph", engine="async")
        a = sync.run(sync.load(kron10_dataset), "wcc").output["labels"]
        b = asy.run(asy.load(kron10_dataset), "wcc").output["labels"]
        assert np.array_equal(a, b)

    def test_async_relaxes_fewer_edges(self, kron10_dataset):
        """Best-first ordering processes each vertex near-optimally,
        relaxing fewer edges than frontier-wide synchronous sweeps."""
        root = int(kron10_dataset.roots[0])
        sync = create_system("powergraph", engine="sync")
        asy = create_system("powergraph", engine="async")
        r_sync = sync.run(sync.load(kron10_dataset), "sssp", root=root)
        r_async = asy.run(asy.load(kron10_dataset), "sssp", root=root)
        assert r_async.counters["gathered_edges"] < \
            r_sync.counters["gathered_edges"]

    def test_async_bfs_driver(self, kron10_dataset, kron10_csr):
        from repro.algorithms import bfs_levels

        asy = create_system("powergraph", engine="async")
        loaded = asy.load(kron10_dataset)
        root = int(kron10_dataset.roots[1])
        res = asy.run_toolkit_extension(loaded, "bfs-hops", root=root)
        assert np.array_equal(res.output["level"],
                              bfs_levels(kron10_csr, root))

    def test_async_rejects_non_min_programs(self, kron10_dataset):
        from repro.systems.powergraph.gas import (
            AsyncGasEngine,
            VertexProgram,
        )

        asy = create_system("powergraph", engine="async")
        loaded = asy.load(kron10_dataset)
        prog = VertexProgram(name="sum", gather=lambda *a: a[1],
                             reduce="sum", apply=lambda s, v, g: g)
        with pytest.raises(ValueError):
            loaded.data.engine.run(prog, np.zeros(loaded.n_vertices),
                                   np.ones(loaded.n_vertices, bool))

    def test_unknown_engine_rejected(self):
        from repro.errors import SystemCapabilityError

        with pytest.raises(SystemCapabilityError):
            create_system("powergraph", engine="fiber")
