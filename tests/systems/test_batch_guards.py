"""Regression tests for the SpGEMM row-block (``batch_rows``) guards.

Before the guard, a non-positive ``batch_rows`` silently produced an
empty ``range`` -- the kernels returned all-zero clustering / triangle
counts instead of failing -- and a width past ``n`` silently clamped.
Both are configuration errors now (:func:`resolve_batch_rows`), across
every batched kernel: the reference ``triangle_count`` and
``local_clustering``, GraphBIG's ``lcc_wedges``, GraphMat's
``lcc_spmv``, and PowerGraph's ``lcc_gas``.
"""

import numpy as np
import pytest

from repro.algorithms.lcc import local_clustering
from repro.algorithms.tc import triangle_count
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.frontier import resolve_batch_rows
from repro.systems import create_system


@pytest.fixture(scope="module")
def small_csr():
    src = np.array([0, 0, 1, 2, 3], dtype=np.int64)
    dst = np.array([1, 2, 2, 3, 0], dtype=np.int64)
    return CSRGraph.from_arrays(src, dst, 5)


BAD_WIDTHS = (0, -1, -2048)


def test_resolve_batch_rows_contract():
    assert resolve_batch_rows(None, 10) == 10
    assert resolve_batch_rows(None, 10_000) == 2048
    assert resolve_batch_rows(None, 0) == 1  # empty graphs stay iterable
    assert resolve_batch_rows(7, 10) == 7
    assert resolve_batch_rows(10, 10) == 10
    for bad in (*BAD_WIDTHS, 11):
        with pytest.raises(ConfigError):
            resolve_batch_rows(bad, 10)


@pytest.mark.parametrize("bad", BAD_WIDTHS)
def test_reference_kernels_reject_bad_widths(small_csr, bad):
    with pytest.raises(ConfigError):
        triangle_count(small_csr, batch_rows=bad)
    with pytest.raises(ConfigError):
        local_clustering(small_csr, batch_rows=bad)


def test_reference_kernels_reject_width_past_n(small_csr):
    n = small_csr.n_vertices
    with pytest.raises(ConfigError):
        triangle_count(small_csr, batch_rows=n + 1)
    with pytest.raises(ConfigError):
        local_clustering(small_csr, batch_rows=n + 1)


def test_reference_kernels_accept_explicit_valid_width(small_csr):
    want_tc = triangle_count(small_csr)
    want_lcc = local_clustering(small_csr)
    for width in (1, 2, small_csr.n_vertices):
        assert triangle_count(small_csr, batch_rows=width) == want_tc
        assert np.array_equal(local_clustering(small_csr,
                                               batch_rows=width),
                              want_lcc)


@pytest.fixture(scope="module")
def loaded_systems(kron10_dataset):
    out = {}
    for name in ("graphbig", "graphmat", "powergraph"):
        s = create_system(name, n_threads=32)
        out[name] = s.load(kron10_dataset)
    return out


def _call(name, loaded, batch_rows):
    if name == "graphbig":
        from repro.systems.graphbig.kernels import lcc_wedges
        return lcc_wedges(loaded.data, batch_rows=batch_rows)
    if name == "graphmat":
        from repro.systems.graphmat.kernels import lcc_spmv
        return lcc_spmv(loaded.data.at, batch_rows=batch_rows)
    from repro.systems.powergraph.programs import lcc_gas
    return lcc_gas(loaded.data.engine, batch_rows=batch_rows)


@pytest.mark.parametrize("name", ("graphbig", "graphmat", "powergraph"))
def test_system_lcc_kernels_reject_bad_widths(name, loaded_systems,
                                              kron10_csr):
    loaded = loaded_systems[name]
    for bad in (*BAD_WIDTHS, kron10_csr.n_vertices + 1):
        with pytest.raises(ConfigError):
            _call(name, loaded, bad)


@pytest.mark.parametrize("name", ("graphbig", "graphmat", "powergraph"))
def test_system_lcc_kernels_accept_explicit_valid_width(
        name, loaded_systems, kron10_csr):
    loaded = loaded_systems[name]
    default = _call(name, loaded, None)[0]
    explicit = _call(name, loaded, 64)[0]
    assert np.array_equal(default, explicit)
    assert np.allclose(default, local_clustering(kron10_csr))
