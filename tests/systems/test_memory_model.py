"""Memory-model consistency: the feasibility predictor's per-system
footprint formulas vs. the *actual* built structures.

If `estimate_memory_bytes` drifts from what the systems really
allocate, the "will it fit in RAM?" verdicts become fiction; this
module pins the two together at bench scale (within 2x -- the model
rounds auxiliary arrays, the structures carry Python overhead we
ignore), and checks the orderings feasibility decisions rely on.
"""

import pytest

from repro.core.feasibility import WorkloadSize, estimate_memory_bytes
from repro.systems import create_system
from repro.systems.registry import ALL_SYSTEM_NAMES


@pytest.fixture(scope="module")
def loaded_all(kron10_dataset):
    out = {}
    for name in ALL_SYSTEM_NAMES:
        s = create_system(name)
        out[name] = s.load(kron10_dataset)
    return out


@pytest.fixture(scope="module")
def size(kron10_dataset):
    # The systems symmetrize the undirected tuple list: arcs = 2m.
    return WorkloadSize(n_vertices=kron10_dataset.n_vertices,
                        n_arcs=2 * kron10_dataset.n_edges)


@pytest.mark.parametrize("name", ALL_SYSTEM_NAMES)
def test_estimate_within_2x_of_actual(name, loaded_all, size):
    actual = loaded_all[name].data.nbytes()
    estimate = estimate_memory_bytes(name, size)
    assert estimate / actual < 2.0, (name, estimate, actual)
    assert actual / estimate < 2.0, (name, estimate, actual)


def test_actual_footprint_ordering(loaded_all):
    """Graph500's single CSR is the smallest resident structure; the
    double-structure systems (GAP, GraphMat, PowerGraph) cost more."""
    actual = {n: loaded_all[n].data.nbytes() for n in ALL_SYSTEM_NAMES}
    assert actual["graph500"] == min(actual.values())
    for heavy in ("gap", "graphmat", "powergraph"):
        assert actual[heavy] > 1.5 * actual["graph500"]


def test_nbytes_positive_and_scales(kron10_dataset, tmp_path):
    """A bigger graph yields a bigger structure, for every system."""
    from repro.datasets.homogenize import homogenize
    from repro.datasets.kronecker import KroneckerSpec, generate_kronecker

    small = kron10_dataset
    big = homogenize(
        generate_kronecker(KroneckerSpec(scale=11, weighted=True)),
        tmp_path)
    for name in ALL_SYSTEM_NAMES:
        s = create_system(name)
        a = s.load(small).data.nbytes()
        b = s.load(big).data.nbytes()
        assert 0 < a < b, name
