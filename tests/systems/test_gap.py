"""GAP-specific behaviour: direction optimization, delta-stepping,
Gauss-Seidel PageRank, serialized graphs."""

import numpy as np
import pytest

from repro.algorithms import bfs_levels, pagerank, sssp_dijkstra
from repro.systems import create_system
from repro.systems.gap.bfs import dobfs
from repro.systems.gap.graph import build_gap_graph
from repro.systems.gap.pagerank import pagerank_gs
from repro.systems.gap.sssp import delta_stepping


@pytest.fixture(scope="module")
def gap_graph(kron10):
    g, _ = build_gap_graph(kron10, directed=False)
    return g


class TestDirectionOptimizingBfs:
    def test_uses_bottom_up_on_dense_kron(self, gap_graph):
        _, _, _, stats = dobfs(gap_graph, 0)
        assert "B" in stats["steps"], \
            "DO-BFS never switched bottom-up on a Kronecker graph"

    def test_tiny_alpha_disables_bottom_up(self, gap_graph):
        """Switch condition is m_f > m_u / alpha: alpha -> 0 means the
        frontier can never qualify, forcing pure top-down."""
        _, _, _, stats = dobfs(gap_graph, 0, alpha=1e-9)
        assert "B" not in stats["steps"]

    def test_bottom_up_reduces_examined_edges(self, gap_graph):
        _, _, p_do, _ = dobfs(gap_graph, 0)
        _, _, p_td, _ = dobfs(gap_graph, 0, alpha=1e-9)
        assert p_do.total_units < p_td.total_units

    def test_levels_independent_of_direction(self, gap_graph, kron10_csr):
        ref = bfs_levels(kron10_csr, 5)
        for alpha in (1e-9, 15.0, 1e9):
            _, level, _, _ = dobfs(gap_graph, 5, alpha=alpha)
            assert np.array_equal(level, ref)

    def test_records_one_round_per_level(self, gap_graph):
        _, level, profile, stats = dobfs(gap_graph, 0)
        assert profile.n_rounds == stats["depth"]
        # The last round may discover nothing (termination probe).
        assert level.max() in (stats["depth"], stats["depth"] - 1)


class TestDeltaStepping:
    def test_matches_dijkstra(self, gap_graph, kron10_csr):
        want = sssp_dijkstra(kron10_csr, 9)
        got, _, _ = delta_stepping(gap_graph, 9)
        finite = np.isfinite(want)
        assert np.array_equal(np.isfinite(got), finite)
        assert np.allclose(got[finite], want[finite])

    def test_delta_extremes_agree(self, gap_graph):
        tiny, _, _ = delta_stepping(gap_graph, 3, delta=0.01)
        huge, _, _ = delta_stepping(gap_graph, 3, delta=100.0)
        assert np.allclose(np.nan_to_num(tiny, posinf=-1),
                           np.nan_to_num(huge, posinf=-1))

    def test_large_delta_is_bellman_ford(self, gap_graph):
        """delta=inf puts everything in one bucket: fewer phases, more
        relaxations per phase."""
        _, _, s_small = delta_stepping(gap_graph, 3, delta=0.05)
        _, _, s_large = delta_stepping(gap_graph, 3, delta=1e6)
        assert s_large["phases"] < s_small["phases"]

    def test_rejects_bad_delta(self, gap_graph):
        from repro.errors import SystemCapabilityError

        with pytest.raises(SystemCapabilityError):
            delta_stepping(gap_graph, 0, delta=0.0)

    def test_unweighted_graph_rejected(self, kron10):
        from repro.errors import SystemCapabilityError

        unweighted = kron10.copy()
        unweighted.weights = None
        g, _ = build_gap_graph(unweighted, directed=False)
        with pytest.raises(SystemCapabilityError):
            delta_stepping(g, 0)


class TestGaussSeidelPagerank:
    def test_matches_reference(self, gap_graph, kron10_csr):
        want, _ = pagerank(kron10_csr)
        got, _, _ = pagerank_gs(gap_graph)
        assert np.abs(got - want).sum() < 1e-4

    def test_fewest_iterations_claim(self, gap_graph, kron10_csr):
        """Sec. IV-A: 'the GAP Benchmark Suite ... requires the fewest
        iterations.'  GS must not exceed the Jacobi reference count."""
        _, it_ref = pagerank(kron10_csr)
        _, it_gs, _ = pagerank_gs(gap_graph)
        assert it_gs <= it_ref

    def test_mass_conserved(self, gap_graph):
        rank, _, _ = pagerank_gs(gap_graph)
        assert rank.sum() == pytest.approx(1.0, abs=1e-9)

    def test_block_count_does_not_change_fixpoint(self, gap_graph):
        a, _, _ = pagerank_gs(gap_graph, n_blocks=2)
        b, _, _ = pagerank_gs(gap_graph, n_blocks=32)
        assert np.abs(a - b).sum() < 1e-5


class TestGapSystem:
    def test_serialized_load_matches_text_load(self, kron10_dataset):
        text = create_system("gap")
        ser = create_system("gap", use_serialized=True)
        lt = text.load(kron10_dataset)
        ls = ser.load(kron10_dataset)
        root = int(kron10_dataset.roots[0])
        a = text.run(lt, "bfs", root=root)
        b = ser.run(ls, "bfs", root=root)
        assert np.array_equal(a.output["level"], b.output["level"])

    def test_serialized_read_faster_than_text(self, kron10_dataset):
        lt = create_system("gap").load(kron10_dataset)
        ls = create_system("gap", use_serialized=True).load(kron10_dataset)
        assert ls.read_s < lt.read_s

    def test_counters(self, kron10_dataset):
        s = create_system("gap")
        loaded = s.load(kron10_dataset)
        res = s.run(loaded, "bfs", root=int(kron10_dataset.roots[0]))
        assert res.counters["depth"] >= 1
        assert "bottom_up_steps" in res.counters


class TestIntegerWeightBuild:
    """Paper Sec. IV-A: the recompile-to-int weight hazard."""

    def test_truncation_changes_sssp(self, kron10_dataset, kron10_csr):
        """Uniform (0,1] weights all truncate to 0: every reachable
        vertex collapses to distance 0 -- exactly the '0.2 cast to 0'
        behaviour the paper warns about."""
        import numpy as np

        from repro.algorithms import sssp_dijkstra

        int_gap = create_system("gap", weight_dtype="int32")
        loaded = int_gap.load(kron10_dataset)
        root = int(kron10_dataset.roots[0])
        res = int_gap.run(loaded, "sssp", root=root)
        ref = sssp_dijkstra(kron10_csr, root)
        reached = np.isfinite(ref)
        assert np.all(res.output["dist"][reached] == 0.0)

    def test_float_build_unaffected(self, kron10_dataset, kron10_csr):
        import numpy as np

        from repro.algorithms import sssp_dijkstra
        from repro.graph.validation import validate_sssp_distances

        gap = create_system("gap", weight_dtype="float64")
        loaded = gap.load(kron10_dataset)
        root = int(kron10_dataset.roots[0])
        res = gap.run(loaded, "sssp", root=root)
        validate_sssp_distances(res.output["dist"],
                                sssp_dijkstra(kron10_csr, root))

    def test_integer_weights_preserved_when_integral(self, dota_dataset):
        """dota-league weights are match counts (integers): the int32
        build is then harmless."""
        import numpy as np

        a = create_system("gap").load(dota_dataset)
        b = create_system("gap", weight_dtype="int32").load(dota_dataset)
        assert np.array_equal(a.data.out.weights, b.data.out.weights)

    def test_rejects_unknown_dtype(self):
        from repro.errors import SystemCapabilityError

        with pytest.raises(SystemCapabilityError):
            create_system("gap", weight_dtype="float16")


def test_serialized_build_cheaper_than_text_build(kron10_dataset):
    """The .sg file stores the built CSR: deserializing must cost less
    construction time than building from the text edge list."""
    text = create_system("gap").load(kron10_dataset)
    ser = create_system("gap", use_serialized=True).load(kron10_dataset)
    assert ser.build_s < text.build_s
