"""Cross-validation: every system's output against the reference
kernels, on synthetic and real-world datasets.

This is the test-suite counterpart of the Graph500 validation step: a
system may be arbitrarily structured inside, but its answers must agree
with the oracles.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bfs_levels,
    cdlp,
    local_clustering,
    pagerank,
    sssp_dijkstra,
    weakly_connected_components,
)
from repro.graph.csr import CSRGraph
from repro.graph.validation import (
    validate_bfs_parents,
    validate_pagerank,
    validate_sssp_distances,
)
from repro.systems import create_system
from repro.systems.registry import ALL_SYSTEM_NAMES

BFS_SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")
SSSP_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")
PR_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")
WCC_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")
CDLP_SYSTEMS = ("graphbig", "graphmat", "powergraph")
LCC_SYSTEMS = ("graphbig", "graphmat", "powergraph")


@pytest.fixture(scope="module")
def loaded_systems(kron10_dataset):
    out = {}
    for name in ALL_SYSTEM_NAMES:
        s = create_system(name, n_threads=32)
        out[name] = (s, s.load(kron10_dataset))
    return out


@pytest.fixture(scope="module")
def refs(kron10_csr, kron10_dataset):
    roots = [int(r) for r in kron10_dataset.roots[:4]]
    return {
        "roots": roots,
        "levels": {r: bfs_levels(kron10_csr, r) for r in roots},
        "dists": {r: sssp_dijkstra(kron10_csr, r) for r in roots},
        "rank": pagerank(kron10_csr)[0],
        "wcc": weakly_connected_components(kron10_csr),
        "cdlp": cdlp(kron10_csr, 10),
        "lcc": local_clustering(kron10_csr),
    }


@pytest.mark.parametrize("name", BFS_SYSTEMS)
def test_bfs_levels_and_tree(name, loaded_systems, refs, kron10_csr):
    system, loaded = loaded_systems[name]
    for root in refs["roots"]:
        res = system.run(loaded, "bfs", root=root)
        assert np.array_equal(res.output["level"], refs["levels"][root]), \
            f"{name} BFS levels differ from reference (root {root})"
        validate_bfs_parents(kron10_csr, root, res.output["parent"])


@pytest.mark.parametrize("name", SSSP_SYSTEMS)
def test_sssp_distances(name, loaded_systems, refs):
    system, loaded = loaded_systems[name]
    for root in refs["roots"]:
        res = system.run(loaded, "sssp", root=root)
        validate_sssp_distances(res.output["dist"], refs["dists"][root])


@pytest.mark.parametrize("name", PR_SYSTEMS)
def test_pagerank_close_to_reference(name, loaded_systems, refs):
    system, loaded = loaded_systems[name]
    res = system.run(loaded, "pagerank")
    validate_pagerank(res.output["rank"], refs["rank"], tol=2e-3)


@pytest.mark.parametrize("name", WCC_SYSTEMS)
def test_wcc_labels(name, loaded_systems, refs):
    system, loaded = loaded_systems[name]
    res = system.run(loaded, "wcc")
    assert np.array_equal(res.output["labels"], refs["wcc"])


@pytest.mark.parametrize("name", CDLP_SYSTEMS)
def test_cdlp_labels(name, loaded_systems, refs):
    system, loaded = loaded_systems[name]
    res = system.run(loaded, "cdlp", iterations=10)
    assert np.array_equal(res.output["labels"], refs["cdlp"])


@pytest.mark.parametrize("name", LCC_SYSTEMS)
def test_lcc_values(name, loaded_systems, refs):
    system, loaded = loaded_systems[name]
    res = system.run(loaded, "lcc")
    assert np.allclose(res.output["lcc"], refs["lcc"])


def test_powergraph_driver_bfs(loaded_systems, refs):
    """The Graphalytics driver's hop program matches reference levels."""
    system, loaded = loaded_systems["powergraph"]
    for root in refs["roots"][:2]:
        res = system.run_toolkit_extension(loaded, "bfs-hops", root=root)
        assert np.array_equal(res.output["level"], refs["levels"][root])


class TestRealWorldCrossValidation:
    """Directed (cit-Patents) and dense weighted (dota) datasets."""

    @pytest.mark.parametrize("name", ("gap", "graphbig", "graphmat"))
    def test_bfs_on_directed_patents(self, name, patents_dataset,
                                     patents_small):
        csr = CSRGraph.from_edge_list(patents_small)
        root = int(patents_dataset.roots[0])
        ref = bfs_levels(csr, root)
        s = create_system(name)
        loaded = s.load(patents_dataset)
        res = s.run(loaded, "bfs", root=root)
        assert np.array_equal(res.output["level"], ref)
        validate_bfs_parents(csr, root, res.output["parent"],
                             directed=True)

    @pytest.mark.parametrize("name", SSSP_SYSTEMS)
    def test_sssp_on_weighted_dota(self, name, dota_dataset, dota_small):
        csr = CSRGraph.from_edge_list(dota_small, symmetrize=True)
        root = int(dota_dataset.roots[0])
        ref = sssp_dijkstra(csr, root)
        s = create_system(name)
        loaded = s.load(dota_dataset)
        res = s.run(loaded, "sssp", root=root)
        validate_sssp_distances(res.output["dist"], ref,
                                rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("name", PR_SYSTEMS)
    def test_pagerank_on_patents(self, name, patents_dataset,
                                 patents_small):
        csr = CSRGraph.from_edge_list(patents_small)
        ref = pagerank(csr)[0]
        s = create_system(name)
        loaded = s.load(patents_dataset)
        res = s.run(loaded, "pagerank")
        validate_pagerank(res.output["rank"], ref, tol=5e-3)
