"""Graph500-specific behaviour: Benchmark 1 protocol, bitmap BFS."""

import numpy as np
import pytest

from repro.algorithms import bfs_levels
from repro.graph.csr import CSRGraph
from repro.systems import create_system
from repro.systems.graph500.bfs import bfs_bitmap


class TestBitmapBfs:
    def test_levels_match_reference(self, kron10_csr):
        for root in (0, 7, 100):
            _, level, _, _ = bfs_bitmap(kron10_csr, root)
            assert np.array_equal(level, bfs_levels(kron10_csr, root))

    def test_examines_every_frontier_edge(self, kron10_csr):
        """Top-down without direction optimization: examined edges ==
        total out-degree of all reached-with-outgoing-work vertices."""
        _, level, _, stats = bfs_bitmap(kron10_csr, 0)
        reached = level >= 0
        deg = kron10_csr.out_degrees()
        # Every reached vertex's edges are scanned when it is frontier,
        # except the final frontier may terminate early; allow a slack
        # of its degree sum.
        assert stats["edges_examined"] <= deg[reached].sum()
        assert stats["edges_examined"] >= deg[reached].sum() * 0.5

    def test_work_exceeds_gap_dobfs(self, kron10, kron10_csr):
        """The structural reason GAP wins: DO-BFS prunes examinations."""
        from repro.systems.gap.bfs import dobfs
        from repro.systems.gap.graph import build_gap_graph

        g, _ = build_gap_graph(kron10, directed=False)
        _, _, p_gap, _ = dobfs(g, 0)
        _, _, p_500, _ = bfs_bitmap(kron10_csr, 0)
        assert p_500.total_units > p_gap.total_units


class TestBenchmark1:
    @pytest.fixture(scope="class")
    def bench(self, kron10_dataset):
        s = create_system("graph500", n_threads=32)
        loaded = s.load(kron10_dataset)
        return s.run_benchmark1(loaded, kron10_dataset.roots[:8])

    def test_one_construction_many_searches(self, bench):
        result, runs = bench
        assert len(result.bfs_times_s) == 8
        assert result.construction_s > 0

    def test_summary_statistics(self, bench):
        result, _ = bench
        assert result.min_time <= result.mean_time <= result.max_time

    def test_teps_positive_and_sane(self, bench):
        result, _ = bench
        teps = result.harmonic_mean_teps
        assert teps > 0
        # TEPS cannot exceed edges/min_time.
        assert teps <= max(result.edges_traversed) / result.min_time * 1.01

    def test_harmonic_mean_definition(self, bench):
        result, _ = bench
        inv = [t / e for t, e in zip(result.bfs_times_s,
                                     result.edges_traversed)]
        assert result.harmonic_mean_teps == pytest.approx(
            1.0 / np.mean(inv))


def test_only_bfs_supported(kron10_dataset):
    s = create_system("graph500")
    assert s.provides == {"bfs"}
