"""Tests for the GraphSystem interface contracts."""

import pytest

from repro.errors import SystemCapabilityError
from repro.systems import available_systems, create_system
from repro.systems.registry import ALL_SYSTEM_NAMES, register_system


class TestRegistry:
    def test_all_five_available(self):
        assert set(ALL_SYSTEM_NAMES) <= set(available_systems())

    def test_create_unknown(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            create_system("pregel")

    def test_register_custom(self):
        from repro.systems.gap import GapSystem
        from repro.systems.registry import unregister_system

        class MySystem(GapSystem):
            name = "mysystem-test"

        register_system("mysystem-test", MySystem, replace=True)
        try:
            assert "mysystem-test" in available_systems()
            assert isinstance(create_system("mysystem-test"), MySystem)
        finally:
            unregister_system("mysystem-test")
        assert "mysystem-test" not in available_systems()

    def test_register_duplicate_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            register_system("gap", lambda: None)


class TestCapabilities:
    def test_paper_capability_matrix(self):
        """Sec. III-C/III-D: who provides what."""
        caps = {name: create_system(name).provides
                for name in ALL_SYSTEM_NAMES}
        assert caps["graph500"] == {"bfs"}
        assert "bfs" not in caps["powergraph"]       # no BFS toolkit
        assert "sssp" in caps["powergraph"]
        assert caps["graphbig"] >= {"bfs", "sssp", "pagerank", "wcc",
                                    "cdlp", "lcc"}
        assert caps["graphmat"] >= {"bfs", "sssp", "pagerank", "wcc",
                                    "cdlp", "lcc"}
        assert caps["gap"] >= {"bfs", "sssp", "pagerank"}

    def test_require_raises(self):
        s = create_system("graph500")
        with pytest.raises(SystemCapabilityError):
            s.require("pagerank")

    def test_run_unsupported_raises(self, kron10_dataset):
        s = create_system("powergraph")
        loaded = s.load(kron10_dataset)
        with pytest.raises(SystemCapabilityError):
            s.run(loaded, "bfs", root=0)

    def test_bfs_requires_root(self, kron10_dataset):
        s = create_system("gap")
        loaded = s.load(kron10_dataset)
        with pytest.raises(SystemCapabilityError):
            s.run(loaded, "bfs")

    def test_invalid_thread_count(self):
        with pytest.raises(SystemCapabilityError):
            create_system("gap", n_threads=0)


class TestSeparableConstruction:
    def test_fused_systems_report_no_build(self, kron10_dataset):
        """GraphBIG and PowerGraph read + build simultaneously
        (Sec. III-B), so build_s is None and load time is one lump."""
        for name in ("graphbig", "powergraph"):
            loaded = create_system(name).load(kron10_dataset)
            assert loaded.build_s is None
            assert loaded.read_s > 0

    def test_separable_systems_report_both(self, kron10_dataset):
        for name in ("gap", "graph500", "graphmat"):
            loaded = create_system(name).load(kron10_dataset)
            assert loaded.build_s is not None and loaded.build_s > 0
            assert loaded.read_s > 0

    def test_load_s_is_total(self, kron10_dataset):
        loaded = create_system("gap").load(kron10_dataset)
        assert loaded.load_s == pytest.approx(
            loaded.read_s + loaded.build_s)


class TestGraph500KroneckerOnly:
    def test_refuses_real_world(self, dota_dataset):
        s = create_system("graph500")
        with pytest.raises(SystemCapabilityError):
            s.load(dota_dataset)

    def test_accepts_kronecker(self, kron10_dataset):
        s = create_system("graph500")
        assert s.load(kron10_dataset).n_arcs > 0
