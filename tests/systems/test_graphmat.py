"""GraphMat-specific behaviour: DCSR SpMV, phases, f32 PageRank."""

import numpy as np
import pytest

from repro.graph.dcsr import DCSRMatrix
from repro.systems import create_system


@pytest.fixture(scope="module")
def gmat(kron10_dataset):
    s = create_system("graphmat", n_threads=32)
    return s, s.load(kron10_dataset)


class TestStructure:
    def test_uses_dcsr(self, gmat):
        _, loaded = gmat
        assert isinstance(loaded.data.at, DCSRMatrix)
        assert isinstance(loaded.data.at_sym, DCSRMatrix)

    def test_transpose_stored(self, gmat, kron10_csr):
        """GraphMat pulls along in-edges: the matrix is A^T."""
        _, loaded = gmat
        at = loaded.data.at.to_csr()
        assert np.array_equal(np.sort(at.out_degrees()),
                              np.sort(kron10_csr.in_degrees()))


class TestPagerankCriterion:
    def test_most_iterations_of_all_systems(self, kron10_dataset):
        """Fig 4: GraphMat's no-change criterion needs the most sweeps;
        GAP's Gauss-Seidel the fewest."""
        iters = {}
        for name in ("gap", "graphbig", "graphmat", "powergraph"):
            s = create_system(name)
            loaded = s.load(kron10_dataset)
            iters[name] = s.run(loaded, "pagerank").iterations
        assert iters["graphmat"] == max(iters.values())
        assert iters["gap"] == min(iters.values())
        assert iters["graphmat"] > 1.3 * iters["graphbig"]

    def test_epsilon_parameter_ignored(self, gmat):
        """Sec. IV-A: 'with GraphMat there is no computation of
        |p_k - p_k'|' -- the homogenized epsilon cannot be applied."""
        s, loaded = gmat
        a = s.run(loaded, "pagerank", epsilon=0.5)
        b = s.run(loaded, "pagerank", epsilon=1e-300)
        assert a.iterations == b.iterations

    def test_float32_output(self, gmat):
        """Ranks pass through float32: they carry at most f32 precision
        but are still a probability vector."""
        s, loaded = gmat
        r = s.run(loaded, "pagerank").output["rank"]
        assert r.sum() == pytest.approx(1.0, abs=1e-4)


class TestPhases:
    def test_phase_breakdown_matches_log_excerpt_shape(self, gmat,
                                                       kron10_dataset):
        s, loaded = gmat
        res = s.run(loaded, "pagerank")
        phases = s.phase_breakdown(loaded, res)
        # "load graph" includes the file read (the Table I flaw source).
        assert phases.load_graph_s >= phases.file_read_s
        assert phases.run_algorithm_s == res.time_s
        assert phases.init_engine_s < 1e-3
        assert phases.algorithm_label == "compute PageRank"

    def test_binary_read_faster_than_text(self, kron10_dataset):
        """The homogenizer writes GraphMat's binary format precisely so
        file I/O is fast (Sec. III-B)."""
        gm = create_system("graphmat").load(kron10_dataset)
        gap = create_system("gap").load(kron10_dataset)
        gm_rate = gm.input_bytes / gm.read_s
        gap_rate = gap.input_bytes / gap.read_s
        assert gm_rate > gap_rate


class TestSpmvKernels:
    def test_bfs_counts_masked_nnz(self, gmat, kron10_dataset):
        """Masked SpMV: total touched entries ~ one pass over nnz."""
        s, loaded = gmat
        res = s.run(loaded, "bfs", root=int(kron10_dataset.roots[0]))
        nnz = loaded.data.at.nnz
        n = loaded.data.n
        depth = res.counters["depth"]
        assert res.profile.total_units <= nnz + (depth + 1) * n + n

    def test_sssp_iterations_recorded(self, gmat, kron10_dataset):
        s, loaded = gmat
        res = s.run(loaded, "sssp", root=int(kron10_dataset.roots[0]))
        assert res.counters["iterations"] >= 1
