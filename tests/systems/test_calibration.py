"""Tests of the calibration constants and the anchor solver."""

import pytest

from repro.errors import ConfigError
from repro.machine.spec import haswell_server
from repro.machine.threads import ThreadModel, WorkProfile
from repro.systems import calibration as cal


class TestAnchorsReproduced:
    @pytest.mark.parametrize("system,algo,anchor_time", [
        ("gap", "bfs", 0.01636),          # Table III, exact
        ("graph500", "bfs", 0.01884),     # Table III, exact
        ("graphbig", "bfs", 1.600),       # Table III, exact
        ("graphmat", "bfs", 1.424),       # Table III, exact
    ])
    def test_model_prices_anchor_workload_at_anchor_time(
            self, system, algo, anchor_time):
        """Feeding the anchor's unit count back through the model at 32
        threads must return the paper's measured time (minus startup)."""
        machine = haswell_server()
        costs = cal.cost_params(system, algo, machine)
        anchor = cal._ANCHORS[system][algo]
        profile = WorkProfile()
        profile.add_round(units=anchor.units, skew=anchor.skew)
        sim = ThreadModel(machine).simulate(profile, costs, 32)
        assert sim.time_s - costs.startup_s == pytest.approx(
            anchor_time, rel=0.02)

    def test_power_anchors_table3(self):
        assert cal.power_params("gap").pkg_watts_32t == 72.38
        assert cal.power_params("graph500").pkg_watts_32t == 97.17
        assert cal.power_params("graphbig").pkg_watts_32t == 78.01
        assert cal.power_params("graphmat").pkg_watts_32t == 70.12

    def test_graphmat_lowest_dram(self):
        """Fig 9: GraphMat exhibits the lowest RAM power."""
        gm = cal.power_params("graphmat").dram_watts_32t
        for other in ("gap", "graph500", "graphbig", "powergraph"):
            assert gm < cal.power_params(other).dram_watts_32t


class TestShapes:
    def test_graph500_most_noise_sensitive(self):
        g5 = cal.noise_sensitivity("graph500")
        for other in ("gap", "graphbig", "graphmat", "powergraph"):
            assert g5 > cal.noise_sensitivity(other)

    def test_graph500_has_contention_dip(self):
        c = cal.cost_params("graph500", "bfs")
        tm = ThreadModel(haswell_server())
        assert tm.contention_factor(2, c) > 2.0  # forces T2 > T1

    def test_graphbig_scales_worst(self):
        """Figs 5-6: GraphBIG flattest."""
        gb = cal.cost_params("graphbig", "bfs")
        for other in ("gap", "graph500", "graphmat"):
            o = cal.cost_params(other, "bfs")
            assert gb.imbalance > o.imbalance
            assert gb.smt_yield < o.smt_yield

    def test_graphmat_best_smt_yield(self):
        """Fig 5: GraphMat slightly beats GAP at 72 threads."""
        assert cal.cost_params("graphmat", "bfs").smt_yield > \
            cal.cost_params("gap", "bfs").smt_yield

    def test_powergraph_largest_startup(self):
        pg = cal.cost_params("powergraph", "sssp").startup_s
        for other in ("gap", "graphbig", "graphmat"):
            assert pg > cal.cost_params(other, "sssp").startup_s


class TestLookups:
    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            cal.cost_params("ligra", "bfs")

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError):
            cal.cost_params("graph500", "pagerank")  # BFS-only system

    def test_build_params_exist_for_all(self):
        for s in ("gap", "graph500", "graphbig", "graphmat",
                  "powergraph"):
            assert cal.build_params(s).sec_per_unit > 0

    def test_read_rates(self):
        assert cal.read_rate_mbs("mtxbin") == pytest.approx(230.0)
        assert cal.read_rate_mbs("el") < cal.read_rate_mbs("sg")
        with pytest.raises(ConfigError):
            cal.read_rate_mbs("parquet")

    def test_graphmat_binary_rate_matches_log_excerpt(self):
        """Table I excerpt: 610 MB of dota records read in 2.65 s."""
        rate = cal.read_rate_mbs("mtxbin")
        dota_bytes = 50_870_313 * 12  # 12-byte records
        assert dota_bytes / (rate * 1e6) == pytest.approx(2.65, rel=0.01)
