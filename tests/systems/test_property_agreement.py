"""Property-based cross-system agreement on random graphs.

For arbitrary small random graphs driven through the *full* pipeline
surface (homogenize -> native file -> load -> kernel), all systems must
agree with the oracle on BFS levels, SSSP distances, and WCC labels.
This catches format/symmetrization mismatches that fixed fixtures
might miss.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import bfs_levels, sssp_dijkstra
from repro.algorithms import weakly_connected_components
from repro.datasets.homogenize import homogenize, select_roots
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.validation import validate_sssp_distances
from repro.systems import create_system


@st.composite
def random_graphs(draw):
    n = draw(st.integers(8, 48))
    m = draw(st.integers(n, 5 * n))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    directed = draw(st.booleans())
    return EdgeList(src, dst, n,
                    weights=rng.uniform(0.05, 2.0, m),
                    directed=directed, name="hypo")


_SETTINGS = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture,
                           HealthCheck.too_slow])


@given(edges=random_graphs())
@_SETTINGS
def test_bfs_agreement_property(tmp_path_factory, edges):
    try:
        dataset = homogenize(edges,
                             tmp_path_factory.mktemp("hypo"), n_roots=2)
    except Exception:
        pytest.skip("no eligible roots in this draw")
    csr = CSRGraph.from_edge_list(edges, symmetrize=not edges.directed)
    root = int(dataset.roots[0])
    ref = bfs_levels(csr, root)
    for name in ("gap", "graphbig", "graphmat"):
        system = create_system(name)
        loaded = system.load(dataset)
        got = system.run(loaded, "bfs", root=root).output["level"]
        assert np.array_equal(got, ref), name


@given(edges=random_graphs())
@_SETTINGS
def test_sssp_agreement_property(tmp_path_factory, edges):
    try:
        dataset = homogenize(edges,
                             tmp_path_factory.mktemp("hypo"), n_roots=2)
    except Exception:
        pytest.skip("no eligible roots in this draw")
    csr = CSRGraph.from_edge_list(edges, symmetrize=not edges.directed)
    root = int(dataset.roots[0])
    ref = sssp_dijkstra(csr, root)
    for name in ("gap", "graphmat", "powergraph"):
        system = create_system(name)
        loaded = system.load(dataset)
        got = system.run(loaded, "sssp", root=root).output["dist"]
        validate_sssp_distances(got, ref, rtol=1e-4, atol=1e-5)


@given(edges=random_graphs())
@_SETTINGS
def test_wcc_agreement_property(tmp_path_factory, edges):
    try:
        dataset = homogenize(edges,
                             tmp_path_factory.mktemp("hypo"), n_roots=2)
    except Exception:
        pytest.skip("no eligible roots in this draw")
    csr = CSRGraph.from_edge_list(edges, symmetrize=not edges.directed)
    ref = weakly_connected_components(csr)
    for name in ("gap", "graphmat"):
        system = create_system(name)
        loaded = system.load(dataset)
        got = system.run(loaded, "wcc").output["labels"]
        assert np.array_equal(got, ref), name
