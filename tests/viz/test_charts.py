"""Tests for the chart primitives."""

from xml.etree import ElementTree

import pytest

from repro.core.analysis import BoxStats
from repro.viz.charts import bar_chart, box_plot, line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def _root(canvas):
    return ElementTree.fromstring(canvas.to_string())


@pytest.fixture
def boxes():
    return {
        "gap": BoxStats.from_values([0.01, 0.012, 0.015, 0.02]),
        "graph500": BoxStats.from_values([0.019]),
        "graphbig": BoxStats.from_values([1.5, 1.6, 1.7]),
    }


class TestBoxPlot:
    def test_one_box_per_group(self, boxes):
        root = _root(box_plot(boxes, "T"))
        # background + frame + 3 boxes = 5 rects.
        assert len(root.findall(f"{SVG_NS}rect")) == 5

    def test_single_point_marked_with_dot(self, boxes):
        root = _root(box_plot(boxes, "T"))
        assert len(root.findall(f"{SVG_NS}circle")) == 1

    def test_labels_present(self, boxes):
        root = _root(box_plot(boxes, "BFS Time"))
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "BFS Time" in texts
        for name in boxes:
            assert name in texts

    def test_baseline_line(self, boxes):
        root = _root(box_plot(boxes, "T", log_y=False, baseline=0.005,
                              baseline_label="sleep"))
        dashed = [ln for ln in root.findall(f"{SVG_NS}line")
                  if ln.get("stroke-dasharray")]
        assert dashed
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "sleep" in texts

    def test_log_axis_positive_guard(self):
        bad = {"x": BoxStats.from_values([0.0, 0.0])}
        with pytest.raises(ValueError):
            box_plot(bad, "T", log_y=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_plot({}, "T")


class TestLineChart:
    def test_one_polyline_per_series(self):
        c = line_chart([1, 2, 4], {"a": [1, 2, 3], "b": [1, 1.5, 2]},
                       "S", "x", "y")
        root = _root(c)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2

    def test_ideal_line_added(self):
        c = line_chart([1, 2, 4], {"a": [1, 2, 3]}, "S", "x", "y",
                       ideal=[1, 2, 4])
        root = _root(c)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "ideal" in texts

    def test_marker_per_point(self):
        c = line_chart([1, 2, 4], {"a": [1, 2, 3]}, "S", "x", "y")
        assert len(_root(c).findall(f"{SVG_NS}circle")) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"a": [1.0]}, "S", "x", "y")

    def test_loglog_axes(self):
        c = line_chart([1, 2, 72], {"a": [1.0, 1.9, 20.0]}, "S",
                       "threads", "speedup", log_x=True, log_y=True)
        _root(c)  # well-formed


class TestBarChart:
    def test_bars_and_none_skipping(self):
        c = bar_chart(["dota", "patents"],
                      {"gap": [0.1, 0.2], "powergraph": [None, 0.9]},
                      "B", "time")
        root = _root(c)
        # background + frame + legend(2) + bars(3) = 7 rects.
        assert len(root.findall(f"{SVG_NS}rect")) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], {}, "B", "y")
