"""Tests for the SVG writer and tick helpers."""

from xml.etree import ElementTree

import pytest

from repro.viz.svg import SvgCanvas, log_ticks, nice_ticks

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(canvas: SvgCanvas):
    return ElementTree.fromstring(canvas.to_string())


class TestCanvas:
    def test_well_formed_document(self):
        c = SvgCanvas(100, 80)
        c.rect(1, 2, 3, 4).line(0, 0, 10, 10).circle(5, 5, 2)
        c.polyline([(0, 0), (1, 1)]).text(10, 10, "hi")
        root = _parse(c)
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "100"

    def test_background_rect(self):
        root = _parse(SvgCanvas(10, 10, background="white"))
        rects = root.findall(f"{SVG_NS}rect")
        assert rects and rects[0].get("fill") == "white"

    def test_no_background(self):
        root = _parse(SvgCanvas(10, 10, background=""))
        assert not root.findall(f"{SVG_NS}rect")

    def test_text_escaped(self):
        c = SvgCanvas(50, 50)
        c.text(0, 0, "<dota & friends>")
        root = _parse(c)
        assert root.find(f"{SVG_NS}text").text == "<dota & friends>"

    def test_rotation_transform(self):
        c = SvgCanvas(50, 50)
        c.text(10, 20, "y", rotate=-90)
        root = _parse(c)
        assert "rotate(-90 10 20)" in root.find(
            f"{SVG_NS}text").get("transform")

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SvgCanvas(-1, 10)

    def test_write(self, tmp_path):
        p = SvgCanvas(10, 10).write(tmp_path / "x.svg")
        ElementTree.parse(p)


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0
        assert len(ticks) >= 3

    def test_nice_ticks_round_values(self):
        for t in nice_ticks(0, 97):
            assert t == round(t, 6)

    def test_nice_ticks_degenerate_range(self):
        assert nice_ticks(5.0, 5.0)  # does not crash

    def test_log_ticks_decades(self):
        assert log_ticks(0.01, 100.0) == [0.01, 0.1, 1.0, 10.0, 100.0]

    def test_log_ticks_positive_only(self):
        with pytest.raises(ValueError):
            log_ticks(0.0, 1.0)

    def test_log_ticks_narrow_range(self):
        assert log_ticks(2.0, 5.0)  # no decade inside: fallback
