"""Tests for the per-figure SVG renderers (end-to-end over a real
pipeline run)."""

from xml.etree import ElementTree

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.errors import ConfigError
from repro.viz import render_all_figures, render_figure


@pytest.fixture(scope="module")
def analysis(tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("viz"),
        dataset="kronecker", scale=9, n_roots=4,
        algorithms=("bfs", "sssp", "pagerank"))
    return Experiment(cfg).run_all()


@pytest.fixture(scope="module")
def sweep_analysis(tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("viz-sweep"),
        dataset="kronecker", scale=9, n_roots=2,
        algorithms=("bfs",), systems=("gap", "graphmat"),
        thread_counts=(1, 4, 16))
    return Experiment(cfg).run_all()


def _assert_svg(path):
    root = ElementTree.parse(path).getroot()
    assert root.tag.endswith("svg")


@pytest.mark.parametrize("figure,n_files", [
    ("fig2", 2), ("fig3", 2), ("fig4", 2), ("fig9", 2),
])
def test_single_threadcount_figures(analysis, figure, n_files, tmp_path):
    paths = render_figure(analysis, figure, tmp_path)
    assert len(paths) == n_files
    for p in paths:
        _assert_svg(p)


def test_fig5_fig6_need_thread_sweep(analysis, sweep_analysis, tmp_path):
    with pytest.raises(ConfigError):
        render_figure(analysis, "fig5", tmp_path)
    for figure in ("fig5", "fig6"):
        paths = render_figure(sweep_analysis, figure, tmp_path)
        assert len(paths) == 1
        _assert_svg(paths[0])


def test_render_all_skips_unsupported(analysis, tmp_path):
    out = render_all_figures(analysis, tmp_path)
    assert "fig2" in out and "fig9" in out
    assert "fig5" not in out  # no thread sweep in this record set


def test_unknown_figure(analysis, tmp_path):
    with pytest.raises(ConfigError):
        render_figure(analysis, "fig99", tmp_path)


def test_fig9_has_sleep_baseline(analysis, tmp_path):
    paths = render_figure(analysis, "fig9", tmp_path)
    body = paths[0].read_text()
    assert "sleep" in body
