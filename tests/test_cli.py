"""Tests for the five-command CLI."""

import json

import pytest

from repro.cli import build_parser, main


def test_systems_command(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out.split()
    assert out == ["gap", "graph500", "graphbig", "graphmat",
                   "powergraph"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_setup(tmp_path, capsys):
    assert main(["setup", "--output", str(tmp_path)]) == 0
    assert "installed systems" in capsys.readouterr().out
    assert (tmp_path / "config.json").exists()


def test_homogenize(tmp_path, capsys):
    assert main(["homogenize", "--output", str(tmp_path),
                 "--scale", "8", "--roots", "2"]) == 0
    out = capsys.readouterr().out
    assert "homogenized kron-scale8" in out
    assert (tmp_path / "datasets" / "kron-scale8"
            / "manifest.json").exists()


def test_full_pipeline_via_subcommands(tmp_path, capsys):
    args = ["--output", str(tmp_path), "--scale", "8", "--roots", "2",
            "--systems", "gap", "graph500", "--algorithms", "bfs"]
    assert main(["run"] + args) == 0
    assert main(["parse"] + args) == 0
    assert (tmp_path / "results.csv").exists()
    assert main(["analyze"] + args) == 0
    out = capsys.readouterr().out
    assert "gap/bfs" in out


def test_all_with_figure(tmp_path, capsys):
    assert main(["all", "--output", str(tmp_path), "--scale", "8",
                 "--roots", "2", "--systems", "gap", "graphmat",
                 "--algorithms", "bfs", "--figure", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out


def test_graphalytics_command(tmp_path, capsys):
    assert main(["graphalytics", "--output", str(tmp_path),
                 "--dataset", "dota-league", "--roots", "2"]) == 0
    out = capsys.readouterr().out
    assert "GraphBIG" in out and "PowerGraph" in out and "GraphMat" in out


def test_rejects_unknown_system(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", "--output", str(tmp_path), "--systems", "ligra"])


def test_feasibility_command(capsys):
    assert main(["feasibility", "--scale", "22",
                 "--time-limit", "100"]) == 0
    out = capsys.readouterr().out
    assert "kron-scale22" in out
    assert "NO (time)" in out      # LCC blows a 100 s budget
    assert "OK" in out


def test_viz_command(tmp_path, capsys):
    main(["all", "--output", str(tmp_path), "--scale", "8",
          "--roots", "2", "--systems", "gap", "--algorithms", "bfs"])
    capsys.readouterr()
    assert main(["viz", "--output", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert ".svg" in out
    assert (tmp_path / "figures").is_dir()


def test_compare_command(tmp_path, capsys):
    main(["all", "--output", str(tmp_path), "--scale", "9",
          "--roots", "6", "--systems", "gap", "graphbig",
          "--algorithms", "bfs"])
    capsys.readouterr()
    assert main(["compare", "--output", str(tmp_path),
                 "--algorithm", "bfs", "--pair", "gap", "graphbig"]) == 0
    out = capsys.readouterr().out
    assert "faster" in out
    assert "95% CI" in out


def test_traces_command(tmp_path, capsys):
    from repro.core.config import ExperimentConfig
    from repro.core.experiment import Experiment

    cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                           systems=("gap",), algorithms=("bfs",),
                           capture_power_traces=True)
    Experiment(cfg).run_all()
    assert main(["traces", "--output", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.count(".svg") == 2


def test_traces_command_without_traces(tmp_path, capsys):
    assert main(["traces", "--output", str(tmp_path)]) == 1


def test_verify_command(tmp_path, capsys):
    from repro.core.config import ExperimentConfig
    from repro.core.experiment import Experiment
    from repro.core.provenance import capture

    cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                           systems=("gap",), algorithms=("bfs",))
    Experiment(cfg).run_all()
    capture(cfg)
    assert main(["verify", "--output", str(tmp_path)]) == 0
    assert "verified" in capsys.readouterr().out
    (tmp_path / "results.csv").write_text("tampered\n")
    assert main(["verify", "--output", str(tmp_path)]) == 1


@pytest.mark.slow
def test_reproduce_command(tmp_path, capsys):
    assert main(["reproduce", "--output", str(tmp_path), "--scale", "8",
                 "--roots", "2", "--no-svg"]) == 0
    out = capsys.readouterr().out
    assert "REPORT.md" in out
    assert (tmp_path / "REPORT.md").exists()


def test_interrupt_exits_130_with_resume_hint(tmp_path, capsys,
                                              monkeypatch):
    import repro.core.suite as suite_mod

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(suite_mod, "run_paper_suite", interrupted)
    assert main(["reproduce", "--output", str(tmp_path),
                 "--no-svg"]) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert f"epg resume {tmp_path}" in err


# ----------------------------------------------------------------------
# Trace inspection on an untraced run dir: exit code 12, one line
# ----------------------------------------------------------------------
def test_metrics_without_events_exits_12(tmp_path, capsys):
    (tmp_path / "logs").mkdir()  # a plausible run dir, just untraced
    assert main(["metrics", str(tmp_path)]) == 12
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "TraceError" in err


def test_trace_without_events_exits_12(tmp_path, capsys):
    (tmp_path / "logs").mkdir()
    assert main(["trace", str(tmp_path)]) == 12
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "TraceError" in err


# ----------------------------------------------------------------------
# epg cache ls|gc|verify|clear
# ----------------------------------------------------------------------
@pytest.fixture
def populated_cache(tmp_path):
    import numpy as np

    from repro.cache import ArtifactCache

    cache = ArtifactCache(tmp_path / "cache")
    for i in range(3):
        cache.put_arrays(f"{i:02d}aa{'f' * 28}", "graph:test",
                         {"data": np.full(64, i, dtype=np.int64)})
    return tmp_path / "cache"


def test_cache_ls(populated_cache, capsys):
    assert main(["cache", "ls", "--dir", str(populated_cache)]) == 0
    out = capsys.readouterr().out
    assert "3 entries" in out
    assert "graph:test" in out


def test_cache_verify_clean_and_corrupt(populated_cache, capsys):
    assert main(["cache", "verify", "--dir", str(populated_cache)]) == 0
    assert "3 entries verified" in capsys.readouterr().out
    victim = next((populated_cache / "objects").glob("*/*/data.npy"))
    victim.write_bytes(b"garbage")
    assert main(["cache", "verify", "--dir", str(populated_cache)]) == 1
    out = capsys.readouterr().out
    assert "digest mismatch" in out
    assert "2 kept" in out


def test_cache_gc_and_clear(populated_cache, capsys):
    assert main(["cache", "gc", "--dir", str(populated_cache),
                 "--max-bytes", "600"]) == 0
    out = capsys.readouterr().out
    assert "evicted" in out
    assert main(["cache", "clear", "--dir", str(populated_cache)]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["cache", "ls", "--dir", str(populated_cache)]) == 0
    assert "0 entries" in capsys.readouterr().out


def test_cache_gc_without_budget_exits_13(populated_cache, capsys):
    assert main(["cache", "gc", "--dir", str(populated_cache)]) == 13
    assert "CacheError" in capsys.readouterr().err


def test_cache_on_missing_dir_exits_13(tmp_path, capsys):
    assert main(["cache", "ls", "--dir", str(tmp_path / "nope")]) == 13
    assert "CacheError" in capsys.readouterr().err


def test_cache_max_bytes_flag_rejects_garbage(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["cache", "gc", "--dir", str(tmp_path),
              "--max-bytes", "lots"])


def test_reproduce_with_cache_dir(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["reproduce", "--output", str(tmp_path / "a"),
                 "--scale", "7", "--roots", "2", "--no-svg",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert (cache / "objects").is_dir()
    assert main(["reproduce", "--output", str(tmp_path / "b"),
                 "--scale", "7", "--roots", "2", "--no-svg",
                 "--cache-dir", str(cache), "--cache-max-bytes",
                 "2G", "--jobs", "4"]) == 0
    capsys.readouterr()
    assert ((tmp_path / "a" / "REPORT.md").read_bytes()
            == (tmp_path / "b" / "REPORT.md").read_bytes())

    def provenance(run):
        doc = json.loads((tmp_path / run / "kron" / "provenance.json")
                         .read_text(encoding="utf-8"))
        doc["config"].pop("output_dir")  # the only inherent difference
        return doc

    assert provenance("a") == provenance("b")


def test_stream_command(tmp_path, capsys):
    out = tmp_path / "stream"
    assert main(["stream", "--output", str(out), "--scale", "8",
                 "--batches", "3", "--batch-edges", "24",
                 "--check", "--trace"]) == 0
    captured = capsys.readouterr().out
    assert "3 batches" in captured
    assert "oracle checks passed" in captured
    csv = out / "stream_results.csv"
    assert csv.is_file()
    assert len(csv.read_text().strip().splitlines()) == 4
    assert main(["trace", str(out), "--validate"]) == 0
    assert "stream" in capsys.readouterr().out


def test_stream_unweighted_excludes_sssp(tmp_path, capsys):
    assert main(["stream", "--output", str(tmp_path / "s"),
                 "--scale", "8", "--unweighted"]) == 2  # ConfigError
    assert "sssp" in capsys.readouterr().err


def test_stream_unweighted_bfs_pagerank(tmp_path, capsys):
    assert main(["stream", "--output", str(tmp_path / "s"),
                 "--scale", "8", "--batches", "2", "--unweighted",
                 "--algorithms", "bfs", "pagerank", "--check"]) == 0
    assert "oracle checks passed" in capsys.readouterr().out
