"""Tests for the simulated clock / power timeline."""

import pytest

from repro.errors import ConfigError
from repro.machine.clock import SimulatedClock


@pytest.fixture
def clock():
    return SimulatedClock(idle_pkg_watts=25.0, idle_dram_watts=10.0)


def test_advance_moves_time(clock):
    clock.advance(1.5, 50.0, 12.0)
    assert clock.now == pytest.approx(1.5)


def test_idle_defaults(clock):
    seg = clock.advance(2.0)
    assert seg.pkg_watts == 25.0
    assert seg.dram_watts == 10.0


def test_negative_advance_rejected(clock):
    with pytest.raises(ConfigError):
        clock.advance(-0.1)


def test_energy_integration(clock):
    clock.advance(1.0, 100.0, 20.0)
    clock.advance(1.0, 50.0, 10.0)
    pkg, dram = clock.energy_between(0.0, 2.0)
    assert pkg == pytest.approx(150.0)
    assert dram == pytest.approx(30.0)


def test_partial_overlap(clock):
    clock.advance(2.0, 100.0, 20.0)
    pkg, _ = clock.energy_between(0.5, 1.5)
    assert pkg == pytest.approx(100.0)


def test_gap_priced_at_idle(clock):
    clock.advance(1.0, 100.0, 20.0)
    # Window extends 1 s past the last segment: idle power fills it.
    pkg, dram = clock.energy_between(0.0, 2.0)
    assert pkg == pytest.approx(100.0 + 25.0)
    assert dram == pytest.approx(20.0 + 10.0)


def test_segment_energy(clock):
    seg = clock.advance(0.5, 80.0, 16.0)
    pkg, dram = seg.energy_j()
    assert pkg == pytest.approx(40.0)
    assert dram == pytest.approx(8.0)


def test_reversed_window_rejected(clock):
    with pytest.raises(ConfigError):
        clock.energy_between(1.0, 0.5)
