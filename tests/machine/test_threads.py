"""Tests for the work-span thread-scaling model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine.spec import haswell_server
from repro.machine.threads import (
    CostParams,
    ThreadModel,
    WorkProfile,
    WorkRound,
)


@pytest.fixture
def tm():
    return ThreadModel(haswell_server())


def _costs(**kw):
    defaults = dict(sec_per_unit=1e-8, startup_s=0.0, barrier_s=0.0,
                    imbalance=0.0, contention=0.0, smt_yield=0.5)
    defaults.update(kw)
    return CostParams(**defaults)


def _profile(units=1e6, rounds=1, skew=0.0):
    p = WorkProfile()
    for _ in range(rounds):
        p.add_round(units=units / rounds, skew=skew)
    return p


class TestWorkProfile:
    def test_totals(self):
        p = WorkProfile()
        p.add_round(100, memory_bytes=800)
        p.add_round(50)
        p.serial_units = 10
        assert p.total_units == 160
        assert p.n_rounds == 2
        assert p.total_bytes == 800

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            WorkRound(units=-1)

    def test_skew_clamped(self):
        assert WorkRound(units=1, skew=7.0).skew == 1.0

    def test_merge(self):
        a = _profile(rounds=2)
        b = _profile(rounds=3)
        assert a.merged(b).n_rounds == 5


class TestCostParams:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            CostParams(sec_per_unit=0.0)
        with pytest.raises(ConfigError):
            CostParams(sec_per_unit=1e-9, smt_yield=1.5)


class TestEffectiveParallelism:
    def test_linear_up_to_cores(self, tm):
        assert tm.effective_parallelism(36, 0.4) == 36

    def test_smt_discounted(self, tm):
        assert tm.effective_parallelism(72, 0.5) == 36 + 0.5 * 36

    def test_serial(self, tm):
        assert tm.effective_parallelism(1, 0.5) == 1


class TestSimulate:
    def test_serial_time_is_work_times_rate(self, tm):
        sim = tm.simulate(_profile(units=1e6), _costs(), 1)
        assert sim.time_s == pytest.approx(1e-2)

    def test_ideal_speedup_without_overheads(self, tm):
        p = _profile(units=1e9)  # large: stay compute-bound
        t1 = tm.simulate(p, _costs(), 1).time_s
        t32 = tm.simulate(p, _costs(), 32).time_s
        assert t1 / t32 == pytest.approx(32, rel=0.01)

    def test_imbalance_reduces_speedup(self, tm):
        p = _profile(units=1e9, skew=0.5)
        fair = tm.simulate(p, _costs(), 32).time_s
        skewed = tm.simulate(p, _costs(imbalance=0.5), 32).time_s
        assert skewed > fair

    def test_contention_dip_at_two_threads(self, tm):
        """The Graph500 effect (Fig 6): slower on 2 threads than 1."""
        p = _profile(units=1e8)
        costs = _costs(contention=1.35, contention_decay=2.0)
        t1 = tm.simulate(p, costs, 1).time_s
        t2 = tm.simulate(p, costs, 2).time_s
        assert t2 > t1                       # speedup < 1
        t8 = tm.simulate(p, costs, 8).time_s
        assert t8 < t1                       # and it recovers

    def test_memory_roofline_binds(self, tm):
        """A byte-heavy profile is priced by bandwidth, not compute."""
        p = WorkProfile()
        p.add_round(units=1e6, memory_bytes=9e9)  # 1 GB/unit-ish
        sim = tm.simulate(p, _costs(), 1)
        assert sim.time_s == pytest.approx(1.0)  # 9 GB @ 9 GB/s

    def test_barrier_cost_scales_with_rounds(self, tm):
        costs = _costs(barrier_s=1e-4)
        few = tm.simulate(_profile(units=1e6, rounds=1), costs, 32).time_s
        many = tm.simulate(_profile(units=1e6, rounds=50), costs, 32).time_s
        assert many > few

    def test_startup_additive(self, tm):
        base = tm.simulate(_profile(), _costs(), 4).time_s
        with_start = tm.simulate(_profile(), _costs(startup_s=1.0), 4).time_s
        assert with_start == pytest.approx(base + 1.0)

    def test_serial_units_not_parallelized(self, tm):
        p = WorkProfile(serial_units=1e6)
        t1 = tm.simulate(p, _costs(), 1).time_s
        t64 = tm.simulate(p, _costs(), 64).time_s
        assert t1 == pytest.approx(t64)

    def test_breakdown_sums(self, tm):
        p = _profile(units=1e8, rounds=4)
        sim = tm.simulate(p, _costs(startup_s=0.1, barrier_s=1e-3), 16)
        assert sim.time_s >= sim.startup_s
        assert sim.n_threads == 16


@given(n=st.integers(1, 72))
@settings(max_examples=30, deadline=None)
def test_speedup_bounded_by_threads(n):
    """T1/Tn <= n for contention-free, imbalance-free profiles."""
    tm = ThreadModel(haswell_server())
    p = WorkProfile()
    p.add_round(units=1e8)
    costs = _costs()
    t1 = tm.simulate(p, costs, 1).time_s
    tn = tm.simulate(p, costs, n).time_s
    assert t1 / tn <= n + 1e-9


@given(n=st.integers(1, 72), imb=st.floats(0, 1), cont=st.floats(0, 2),
       skew=st.floats(0, 1))
@settings(max_examples=50, deadline=None)
def test_time_always_positive(n, imb, cont, skew):
    tm = ThreadModel(haswell_server())
    p = WorkProfile()
    p.add_round(units=1e6, skew=skew)
    costs = _costs(imbalance=imb, contention=cont)
    assert tm.simulate(p, costs, n).time_s > 0
