"""Tests for the deterministic run-to-run variance model."""

import numpy as np
import pytest

from repro.machine.variance import VarianceModel


@pytest.fixture
def vm():
    return VarianceModel(seed=42)


def test_deterministic_per_key(vm):
    k = ("gap", "bfs", 5, 0)
    assert vm.jitter(1.0, k) == vm.jitter(1.0, k)


def test_different_keys_differ(vm):
    a = vm.jitter(1.0, ("gap", "bfs", 5, 0))
    b = vm.jitter(1.0, ("gap", "bfs", 5, 1))
    assert a != b


def test_seed_changes_draws():
    a = VarianceModel(1).jitter(1.0, ("x",))
    b = VarianceModel(2).jitter(1.0, ("x",))
    assert a != b


def test_jitter_positive(vm):
    vals = [vm.jitter(0.01, ("k", i)) for i in range(200)]
    assert all(v > 0 for v in vals)


def test_jitter_unbiased_at_small_sigma(vm):
    vals = np.array([vm.jitter(1.0, ("k", i)) for i in range(500)])
    # Multiplicative part centered at 1; spikes only add.
    assert 0.99 < np.median(vals) < 1.05


def test_short_runs_have_larger_relative_spread(vm):
    """The paper's Graph500 explanation: short kernels are more exposed
    to CPU spikes, so their *relative* spread is wider."""
    short = np.array([vm.jitter(0.005, ("s", i)) for i in range(400)])
    long_ = np.array([vm.jitter(5.0, ("l", i)) for i in range(400)])
    rsd_short = short.std() / short.mean()
    rsd_long = long_.std() / long_.mean()
    assert rsd_short > 2 * rsd_long


def test_sensitivity_amplifies(vm):
    base = np.array([vm.jitter(0.01, ("a", i)) for i in range(300)])
    hot = np.array([vm.jitter(0.01, ("a", i), sensitivity=3.0)
                    for i in range(300)])
    assert hot.std() > base.std()


def test_negative_duration_rejected(vm):
    with pytest.raises(ValueError):
        vm.jitter(-1.0, ("k",))


def test_power_jitter_positive_and_centered(vm):
    vals = np.array([vm.power_jitter(70.0, ("p", i)) for i in range(300)])
    assert np.all(vals > 0)
    assert 69 < np.median(vals) < 71
