"""Tests for the machine description."""

import pytest

from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server


def test_paper_testbed():
    """Sec. III-F: 36-core / 72-thread dual Xeon E5-2699 v3, 256 GB."""
    m = haswell_server()
    assert m.n_cores == 36
    assert m.n_threads == 72
    assert m.sockets == 2
    assert m.ram_gb == 256


def test_idle_power_matches_table3():
    """Table III: sleeping-energy / time = 24.74 W in every column."""
    m = haswell_server()
    assert m.idle_pkg_watts == pytest.approx(24.74)


def test_bandwidth_saturates():
    m = haswell_server()
    assert m.bandwidth_gbs(1) == pytest.approx(9.0)
    assert m.bandwidth_gbs(4) == pytest.approx(36.0)
    assert m.bandwidth_gbs(72) == pytest.approx(120.0)


def test_bandwidth_monotone():
    m = haswell_server()
    vals = [m.bandwidth_gbs(n) for n in range(1, 73)]
    assert all(b >= a for a, b in zip(vals, vals[1:]))


def test_bandwidth_rejects_zero_threads():
    with pytest.raises(ConfigError):
        haswell_server().bandwidth_gbs(0)


def test_file_read_seconds():
    m = haswell_server()
    assert m.file_read_seconds(450e6) == pytest.approx(1.0)


def test_invalid_spec():
    with pytest.raises(ConfigError):
        MachineSpec(sockets=0)
    with pytest.raises(ConfigError):
        MachineSpec(mem_bw_per_thread_gbs=500.0)
