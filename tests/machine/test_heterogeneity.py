"""Cross-architecture repeatability (the paper's closing argument).

"Increasing hardware heterogeneity demands performance analysis be
easily repeatable on the target architecture."  These tests drive the
identical experiment on two machine models and check that the harness
reprices everything coherently.
"""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.errors import ConfigError
from repro.machine import haswell_server, laptop


def test_laptop_spec_sane():
    m = laptop()
    assert m.n_threads == 8
    assert m.ram_gb < haswell_server().ram_gb
    assert m.idle_pkg_watts < haswell_server().idle_pkg_watts


def test_thread_validation_follows_machine(tmp_path):
    """32 threads is fine on the server, rejected on the laptop."""
    ExperimentConfig(output_dir=tmp_path, thread_counts=(32,))
    with pytest.raises(ConfigError):
        ExperimentConfig(output_dir=tmp_path, machine=laptop(),
                         thread_counts=(32,))


@pytest.fixture(scope="module")
def both_runs(tmp_path_factory):
    out = {}
    for name, machine, threads in (
            ("server", haswell_server(), 8),
            ("laptop", laptop(), 8)):
        cfg = ExperimentConfig(
            output_dir=tmp_path_factory.mktemp(name), scale=9,
            n_roots=3, systems=("gap", "graphmat"),
            algorithms=("bfs",), thread_counts=(threads,),
            machine=machine)
        out[name] = Experiment(cfg).run_all()
    return out


def test_same_experiment_both_machines(both_runs):
    for analysis in both_runs.values():
        assert ("gap", "bfs", "kron-scale9", 8) in analysis.box("time")


def test_orderings_stable_across_machines(both_runs):
    """GAP beats GraphMat on both boxes (relative conclusions port)."""
    for analysis in both_runs.values():
        gap = analysis.median_time("gap", "bfs")
        gm = analysis.median_time("graphmat", "bfs")
        assert gap < gm


def test_laptop_runs_slower_at_equal_threads(both_runs):
    """8 laptop threads deliver less than 8 server cores (bandwidth and
    the shared-machine envelope both bind earlier)."""
    server = both_runs["server"].median_time("graphmat", "bfs")
    lap = both_runs["laptop"].median_time("graphmat", "bfs")
    # 8 laptop threads = 4 cores + 4 SMT siblings vs 8 full cores.
    assert lap > server


def test_laptop_power_envelope_respected(both_runs):
    power = both_runs["laptop"].power_box("pkg_watts", "bfs")
    for system, box in power.items():
        assert box.maximum <= laptop().max_pkg_watts * 1.01, system
