"""The dashboard server over real HTTP: pages, API, safety properties.

Three of these tests are the PR's acceptance criteria verbatim: every
page/route answers while a run is in flight, attaching a dashboard
leaves run artifacts byte-identical, and hostile span names arrive in
the SVG as escaped text.  The service tests run a stub daemon speaking
configurable ``/stats`` schemas to pin the version-rejection behavior.
"""

import contextlib
import hashlib
import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.dashboard import (DashConfig, DashboardServer,
                             parse_prometheus_text)
from repro.errors import DashboardError
from repro.observability import Tracer
from repro.service import STATS_SCHEMA_VERSION


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

@contextlib.contextmanager
def running_dash(**cfg_kwargs):
    cfg = DashConfig(port=0, **cfg_kwargs)
    server = DashboardServer(cfg)
    ready = threading.Event()
    rc: list[int] = []
    thread = threading.Thread(
        target=lambda: rc.append(server.serve_forever(
            install_signal_handlers=False, ready_event=ready)),
        daemon=True)
    thread.start()
    assert ready.wait(30.0), "dashboard never came up"
    try:
        yield f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        thread.join(15.0)
    assert rc == [0]


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def make_run(root, name="run1", *, hostile=False):
    d = root / name
    tracer = Tracer(d / "trace")
    span_name = "<script>alert(1)</script>" if hostile else "suite"
    with tracer.span(span_name, "suite"):
        tracer.advance_sim(1.0)
        with tracer.span("cell&<b>", "cell"):
            tracer.advance_sim(0.5)
        tracer.counter("epg_cells_total", 1)
        tracer.observe("epg_cell_seconds", 0.5)
    tracer.close()
    return d


def tree_digest(root):
    """Stable digest of every file under ``root`` (path + bytes)."""
    h = hashlib.blake2b(digest_size=16)
    for p in sorted(root.rglob("*")):
        if p.is_file():
            h.update(str(p.relative_to(root)).encode())
            h.update(p.read_bytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------

def test_nothing_to_watch_is_a_config_error():
    with pytest.raises(DashboardError):
        DashConfig()


def test_missing_root_is_a_config_error(tmp_path):
    with pytest.raises(DashboardError):
        DashConfig(root=tmp_path / "nope")


# ----------------------------------------------------------------------
# Pages and API
# ----------------------------------------------------------------------

def test_every_route_serves_while_run_in_flight(tmp_path):
    make_run(tmp_path)
    with running_dash(root=tmp_path) as base:
        html_routes = ["/", "/run/run1", "/run/run1/metrics",
                       "/service"]
        for route in html_routes:
            status, body = get(base + route)
            assert status == 200, route
            assert b"<!DOCTYPE html>" in body, route

        status, body = get(base + "/run/run1/timeline.svg")
        assert status == 200 and body.startswith(b"<?xml")

        for route in ["/api/runs", "/api/run/run1/spans",
                      "/api/run/run1/metrics", "/api/service",
                      "/healthz"]:
            status, body = get(base + route)
            assert status == 200, route
            json.loads(body)                    # must be valid JSON

        status, payload = get(base + "/api/run/run1/spans")
        data = json.loads(payload)
        assert data["span_count"] == 2
        assert data["slowest"][0]["sim_s"] >= data["slowest"][-1]["sim_s"]

        status, payload = get(base + "/api/run/run1/metrics")
        data = json.loads(payload)
        assert data["totals"]["epg_cells_total"]["value"] == 1.0
        assert data["totals"]["epg_cell_seconds"]["kind"] == "histogram"
        assert len(data["history"]) == 1


def test_unknown_run_and_traversal_are_404(tmp_path):
    make_run(tmp_path)
    with running_dash(root=tmp_path) as base:
        for route in ["/run/ghost", "/api/run/ghost/spans",
                      "/api/run/..%2F..%2Fetc/spans", "/nope",
                      "/run/run1/other"]:
            status, _ = get(base + route)
            assert status == 404, route


def test_dashboard_is_read_only(tmp_path):
    """Polling every route must leave the run dir byte-identical."""
    make_run(tmp_path)
    before = tree_digest(tmp_path)
    with running_dash(root=tmp_path) as base:
        for route in ["/", "/run/run1", "/run/run1/timeline.svg",
                      "/api/runs", "/api/run/run1/spans",
                      "/api/run/run1/metrics", "/api/service"]:
            get(base + route)
            get(base + route)           # twice: history sampling too
    assert tree_digest(tmp_path) == before


def test_hostile_span_names_arrive_escaped(tmp_path):
    make_run(tmp_path, hostile=True)
    with running_dash(root=tmp_path) as base:
        status, svg = get(base + "/run/run1/timeline.svg")
        assert status == 200
        assert b"<script>" not in svg
        assert b"&lt;script&gt;" in svg
        # The nested cell's & and < went through escaping too.
        assert b"cell&<b>" not in svg
        assert b"cell&amp;&lt;b&gt;" in svg


def test_tail_follow_over_http(tmp_path):
    """Spans appended after the first poll appear on the next one."""
    d = tmp_path / "live"
    tracer = Tracer(d / "trace")
    with tracer.span("first", "cell"):
        tracer.advance_sim(1.0)
    tracer.flush()
    with running_dash(root=tmp_path) as base:
        _, payload = get(base + "/api/run/live/spans")
        assert json.loads(payload)["span_count"] == 1

        with tracer.span("second", "cell"):
            tracer.advance_sim(1.0)
        tracer.flush()
        _, payload = get(base + "/api/run/live/spans")
        data = json.loads(payload)
        assert data["span_count"] == 2
        assert data["in_flight"]
    tracer.close()


# ----------------------------------------------------------------------
# Service page vs. a stub daemon
# ----------------------------------------------------------------------

class _StubStats(BaseHTTPRequestHandler):
    stats: dict = {}

    def log_message(self, *a):
        pass

    def do_GET(self):
        if self.path == "/stats":
            body = json.dumps(self.stats).encode()
            ctype = "application/json"
        elif self.path == "/graphs":
            body = json.dumps({"graphs": [
                {"name": "kron-s6", "resident": True}]}).encode()
            ctype = "application/json"
        elif self.path == "/metrics":
            body = (b"# HELP epg_q total\n"
                    b'epg_queries_total{status="200"} 3\n'
                    b'epg_queries_total{status="503"} 1\n'
                    b"epg_latency_seconds_bucket{le=\"1\"} 9\n")
            ctype = "text/plain"
        else:
            self.send_response(404)
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@contextlib.contextmanager
def stub_daemon(stats: dict):
    handler = type("H", (_StubStats,), {"stats": stats})
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(10.0)


def _service_snapshot(tmp_path, stats):
    with stub_daemon(stats) as daemon_url:
        with running_dash(root=tmp_path,
                          serve_url=daemon_url) as base:
            _, payload = get(base + "/api/service")
            return json.loads(payload)


def test_service_page_renders_compatible_daemon(tmp_path):
    data = _service_snapshot(tmp_path, {
        "schema_version": STATS_SCHEMA_VERSION,
        "ready": True, "draining": False, "recovered_graphs": 0,
        "admission": {}, "workers": {"n": 2, "quarantined": 0},
        "breakers": {}, "residency": {}})
    assert data["reachable"] and data["compatible"]
    assert data["error"] is None
    assert data["stats"]["ready"] is True
    # /metrics parsed: labels summed, buckets dropped.
    assert data["metrics"]["epg_queries_total"] == 4.0
    assert "epg_latency_seconds_bucket" not in data["metrics"]
    assert len(data["history"]) == 1


def test_incompatible_stats_schema_rejected(tmp_path):
    data = _service_snapshot(
        tmp_path, {"schema_version": STATS_SCHEMA_VERSION + 1,
                   "ready": True})
    assert data["reachable"] and not data["compatible"]
    assert "schema" in data["error"]
    assert data["stats"] is None, "incompatible payloads must not render"


def test_missing_stats_schema_rejected(tmp_path):
    data = _service_snapshot(tmp_path, {"ready": True})
    assert data["reachable"] and not data["compatible"]
    assert "schema_version" in data["error"]
    assert data["stats"] is None


def test_unreachable_daemon_degrades_to_error_panel(tmp_path):
    with running_dash(root=tmp_path,
                      serve_url="http://127.0.0.1:9") as base:
        status, payload = get(base + "/api/service")
        assert status == 200
        data = json.loads(payload)
        assert data["configured"] and not data["reachable"]
        assert "unreachable" in data["error"]


def test_loadgen_report_gains_dash_hint():
    from repro.service import LoadReport

    report = LoadReport()
    report.record(200, 0.01, None)
    report.duration_s = 1.0
    assert "watch live" not in report.summary()
    out = report.summary(dash_url="http://127.0.0.1:8780/")
    assert "watch live: http://127.0.0.1:8780/service" in out


def test_parse_prometheus_text_shapes():
    text = ("# HELP x y\n"
            "a 1\n"
            'a{l="v"} 2\n'
            "b_bucket{le=\"+Inf\"} 7\n"
            "garbage line without value\n"
            "c 2.5\n")
    parsed = parse_prometheus_text(text)
    assert parsed == {"a": 3.0, "c": 2.5}
