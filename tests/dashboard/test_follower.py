"""The event follower against every shape a live log takes.

The contract under test: tailing a file that another process is
appending to, crashing out of, and resuming into must never lose a
complete line, never consume a torn one early, and never count any
span twice -- the resume case runs the *real*
:class:`~repro.observability.tracer.Tracer` so the follower is
exercised against the actual recovery behavior, not a simulation.
"""

import json

from repro.dashboard import EventFollower
from repro.observability import Tracer


def _line(i: int, **extra) -> str:
    ev = {"type": "span", "id": i, "parent": None, "name": f"s{i}",
          "cat": "cell", "t0_sim": float(i), "t1_sim": i + 1.0,
          "t0_wall": 0.0, "t1_wall": 0.1, "attrs": {}}
    ev.update(extra)
    return json.dumps(ev) + "\n"


def test_tail_follow_across_appends(tmp_path):
    log = tmp_path / "events.jsonl"
    log.write_text(_line(1))
    f = EventFollower(log)
    assert [ev["id"] for ev in f.poll()] == [1]
    assert f.poll() == []                       # nothing new: no-op

    with log.open("a") as fh:
        fh.write(_line(2) + _line(3))
    assert [ev["id"] for ev in f.poll()] == [2, 3]
    assert [ev["id"] for ev in f.events] == [1, 2, 3]
    assert f.resets == 0 and f.malformed == 0


def test_crash_mid_write_leaves_partial_pending(tmp_path):
    log = tmp_path / "events.jsonl"
    log.write_text(_line(1) + '{"type": "span", "id": 2, "t0')
    f = EventFollower(log)
    assert [ev["id"] for ev in f.poll()] == [1]
    assert f.pending_partial
    # Offset stopped at the newline, not the torn bytes.
    assert f.offset == len(_line(1).encode())

    # The writer finishes the line: the next poll picks up exactly it.
    with log.open("a") as fh:
        fh.write('_sim": 0.0}\n')
    polled = f.poll()
    assert len(polled) == 1 and polled[0]["id"] == 2
    assert not f.pending_partial
    assert f.span_count() == 2


def test_resume_append_never_double_counts(tmp_path):
    """Follower attached across crash + ``epg resume``: each span once.

    A hard-killed tracer leaves a torn tail; the resumed Tracer
    truncates it in place (same inode) and appends.  The follower was
    already past the complete lines and must treat the resumed log as
    pure append -- no reset, no replay.
    """
    trace_dir = tmp_path / "trace"
    tracer = Tracer(trace_dir)
    with tracer.span("one", "cell"):
        tracer.advance_sim(1.0)
    tracer.flush()
    log = tracer.path

    f = EventFollower(log)
    f.poll()
    first_spans = f.span_count()
    assert first_spans == 1

    # Hard kill mid-write: torn JSON at the tail, no close().
    with log.open("a") as fh:
        fh.write('{"type": "span", "id": 99, "t0_sim"')

    f.poll()                        # sees the torn tail, holds position
    assert f.pending_partial
    assert f.span_count() == first_spans

    resumed = Tracer(trace_dir, resume=True)
    with resumed.span("two", "cell"):
        resumed.advance_sim(1.0)
    resumed.close()

    f.poll()
    names = [ev["name"] for ev in f.events if ev.get("type") == "span"]
    assert names == ["one", "two"]          # each exactly once
    assert f.resets == 0, "resume must look like append, not rewrite"


def test_fresh_run_replaces_log_and_resets(tmp_path):
    trace_dir = tmp_path / "trace"
    tracer = Tracer(trace_dir)
    with tracer.span("old", "cell"):
        tracer.advance_sim(1.0)
    tracer.close()

    f = EventFollower(tracer.path)
    f.poll()
    assert f.span_count() == 1

    # A non-resume Tracer unlinks and recreates: new inode.
    fresh = Tracer(trace_dir)
    with fresh.span("new", "cell"):
        fresh.advance_sim(1.0)
    fresh.close()

    f.poll()
    assert f.resets == 1
    names = [ev["name"] for ev in f.events if ev.get("type") == "span"]
    assert names == ["new"], "stale events must not survive a reset"


def test_same_inode_rewrite_detected_by_shrink(tmp_path):
    log = tmp_path / "events.jsonl"
    log.write_text(_line(1) + _line(2) + _line(3))
    f = EventFollower(log)
    f.poll()
    assert f.span_count() == 3

    with log.open("r+b") as fh:     # truncate below the offset in place
        fh.truncate(len(_line(1).encode()))
    f.poll()
    assert f.resets == 1
    assert f.span_count() == 1


def test_missing_then_created(tmp_path):
    log = tmp_path / "events.jsonl"
    f = EventFollower(log)
    assert f.poll() == []           # absent: quietly empty
    log.write_text(_line(1))
    assert [ev["id"] for ev in f.poll()] == [1]


def test_malformed_complete_line_skipped_and_counted(tmp_path):
    log = tmp_path / "events.jsonl"
    log.write_text(_line(1) + "{not json}\n" + _line(2))
    f = EventFollower(log)
    assert [ev["id"] for ev in f.poll()] == [1, 2]
    assert f.malformed == 1


def test_sim_end_tracks_high_water_mark(tmp_path):
    log = tmp_path / "events.jsonl"
    log.write_text(
        _line(1, t1_sim=4.5)
        + json.dumps({"type": "counter", "name": "c", "labels": {},
                      "inc": 1, "t_sim": 9.0}) + "\n")
    f = EventFollower(log)
    f.poll()
    assert f.sim_end() == 9.0
