"""Run discovery: marker files in, dashboard roster out."""

import json

from repro.dashboard import discover_runs, is_run_dir


def _mk_run(root, name, *, suite=False, report=False, trace=False,
            served=False, checkpoint=None):
    d = root / name
    d.mkdir(parents=True)
    if suite:
        (d / "suite.json").write_text("{}")
    if report:
        (d / "REPORT.md").write_text("# report\n")
    if trace:
        (d / "trace").mkdir()
        (d / "trace" / "events.jsonl").write_text("")
    if served:
        (d / "served.json").write_text("{}")
    if checkpoint is not None:
        (d / "checkpoint.json").write_text(json.dumps(checkpoint))
    return d


def test_root_itself_a_run_dir(tmp_path):
    d = _mk_run(tmp_path, "solo", suite=True, trace=True)
    runs = discover_runs(d)
    assert list(runs) == ["solo"]
    info = runs["solo"]
    assert info.kind == "suite"
    assert info.status == "in-flight"
    assert info.has_trace
    assert info.trace_path == d / "trace" / "events.jsonl"


def test_parent_of_many_runs(tmp_path):
    _mk_run(tmp_path, "a", suite=True, report=True)
    _mk_run(tmp_path, "b", trace=True)
    _mk_run(tmp_path, "svc", served=True)
    (tmp_path / "not-a-run").mkdir()
    (tmp_path / "loose-file.txt").write_text("x")

    runs = discover_runs(tmp_path)
    assert sorted(runs) == ["a", "b", "svc"]
    assert runs["a"].status == "complete"
    assert runs["b"].kind == "experiment"
    assert runs["svc"].kind == "service"
    assert runs["svc"].status == "serving"


def test_config_digest_and_quarantine_surface(tmp_path):
    _mk_run(tmp_path, "r", suite=True, checkpoint={
        "version": 1, "config_digest": "d1gest",
        "cells": {"gap/bfs/t32": {"status": "quarantined",
                                  "attempts": []}}})
    info = discover_runs(tmp_path)["r"]
    assert info.config_digest == "d1gest"
    assert any("gap/bfs/t32" in q for q in info.quarantined)


def test_torn_checkpoint_does_not_hide_the_run(tmp_path):
    d = _mk_run(tmp_path, "torn", trace=True)
    (d / "checkpoint.json").write_text('{"version": 1, "config_')
    runs = discover_runs(tmp_path)
    assert "torn" in runs
    assert runs["torn"].config_digest is None


def test_non_run_dirs_rejected(tmp_path):
    (tmp_path / "plain").mkdir()
    assert not is_run_dir(tmp_path / "plain")
    assert not is_run_dir(tmp_path / "missing")
    assert discover_runs(tmp_path / "missing") == {}
