"""Tests for phase 2 (dataset homogenization) and root selection."""

import json

import numpy as np
import pytest

from repro.datasets import formats
from repro.datasets.homogenize import (
    HomogenizedDataset,
    homogenize,
    load_manifest,
    select_roots,
)
from repro.errors import DatasetError
from repro.graph.edgelist import EdgeList


class TestRootSelection:
    def test_32_roots_default(self, kron10):
        roots = select_roots(kron10)
        assert roots.size == 32

    def test_roots_have_degree_greater_than_one(self, kron10):
        """The Graph500 rule the paper adopts (Sec. III-B)."""
        deg = kron10.degrees()
        roots = select_roots(kron10)
        assert np.all(deg[roots] > 1)

    def test_deterministic(self, kron10):
        assert np.array_equal(select_roots(kron10, seed=9),
                              select_roots(kron10, seed=9))

    def test_no_replacement_when_possible(self, kron10):
        roots = select_roots(kron10)
        assert np.unique(roots).size == roots.size

    def test_replacement_fallback_tiny_graph(self):
        el = EdgeList(np.array([0, 1]), np.array([1, 0]), 2,
                      directed=False)
        roots = select_roots(el, n_roots=8)
        assert roots.size == 8

    def test_error_when_no_eligible_vertex(self):
        el = EdgeList(np.array([0]), np.array([1]), 3, directed=True)
        with pytest.raises(DatasetError):
            select_roots(el)


class TestHomogenize:
    def test_all_formats_written(self, kron10_dataset):
        for key in ("el", "wel", "sg", "wsg", "g500", "mtxbin", "tsv",
                    "graphbig", "roots"):
            assert kron10_dataset.path(key).exists(), key

    def test_manifest_roundtrip(self, kron10_dataset):
        back = load_manifest(kron10_dataset.directory)
        assert back.name == kron10_dataset.name
        assert back.n_vertices == kron10_dataset.n_vertices
        assert np.array_equal(back.roots, kron10_dataset.roots)
        assert back.files == kron10_dataset.files

    def test_manifest_is_json(self, kron10_dataset):
        m = json.loads(
            (kron10_dataset.directory / "manifest.json").read_text())
        assert m["n_vertices"] == kron10_dataset.n_vertices

    def test_unknown_key_raises(self, kron10_dataset):
        with pytest.raises(DatasetError):
            kron10_dataset.path("nope")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            load_manifest(tmp_path)

    def test_unweighted_input_gets_generated_weights(self, patents_small,
                                                     tmp_path):
        """SSSP on unweighted datasets uses generated uniform weights
        (the Graph500 convention) -- unlike Graphalytics' N/A."""
        h = homogenize(patents_small, tmp_path)
        wel = formats.read_el(h.path("wel"), n_vertices=h.n_vertices)
        assert wel.weighted
        assert np.all((wel.weights >= 0) & (wel.weights < 1))

    def test_weighted_input_weights_preserved(self, dota_small, tmp_path):
        h = homogenize(dota_small, tmp_path)
        wel = formats.read_el(h.path("wel"), n_vertices=h.n_vertices)
        assert np.array_equal(np.sort(wel.weights),
                              np.sort(dota_small.weights))

    def test_load_edges(self, kron10_dataset, kron10):
        el = kron10_dataset.load_edges()
        assert el.n_edges == kron10.n_edges

    def test_all_systems_see_identical_edges(self, kron10_dataset):
        """The point of homogenization: every format holds the same
        (weighted) edge multiset."""
        wel = formats.read_el(kron10_dataset.path("wel"),
                              n_vertices=kron10_dataset.n_vertices)
        gm = formats.read_graphmat_bin(kron10_dataset.path("mtxbin"))
        g5 = formats.read_g500(kron10_dataset.path("g500"))
        gb = formats.read_graphbig_csv(kron10_dataset.path("graphbig"))
        tsv = formats.read_el(kron10_dataset.path("tsv"),
                              n_vertices=kron10_dataset.n_vertices)
        base = sorted(zip(wel.src.tolist(), wel.dst.tolist()))
        for other in (gm, g5, gb, tsv):
            assert sorted(zip(other.src.tolist(),
                              other.dst.tolist())) == base

    def test_dataclass_type(self, kron10_dataset):
        assert isinstance(kron10_dataset, HomogenizedDataset)
