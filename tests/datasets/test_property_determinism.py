"""Property-based determinism tests (hypothesis).

Everything the harness derives from a seed must be a pure function of
that seed: the CSR view must preserve exactly the graph it was built
from, Kronecker generation must be byte-stable for a fixed seed (the
provenance digests depend on it), and homogenization must write
byte-identical dataset directories on every invocation.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.homogenize import homogenize
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

#: SHA-256 over (src, dst, weights) of the seed-20170402 scale-10
#: Kronecker graph.  Pinned so a numpy/Python upgrade that silently
#: changes generation (and with it every provenance digest and golden
#: report) fails loudly here instead.
KRON10_DIGEST = \
    "1aecfe1ca35d7f4844f3b35bbf22e42b07cb5abd726ce1ff12ce58bed72408ec"

#: SHA-256 over the generated weights homogenization attaches to the
#: unweighted seed-20170402 scale-10 Kronecker graph (the paper seed
#: XORed with the homogenize salt).  Changed when the draw was fixed
#: from ``uniform(low, high)`` -- a [low, high) interval -- to the
#: Graph500's (low, high]; see CHANGES.md PR 4.
KRON10_RANDOM_WEIGHTS_DIGEST = \
    "322e7173884a3665f1cf88e2e85fe0d79c60bbfd317f298dc4679de3b93eca69"


@st.composite
def seeded_edge_lists(draw, max_n=48, max_m=160):
    """Random weighted edge lists built from a drawn numpy seed, the
    same way every synthetic dataset in the harness is built."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    weights = rng.uniform(0.01, 10.0, size=m)
    return EdgeList(src, dst, n, weights=weights,
                    directed=bool(draw(st.booleans())),
                    name=f"rand-{seed}")


@given(seeded_edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_edgelist_round_trip_preserves_graph(el):
    """CSR build -> edge-array round trip: the weighted edge multiset
    and vertex count survive exactly."""
    csr = CSRGraph.from_edge_list(el)
    src, dst = csr.to_edge_arrays()
    weights = csr.weights
    assert csr.n_vertices == el.n_vertices
    want = sorted(zip(el.src.tolist(), el.dst.tolist(),
                      el.weights.tolist()))
    got = sorted(zip(src.tolist(), dst.tolist(), weights.tolist()))
    assert got == want


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=4, max_value=8))
@settings(max_examples=25, deadline=None)
def test_kronecker_byte_deterministic_per_seed(seed, scale):
    spec = KroneckerSpec(scale=scale, seed=seed, weighted=True)
    a = generate_kronecker(spec)
    b = generate_kronecker(spec)
    assert a.src.tobytes() == b.src.tobytes()
    assert a.dst.tobytes() == b.dst.tobytes()
    assert a.weights.tobytes() == b.weights.tobytes()


def test_kronecker_golden_digest(kron10):
    """The paper-seed scale-10 graph is pinned byte-for-byte."""
    h = hashlib.sha256()
    h.update(kron10.src.tobytes())
    h.update(kron10.dst.tobytes())
    h.update(kron10.weights.tobytes())
    assert h.hexdigest() == KRON10_DIGEST


def test_random_weights_golden_digest(kron10_unweighted):
    """The generated SSSP weights are pinned byte-for-byte (the same
    seed homogenization uses for this graph)."""
    w = kron10_unweighted.with_random_weights(seed=20170402 ^ 0x5355)
    digest = hashlib.sha256(w.weights.tobytes()).hexdigest()
    assert digest == KRON10_RANDOM_WEIGHTS_DIGEST


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_random_weights_interval_half_open_high(seed):
    """Weights promise uniform (0, 1]: zero is impossible (it would
    break SSSP's strict monotonicity), 1.0 is reachable."""
    edges = EdgeList(np.zeros(256, dtype=np.int64),
                     np.ones(256, dtype=np.int64), 2)
    w = edges.with_random_weights(seed=seed).weights
    assert w.min() > 0.0
    assert w.max() <= 1.0
    lo, hi = 0.25, 2.5
    w2 = edges.with_random_weights(seed=seed, low=lo, high=hi).weights
    assert w2.min() > lo
    assert w2.max() <= hi


def _tree_digests(root):
    return {p.relative_to(root).as_posix():
            hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(root.rglob("*")) if p.is_file()}


@pytest.mark.parametrize("seed", (7, 20170402))
def test_homogenize_idempotent(tmp_path, seed):
    """Homogenizing the same edge list twice -- into a fresh directory
    and again over the first output -- yields byte-identical trees
    (the manifest stores only relative paths)."""
    edges = generate_kronecker(
        KroneckerSpec(scale=6, seed=seed, weighted=True))
    ds1 = homogenize(edges, tmp_path / "a")
    first = _tree_digests(ds1.directory)
    ds2 = homogenize(edges, tmp_path / "b")
    assert _tree_digests(ds2.directory) == first
    ds3 = homogenize(edges, tmp_path / "a")  # rerun over existing
    assert _tree_digests(ds3.directory) == first
    manifest = json.loads(
        (ds1.directory / "manifest.json").read_text(encoding="utf-8"))
    assert all("/" not in str(v) or not str(v).startswith("/")
               for v in manifest["files"].values())
