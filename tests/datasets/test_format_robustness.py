"""Corrupted / truncated file handling for the binary formats."""

import pytest

from repro.datasets import formats
from repro.errors import GraphFormatError


@pytest.fixture
def files(tmp_path, kron10):
    return {
        "sg": formats.write_sg(kron10, tmp_path / "g.sg",
                               symmetrize=True),
        "g500": formats.write_g500(kron10, tmp_path / "g.g500"),
        "mtxbin": formats.write_graphmat_bin(kron10,
                                             tmp_path / "g.mtxbin"),
    }


_READERS = {
    "sg": formats.read_sg,
    "g500": formats.read_g500,
    "mtxbin": formats.read_graphmat_bin,
}


@pytest.mark.parametrize("key", sorted(_READERS))
def test_truncated_body_detected(files, key):
    path = files[key]
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(GraphFormatError):
        _READERS[key](path)


@pytest.mark.parametrize("key", sorted(_READERS))
def test_truncated_header_detected(files, key):
    path = files[key]
    path.write_bytes(path.read_bytes()[:12])
    with pytest.raises(GraphFormatError):
        _READERS[key](path)


@pytest.mark.parametrize("key", sorted(_READERS))
def test_negative_counts_detected(files, key):
    path = files[key]
    data = bytearray(path.read_bytes())
    # Corrupt the n_vertices field (bytes 8..16) to a negative value.
    data[8:16] = (-5).to_bytes(8, "little", signed=True)
    path.write_bytes(bytes(data))
    with pytest.raises(GraphFormatError):
        _READERS[key](path)


@pytest.mark.parametrize("key", sorted(_READERS))
def test_intact_files_still_read(files, key):
    el = _READERS[key](files[key])
    assert el is not None
