"""Tests of the synthetic cit-Patents / dota-league stand-ins."""

import numpy as np
import pytest

from repro.datasets.realworld import (
    CIT_PATENTS_FULL,
    DOTA_LEAGUE_FULL,
    cit_patents,
    dota_league,
)
from repro.errors import DatasetError


class TestPublishedStats:
    def test_cit_patents_full_size(self):
        assert CIT_PATENTS_FULL.n_vertices == 3_774_768  # Sec. III-B
        assert CIT_PATENTS_FULL.n_edges == 16_518_948
        assert CIT_PATENTS_FULL.directed
        assert not CIT_PATENTS_FULL.weighted

    def test_dota_full_size(self):
        assert DOTA_LEAGUE_FULL.n_vertices == 61_670    # Sec. III-B
        assert DOTA_LEAGUE_FULL.n_edges == 50_870_313
        assert DOTA_LEAGUE_FULL.weighted
        # "average out-degree of 824"
        assert DOTA_LEAGUE_FULL.avg_out_degree == pytest.approx(824.9, abs=1)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            CIT_PATENTS_FULL.scaled(0)


class TestCitPatents:
    def test_is_dag(self, patents_small):
        """Citations point from newer to older patents."""
        assert np.all(patents_small.dst < patents_small.src)

    def test_directed_unweighted(self, patents_small):
        assert patents_small.directed
        assert not patents_small.weighted

    def test_no_duplicates(self, patents_small):
        key = patents_small.src * patents_small.n_vertices \
            + patents_small.dst
        assert np.unique(key).size == key.size

    def test_avg_degree_preserved(self, patents_small):
        deg = patents_small.n_edges / patents_small.n_vertices
        assert 2.5 < deg < 6.5  # full graph: ~4.4

    def test_heavy_tail_in_degree(self, patents_small):
        indeg = np.bincount(patents_small.dst,
                            minlength=patents_small.n_vertices)
        assert indeg.max() > 10 * max(indeg.mean(), 1e-9)

    def test_deterministic(self):
        a = cit_patents(1 / 2048, seed=1)
        b = cit_patents(1 / 2048, seed=1)
        assert np.array_equal(a.src, b.src)


class TestDotaLeague:
    def test_weighted_undirected(self, dota_small):
        assert not dota_small.directed
        assert dota_small.weighted
        assert np.all(dota_small.weights >= 1)

    def test_denser_than_patents(self, dota_small, patents_small):
        """The property the paper's Sec. IV-C observations hinge on."""
        d_deg = dota_small.n_edges / dota_small.n_vertices
        p_deg = patents_small.n_edges / patents_small.n_vertices
        assert d_deg > 5 * p_deg

    def test_repeat_matchups_have_weight(self, dota_small):
        assert dota_small.weights.max() > 1

    def test_no_self_loops(self, dota_small):
        assert np.all(dota_small.src != dota_small.dst)

    def test_canonical_pair_order(self, dota_small):
        assert np.all(dota_small.src <= dota_small.dst)
