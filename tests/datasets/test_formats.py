"""Round-trip tests of every per-system file format."""

import numpy as np
import pytest

from repro.datasets import formats
from repro.errors import GraphFormatError


def _assert_same_edges(a, b, check_weights=True, f32=False):
    assert b.n_vertices == a.n_vertices
    assert b.n_edges == a.n_edges
    assert np.array_equal(b.src, a.src)
    assert np.array_equal(b.dst, a.dst)
    if check_weights and a.weighted:
        if f32:
            assert np.allclose(b.weights, a.weights, rtol=1e-6, atol=1e-6)
        else:
            assert np.array_equal(b.weights, a.weights)


def test_el_roundtrip(tmp_path, kron10):
    weighted = kron10  # kron10 fixture is weighted
    p = formats.write_el(weighted, tmp_path / "g.wel")
    back = formats.read_el(p, n_vertices=weighted.n_vertices)
    _assert_same_edges(weighted, back)


def test_el_unweighted(tmp_path, patents_small):
    p = formats.write_el(patents_small, tmp_path / "g.el")
    back = formats.read_el(p, n_vertices=patents_small.n_vertices)
    _assert_same_edges(patents_small, back)
    assert not back.weighted


def test_el_infers_vertex_count(tmp_path, tiny_edges):
    p = formats.write_el(tiny_edges, tmp_path / "t.el")
    back = formats.read_el(p)  # no n_vertices: max id + 1 = 5
    assert back.n_vertices == 5


def test_sg_roundtrip(tmp_path, kron10):
    from repro.graph.csr import CSRGraph

    p = formats.write_sg(kron10, tmp_path / "g.wsg", symmetrize=True)
    csr = formats.read_sg(p)
    want = CSRGraph.from_edge_list(kron10, symmetrize=True)
    assert np.array_equal(csr.row_ptr, want.row_ptr)
    assert np.array_equal(csr.col_idx, want.col_idx)
    assert np.array_equal(csr.weights, want.weights)


def test_sg_magic_check(tmp_path):
    p = tmp_path / "bad.sg"
    p.write_bytes(b"NOTASGFILE")
    with pytest.raises(GraphFormatError):
        formats.read_sg(p)


def test_g500_roundtrip(tmp_path, kron10):
    p = formats.write_g500(kron10, tmp_path / "g.g500")
    back = formats.read_g500(p)
    _assert_same_edges(kron10, back)
    assert not back.directed  # generator dumps are undirected tuples


def test_g500_magic_check(tmp_path):
    p = tmp_path / "bad.g500"
    p.write_bytes(b"XXXXXXXXXX")
    with pytest.raises(GraphFormatError):
        formats.read_g500(p)


def test_graphbig_csv_roundtrip(tmp_path, kron10):
    d = formats.write_graphbig_csv(kron10, tmp_path / "gbig")
    back = formats.read_graphbig_csv(d, directed=False)
    _assert_same_edges(kron10, back)
    assert (d / "vertex.csv").exists()
    assert (d / "edge.csv").exists()


def test_graphbig_missing_files(tmp_path):
    with pytest.raises(GraphFormatError):
        formats.read_graphbig_csv(tmp_path / "nope")


def test_graphmat_bin_roundtrip(tmp_path, kron10):
    p = formats.write_graphmat_bin(kron10, tmp_path / "g.mtxbin")
    back = formats.read_graphmat_bin(p, directed=False)
    # GraphMat stores float32 values: weights round to f32.
    _assert_same_edges(kron10, back, f32=True)


def test_graphmat_one_based_on_disk(tmp_path, tiny_edges):
    """The binary stores 1-based indices (Matrix Market convention)."""
    p = formats.write_graphmat_bin(tiny_edges, tmp_path / "t.mtxbin")
    raw = np.frombuffer(
        p.read_bytes()[8 + 17:],
        dtype=[("src", "<i4"), ("dst", "<i4"), ("val", "<f4")])
    assert raw["src"].min() >= 1
    back = formats.read_graphmat_bin(p)
    assert back.src.min() == 0


def test_graphmat_magic_check(tmp_path):
    p = tmp_path / "bad.mtxbin"
    p.write_bytes(b"ZZZZZZZZZZZZ")
    with pytest.raises(GraphFormatError):
        formats.read_graphmat_bin(p)


def test_powergraph_tsv_roundtrip(tmp_path, dota_small):
    p = formats.write_powergraph_tsv(dota_small, tmp_path / "g.tsv")
    back = formats.read_powergraph_tsv(p, n_vertices=dota_small.n_vertices)
    _assert_same_edges(dota_small, back)


def test_unweighted_graphmat_records_weight_one(tmp_path, patents_small):
    p = formats.write_graphmat_bin(patents_small, tmp_path / "p.mtxbin")
    back = formats.read_graphmat_bin(p)
    assert not back.weighted  # flag preserved
