"""Tests for the dataset catalog."""

import pytest

from repro.datasets.catalog import catalog, generate, get_entry
from repro.errors import DatasetError


def test_three_paper_datasets_present():
    names = [e.name for e in catalog()]
    assert names == ["cit-patents", "dota-league", "kronecker"]


def test_published_sizes_recorded():
    assert get_entry("cit-patents").full_vertices == 3_774_768
    assert get_entry("dota-league").full_edges == 50_870_313
    assert get_entry("kronecker").full_vertices is None


def test_flags_match_generators():
    for entry in catalog():
        el = generate(entry.name) if entry.name != "kronecker" else \
            generate(entry.name, scale=8)
        assert el.directed == entry.directed, entry.name
        assert el.weighted == entry.weighted, entry.name


def test_generate_passes_kwargs():
    el = generate("kronecker", scale=9)
    assert el.n_vertices == 512


def test_unknown_entry():
    with pytest.raises(DatasetError):
        get_entry("twitter-2010")


def test_cli_lists_catalog(capsys):
    from repro.cli import main

    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "dota-league" in out
    assert "3,774,768" in out
