"""Tests for the SNAP text format reader/writer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.snap import read_snap, sniff_snap, write_snap
from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList


def test_roundtrip_unweighted(tmp_path, patents_small):
    p = write_snap(patents_small, tmp_path / "g.txt")
    back = read_snap(p, directed=True)
    assert back.n_edges == patents_small.n_edges
    # ids are compacted but may not span [0, n) in the original.
    assert back.n_vertices <= patents_small.n_vertices
    assert not back.weighted


def test_roundtrip_weighted(tmp_path, dota_small):
    p = write_snap(dota_small, tmp_path / "dota.txt")
    back = read_snap(p, directed=False)
    assert back.weighted
    assert back.n_edges == dota_small.n_edges
    assert np.allclose(np.sort(back.weights), np.sort(dota_small.weights))


def test_comments_ignored(tmp_path):
    p = tmp_path / "c.txt"
    p.write_text("# comment\n# Nodes: 3\n0 1\n1 2\n")
    el = read_snap(p)
    assert el.n_edges == 2


def test_id_compaction(tmp_path):
    p = tmp_path / "gap_ids.txt"
    p.write_text("10 500\n500 9000\n")
    el = read_snap(p)
    assert el.n_vertices == 3
    assert sorted(set(el.src.tolist() + el.dst.tolist())) == [0, 1, 2]


def test_compaction_preserves_order(tmp_path):
    p = tmp_path / "o.txt"
    p.write_text("7 3\n3 7\n")
    el = read_snap(p)
    # 3 -> 0, 7 -> 1 (numeric order preserved).
    assert el.src.tolist() == [1, 0]
    assert el.dst.tolist() == [0, 1]


def test_empty_file(tmp_path):
    p = tmp_path / "e.txt"
    p.write_text("# nothing\n")
    el = read_snap(p)
    assert el.n_edges == 0
    assert el.n_vertices == 0


def test_rejects_bad_columns(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("1 2 3 4\n")
    with pytest.raises(GraphFormatError):
        read_snap(p)

    p2 = tmp_path / "bad2.txt"
    p2.write_text("1\n")
    with pytest.raises(GraphFormatError):
        read_snap(p2)


def test_rejects_negative_ids(tmp_path):
    p = tmp_path / "neg.txt"
    p.write_text("0 1\n-1 2\n")
    with pytest.raises(GraphFormatError):
        read_snap(p)


def test_rejects_fractional_ids(tmp_path):
    p = tmp_path / "frac.txt"
    p.write_text("0.5 1\n")
    with pytest.raises(GraphFormatError):
        read_snap(p)


def test_sniff(tmp_path):
    p = tmp_path / "s.txt"
    p.write_text("# hello\n0 1 2.5\n")
    info = sniff_snap(p)
    assert info["weighted"]
    assert info["comments"] == ["hello"]


def test_writer_header_records_counts(tmp_path, tiny_edges):
    p = write_snap(tiny_edges, tmp_path / "t.txt")
    head = p.read_text().splitlines()[0]
    assert "Nodes: 6" in head and "Edges: 5" in head


@given(n=st.integers(2, 30), seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_roundtrip_property(tmp_path_factory, n, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 50))
    el = EdgeList(rng.integers(0, n, m), rng.integers(0, n, m), n,
                  weights=rng.uniform(0.1, 5.0, m), directed=True)
    p = tmp_path_factory.mktemp("snap") / "g.txt"
    write_snap(el, p)
    back = read_snap(p)
    assert back.n_edges == el.n_edges
    # Weights survive a text roundtrip exactly (%.17g).
    assert np.allclose(np.sort(back.weights), np.sort(el.weights),
                       rtol=0, atol=0)
