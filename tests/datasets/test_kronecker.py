"""Unit + property tests for the Graph500 Kronecker generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.kronecker import (
    INITIATOR_A,
    INITIATOR_D,
    KroneckerSpec,
    generate_kronecker,
)
from repro.errors import DatasetError


class TestSpec:
    def test_graph500_sizes(self):
        spec = KroneckerSpec(scale=22)
        assert spec.n_vertices == 4_194_304          # paper Sec. III-B
        assert spec.n_edges == 16 * 4_194_304

    def test_default_initiator(self):
        spec = KroneckerSpec(scale=4)
        assert spec.a == pytest.approx(0.57)
        assert spec.b == pytest.approx(0.19)
        assert spec.c == pytest.approx(0.19)
        assert spec.d == pytest.approx(0.05)
        assert INITIATOR_A + 2 * 0.19 + INITIATOR_D == pytest.approx(1.0)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            KroneckerSpec(scale=0)

    def test_invalid_initiator(self):
        with pytest.raises(DatasetError):
            KroneckerSpec(scale=4, a=0.6, b=0.3, c=0.2)

    def test_name_carries_scale(self):
        assert KroneckerSpec(scale=7).name == "kron-scale7"


class TestGeneration:
    def test_sizes(self):
        el = generate_kronecker(KroneckerSpec(scale=8))
        assert el.n_vertices == 256
        assert el.n_edges == 16 * 256
        assert not el.directed

    def test_deterministic_per_seed(self):
        a = generate_kronecker(KroneckerSpec(scale=8, seed=5))
        b = generate_kronecker(KroneckerSpec(scale=8, seed=5))
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_seed_changes_graph(self):
        a = generate_kronecker(KroneckerSpec(scale=8, seed=5))
        b = generate_kronecker(KroneckerSpec(scale=8, seed=6))
        assert not np.array_equal(a.src, b.src)

    def test_weighted_uniform_01(self):
        el = generate_kronecker(KroneckerSpec(scale=8, weighted=True))
        assert el.weighted
        assert np.all(el.weights > 0)
        assert np.all(el.weights <= 1)

    def test_degree_skew(self):
        """RMAT-style generators produce heavy-tailed degrees: the max
        degree dwarfs the mean."""
        el = generate_kronecker(KroneckerSpec(scale=12))
        deg = el.degrees()
        assert deg.max() > 8 * deg.mean()

    def test_scrambled_labels(self):
        """With A=0.57, unpermuted RMAT concentrates edges on low ids;
        the permutation must spread mass across the id space."""
        el = generate_kronecker(KroneckerSpec(scale=12))
        deg = el.degrees()
        half = el.n_vertices // 2
        lo, hi = deg[:half].sum(), deg[half:].sum()
        assert 0.5 < lo / hi < 2.0

    def test_duplicates_and_loops_allowed(self):
        """The Graph500 spec leaves duplicates/self-loops in the list."""
        el = generate_kronecker(KroneckerSpec(scale=10))
        key = el.src * el.n_vertices + el.dst
        assert np.unique(key).size < key.size  # duplicates exist


@given(st.integers(min_value=3, max_value=10),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_generator_bounds_property(scale, seed):
    el = generate_kronecker(KroneckerSpec(scale=scale, seed=seed))
    assert el.n_edges == 16 * (1 << scale)
    assert el.src.min() >= 0
    assert el.dst.max() < el.n_vertices
