"""Native log writer <-> parser round-trips for all five systems."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logs import LogWriter, parse_all_logs, parse_log
from repro.errors import LogParseError


def _values(records, metric):
    return sorted(r.value for r in records if r.metric == metric)


class TestGapLog:
    def test_roundtrip(self, tmp_path):
        w = LogWriter("gap", "kron-scale10", 32, "bfs")
        w.gap_load(0.12, 0.4)
        w.gap_trial(5, 0, 0.01636)
        w.gap_trial(9, 0, 0.0171)
        w.power_lines(1.184, 0.27, 0.01636, root=5, trial=0)
        path = w.write(tmp_path / "gap.log")
        records = parse_log(path)
        assert _values(records, "time") == [0.01636, 0.0171]
        assert _values(records, "read") == [0.12]
        assert _values(records, "build") == [0.4]
        times = {(r.root, r.value) for r in records if r.metric == "time"}
        assert (5, 0.01636) in times

    def test_pagerank_iterations(self, tmp_path):
        w = LogWriter("gap", "d", 32, "pagerank")
        w.gap_load(0.1, 0.2)
        w.gap_trial(-1, 0, 0.075, iterations=22)
        records = parse_log(w.write(tmp_path / "pr.log"))
        assert _values(records, "iterations") == [22.0]

    def test_power_watts_derived(self, tmp_path):
        w = LogWriter("gap", "d", 32, "bfs")
        w.gap_trial(1, 0, 1.0)
        w.power_lines(pkg_j=72.38, dram_j=16.5, duration_s=1.0,
                      root=1, trial=0)
        records = parse_log(w.write(tmp_path / "p.log"))
        assert _values(records, "pkg_watts")[0] == pytest.approx(
            72.38, rel=1e-6)
        assert _values(records, "dram_watts")[0] == pytest.approx(
            16.5, rel=1e-6)


class TestGraph500Log:
    def test_roundtrip(self, tmp_path):
        w = LogWriter("graph500", "kron-scale14", 32, "bfs")
        w.graph500_header(14, 16, 2)
        w.graph500_construction(3.3)
        w.graph500_bfs(0, 7, 0.0188)
        w.graph500_bfs(1, 9, 0.0190)
        w.graph500_summary(0.0188, 0.0189, 0.0190, 1.0e9)
        w.power_lines(100.0, 20.0, 0.6)
        records = parse_log(w.write(tmp_path / "g500.log"))
        assert _values(records, "build") == [3.3]
        assert _values(records, "time") == [0.0188, 0.019]
        roots = {r.root for r in records if r.metric == "time"}
        assert roots == {7, 9}


class TestGraphBigLog:
    def test_roundtrip(self, tmp_path):
        w = LogWriter("graphbig", "dota-league", 32, "pagerank")
        w.graphbig_load(2.6)
        w.graphbig_run(-1, 0, 4.7, iterations=10)
        records = parse_log(w.write(tmp_path / "gbig.log"))
        assert _values(records, "load") == [2.6]
        assert _values(records, "time") == [4.7]
        assert _values(records, "iterations") == [10.0]
        # GraphBIG has no separable build (Sec. III-B).
        assert _values(records, "build") == []


class TestGraphMatLog:
    def test_block_matches_table1_excerpt(self, tmp_path):
        """The exact phase lines of the Table I excerpt parse back."""
        w = LogWriter("graphmat", "dota-league", 32, "pagerank")
        w.graphmat_block(
            root=-1, trial=0, read_s=2.65211, load_s=5.91229,
            init_s=8.32081e-05, degree_s=0.0555639,
            algo_label="compute PageRank", algo_s=0.149445,
            print_s=0.0641179, deinit_s=0.00022006)
        path = w.write(tmp_path / "gm.log")
        text = path.read_text()
        assert "Finished file read of dota-league. time: 2.65211" in text
        assert "load graph: 5.91229 sec" in text
        assert "run algorithm 2 (compute PageRank): 0.149445 sec" in text
        records = parse_log(path)
        assert _values(records, "read") == [2.65211]
        assert _values(records, "load") == [5.91229]
        assert _values(records, "time") == [0.149445]
        # Derived construction = load - read (Sec. II arithmetic).
        assert _values(records, "build")[0] == pytest.approx(
            5.91229 - 2.65211)


class TestPowerGraphLog:
    def test_roundtrip(self, tmp_path):
        w = LogWriter("powergraph", "d", 32, "sssp")
        w.powergraph_load(20.0)
        w.powergraph_run(3, 0, 8.9, iterations=15)
        records = parse_log(w.write(tmp_path / "pg.log"))
        assert _values(records, "load") == [20.0]
        assert _values(records, "time") == [8.9]
        assert _values(records, "iterations") == [15.0]


class TestParseErrors:
    def test_empty_log(self, tmp_path):
        p = tmp_path / "x.log"
        p.write_text("")
        with pytest.raises(LogParseError):
            parse_log(p)

    def test_missing_header(self, tmp_path):
        p = tmp_path / "x.log"
        p.write_text("Trial Time: 0.5\n")
        with pytest.raises(LogParseError):
            parse_log(p)

    def test_unknown_system(self, tmp_path):
        p = tmp_path / "x.log"
        p.write_text("# epg system=ligra dataset=d threads=4 "
                     "algorithm=bfs\nsomething\n")
        with pytest.raises(LogParseError):
            parse_log(p)

    def test_parse_all_requires_logs(self, tmp_path):
        with pytest.raises(LogParseError):
            parse_all_logs(tmp_path)


@given(times=st.lists(st.floats(1e-6, 1e3, allow_nan=False),
                      min_size=1, max_size=20),
       threads=st.integers(1, 72))
@settings(max_examples=40, deadline=None)
def test_gap_roundtrip_property(tmp_path_factory, times, threads):
    """Writer -> parser is lossless for arbitrary trial times."""
    w = LogWriter("gap", "g", threads, "bfs")
    w.gap_load(0.1, 0.2)
    for i, t in enumerate(times):
        w.gap_trial(i, 0, t)
    p = tmp_path_factory.mktemp("logs") / "g.log"
    records = parse_log(w.write(p))
    got = sorted(r.value for r in records if r.metric == "time")
    want = sorted(round(t, 5) for t in times)
    assert got == pytest.approx(want, rel=1e-3, abs=1e-5)
    assert all(r.threads == threads for r in records)


def test_graph500_teps_parsed(tmp_path):
    """The spec-mandated harmonic-mean TEPS lands in the records."""
    w = LogWriter("graph500", "kron-scale14", 32, "bfs")
    w.graph500_header(14, 16, 1)
    w.graph500_construction(3.3)
    w.graph500_bfs(0, 7, 0.0188)
    w.graph500_summary(0.0188, 0.0188, 0.0188, 7.1e9)
    records = parse_log(w.write(tmp_path / "teps.log"))
    teps = [r.value for r in records if r.metric == "teps"]
    assert teps == [7.1e9]
