"""Tests for the feasibility predictor (paper Sec. V)."""

import pytest

from repro.core.feasibility import (
    FeasibilityVerdict,
    WorkloadSize,
    check_feasibility,
    estimate_memory_bytes,
    estimate_runtime_s,
)
from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server


class TestWorkloadSize:
    def test_kronecker_sizes(self):
        s = WorkloadSize.kronecker(22)
        assert s.n_vertices == 1 << 22
        assert s.n_arcs == 2 * 16 * (1 << 22)
        assert s.wedges == pytest.approx(4.0e10, rel=0.01)

    def test_wedge_estimate_fallback(self):
        s = WorkloadSize(n_vertices=1000, n_arcs=32000)
        assert s.wedge_estimate() == pytest.approx(10 * 32 * 32000)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            WorkloadSize(n_vertices=0, n_arcs=10)


class TestMemory:
    def test_scale22_fits_256gb(self):
        """The paper ran scale 22 on 256 GB: every system must fit."""
        size = WorkloadSize.kronecker(22)
        for system in ("gap", "graph500", "graphbig", "graphmat",
                       "powergraph"):
            assert estimate_memory_bytes(system, size) < 256e9

    def test_scale30_overflows_someone(self):
        size = WorkloadSize.kronecker(30)
        assert estimate_memory_bytes("powergraph", size) > 256e9

    def test_memory_ordering(self):
        """Property-graph and partitioned stores cost more per vertex
        than the lean CSR codes."""
        size = WorkloadSize.kronecker(20)
        lean = estimate_memory_bytes("graph500", size)
        for heavy in ("graphbig", "powergraph", "gap", "graphmat"):
            assert estimate_memory_bytes(heavy, size) > lean

    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            estimate_memory_bytes("ligra", WorkloadSize.kronecker(10))


class TestRuntime:
    def test_bfs_projection_matches_anchor(self):
        size = WorkloadSize.kronecker(22)
        t = estimate_runtime_s("gap", "bfs", size, n_threads=32)
        assert t == pytest.approx(0.01636, rel=0.1)

    def test_lcc_dominates(self):
        """LCC projects as the slowest kernel (the Tables I-II shape)."""
        size = WorkloadSize.kronecker(18)
        lcc = estimate_runtime_s("graphbig", "lcc", size)
        for other in ("bfs", "sssp", "pagerank", "wcc", "cdlp"):
            assert lcc > estimate_runtime_s("graphbig", other, size)

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError):
            estimate_runtime_s("graph500", "lcc",
                               WorkloadSize.kronecker(10))

    def test_threads_reduce_runtime(self):
        size = WorkloadSize.kronecker(20)
        t1 = estimate_runtime_s("gap", "pagerank", size, n_threads=1)
        t32 = estimate_runtime_s("gap", "pagerank", size, n_threads=32)
        assert t32 < t1


class TestVerdicts:
    def test_feasible_cell(self):
        v = check_feasibility("gap", "bfs", WorkloadSize.kronecker(20),
                              time_limit_s=60.0)
        assert v.feasible
        assert v.limiting_factor is None

    def test_time_limited_cell(self):
        """The Graphalytics failure mode: LCC blows the job budget."""
        v = check_feasibility("graphbig", "lcc",
                              WorkloadSize.kronecker(22),
                              time_limit_s=60.0)
        assert not v.within_time_limit
        assert v.limiting_factor == "time"
        assert not v.feasible

    def test_memory_limited_cell(self):
        v = check_feasibility("powergraph", "pagerank",
                              WorkloadSize.kronecker(30))
        assert not v.fits_memory
        assert v.limiting_factor == "memory"

    def test_small_machine(self):
        laptop = MachineSpec(ram_gb=16)
        v = check_feasibility("graphbig", "bfs",
                              WorkloadSize.kronecker(26),
                              machine=laptop)
        assert not v.fits_memory

    def test_verdict_is_dataclass(self):
        v = check_feasibility("gap", "bfs", WorkloadSize.kronecker(10))
        assert isinstance(v, FeasibilityVerdict)


class TestGraphalyticsTimeouts:
    def test_expensive_cell_fails(self, dota_dataset):
        """Sec. V: Graphalytics fails on computationally expensive
        algorithms; with a job budget the LCC cell reports 'F'."""
        from repro.graphalytics import GraphalyticsHarness, render_table

        h = GraphalyticsHarness(n_threads=32, seed=7, time_limit_s=0.01)
        lcc = h.run_cell("graphbig", "lcc", dota_dataset)
        bfs = h.run_cell("graphbig", "bfs", dota_dataset)
        assert lcc.failed and lcc.display == "F"
        assert not bfs.failed
        out = render_table([lcc, bfs])
        assert "F" in out
