"""Robustness of the log parser against damaged and hostile inputs.

Phase 4 parses whatever the run phase left behind; a truncated disk, a
crashed system, or a hand-edited log must produce a clean error or a
partial parse -- never a wrong number or an unhandled exception.
"""

import pytest

from repro.core.logs import LogWriter, parse_log
from repro.errors import LogParseError


@pytest.fixture
def gap_log(tmp_path):
    w = LogWriter("gap", "kron-scale10", 32, "bfs")
    w.gap_load(0.1, 0.2)
    for i in range(4):
        w.gap_trial(i, 0, 0.01 * (i + 1))
        w.power_lines(1.0, 0.2, 0.01 * (i + 1), root=i, trial=0)
    return w.write(tmp_path / "gap.log")


def test_truncated_log_parses_prefix(gap_log):
    """A run killed mid-write leaves a truncated file: the parser keeps
    the complete lines (the paper's AWK scripts behave the same way)."""
    text = gap_log.read_text()
    lines = text.splitlines()
    gap_log.write_text("\n".join(lines[:5]) + "\n")
    records = parse_log(gap_log)
    times = [r for r in records if r.metric == "time"]
    assert 0 < len(times) < 4


def test_garbage_lines_ignored(gap_log):
    text = gap_log.read_text()
    polluted = text + "Segmentation fault (core dumped)\n@@@ noise\n"
    gap_log.write_text(polluted)
    records = parse_log(gap_log)
    assert sum(1 for r in records if r.metric == "time") == 4


def test_interleaved_stderr_noise(tmp_path):
    """Warnings interleaved inside the block (OpenMP chatter) must not
    derail root/trial tracking."""
    w = LogWriter("graphbig", "d", 32, "bfs")
    w.graphbig_load(1.0)
    w.graphbig_run(3, 0, 0.5)
    w.lines.insert(3, "OMP: Warning #96: Cannot form a team")
    records = parse_log(w.write(tmp_path / "g.log"))
    times = [r for r in records if r.metric == "time"]
    assert times[0].root == 3
    assert times[0].value == 0.5


def test_header_tampering_detected(gap_log):
    text = gap_log.read_text().splitlines()
    text[0] = "# epg system=gap dataset=kron"  # malformed header
    gap_log.write_text("\n".join(text))
    with pytest.raises(LogParseError):
        parse_log(gap_log)


def test_power_line_with_corrupt_counter_skipped(tmp_path):
    w = LogWriter("gap", "d", 32, "bfs")
    w.gap_trial(0, 0, 0.5)
    w.lines.append("PACKAGE_ENERGY:PACKAGE0 NOTANUMBER nJ 0.5 s")
    records = parse_log(w.write(tmp_path / "p.log"))
    assert not any("joule" in r.metric for r in records)


def test_mixed_system_lines_do_not_cross_contaminate(tmp_path):
    """Lines in another system's format inside a gap log are noise."""
    w = LogWriter("gap", "d", 32, "bfs")
    w.gap_trial(1, 0, 0.25)
    w.lines.append("== time: 9.99 sec")                 # graphbig-style
    w.lines.append("load graph: 9.99 sec")              # graphmat-style
    records = parse_log(w.write(tmp_path / "x.log"))
    values = [r.value for r in records if r.metric == "time"]
    assert values == [0.25]


def test_binary_garbage_file(tmp_path):
    p = tmp_path / "junk.log"
    p.write_bytes(b"\x00\x01\x02\xff" * 10)
    with pytest.raises((LogParseError, UnicodeDecodeError)):
        parse_log(p)
