"""Tests for the statistical comparison layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import Record
from repro.core.stats import (
    bootstrap_ci,
    cliffs_delta,
    compare_systems,
    mann_whitney_u,
)
from repro.errors import ConfigError


class TestBootstrap:
    def test_ci_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        data = rng.lognormal(0, 0.3, 50)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= np.median(data) <= hi

    def test_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.normal(10, 1, 8)
        big = rng.normal(10, 1, 512)
        w_small = np.diff(bootstrap_ci(small, seed=2))[0]
        w_big = np.diff(bootstrap_ci(big, seed=2))[0]
        assert w_big < w_small

    def test_deterministic(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_validation(self):
        with pytest.raises(ConfigError):
            bootstrap_ci([])
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0], confidence=1.5)

    @pytest.mark.parametrize("n_resamples", (0, -5))
    def test_rejects_nonpositive_resamples(self, n_resamples):
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0, 2.0], n_resamples=n_resamples)

    def test_custom_statistic_without_axis_kwarg(self):
        """Regression: a plain 1-D statistic (no ``axis`` keyword) must
        be applied row-wise, not crash."""
        rng = np.random.default_rng(4)
        data = rng.normal(10, 2, 40)
        lo, hi = bootstrap_ci(data, statistic=lambda v: v.max() - v.min(),
                              n_resamples=200, seed=5)
        assert 0.0 <= lo <= data.max() - data.min() <= hi

    def test_custom_statistic_matches_vectorized(self):
        """Row-wise fallback and the vectorized path agree exactly for
        the same resample draw."""
        data = np.arange(1.0, 21.0)
        fast = bootstrap_ci(data, statistic=np.mean, n_resamples=100,
                            seed=9)
        slow = bootstrap_ci(data, statistic=lambda v: float(np.mean(v)),
                            n_resamples=100, seed=9)
        assert fast == slow

    def test_scalar_returning_axis_tolerant_statistic(self):
        """A statistic that swallows ``axis`` but reduces to a scalar
        (wrong shape) still routes to the row-wise fallback."""
        lo, hi = bootstrap_ci([1.0, 2.0, 3.0],
                              statistic=lambda v, axis=None: float(
                                  np.median(v)),
                              n_resamples=50, seed=3)
        assert lo <= hi


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        a = np.arange(20.0)
        _, p = mann_whitney_u(a, a)
        assert p > 0.9

    def test_clearly_shifted_samples_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 30)
        b = rng.normal(5, 1, 30)
        _, p = mann_whitney_u(a, b)
        assert p < 1e-6

    def test_matches_scipy(self):
        from scipy.stats import mannwhitneyu

        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 25)
        b = rng.normal(0.8, 1, 28)
        u, p = mann_whitney_u(a, b)
        ref = mannwhitneyu(a, b, alternative="two-sided",
                           method="asymptotic", use_continuity=False)
        assert u == pytest.approx(ref.statistic)
        assert p == pytest.approx(ref.pvalue, rel=1e-6)

    def test_tie_handling_matches_scipy(self):
        from scipy.stats import mannwhitneyu

        a = [1, 1, 2, 2, 3]
        b = [2, 2, 3, 3, 4]
        u, p = mann_whitney_u(a, b)
        ref = mannwhitneyu(a, b, alternative="two-sided",
                           method="asymptotic", use_continuity=False)
        assert u == pytest.approx(ref.statistic)
        assert p == pytest.approx(ref.pvalue, rel=1e-6)


class TestCliffsDelta:
    def test_disjoint_samples(self):
        assert cliffs_delta([1, 2], [10, 20]) == -1.0
        assert cliffs_delta([10, 20], [1, 2]) == 1.0

    def test_identical(self):
        assert cliffs_delta([5, 5], [5, 5]) == 0.0

    @given(shift=st.floats(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_sign_tracks_shift(self, shift):
        rng = np.random.default_rng(4)
        a = rng.normal(0, 0.1, 40)
        b = a + shift
        d = cliffs_delta(a, b)
        if shift > 0.5:
            assert d < 0
        elif shift < -0.5:
            assert d > 0


class TestCompareSystems:
    def _records(self):
        rng = np.random.default_rng(5)
        recs = []
        for i, t in enumerate(rng.normal(0.016, 0.001, 32)):
            recs.append(Record("gap", "bfs", "d", 32, "time", t, i, 0))
        for i, t in enumerate(rng.normal(1.6, 0.05, 32)):
            recs.append(Record("graphbig", "bfs", "d", 32, "time", t,
                               i, 0))
        return recs

    def test_clear_winner(self):
        v = compare_systems(self._records(), "gap", "graphbig", "bfs")
        assert v.significant
        assert v.faster == "gap"
        assert v.speedup > 50
        assert v.delta == -1.0
        assert "faster" in v.summary()

    def test_self_comparison_inconclusive(self):
        recs = self._records()
        v = compare_systems(recs, "gap", "gap", "bfs")
        assert not v.significant
        assert v.faster is None
        assert "inconclusive" in v.summary()

    def test_missing_records(self):
        with pytest.raises(ConfigError):
            compare_systems(self._records(), "gap", "graphmat", "bfs")

    def test_end_to_end_with_pipeline(self, tmp_path):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import Experiment

        cfg = ExperimentConfig(output_dir=tmp_path, scale=9, n_roots=8,
                               systems=("gap", "graphbig"),
                               algorithms=("bfs",))
        analysis = Experiment(cfg).run_all()
        v = compare_systems(analysis.records, "gap", "graphbig", "bfs")
        assert v.faster == "gap"
