"""Integration tests of the five-phase pipeline."""

import json

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def small_experiment(tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("exp"),
        dataset="kronecker", scale=9, n_roots=4,
        algorithms=("bfs", "sssp", "pagerank"))
    exp = Experiment(cfg)
    analysis = exp.run_all()
    return exp, analysis


class TestPhases:
    def test_setup_writes_config(self, small_experiment):
        exp, _ = small_experiment
        cfg_file = exp.config.output_dir / "config.json"
        assert cfg_file.exists()
        assert json.loads(cfg_file.read_text())["scale"] == 9

    def test_setup_rejects_missing_system(self, tmp_path):
        cfg = ExperimentConfig(output_dir=tmp_path)
        object.__setattr__(cfg, "systems", ("gap", "notinstalled"))
        with pytest.raises(ConfigError):
            Experiment(cfg).setup()

    def test_homogenize_produces_dataset(self, small_experiment):
        exp, _ = small_experiment
        assert exp.dataset is not None
        assert exp.dataset.n_vertices == 512
        assert exp.dataset.roots.size == 4

    def test_run_writes_expected_logs(self, small_experiment):
        exp, _ = small_experiment
        logs = sorted(p.relative_to(exp.config.output_dir).as_posix()
                      for p in exp.config.output_dir.rglob("*.log"))
        # Graph500 only BFS; PowerGraph no BFS; others all three.
        assert "logs/gap/bfs-t32.log" in logs
        assert "logs/graph500/bfs-t32.log" in logs
        assert "logs/graph500/sssp-t32.log" not in logs
        assert "logs/powergraph/bfs-t32.log" not in logs
        assert "logs/powergraph/sssp-t32.log" in logs
        assert len(logs) == 3 + 1 + 3 + 3 + 2

    def test_parse_writes_csv(self, small_experiment):
        exp, _ = small_experiment
        csv = exp.config.output_dir / "results.csv"
        assert csv.exists()
        rows = csv.read_text().splitlines()
        assert rows[0].startswith("system,algorithm")
        assert len(rows) > 50

    def test_csv_reload_matches_records(self, small_experiment):
        exp, _ = small_experiment
        loaded = Experiment.load_csv(exp.config.output_dir / "results.csv")
        assert loaded == exp.records

    def test_load_csv_rejects_garbage(self, tmp_path):
        p = tmp_path / "x.csv"
        p.write_text("not,a,results,file\n")
        with pytest.raises(ConfigError):
            Experiment.load_csv(p)

    def test_analyze_before_parse_raises(self, tmp_path):
        cfg = ExperimentConfig(output_dir=tmp_path)
        with pytest.raises(ConfigError):
            Experiment(cfg).analyze()


class TestMeasurements:
    def test_32_points_per_box(self, small_experiment):
        """n_roots runs per (system, algo) cell: the box-plot points."""
        _, analysis = small_experiment
        box = analysis.box("time")
        assert box[("gap", "bfs", "kron-scale9", 32)].n == 4
        assert box[("graphmat", "pagerank", "kron-scale9", 32)].n == 4

    def test_graph500_constructs_once(self, small_experiment):
        """Fig 2: 'The Graph500 only constructs its graph once.'"""
        _, analysis = small_experiment
        builds = analysis.construction_box("bfs")
        assert builds[("graph500", "bfs")].n == 1
        assert builds[("gap", "bfs")].n == 4

    def test_fused_systems_have_no_build_records(self, small_experiment):
        _, analysis = small_experiment
        builds = analysis.construction_box()
        assert not any(k[0] in ("graphbig", "powergraph") for k in builds)

    def test_power_records_present(self, small_experiment):
        _, analysis = small_experiment
        power = analysis.power_box("pkg_watts", "bfs")
        assert set(power) == {"gap", "graph500", "graphbig", "graphmat"}
        # Fig 9: single Graph500 power point.
        assert power["graph500"].n == 1
        assert power["gap"].n == 4

    def test_iterations_recorded_for_pagerank(self, small_experiment):
        _, analysis = small_experiment
        iters = analysis.iterations("pagerank")
        assert set(iters) == {"gap", "graphbig", "graphmat", "powergraph"}

    def test_deterministic_rerun(self, tmp_path_factory):
        """Same seed -> identical CSV (the repeatability the paper's
        abstract promises)."""
        def run(d):
            cfg = ExperimentConfig(output_dir=d, scale=8, n_roots=2,
                                   algorithms=("bfs",),
                                   systems=("gap", "graph500"))
            exp = Experiment(cfg)
            exp.run_all()
            return (d / "results.csv").read_text()

        a = run(tmp_path_factory.mktemp("a"))
        b = run(tmp_path_factory.mktemp("b"))
        assert a == b


def test_pipeline_logging(tmp_path, caplog):
    import logging

    cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                           systems=("gap",), algorithms=("bfs",))
    with caplog.at_level(logging.INFO, logger="repro.pipeline"):
        Experiment(cfg).run_all()
    text = caplog.text
    assert "homogenize: starting" in text
    assert "ran gap/bfs" in text
    assert "run: done" in text


def test_all_eight_algorithms_through_pipeline(tmp_path):
    """The full algorithm surface -- the paper's three, the three
    Graphalytics extras, and the two Sec. V extension kernels -- runs
    through the five phases; capability holes produce skips, not
    errors."""
    cfg = ExperimentConfig(
        output_dir=tmp_path, scale=8, n_roots=2,
        algorithms=("bfs", "sssp", "pagerank", "wcc", "cdlp", "lcc",
                    "bc", "tc"))
    analysis = Experiment(cfg).run_all()
    algos_by_system = {}
    for (system, algo, _, _) in analysis.box("time"):
        algos_by_system.setdefault(system, set()).add(algo)
    assert algos_by_system["gap"] == {
        "bfs", "sssp", "pagerank", "wcc", "bc", "tc"}
    assert algos_by_system["graph500"] == {"bfs"}
    assert algos_by_system["graphbig"] == {
        "bfs", "sssp", "pagerank", "wcc", "cdlp", "lcc"}
    assert algos_by_system["powergraph"] == {
        "sssp", "pagerank", "wcc", "cdlp", "lcc"}
