"""Observability layer: spans, metrics, exporters, trace-driven models.

The tentpole claim is that every run is self-explaining: the span tree
mirrors the harness hierarchy (suite > experiment > cell > attempt >
phase), both clocks are recorded, failures carry their reasons, resume
appends instead of clobbering, and the aggregate metrics replayed from
the event log match what the live registry saw.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.suite import run_paper_suite
from repro.errors import TraceError
from repro.graphalytics.granula import PerformanceModel
from repro.observability import (
    EVENTS_NAME,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    derive_metrics,
    read_events,
    render_svg,
    render_text,
    span_events,
    validate_events,
)

pytestmark = pytest.mark.faulty


def _config(tmp_path, **kwargs):
    base = dict(output_dir=tmp_path, scale=8, n_roots=2,
                systems=("gap", "graph500"), algorithms=("bfs",))
    base.update(kwargs)
    return ExperimentConfig(**base)


def _run_traced(tmp_path, **cfg_kwargs):
    """One traced experiment; returns (experiment, parsed events)."""
    cfg = _config(tmp_path / "exp", **cfg_kwargs)
    tracer = Tracer(tmp_path / "exp" / "trace")
    exp = Experiment(cfg, tracer=tracer)
    exp.run_all()
    tracer.close()
    return exp, read_events(tmp_path / "exp" / "trace")


def test_no_import_cycle_from_systems_side():
    # repro.systems.base imports the tracer, so importing any
    # systems-first entry point in a fresh interpreter must not drag
    # repro.viz -> repro.core -> repro.systems into a cycle.
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.graphalytics.granula"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("epg_retries_total")
        c.inc(system="gap")
        c.inc(2, system="gap")
        c.inc(system="graphmat")
        assert c.value(system="gap") == 3
        assert c.total() == 4

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v, op="read")
        assert h.count(op="read") == 3
        text = reg.to_prometheus()
        assert 'lat_bucket{op="read",le="0.1"} 1' in text
        assert 'lat_bucket{op="read",le="1"} 2' in text
        assert 'lat_bucket{op="read",le="+Inf"} 3' in text
        assert 'lat_count{op="read"} 3' in text

    def test_prometheus_escapes_labels(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(reason='say "hi"\nthere')
        assert '\\"hi\\"\\nthere' in reg.to_prometheus()

    def test_prometheus_escapes_backslash_and_help(self):
        reg = MetricsRegistry()
        reg.counter("c", help_="line one\nline two \\ done").inc(
            path="C:\\tmp\nx")
        text = reg.to_prometheus()
        assert "# HELP c line one\\nline two \\\\ done" in text
        assert 'path="C:\\\\tmp\\nx"' in text
        # Every exposition line is a single physical line.
        assert all("\r" not in line for line in text.splitlines())

    def test_hostile_labels_survive_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(
            0.5, err='Validation: bad "dist"\n(line 2)')
        text = reg.to_prometheus()
        assert 'err="Validation: bad \\"dist\\"\\n(line 2)"' in text
        assert text.count("\n") == len(text.splitlines())

    def test_json_snapshot_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3, k="v")
        reg.gauge("g").set(1.5)
        snap = json.loads(json.dumps(reg.to_dict()))
        assert snap["c"]["samples"] == [{"labels": {"k": "v"},
                                        "value": 3.0}]
        assert snap["g"]["type"] == "gauge"


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_is_inert(self, tmp_path):
        t = Tracer()
        assert not t.enabled
        with t.span("anything") as sp:
            sp.set(k=1)          # no-ops, no file, no error
        t.counter("epg_retries_total")
        t.close()

    def test_span_nesting_and_attrs(self, tmp_path):
        t = Tracer(tmp_path)
        with t.span("outer", category="suite"):
            t.advance_sim(1.0)
            with t.span("inner", category="cell", system="gap") as sp:
                t.advance_sim(0.5)
                sp.set(status="completed")
        t.close()
        events = read_events(tmp_path)
        spans = {ev["name"]: ev for ev in span_events(events)}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["attrs"] == {"system": "gap",
                                           "status": "completed"}
        assert spans["inner"]["t0_sim"] == pytest.approx(1.0)
        assert spans["outer"]["t1_sim"] == pytest.approx(1.5)
        validate_events(events)

    def test_exception_marks_span(self, tmp_path):
        t = Tracer(tmp_path)
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        t.close()
        (ev,) = span_events(read_events(tmp_path))
        assert ev["attrs"]["error"] == "RuntimeError"

    def test_bind_clock_splices_timelines(self, tmp_path):
        from repro.machine.clock import SimulatedClock

        t = Tracer(tmp_path)
        t.advance_sim(10.0)
        clock = SimulatedClock(idle_pkg_watts=40, idle_dram_watts=3)
        t.bind_clock(clock)
        clock.advance(2.0)
        assert t.sim_now == pytest.approx(12.0)
        t.close()


# ----------------------------------------------------------------------
# Validation + exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_validate_rejects_bad_nesting(self):
        bad = [
            {"type": "span", "id": 1, "parent": 2, "name": "child",
             "cat": "cell", "t0_wall": 0.0, "t1_wall": 1.0,
             "t0_sim": 0.0, "t1_sim": 5.0, "attrs": {}},
            {"type": "span", "id": 2, "parent": None, "name": "parent",
             "cat": "suite", "t0_wall": 0.0, "t1_wall": 1.0,
             "t0_sim": 0.0, "t1_sim": 2.0, "attrs": {}},
        ]
        with pytest.raises(TraceError, match="escapes its parent"):
            validate_events(bad)

    def test_validate_counts_orphans_from_interrupted_run(self):
        # Spans emit at close; a hard kill loses still-open ancestors,
        # so a dangling parent id marks interruption, not corruption.
        span = {"type": "span", "id": 2, "parent": 1, "name": "x",
                "cat": "cell", "t0_wall": 0.0, "t1_wall": 1.0,
                "t0_sim": 0.0, "t1_sim": 1.0, "attrs": {}}
        stats = validate_events([span])
        assert stats["orphans"] == 1

    def test_validate_rejects_backwards_sim_time(self):
        bad = [
            {"type": "span", "id": 1, "parent": None, "name": "a",
             "cat": "cell", "t0_wall": 0.0, "t1_wall": 1.0,
             "t0_sim": 0.0, "t1_sim": 5.0, "attrs": {}},
            {"type": "counter", "name": "c", "labels": {}, "inc": 1.0,
             "t_sim": 2.0},
        ]
        with pytest.raises(TraceError, match="backwards"):
            validate_events(bad)

    def test_read_events_rejects_malformed_json(self, tmp_path):
        (tmp_path / EVENTS_NAME).write_text("{nope\n", encoding="utf-8")
        with pytest.raises(TraceError, match="malformed"):
            read_events(tmp_path)

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(TraceError):
            read_events(tmp_path)

    def test_read_events_drops_torn_final_line(self, tmp_path):
        # A hard-killed writer leaves a partial line with no trailing
        # newline; the log must stay inspectable.
        (tmp_path / EVENTS_NAME).write_text(
            '{"type": "meta", "version": 1, "resumed": false, '
            '"t_sim": 0.0, "wall_unix": 0.0}\n{"type": "spa',
            encoding="utf-8")
        events = read_events(tmp_path)
        assert len(events) == 1 and events[0]["type"] == "meta"

    def test_tail_events_reports_torn_final_line(self, tmp_path):
        from repro.observability import tail_events

        (tmp_path / EVENTS_NAME).write_text(
            '{"type": "meta", "version": 1, "resumed": false, '
            '"t_sim": 0.0, "wall_unix": 0.0}\n{"type": "spa',
            encoding="utf-8")
        events, truncated = tail_events(tmp_path / EVENTS_NAME)
        assert truncated and len(events) == 1
        # The summary carries the flag so `epg trace --validate` can
        # say "in-flight append" instead of silently dropping bytes.
        stats = validate_events(events, truncated_tail=truncated)
        assert stats["truncated_tail"] is True

    def test_tail_events_strict_rejects_torn_final_line(self, tmp_path):
        from repro.observability import tail_events

        (tmp_path / EVENTS_NAME).write_text(
            '{"type": "meta", "version": 1, "resumed": false, '
            '"t_sim": 0.0, "wall_unix": 0.0}\n{"type": "spa',
            encoding="utf-8")
        with pytest.raises(TraceError, match="truncated final line"):
            tail_events(tmp_path / EVENTS_NAME, strict=True)
        # A cleanly terminated log passes strict mode untouched.
        (tmp_path / EVENTS_NAME).write_text(
            '{"type": "meta", "version": 1, "resumed": false, '
            '"t_sim": 0.0, "wall_unix": 0.0}\n', encoding="utf-8")
        events, truncated = tail_events(tmp_path / EVENTS_NAME,
                                        strict=True)
        assert not truncated and len(events) == 1

    def test_resume_truncates_torn_final_line(self, tmp_path):
        t = Tracer(tmp_path)
        with t.span("work", category="cell"):
            t.advance_sim(1.0)
        t.close()
        log = tmp_path / EVENTS_NAME
        log.write_text(log.read_text(encoding="utf-8") + '{"type": "spa',
                       encoding="utf-8")
        t2 = Tracer(tmp_path, resume=True)
        with t2.span("more", category="cell"):
            t2.advance_sim(1.0)
        t2.close()
        events = read_events(tmp_path)
        assert all(ev.get("type") in ("meta", "span") for ev in events)
        assert validate_events(events)["spans"] == 2

    def test_chrome_trace_shape(self, tmp_path):
        t = Tracer(tmp_path)
        with t.span("work", category="cell"):
            t.advance_sim(0.25)
        t.counter("epg_retries_total")
        t.close()
        doc = chrome_trace(read_events(tmp_path))
        assert doc["displayTimeUnit"] == "ms"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["name"] == "work"
        assert xs[0]["dur"] == pytest.approx(0.25e6)
        assert any(e["ph"] == "C" and e["name"] == "epg_retries_total"
                   for e in doc["traceEvents"])

    def test_derived_metrics_match_live_registry(self, tmp_path):
        t = Tracer(tmp_path)
        t.counter("epg_retries_total", system="gap")
        t.observe("epg_kernel_seconds", 0.2, system="gap",
                  algorithm="bfs")
        t.gauge("epg_progress", 0.5)
        live = t.metrics.to_prometheus()
        t.close()
        replayed = derive_metrics(read_events(tmp_path)).to_prometheus()
        assert replayed == live

    def test_hostile_label_values_round_trip_through_event_log(
            self, tmp_path):
        """Label values carrying quotes, newlines, and backslashes (the
        ``epg_serve_*`` request labels can) survive the events.jsonl
        round trip and come out escaped per the exposition format."""
        hostile = 'bad "quote"\nnew\\line'
        t = Tracer(tmp_path)
        t.counter("epg_serve_requests_total", endpoint="/query",
                  error=hostile)
        t.observe("epg_serve_request_seconds", 0.01, graph=hostile)
        live = t.metrics.to_prometheus()
        t.close()
        replayed = derive_metrics(read_events(tmp_path)).to_prometheus()
        assert replayed == live
        assert 'bad \\"quote\\"\\nnew\\\\line' in replayed
        # No label value may tear an exposition line in two.
        for line in replayed.splitlines():
            assert line.startswith(("#", "epg_serve_"))


# ----------------------------------------------------------------------
# Instrumented pipeline
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_span_hierarchy_of_clean_run(self, tmp_path):
        exp, events = _run_traced(tmp_path)
        validate_events(events)
        spans = span_events(events)
        cats = {ev["cat"] for ev in spans}
        assert {"pipeline", "dataset", "cell", "attempt", "exec",
                "phase"} <= cats
        cells = [ev for ev in spans if ev["cat"] == "cell"]
        assert {ev["name"] for ev in cells} == {
            "cell:gap/bfs/t32", "cell:graph500/bfs/t32"}
        for cell in cells:
            assert cell["attrs"]["status"] == "completed"

    def test_fault_produces_three_sibling_attempt_spans(self, tmp_path):
        """Two forced crashes -> three attempt spans under one cell,
        the first two carrying failure reasons."""
        _, events = _run_traced(tmp_path,
                                fault_spec="gap/bfs/t32:crash:2")
        validate_events(events)
        spans = span_events(events)
        (cell,) = [ev for ev in spans
                   if ev["name"] == "cell:gap/bfs/t32"]
        attempts = sorted(
            (ev for ev in spans if ev["cat"] == "attempt"
             and ev["parent"] == cell["id"]),
            key=lambda ev: ev["attrs"]["retry_index"])
        assert [a["attrs"]["retry_index"] for a in attempts] == [0, 1, 2]
        for failed in attempts[:2]:
            assert failed["attrs"]["status"] == "crash"
            assert "InjectedCrashError" in failed["attrs"][
                "failure_reason"]
        assert attempts[2]["attrs"]["status"] == "ok"
        assert cell["attrs"]["status"] == "completed"
        reg = derive_metrics(events)
        assert reg.get("epg_retries_total").total() == 2
        assert reg.get("epg_attempts_total").value(
            system="gap", algorithm="bfs", status="crash") == 2

    def test_quarantine_counted(self, tmp_path):
        _, events = _run_traced(tmp_path,
                                fault_spec="gap/bfs/t32:crash:3",
                                max_retries=2)
        reg = derive_metrics(events)
        assert reg.get("epg_quarantines_total").total() == 1
        (cell,) = [ev for ev in span_events(events)
                   if ev["name"] == "cell:gap/bfs/t32"]
        assert cell["attrs"]["status"] == "quarantined"

    def test_kernel_phase_spans_sum_to_reported_times(self, tmp_path):
        """Acceptance: per-execution kernel spans sum to the kernel
        times the parse phase reports (the log round-trips them)."""
        exp, events = _run_traced(tmp_path)
        reported = sum(r.value for r in exp.records
                       if r.system == "gap" and r.metric == "time")
        traced = sum(ev["t1_sim"] - ev["t0_sim"]
                     for ev in span_events(events)
                     if ev["name"] == "phase:kernel"
                     and ev["attrs"]["system"] == "gap")
        assert traced == pytest.approx(reported, rel=1e-4)

    def test_resume_appends_event_log(self, tmp_path):
        """Checkpoint-resume extends the same JSONL, never clobbers."""
        cfg_kwargs = dict(fault_spec="gap/bfs/t32:crash:9",
                          max_retries=0)
        exp, events_first = _run_traced(tmp_path, **cfg_kwargs)
        n_first = len(events_first)
        # Re-enter the same experiment dir with resume semantics.
        tracer = Tracer(tmp_path / "exp" / "trace", resume=True)
        cfg = _config(tmp_path / "exp", **cfg_kwargs)
        exp2 = Experiment(cfg, tracer=tracer)
        exp2.run()
        tracer.close()
        events = read_events(tmp_path / "exp" / "trace")
        assert len(events) > n_first
        assert events[:n_first] == events_first     # append, not clobber
        metas = [ev for ev in events if ev["type"] == "meta"]
        assert [m["resumed"] for m in metas] == [False, True]
        validate_events(events)                     # still monotonic
        # Completed cells were skipped via the checkpoint...
        reg = derive_metrics(events)
        assert reg.get("epg_checkpoint_hits_total").value(
            cell="graph500/bfs/t32") == 1

    def test_phase_timer_closing_line_always_emitted(self, caplog):
        import logging

        from repro.logging_util import phase_timer

        with caplog.at_level(logging.INFO, logger="repro.pipeline"):
            with phase_timer("good"):
                pass
            with pytest.raises(ValueError):
                with phase_timer("bad"):
                    raise ValueError()
        messages = [r.getMessage() for r in caplog.records]
        assert any("good: done in" in m for m in messages)
        assert any("bad: failed after" in m for m in messages)

    def test_phase_timer_records_span(self, tmp_path):
        from repro.logging_util import phase_timer

        t = Tracer(tmp_path)
        with phase_timer("homogenize", tracer=t):
            t.advance_sim(0.1)
        t.close()
        (ev,) = span_events(read_events(tmp_path))
        assert ev["name"] == "homogenize" and ev["cat"] == "pipeline"


# ----------------------------------------------------------------------
# Granula auto-population
# ----------------------------------------------------------------------
class TestGranulaFromTrace:
    def test_standard_model_fully_populated(self, tmp_path):
        _, events = _run_traced(tmp_path)
        model = PerformanceModel.from_trace(events, "gap", "bfs")
        load = model.root.child("LoadGraph")
        assert load.child("ReadFile").duration_s > 0
        assert load.child("BuildStructure").duration_s > 0
        kernel = model.root.child("ProcessGraph").child(
            "ExecuteAlgorithm")
        assert kernel.duration_s > 0
        # Every node measured: the render shows no '?' placeholders.
        assert "?" not in model.report()
        assert model.root.total_s() > 0

    def test_unknown_cell_raises(self, tmp_path):
        _, events = _run_traced(tmp_path)
        with pytest.raises(TraceError):
            PerformanceModel.from_trace(events, "powergraph", "bfs")


# ----------------------------------------------------------------------
# Suite + CLI surface
# ----------------------------------------------------------------------
class TestSuiteAndCli:
    @pytest.mark.slow
    def test_traced_suite_and_cli(self, tmp_path, capsys):
        out = tmp_path / "suite"
        run_paper_suite(out, scale=8, n_roots=2, render_svg=False,
                        fault_spec="gap/bfs/t32:crash:9", max_retries=1,
                        trace=True)
        trace_dir = out / "trace"
        events = read_events(trace_dir)
        validate_events(events)
        # Exported artifacts.
        doc = json.loads((trace_dir / "trace.json").read_text())
        assert doc["traceEvents"]
        prom = (trace_dir / "metrics.prom").read_text()
        assert "epg_retries_total" in prom
        assert "epg_quarantines_total" in prom
        assert (trace_dir / "metrics.json").exists()
        # REPORT.md grew an Observability section.
        report = (out / "REPORT.md").read_text()
        assert "## Observability" in report
        assert "trace/trace.json" in report
        assert "<h2>Observability</h2>" in (out / "report.html"
                                            ).read_text()
        # epg metrics replays the same snapshot the suite wrote.
        assert main(["metrics", str(out)]) == 0
        assert capsys.readouterr().out == prom
        # epg trace --validate accepts the log.
        assert main(["trace", str(out), "--validate"]) == 0
        assert "valid" in capsys.readouterr().out
        # epg trace prints the span tree.
        assert main(["trace", str(out), "--depth", "1"]) == 0
        assert "suite" in capsys.readouterr().out

    @pytest.mark.slow
    def test_untraced_suite_writes_no_trace(self, tmp_path):
        out = tmp_path / "suite"
        run_paper_suite(out, scale=8, n_roots=2, render_svg=False)
        assert not (out / "trace").exists()
        report = (out / "REPORT.md").read_text()
        assert "## Observability" not in report

    def test_metrics_cli_errors_cleanly(self, tmp_path, capsys):
        rc = main(["metrics", str(tmp_path)])
        assert rc == 12      # TraceError exit code
        assert "TraceError" in capsys.readouterr().err

    def test_timeline_renderers(self, tmp_path):
        _, events = _run_traced(tmp_path)
        text = render_text(events)
        assert "cell:gap/bfs/t32" in text
        svg = render_svg(events, tmp_path / "timeline.svg")
        assert svg.startswith("<?xml") and "<rect" in svg
        assert (tmp_path / "timeline.svg").exists()
