"""Tests for ExperimentConfig validation."""

from pathlib import Path

import pytest

from repro.core.config import ExperimentConfig
from repro.errors import ConfigError


def _cfg(tmp_path, **kw):
    return ExperimentConfig(output_dir=tmp_path, **kw)


def test_defaults_mirror_paper(tmp_path):
    cfg = _cfg(tmp_path)
    assert cfg.n_roots == 32                 # Sec. III-B
    assert cfg.epsilon == pytest.approx(6e-8)  # Sec. IV-A
    assert cfg.thread_counts == (32,)
    assert cfg.machine.n_threads == 72


def test_dataset_label(tmp_path):
    assert _cfg(tmp_path, scale=22).dataset_label == "kron-scale22"
    assert _cfg(tmp_path, dataset="dota-league").dataset_label == \
        "dota-league"
    assert _cfg(tmp_path, dataset="snap-file",
                snap_path=Path("/x/web-Google.txt")).dataset_label == \
        "web-Google"


def test_rejects_unknown_dataset(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, dataset="twitter")


def test_snap_requires_path(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, dataset="snap-file")


def test_rejects_unknown_system(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, systems=("gap", "ligra"))


def test_rejects_unknown_algorithm(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, algorithms=("bfs", "apsp"))


def test_accepts_extension_algorithms(tmp_path):
    """bc/tc are registered extension kernels (Sec. V)."""
    cfg = _cfg(tmp_path, algorithms=("bc", "tc"))
    assert cfg.algorithms == ("bc", "tc")


def test_rejects_excess_threads(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, thread_counts=(128,))


def test_rejects_bad_scale(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, scale=0)


def test_rejects_bad_epsilon(tmp_path):
    with pytest.raises(ConfigError):
        _cfg(tmp_path, epsilon=0.0)


def test_with_updates(tmp_path):
    cfg = _cfg(tmp_path).with_(scale=10)
    assert cfg.scale == 10
    assert cfg.output_dir == tmp_path


def test_to_dict_roundtrips_fields(tmp_path):
    d = _cfg(tmp_path, scale=9).to_dict()
    assert d["scale"] == 9
    assert d["systems"] == list(
        ("gap", "graph500", "graphbig", "graphmat", "powergraph"))
