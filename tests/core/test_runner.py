"""Unit tests for the run-phase executor."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.logs import parse_log
from repro.core.runner import Runner


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cfg = ExperimentConfig(output_dir=tmp_path_factory.mktemp("run"),
                           scale=9, n_roots=3)
    exp = Experiment(cfg)
    exp.setup()
    dataset = exp.homogenize()
    return Runner(cfg, dataset)


def test_skips_unsupported_cells(runner):
    assert runner.run_system_algorithm("powergraph", "bfs", 32) is None
    assert runner.run_system_algorithm("graph500", "pagerank", 32) is None


def test_graph500_skips_real_world(tmp_path):
    from repro.datasets.homogenize import homogenize
    from repro.datasets.realworld import dota_league

    cfg = ExperimentConfig(output_dir=tmp_path, dataset="dota-league",
                           n_roots=2)
    dataset = homogenize(dota_league(1 / 512), tmp_path / "ds")
    r = Runner(cfg, dataset)
    assert r.run_system_algorithm("graph500", "bfs", 32) is None


def test_log_path_layout(runner):
    p = runner.log_path("gap", "bfs", 16)
    assert p.as_posix().endswith("logs/gap/bfs-t16.log")


def test_gap_log_has_all_roots(runner):
    path = runner.run_system_algorithm("gap", "bfs", 32)
    records = parse_log(path)
    roots = {r.root for r in records if r.metric == "time"}
    assert len(roots) == 3


def test_graph500_single_power_window(runner):
    path = runner.run_system_algorithm("graph500", "bfs", 32)
    records = parse_log(path)
    assert sum(1 for r in records if r.metric == "pkg_joules") == 1
    assert sum(1 for r in records if r.metric == "time") == 3


def test_pagerank_runs_n_roots_times(runner):
    """'For PageRank, we simply run the algorithm 32 times' (here 3)."""
    path = runner.run_system_algorithm("graphmat", "pagerank", 32)
    records = parse_log(path)
    assert sum(1 for r in records if r.metric == "time") == 3
    # Rootless runs carry root=-1.
    assert all(r.root == -1 for r in records if r.metric == "time")


def test_power_disabled(tmp_path):
    cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                           measure_power=False,
                           systems=("gap",), algorithms=("bfs",))
    exp = Experiment(cfg)
    exp.setup()
    dataset = exp.homogenize()
    path = Runner(cfg, dataset).run_system_algorithm("gap", "bfs", 32)
    records = parse_log(path)
    assert not any("joule" in r.metric for r in records)


def test_trial_jitter_varies_but_kernel_output_cached(runner):
    """Multiple trials re-jitter the priced time without rerunning the
    kernel; values must differ across trials of the same root."""
    cfg = runner.config.with_(n_trials=3, n_roots=2)
    r2 = Runner(cfg, runner.dataset)
    path = r2.run_system_algorithm("gap", "sssp", 32)
    records = parse_log(path)
    by_root: dict[int, set] = {}
    for rec in records:
        if rec.metric == "time":
            by_root.setdefault(rec.root, set()).add(rec.value)
    for root, vals in by_root.items():
        assert len(vals) == 3, f"trials of root {root} identical"


def test_power_traces_captured(tmp_path):
    """capture_power_traces writes one CSV per measured kernel window
    whose energy matches the RAPL log record."""
    import numpy as np

    from repro.core.logs import parse_log

    cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                           systems=("gap",), algorithms=("bfs",),
                           capture_power_traces=True,
                           trace_sample_hz=200_000.0)
    exp = Experiment(cfg)
    exp.setup()
    dataset = exp.homogenize()
    path = Runner(cfg, dataset).run_system_algorithm("gap", "bfs", 32)
    traces = sorted((tmp_path / "traces").glob("gap-bfs-*.csv"))
    assert len(traces) == 2
    records = parse_log(path)
    pkg_by_root = {r.root: r.value for r in records
                   if r.metric == "pkg_joules"}
    for trace_path in traces:
        body = np.loadtxt(trace_path, delimiter=",", skiprows=1,
                          ndmin=2)
        root = int(trace_path.stem.split("-r")[1].split("-")[0])
        dt = 1.0 / cfg.trace_sample_hz
        trace_energy = body[:, 1].sum() * dt
        assert trace_energy == pytest.approx(pkg_by_root[root],
                                             rel=0.05)


def test_traces_off_by_default(tmp_path):
    cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                           systems=("gap",), algorithms=("bfs",))
    exp = Experiment(cfg)
    exp.setup()
    dataset = exp.homogenize()
    Runner(cfg, dataset).run_system_algorithm("gap", "bfs", 32)
    assert not (tmp_path / "traces").exists()


class TestOutputValidation:
    def test_validation_passes_on_honest_systems(self, tmp_path):
        cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                               systems=("gap", "graph500", "graphmat"),
                               algorithms=("bfs", "sssp", "pagerank"),
                               validate_outputs=True)
        exp = Experiment(cfg)
        exp.setup()
        dataset = exp.homogenize()
        r = Runner(cfg, dataset)
        for sysname in cfg.systems:
            for algo in cfg.algorithms:
                r.run_system_algorithm(sysname, algo, 32)  # no raise

    def test_validation_catches_cheating_system(self, tmp_path):
        """A system returning garbage must be rejected during the run
        phase (the Graph500 rule)."""
        import numpy as np

        from repro.errors import ValidationError
        from repro.systems.gap import GapSystem
        from repro.systems.registry import (
            register_system,
            unregister_system,
        )

        class CheatingGap(GapSystem):
            name = "gap"  # masquerade in the registry lookup

            def _run_sssp(self, loaded, root, **kw):
                out, profile, it, counters = super()._run_sssp(
                    loaded, root, **kw)
                out["dist"] = np.zeros_like(out["dist"])  # garbage
                return out, profile, it, counters

        cfg = ExperimentConfig(output_dir=tmp_path, scale=8, n_roots=2,
                               systems=("gap",), algorithms=("sssp",),
                               validate_outputs=True)
        exp = Experiment(cfg)
        exp.setup()
        dataset = exp.homogenize()
        register_system("gap", CheatingGap, replace=True)
        try:
            with pytest.raises(ValidationError):
                Runner(cfg, dataset).run_system_algorithm(
                    "gap", "sssp", 32)
        finally:
            unregister_system("gap")  # built-ins re-register lazily
