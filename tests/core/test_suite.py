"""Tests for the one-command full-paper reproduction suite."""

import pytest

from repro.core.provenance import verify
from repro.core.suite import run_paper_suite


@pytest.fixture(scope="module")
def suite_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("suite")
    run_paper_suite(out, scale=9, n_roots=3, render_svg=True)
    return out


def test_report_written(suite_dir):
    report = (suite_dir / "REPORT.md").read_text()
    for caption in ("Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6",
                    "Fig 8", "Fig 9", "Table I", "Table II",
                    "Table III", "Fig 7"):
        assert caption in report, caption


def test_experiment_directories_complete(suite_dir):
    for sub in ("kron", "dota", "pat", "scaling"):
        assert (suite_dir / sub / "results.csv").exists(), sub
        assert (suite_dir / sub / "logs").is_dir(), sub


def test_figures_rendered(suite_dir):
    svgs = list((suite_dir / "figures").glob("*.svg"))
    names = {p.name for p in svgs}
    assert "fig2-time.svg" in names
    assert "fig5-speedup.svg" in names
    assert "fig9-pkg_watts.svg" in names


def test_graphalytics_html_pages(suite_dir):
    pages = list((suite_dir / "graphalytics").glob("report-*.html"))
    assert {p.name for p in pages} == {
        "report-graphbig.html", "report-powergraph.html",
        "report-graphmat.html"}


def test_provenance_verifies(suite_dir):
    for sub in ("kron", "scaling"):
        ok, problems = verify(suite_dir / sub)
        assert ok, (sub, problems)


def test_table1_has_na_and_flaw_shape(suite_dir):
    report = (suite_dir / "REPORT.md").read_text()
    # cit-Patents SSSP N/A appears in the Table I block.  ("Table I:"
    # with the colon -- plain "Table I" also prefixes "Table III".)
    idx = report.index("Table I:")
    block = report[idx:report.index("Table II:")]
    assert "N/A" in block


def test_html_report_written(suite_dir):
    body = (suite_dir / "report.html").read_text()
    assert "<th>median</th>" in body
