"""Tests for experiment provenance capture/verify."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.provenance import capture, digest_file, verify
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def done_experiment(tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("prov"), scale=8, n_roots=2,
        systems=("gap",), algorithms=("bfs",))
    Experiment(cfg).run_all()
    return cfg


def test_capture_writes_record(done_experiment):
    path = capture(done_experiment)
    assert path.name == "provenance.json"
    text = path.read_text()
    assert "results_digest" in text
    assert "numpy" in text


def test_verify_clean_directory(done_experiment):
    capture(done_experiment)
    ok, problems = verify(done_experiment.output_dir)
    assert ok, problems


def test_verify_detects_tampered_results(done_experiment):
    capture(done_experiment)
    csv = done_experiment.output_dir / "results.csv"
    csv.write_text(csv.read_text().replace("gap", "gap2"))
    ok, problems = verify(done_experiment.output_dir)
    assert not ok
    assert any("digest" in p for p in problems)
    # Restore for other tests (module-scoped fixture).
    Experiment(done_experiment).run_all()
    capture(done_experiment)


def test_verify_missing_record(tmp_path):
    ok, problems = verify(tmp_path)
    assert not ok
    assert problems == ["no provenance.json"]


def test_capture_requires_results(tmp_path):
    cfg = ExperimentConfig(output_dir=tmp_path)
    with pytest.raises(ConfigError):
        capture(cfg)


def test_digest_stable_and_content_sensitive(tmp_path):
    a = tmp_path / "a"
    a.write_text("hello")
    assert digest_file(a) == digest_file(a)
    b = tmp_path / "b"
    b.write_text("hello!")
    assert digest_file(a) != digest_file(b)


def test_rerun_reproduces_digest(tmp_path_factory):
    """The determinism promise, checked through the digest."""
    def run(d):
        cfg = ExperimentConfig(output_dir=d, scale=8, n_roots=2,
                               systems=("graph500",),
                               algorithms=("bfs",))
        Experiment(cfg).run_all()
        return digest_file(d / "results.csv")

    d1 = run(tmp_path_factory.mktemp("r1"))
    d2 = run(tmp_path_factory.mktemp("r2"))
    assert d1 == d2
