"""Resilient suite execution: faults, retries, checkpoints, salvage.

The paper's harness survives benchmarking reality -- crashing runs,
hangs at high thread counts, half-written logs.  These tests drive the
same reality through the reproduction on purpose, via the seeded
:class:`FaultInjector`, and check that every failure degrades instead
of destroying: retries recover transients, quarantine contains
permanent failures, checkpoints make interruption cheap, and the log
parser salvages what is salvageable.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.logs import LogWriter, parse_all_logs, parse_log
from repro.core.runner import Runner
from repro.core.suite import resume_paper_suite, run_paper_suite
from repro.errors import (
    CellQuarantinedError,
    CheckpointError,
    ConfigError,
    LogParseError,
)
from repro.ioutil import atomic_write_text
from repro.resilience import (
    FaultInjector,
    RetryPolicy,
    SuiteCheckpoint,
    parse_fault_spec,
)

pytestmark = pytest.mark.faulty


def _config(tmp_path, **kwargs):
    base = dict(output_dir=tmp_path, scale=8, n_roots=2,
                systems=("gap", "graph500"), algorithms=("bfs",))
    base.update(kwargs)
    return ExperimentConfig(**base)


# ----------------------------------------------------------------------
# Fault spec + injector
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_clauses(self):
        rules = parse_fault_spec(
            "gap/bfs/t32:crash:2; graphmat/*/*:hang; */bfs/*:corrupt@0.25")
        assert len(rules) == 3
        assert rules[0].threads == 32 and rules[0].attempts == 2
        assert rules[1].kind == "hang" and rules[1].threads is None
        assert rules[2].probability == 0.25

    @pytest.mark.parametrize("bad", [
        "gap/bfs:crash",            # cell not 3 components
        "gap/bfs/t32:explode",      # unknown kind
        "gap/bfs/x32:crash",        # bad threads
        "gap/bfs/t32:crash@1.5",    # probability out of range
        "gap/bfs/t32:crash:0",      # count < 1
        "",                         # no clauses
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigError):
            parse_fault_spec(bad)

    def test_config_validates_fault_spec(self, tmp_path):
        with pytest.raises(ConfigError):
            _config(tmp_path, fault_spec="nonsense")

    def test_same_seed_same_faults(self):
        """Probabilistic faults are a pure function of (seed, identity)."""
        spec = "*/bfs/*:crash@0.5"
        a = FaultInjector(7, spec)
        b = FaultInjector(7, spec)
        cells = [("gap", "bfs", t, k) for t in (1, 32) for k in range(10)]
        da = [a.fault_for(*c) for c in cells]
        db = [b.fault_for(*c) for c in cells]
        assert da == db
        assert any(f is not None for f in da)
        assert any(f is None for f in da)

    def test_different_seed_different_faults(self):
        spec = "*/bfs/*:crash@0.5"
        cells = [("gap", "bfs", 32, k) for k in range(32)]
        da = [FaultInjector(7, spec).fault_for(*c) is None for c in cells]
        db = [FaultInjector(8, spec).fault_for(*c) is None for c in cells]
        assert da != db

    def test_count_limits_attempts(self):
        inj = FaultInjector(1, "gap/bfs/t32:crash:2")
        assert inj.fault_for("gap", "bfs", 32, 0) is not None
        assert inj.fault_for("gap", "bfs", 32, 1) is not None
        assert inj.fault_for("gap", "bfs", 32, 2) is None
        assert inj.fault_for("gap", "bfs", 16, 0) is None   # wrong cell


# ----------------------------------------------------------------------
# Retry / quarantine through the pipeline
# ----------------------------------------------------------------------
class TestRetryAndQuarantine:
    def test_retry_then_succeed(self, tmp_path):
        cfg = _config(tmp_path, fault_spec="gap/bfs/t32:crash:2",
                      max_retries=3)
        exp = Experiment(cfg)
        analysis = exp.run_all()
        oc = next(o for o in exp.cell_outcomes if o.cell == "gap/bfs/t32")
        assert oc.status == "completed"
        statuses = [a.status for a in oc.attempts]
        assert statuses == ["crash", "crash", "ok"]
        # Failed attempts record a backoff; the final success does not.
        assert all(a.backoff_s > 0 for a in oc.attempts[:2])
        assert oc.attempts[2].backoff_s is None
        # Exponential: second nominal backoff is ~2x the first (jittered).
        assert oc.attempts[1].backoff_s > oc.attempts[0].backoff_s
        # The recovered cell's records are present and intact.
        assert "gap" in {r.system for r in analysis.records}

    def test_quarantine_after_exhaustion(self, tmp_path):
        cfg = _config(tmp_path, fault_spec="gap/bfs/t32:crash",
                      max_retries=1)
        exp = Experiment(cfg)
        analysis = exp.run_all()     # must not raise
        assert [o.cell for o in exp.quarantined] == ["gap/bfs/t32"]
        oc = exp.quarantined[0]
        assert len(oc.attempts) == 2
        assert all(a.status == "crash" for a in oc.attempts)
        # Downstream tolerates the hole like the paper tolerates
        # PowerGraph-without-BFS.
        assert {r.system for r in analysis.records} == {"graph500"}
        ck = SuiteCheckpoint.load_or_create(tmp_path, cfg)
        with pytest.raises(CellQuarantinedError):
            ck.log_path_for("gap/bfs/t32")

    def test_hang_records_timeout_at_deadline(self, tmp_path):
        cfg = _config(tmp_path, fault_spec="gap/bfs/t32:hang",
                      max_retries=0, cell_timeout_s=5.0)
        exp = Experiment(cfg)
        exp.setup()
        exp.homogenize()
        exp.run()
        (oc,) = exp.quarantined
        assert oc.attempts[0].status == "timeout"
        assert oc.attempts[0].duration_s == pytest.approx(5.0)
        assert "CellTimeoutError" in oc.attempts[0].error

    def test_attempt_log_deterministic(self, tmp_path_factory):
        """Same seed + same fault spec => identical attempt ledgers."""
        def attempts(d):
            cfg = _config(d, fault_spec="gap/bfs/t32:crash:2",
                          max_retries=2)
            exp = Experiment(cfg)
            exp.setup()
            exp.homogenize()
            exp.run()
            return [o.to_dict() for o in exp.cell_outcomes]

        a = attempts(tmp_path_factory.mktemp("a"))
        b = attempts(tmp_path_factory.mktemp("b"))
        assert a == b


# ----------------------------------------------------------------------
# Drain (graceful shutdown) x retry interaction
# ----------------------------------------------------------------------
class TestDrainQuarantine:
    """A cell that fails while the process is draining must quarantine
    immediately -- and exactly once -- instead of burning retries the
    process no longer has."""

    def test_drain_mid_retry_quarantines_exactly_once(
            self, tmp_path, monkeypatch):
        from repro.core.report import format_failures_section
        from repro.observability import Tracer
        from repro.resilience import request_drain, reset_drain

        cfg = _config(tmp_path, fault_spec="gap/bfs/t32:crash",
                      max_retries=3)
        tracer = Tracer(tmp_path / "trace")
        exp = Experiment(cfg, tracer=tracer)

        # The drain arrives *during* the first attempt, as SIGTERM would.
        real = Runner.run_system_algorithm

        def run_and_drain(self, system, algorithm, n_threads, **kw):
            if system == "gap":
                request_drain()
            return real(self, system, algorithm, n_threads, **kw)

        monkeypatch.setattr(Runner, "run_system_algorithm", run_and_drain)
        try:
            exp.run_all()
        finally:
            reset_drain()

        (oc,) = exp.quarantined
        assert oc.cell == "gap/bfs/t32"
        assert oc.status == "quarantined"
        # Only the in-flight attempt was spent; no backoff scheduled.
        assert len(oc.attempts) == 1
        assert oc.attempts[0].backoff_s is None
        # Counted exactly once in metrics -- no retries, one quarantine.
        assert tracer.metrics.get("epg_quarantines_total").total() == 1
        assert tracer.metrics.get("epg_retries_total") is None
        # And exactly once in the REPORT failure ledger.
        ledger = format_failures_section(
            {"exp": list(exp.cell_outcomes)})
        assert ledger.count("`exp:gap/bfs/t32` **quarantined**") == 1
        assert ledger.count("quarantined") == 1
        # The checkpoint agrees: one quarantined cell, no double entry.
        ck = SuiteCheckpoint.load_or_create(tmp_path, cfg)
        assert [c for c, e in ck.cells.items()
                if e.status == "quarantined"] == ["gap/bfs/t32"]

    def test_predrained_supervisor_spends_single_attempt(self, tmp_path):
        from repro.resilience import request_drain, reset_drain

        cfg = _config(tmp_path, fault_spec="gap/bfs/t32:crash:2",
                      max_retries=3)
        exp = Experiment(cfg)
        request_drain()
        try:
            exp.run_all()
        finally:
            reset_drain()
        # Without drain this cell recovers on attempt 3
        # (test_retry_then_succeed); draining forfeits the retries.
        (oc,) = exp.quarantined
        assert oc.cell == "gap/bfs/t32"
        assert len(oc.attempts) == 1


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_rerun_does_zero_new_work(self, tmp_path, monkeypatch):
        cfg = _config(tmp_path)
        first = Experiment(cfg)
        first.setup()
        first.homogenize()
        paths = first.run()

        def bomb(self, *args, **kwargs):
            raise AssertionError("completed cell re-executed")

        monkeypatch.setattr(Runner, "run_system_algorithm", bomb)
        again = Experiment(cfg)
        again.setup()
        again.homogenize()
        assert again.run() == paths
        assert [o.status for o in again.cell_outcomes] == [
            "completed", "completed"]

    def test_config_change_resets_checkpoint(self, tmp_path):
        cfg = _config(tmp_path)
        Experiment(cfg).run_all()
        cfg2 = cfg.with_(algorithms=("bfs", "sssp"))
        exp = Experiment(cfg2)
        exp.run_all()
        cells = {o.cell for o in exp.cell_outcomes}
        assert "gap/sssp/t32" in cells

    def test_corrupt_checkpoint_raises(self, tmp_path):
        cfg = _config(tmp_path)
        (tmp_path / "checkpoint.json").write_text("{not json", "utf-8")
        exp = Experiment(cfg)
        exp.setup()
        exp.homogenize()
        with pytest.raises(CheckpointError):
            exp.run()

    @pytest.mark.slow
    def test_interrupted_suite_resumes_byte_identical(
            self, tmp_path_factory, monkeypatch):
        """Kill a suite partway; --resume must reproduce the exact
        REPORT.md of an uninterrupted run (same seed)."""
        params = dict(scale=8, n_roots=2, render_svg=False)
        clean = tmp_path_factory.mktemp("clean")
        run_paper_suite(clean, **params)
        reference = (clean / "REPORT.md").read_bytes()

        interrupted = tmp_path_factory.mktemp("interrupted")
        real = Runner.run_system_algorithm
        calls = {"n": 0}

        def dying(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 7:
                raise KeyboardInterrupt
            return real(self, *args, **kwargs)

        monkeypatch.setattr(Runner, "run_system_algorithm", dying)
        with pytest.raises(KeyboardInterrupt):
            run_paper_suite(interrupted, **params)
        monkeypatch.setattr(Runner, "run_system_algorithm", real)

        report = resume_paper_suite(interrupted)
        assert report.read_bytes() == reference

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            resume_paper_suite(tmp_path)


# ----------------------------------------------------------------------
# Degraded suite + report ledger
# ----------------------------------------------------------------------
class TestDegradedSuite:
    @pytest.mark.slow
    def test_permanent_fault_quarantines_and_reports(self, tmp_path):
        """Acceptance: a permanently crashing cell leaves the suite
        complete, quarantined, and named in the Failures section."""
        report = run_paper_suite(tmp_path, scale=8, n_roots=2,
                                 render_svg=False,
                                 fault_spec="gap/bfs/t32:crash",
                                 max_retries=1)
        text = report.read_text()
        assert "## Failures and retries" in text
        assert "gap/bfs/t32" in text
        assert "quarantined" in text
        assert "backoff" in text
        assert SuiteCheckpoint.scan_quarantined(tmp_path)

    @pytest.mark.slow
    def test_clean_suite_reports_no_failures(self, tmp_path):
        report = run_paper_suite(tmp_path, scale=8, n_roots=2,
                                 render_svg=False)
        text = report.read_text()
        assert "## Failures and retries" in text
        assert "no retries were needed" in text


# ----------------------------------------------------------------------
# Corrupt-log salvage
# ----------------------------------------------------------------------
class TestLogSalvage:
    def _write_gap_log(self, directory, n=3):
        w = LogWriter("gap", "kron-scale8", 32, "bfs")
        w.gap_load(0.1, 0.2)
        for i in range(n):
            w.gap_trial(i, 0, 0.01 * (i + 1))
        return w.write(directory / "gap" / "bfs-t32.log")

    def test_salvages_around_headerless_file(self, tmp_path):
        good = self._write_gap_log(tmp_path)
        bad = tmp_path / "gap" / "bfs-t16.log"
        bad.write_text("no header here\nTrial Time: 0.5\n", "utf-8")
        problems: list[LogParseError] = []
        records = parse_all_logs(tmp_path, problems=problems)
        assert [r for r in records if r.metric == "time"]
        assert len(problems) == 1
        err = problems[0]
        assert err.path == str(bad)
        assert err.line_no == 1
        assert err.line == "no header here"
        assert good.exists()

    def test_error_context_in_message(self, tmp_path):
        bad = tmp_path / "x.log"
        bad.write_text("garbage line\n", "utf-8")
        with pytest.raises(LogParseError) as info:
            parse_log(bad)
        msg = str(info.value)
        assert str(bad) in msg
        assert "line 1" in msg
        assert "garbage line" in msg

    def test_undecodable_bytes_salvaged(self, tmp_path):
        p = self._write_gap_log(tmp_path)
        raw = p.read_bytes()
        # Smash bytes in the middle of one trial line.
        p.write_bytes(raw.replace(b"Trial: 0 Trial Time",
                                  b"Tri\xff\xfe l Time", 1))
        records = parse_log(p)
        assert [r for r in records if r.metric == "time"]

    def test_all_files_damaged_raises(self, tmp_path):
        (tmp_path / "a.log").write_text("", "utf-8")
        (tmp_path / "b.log").write_text("junk\n", "utf-8")
        with pytest.raises(LogParseError):
            parse_all_logs(tmp_path)

    def test_strict_mode_fails_fast(self, tmp_path):
        self._write_gap_log(tmp_path)
        (tmp_path / "bad.log").write_text("junk\n", "utf-8")
        with pytest.raises(LogParseError):
            parse_all_logs(tmp_path, salvage=False)

    def test_corrupt_fault_still_parses(self, tmp_path):
        """A corrupt-log fault costs at most one record, never the run."""
        cfg = _config(tmp_path, fault_spec="gap/bfs/t32:corrupt")
        exp = Experiment(cfg)
        analysis = exp.run_all()
        oc = next(o for o in exp.cell_outcomes if o.cell == "gap/bfs/t32")
        assert oc.status == "completed"
        assert analysis.records     # parse salvaged whatever survived


# ----------------------------------------------------------------------
# Atomic artifact writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_and_overwrite(self, tmp_path):
        p = tmp_path / "sub" / "x.json"
        atomic_write_text(p, "one")
        assert p.read_text() == "one"
        atomic_write_text(p, "two")
        assert p.read_text() == "two"
        leftovers = [f for f in p.parent.iterdir() if f.name != "x.json"]
        assert leftovers == []

    def test_json_artifacts_parse(self, tmp_path):
        cfg = _config(tmp_path)
        Experiment(cfg).run_all()
        from repro.core.provenance import capture

        capture(cfg)
        for name in ("config.json", "provenance.json", "checkpoint.json"):
            json.loads((tmp_path / name).read_text())


# ----------------------------------------------------------------------
# CLI exit codes + degraded completion
# ----------------------------------------------------------------------
class TestCliErrorMapping:
    def test_parse_error_exit_code(self, tmp_path, capsys):
        code = main(["parse", "--output", str(tmp_path)])
        assert code == 5     # LogParseError
        err = capsys.readouterr().err
        assert "LogParseError" in err
        assert err.count("\n") == 1   # one line, no traceback

    def test_checkpoint_error_exit_code(self, tmp_path, capsys):
        code = main(["resume", str(tmp_path)])
        assert code == 10    # CheckpointError
        assert "CheckpointError" in capsys.readouterr().err

    def test_degraded_run_exits_zero_with_warning(self, tmp_path, capsys):
        code = main(["run", "--output", str(tmp_path), "--scale", "8",
                     "--roots", "2", "--systems", "gap", "graph500",
                     "--algorithms", "bfs",
                     "--fault-spec", "gap/bfs/t32:crash",
                     "--max-retries", "0"])
        assert code == 0
        err = capsys.readouterr().err
        assert "degraded" in err
        assert "gap/bfs/t32" in err

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
