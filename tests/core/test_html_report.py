"""Tests for EPG*'s own HTML report."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.html_report import render_epg_html
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def analysis(tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("html"),
        dataset="kronecker", scale=9, n_roots=4,
        algorithms=("bfs", "pagerank"))
    return Experiment(cfg).run_all()


def test_renders_valid_page(analysis, tmp_path):
    path = render_epg_html(analysis, tmp_path / "report.html")
    body = path.read_text()
    assert body.startswith("<!DOCTYPE html>")
    assert body.count("<h2>") >= 3


def test_distributions_not_single_trials(analysis, tmp_path):
    """The whole point vs Fig 7: quartiles and n are on the page."""
    body = render_epg_html(analysis, tmp_path / "r.html").read_text()
    assert "<th>median</th>" in body
    assert "<th>q1</th>" in body
    assert "<th>rsd</th>" in body


def test_inline_svg_figures(analysis, tmp_path):
    body = render_epg_html(analysis, tmp_path / "r.html").read_text()
    assert "<svg" in body
    assert "<figcaption>" in body


def test_no_figures_mode(analysis, tmp_path):
    body = render_epg_html(analysis, tmp_path / "r.html",
                           embed_figures=False).read_text()
    assert "<svg" not in body


def test_iterations_table_present(analysis, tmp_path):
    body = render_epg_html(analysis, tmp_path / "r.html").read_text()
    assert "PageRank iterations" in body


def test_empty_analysis_rejected(tmp_path):
    from repro.core.analysis import Analysis

    with pytest.raises(ConfigError):
        render_epg_html(Analysis([]), tmp_path / "r.html")
