"""Tests for the canonical Record type and its CSV codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import METRICS, Record
from repro.errors import LogParseError


def test_csv_roundtrip():
    r = Record(system="gap", algorithm="bfs", dataset="kron-scale14",
               threads=32, metric="time", value=0.01636, root=5, trial=2)
    back = Record.from_csv_row(r.to_csv_row())
    assert back == r


def test_header_matches_row_arity():
    assert len(Record.csv_header().split(",")) == 8


def test_bad_row_rejected():
    with pytest.raises(LogParseError):
        Record.from_csv_row("a,b,c")


def test_metrics_registry_contains_paper_quantities():
    for m in ("time", "build", "read", "load", "iterations",
              "pkg_watts", "dram_watts"):
        assert m in METRICS


@given(value=st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e300, max_value=1e300),
       root=st.integers(-1, 10**6), trial=st.integers(0, 10**4),
       threads=st.integers(1, 72))
@settings(max_examples=100, deadline=None)
def test_csv_roundtrip_property(value, root, trial, threads):
    r = Record(system="graphmat", algorithm="pagerank", dataset="d",
               threads=threads, metric="time", value=value, root=root,
               trial=trial)
    back = Record.from_csv_row(r.to_csv_row())
    assert back == r  # repr() float round-trips exactly
