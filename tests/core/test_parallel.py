"""Parallel cell scheduler: determinism, resume, and fault handling.

The contract under test is the tentpole invariant: ``--jobs N`` only
changes wall-clock time.  REPORT.md, provenance digests, checkpoints,
and the merged trace (modulo wall-clock fields) are byte-identical at
every job count, an interrupted parallel run resumes to the same
bytes, and seeded fault injection behaves identically under workers.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.config import ExperimentConfig
from repro.core.runner import Runner
from repro.core.suite import run_paper_suite, resume_paper_suite
from repro.errors import ConfigError
from repro.observability.export import read_events, validate_events
from repro.parallel import CellPool, resolve_jobs, run_cell_task
from repro.resilience import SuiteCheckpoint

PARAMS = dict(scale=8, n_roots=2, render_svg=False)

#: Wall-clock fields are the only legal difference between traces of
#: the same run at different job counts.
WALL_FIELDS = ("t0_wall", "t1_wall", "wall_unix")


def _strip_wall(events):
    return [{k: v for k, v in ev.items() if k not in WALL_FIELDS}
            for ev in events]


@pytest.fixture(scope="module")
def ref_plain(tmp_path_factory):
    """Untraced serial reference run: the bytes every other mode of
    execution must reproduce."""
    out = tmp_path_factory.mktemp("ref-plain")
    report = run_paper_suite(out, jobs=1, **PARAMS)
    return report.read_bytes()


# ----------------------------------------------------------------------
# Unit-level: job resolution and the pool itself
# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_default_is_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_explicit_passthrough(self):
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("bad", (0, -1))
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigError):
            resolve_jobs(bad)

    def test_config_validates_jobs(self, tmp_path):
        with pytest.raises(ConfigError):
            ExperimentConfig(output_dir=tmp_path, jobs=0)

    def test_jobs_excluded_from_digest_inputs(self, tmp_path):
        """``jobs`` is an execution detail: it must not perturb the
        config dict that checkpoints and provenance digest."""
        a = ExperimentConfig(output_dir=tmp_path, jobs=1).to_dict()
        b = ExperimentConfig(output_dir=tmp_path, jobs=8).to_dict()
        assert a == b
        assert "jobs" not in a


class TestCellPool:
    def test_serial_pool_is_not_parallel(self):
        pool = CellPool(1)
        assert not pool.parallel
        pool.close()  # never created an executor; must still be safe

    def test_run_cell_task_in_process(self, tmp_path, kron10_dataset):
        """The worker entry point works without a pool: it returns the
        supervised outcome plus the cell's captured trace events."""
        cfg = ExperimentConfig(output_dir=tmp_path, scale=10, n_roots=2)
        outcome, events = run_cell_task(cfg, kron10_dataset,
                                        "gap", "bfs", 32)
        assert outcome.status == "completed"
        assert isinstance(events, list)  # untraced -> empty capture


# ----------------------------------------------------------------------
# The tentpole invariant: jobs=1 vs jobs=4, traced
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_jobs_do_not_change_any_bytes(tmp_path_factory):
    serial = tmp_path_factory.mktemp("serial")
    parallel = tmp_path_factory.mktemp("parallel")
    r1 = run_paper_suite(serial, jobs=1, trace=True, **PARAMS)
    r4 = run_paper_suite(parallel, jobs=4, trace=True, **PARAMS)

    assert r4.read_bytes() == r1.read_bytes()

    # Provenance covers config, machine, and the results.csv digest.
    # Only the embedded output_dir path may differ between the runs.
    for sub in ("kron", "scaling"):
        p1 = json.loads((serial / sub / "provenance.json").read_text())
        p4 = json.loads((parallel / sub / "provenance.json").read_text())
        p1["config"].pop("output_dir")
        p4["config"].pop("output_dir")
        assert p4 == p1, f"{sub}/provenance.json differs across jobs"

    # The merged trace is valid and identical modulo wall clocks.
    e1 = read_events(serial / "trace" / "events.jsonl")
    e4 = read_events(parallel / "trace" / "events.jsonl")
    stats = validate_events(e4)  # raises TraceError on any violation
    assert stats["spans"] > 0 and stats["orphans"] == 0
    assert _strip_wall(e4) == _strip_wall(e1)


# ----------------------------------------------------------------------
# Interrupt + resume under workers
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_interrupted_parallel_run_resumes_byte_identical(
        tmp_path_factory, monkeypatch, ref_plain):
    """Kill a jobs=2 run mid-suite (the interrupt surfaces through a
    worker future); resuming -- also parallel -- must reproduce the
    serial reference bytes."""
    out = tmp_path_factory.mktemp("interrupted-par")
    real = Runner.run_system_algorithm

    def dying(self, *args, **kwargs):
        # Workers are forked after the patch, so each inherits it; the
        # counter is per-process, which only varies *where* it dies.
        calls = getattr(dying, "n", 0) + 1
        dying.n = calls
        if calls > 5:
            raise KeyboardInterrupt
        return real(self, *args, **kwargs)

    monkeypatch.setattr(Runner, "run_system_algorithm", dying)
    with pytest.raises(KeyboardInterrupt):
        run_paper_suite(out, jobs=2, **PARAMS)
    monkeypatch.setattr(Runner, "run_system_algorithm", real)

    # Something must have been committed before the interrupt for the
    # resume to be a real partial-continue, not a fresh run.
    assert any((out / sub / "checkpoint.json").exists()
               for sub in ("kron", "dota", "pat", "scaling"))
    report = resume_paper_suite(out, jobs=2)
    assert report.read_bytes() == ref_plain


@pytest.mark.slow
def test_sigkill_then_cli_resume_byte_identical(tmp_path, ref_plain):
    """The acceptance scenario end to end: SIGKILL the ``epg
    reproduce --jobs 2`` process mid-suite, then ``epg resume``."""
    out = tmp_path / "suite"
    env = dict(os.environ, PYTHONPATH="src")
    cmd = [sys.executable, "-m", "repro.cli", "reproduce",
           "--output", str(out), "--scale", "8", "--roots", "2",
           "--no-svg", "--jobs", "2"]
    proc = subprocess.Popen(cmd, cwd="/root/repo", env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 60
    try:
        # Wait until at least one cell has been committed, then kill.
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if (out / "kron" / "checkpoint.json").exists():
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    if proc.returncode == 0:
        pytest.skip("suite finished before SIGKILL landed")

    assert not (out / "REPORT.md").exists()
    done = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume", str(out),
         "--jobs", "2"],
        cwd="/root/repo", env=env, capture_output=True, text=True)
    assert done.returncode == 0, done.stderr
    assert (out / "REPORT.md").read_bytes() == ref_plain


@pytest.mark.slow
def test_sigterm_checkpoints_and_exits_resume_code(tmp_path, ref_plain):
    """SIGTERM (what schedulers and CI send) must behave like Ctrl-C:
    checkpoint what completed, exit 130 with a resume hint, and leave a
    state ``epg resume`` finishes byte-identically."""
    out = tmp_path / "suite"
    env = dict(os.environ, PYTHONPATH="src")
    cmd = [sys.executable, "-m", "repro.cli", "reproduce",
           "--output", str(out), "--scale", "8", "--roots", "2",
           "--no-svg", "--jobs", "2"]
    proc = subprocess.Popen(cmd, cwd="/root/repo", env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 60
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if (out / "kron" / "checkpoint.json").exists():
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    if proc.returncode == 0:
        pytest.skip("suite finished before SIGTERM landed")

    assert proc.returncode == 130, stderr
    assert "epg resume" in stderr
    assert not (out / "REPORT.md").exists()
    done = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume", str(out),
         "--jobs", "2"],
        cwd="/root/repo", env=env, capture_output=True, text=True)
    assert done.returncode == 0, done.stderr
    assert (out / "REPORT.md").read_bytes() == ref_plain


# ----------------------------------------------------------------------
# Fault injection and quarantine behave identically under workers
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fault_injection_under_parallel_matches_serial(
        tmp_path_factory):
    faulty = dict(PARAMS, fault_spec="gap/bfs/t32:crash", max_retries=1)
    ser = tmp_path_factory.mktemp("fault-ser")
    par = tmp_path_factory.mktemp("fault-par")
    r1 = run_paper_suite(ser, jobs=1, **faulty)
    r2 = run_paper_suite(par, jobs=2, **faulty)
    text = r2.read_text()
    assert "gap/bfs/t32" in text and "quarantined" in text
    assert SuiteCheckpoint.scan_quarantined(par)
    assert r2.read_bytes() == r1.read_bytes()
