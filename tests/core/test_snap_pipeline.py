"""End-to-end pipeline on a user-supplied SNAP file.

The paper's selling point: "any network in the SNAP data format can be
used in easy-parallel-graph-*" (Sec. III-B).  This test writes a SNAP
file from scratch and drives the full five phases over it.
"""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.datasets.snap import write_snap
from repro.graph.edgelist import EdgeList


@pytest.fixture(scope="module")
def snap_file(tmp_path_factory):
    rng = np.random.default_rng(11)
    n, m = 300, 1800
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    el = EdgeList(src[keep], dst[keep], n, directed=True,
                  name="user-graph")
    return write_snap(el, tmp_path_factory.mktemp("snap")
                      / "user-graph.txt")


@pytest.fixture(scope="module")
def snap_analysis(snap_file, tmp_path_factory):
    cfg = ExperimentConfig(
        output_dir=tmp_path_factory.mktemp("snap-exp"),
        dataset="snap-file", snap_path=snap_file, n_roots=4,
        algorithms=("bfs", "sssp", "pagerank"))
    return Experiment(cfg).run_all()


def test_dataset_label_from_filename(snap_file, tmp_path):
    cfg = ExperimentConfig(output_dir=tmp_path, dataset="snap-file",
                           snap_path=snap_file)
    assert cfg.dataset_label == "user-graph"


def test_all_capable_systems_ran(snap_analysis):
    systems = snap_analysis.systems()
    # Graph500 refuses non-Kronecker datasets; everyone else runs.
    assert "graph500" not in systems
    assert {"gap", "graphbig", "graphmat", "powergraph"} <= set(systems)


def test_sssp_ran_via_generated_weights(snap_analysis):
    """The SNAP file is unweighted; EPG* homogenization attaches
    uniform weights so SSSP still runs (unlike Graphalytics)."""
    box = snap_analysis.box("time")
    assert any(k[1] == "sssp" for k in box)


def test_results_reference_the_user_dataset(snap_analysis):
    assert snap_analysis.datasets() == ["user-graph"]


def test_cross_system_agreement_on_user_graph(snap_file, tmp_path):
    """BFS levels agree across systems on the user's own graph."""
    from repro.datasets.homogenize import homogenize
    from repro.datasets.snap import read_snap
    from repro.systems import create_system

    el = read_snap(snap_file, directed=True)
    dataset = homogenize(el, tmp_path, n_roots=2)
    root = int(dataset.roots[0])
    levels = {}
    for name in ("gap", "graphbig", "graphmat"):
        s = create_system(name)
        loaded = s.load(dataset)
        levels[name] = s.run(loaded, "bfs", root=root).output["level"]
    assert np.array_equal(levels["gap"], levels["graphbig"])
    assert np.array_equal(levels["gap"], levels["graphmat"])
