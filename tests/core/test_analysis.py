"""Unit tests for the analysis layer (BoxStats, scalability, energy)."""

import math

import numpy as np
import pytest

from repro.core.analysis import Analysis, BoxStats, EfficiencyTable, summarize
from repro.core.records import Record
from repro.errors import ConfigError


def _rec(system="gap", algorithm="bfs", dataset="d", threads=32,
         metric="time", value=1.0, root=0, trial=0):
    return Record(system=system, algorithm=algorithm, dataset=dataset,
                  threads=threads, metric=metric, value=value, root=root,
                  trial=trial)


class TestBoxStats:
    def test_five_numbers(self):
        b = BoxStats.from_values([1, 2, 3, 4, 100])
        assert b.minimum == 1
        assert b.median == 3
        assert b.maximum == 100
        assert b.n == 5

    def test_single_value(self):
        b = BoxStats.from_values([5.0])
        assert b.std == 0.0
        assert b.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            BoxStats.from_values([])

    def test_rsd(self):
        b = BoxStats.from_values([1.0, 1.0, 1.0])
        assert b.rsd == 0.0
        z = BoxStats.from_values([0.0, 0.0])
        assert math.isinf(z.rsd)


class TestSummarize:
    def test_groups_by_cell(self):
        recs = [_rec(value=1.0), _rec(value=2.0),
                _rec(system="graphmat", value=9.0)]
        box = summarize(recs)
        assert box[("gap", "bfs", "d", 32)].n == 2
        assert box[("graphmat", "bfs", "d", 32)].mean == 9.0

    def test_filters_metric(self):
        recs = [_rec(metric="time"), _rec(metric="build")]
        assert len(summarize(recs, "build")) == 1


class TestEfficiency:
    def test_speedup_and_efficiency(self):
        t = EfficiencyTable(system="gap", algorithm="bfs",
                            threads=[1, 2, 4], mean_times=[8.0, 4.0, 4.0])
        assert t.speedup() == [1.0, 2.0, 2.0]
        assert t.efficiency() == [1.0, 1.0, 0.5]

    def test_requires_serial_point(self):
        t = EfficiencyTable(system="gap", algorithm="bfs",
                            threads=[2, 4], mean_times=[4.0, 2.0])
        with pytest.raises(ConfigError):
            t.speedup()

    def test_dip_below_one_representable(self):
        """The Graph500 Fig 6 artifact: speedup(2) < 1."""
        t = EfficiencyTable(system="graph500", algorithm="bfs",
                            threads=[1, 2], mean_times=[1.0, 1.2])
        assert t.speedup()[1] < 1.0


class TestAnalysis:
    def test_mean_time_filtering(self):
        recs = [_rec(value=1.0, threads=1), _rec(value=0.5, threads=2)]
        a = Analysis(recs)
        assert a.mean_time("gap", "bfs", threads=1) == 1.0
        assert a.mean_time("gap", "bfs") == 0.75

    def test_mean_time_missing_raises(self):
        a = Analysis([_rec()])
        with pytest.raises(ConfigError):
            a.mean_time("graphmat", "bfs")

    def test_scalability_path(self):
        recs = [_rec(value=v, threads=n)
                for n, v in ((1, 8.0), (2, 4.4), (4, 2.6))]
        tab = Analysis(recs).scalability("gap", "bfs")
        assert tab.threads == [1, 2, 4]
        assert tab.speedup()[0] == 1.0

    def test_energy_table_averages_per_root(self):
        recs = []
        for root in range(4):
            recs.append(_rec(metric="time", value=0.01636, root=root))
            recs.append(_rec(metric="pkg_joules", value=1.184, root=root))
            recs.append(_rec(metric="dram_joules", value=0.27, root=root))
        table = Analysis(recs).energy_table("bfs")
        rep = table["gap"]
        assert rep.avg_pkg_watts == pytest.approx(72.37, rel=1e-3)
        assert rep.increase_over_sleep == pytest.approx(2.926, rel=1e-2)

    def test_energy_table_splits_single_window(self):
        """Graph500-style: one energy reading across N searches is
        divided per root."""
        recs = [_rec(system="graph500", metric="time", value=0.02,
                     root=r) for r in range(4)]
        recs.append(_rec(system="graph500", metric="pkg_joules",
                         value=8.0, root=-1))
        table = Analysis(recs).energy_table("bfs")
        assert table["graph500"].pkg_energy_j == pytest.approx(2.0)

    def test_enumerations(self):
        recs = [_rec(), _rec(system="graphmat", algorithm="sssp",
                             threads=64)]
        a = Analysis(recs)
        assert a.systems() == ["gap", "graphmat"]
        assert a.algorithms() == ["bfs", "sssp"]
        assert a.thread_counts() == [32, 64]
