"""Tests for the one-call convenience API and projection helpers."""

import pytest

from repro.core import run_comparison
from repro.core.projection import (
    PAPER_SCALING_SCALE,
    projected_scalability,
    projected_time,
)
from repro.errors import ConfigError


def test_run_comparison_end_to_end(tmp_path):
    exp, analysis = run_comparison(
        tmp_path, scale=8, n_roots=2,
        systems=("gap", "graphmat"), algorithms=("bfs",))
    assert (tmp_path / "results.csv").exists()
    box = analysis.box("time")
    assert ("gap", "bfs", "kron-scale8", 32) in box
    assert ("graphmat", "bfs", "kron-scale8", 32) in box


def test_run_comparison_threads(tmp_path):
    _, analysis = run_comparison(
        tmp_path, scale=8, n_roots=2, systems=("gap",),
        algorithms=("bfs",), thread_counts=(1, 4))
    assert analysis.thread_counts() == [1, 4]


class TestProjection:
    def test_paper_scale_constant(self):
        assert PAPER_SCALING_SCALE == 23

    def test_projected_time_matches_anchor_at_scale22(self):
        """Projection at scale 22 / 32 threads must land on Table III."""
        got = projected_time("gap", "bfs", 22, 32)
        # anchor + startup
        assert got == pytest.approx(0.01636 + 2e-5, rel=0.03)

    def test_projection_doubles_with_scale(self):
        t22 = projected_time("graphmat", "bfs", 22, 32)
        t23 = projected_time("graphmat", "bfs", 23, 32)
        assert t23 == pytest.approx(2 * t22, rel=0.02)

    def test_unknown_anchor(self):
        with pytest.raises(ConfigError):
            projected_time("graph500", "pagerank", 22, 32)

    def test_scalability_table_shape(self):
        tab = projected_scalability("gap", thread_counts=(1, 2, 32))
        assert tab.threads == [1, 2, 32]
        assert tab.speedup()[0] == 1.0
