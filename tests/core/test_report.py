"""Tests for table/series rendering."""

import pytest

from repro.core.analysis import Analysis, BoxStats
from repro.core.records import Record
from repro.core.report import (
    ascii_box,
    figure_series,
    format_box_table,
    format_series,
    format_table,
)


def _rec(**kw):
    base = dict(system="gap", algorithm="bfs", dataset="d", threads=32,
                metric="time", value=1.0, root=0, trial=0)
    base.update(kw)
    return Record(**base)


def test_format_table_alignment():
    out = format_table("T", ["a", "b"], {"row1": ["1", "2"],
                                         "longer-row": ["3", "4"]})
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "row1" in out and "longer-row" in out


def test_ascii_box_markers():
    b = BoxStats.from_values([0, 25, 50, 75, 100])
    s = ascii_box(b, width=21)
    assert s[10] == "|"       # median centered
    assert "=" in s and "-" in s


def test_format_box_table_handles_empty():
    assert "(no data)" in format_box_table("X", {})


def test_format_series_csv_block():
    out = format_series("Fig", "threads", [1, 2],
                        {"gap": [1.0, 1.9], "graphmat": [1.0, 1.7]})
    lines = out.splitlines()
    assert lines[0] == "# Fig"
    assert lines[1] == "threads,gap,graphmat"
    assert lines[2] == "1,1,1"


@pytest.fixture
def scal_analysis():
    recs = []
    for system, base in (("gap", 8.0), ("graph500", 9.0)):
        for n, factor in ((1, 1.0), (2, 0.6), (4, 0.35)):
            recs.append(_rec(system=system, threads=n,
                             value=base * factor))
    return Analysis(recs)


def test_fig5_series(scal_analysis):
    out = figure_series(scal_analysis, "fig5")
    assert "Fig 5" in out
    assert "threads,gap,graph500" in out


def test_fig6_efficiency_bounded(scal_analysis):
    out = figure_series(scal_analysis, "fig6")
    last = out.splitlines()[-1].split(",")
    assert float(last[1]) <= 1.0


def test_unknown_figure():
    with pytest.raises(ValueError):
        figure_series(Analysis([_rec()]), "fig99")


def test_fig8_marks_missing_cells():
    """PowerGraph has no BFS: its Fig 8 BFS cell must read N/A."""
    recs = [_rec(), _rec(system="powergraph", algorithm="sssp")]
    out = figure_series(Analysis(recs), "fig8")
    assert "N/A" in out
