"""Strong-scaling study (the paper's Figs 5-6 scenario).

Prints BFS speedup and parallel efficiency curves for all four
BFS-capable systems, two ways:

1. projected at the paper's scale 23 through the calibrated cost model
   (the published figure's operating point), and
2. measured with the real kernels at a laptop-friendly scale, where
   per-invocation fixed costs visibly flatten the curves -- the
   phenomenon the paper's "overhead of these frameworks may dominate
   for smaller problem sizes" remark predicts.

Usage::

    python examples/scalability_study.py [bench_scale]
"""

import sys
import tempfile

from repro.core import Experiment, ExperimentConfig
from repro.core.projection import PAPER_SCALING_SCALE, projected_scalability
from repro.core.report import format_series

SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")
THREADS = (1, 2, 4, 8, 16, 32, 64, 72)


def main() -> None:
    bench_scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    # 1. Full-scale projection.
    tables = {s: projected_scalability(s, thread_counts=THREADS)
              for s in SYSTEMS}
    print(format_series(
        f"Fig 5 (projected, scale {PAPER_SCALING_SCALE}): BFS speedup",
        "threads", list(THREADS),
        {s: t.speedup() for s, t in tables.items()}))
    print()
    print(format_series(
        f"Fig 6 (projected, scale {PAPER_SCALING_SCALE}): BFS parallel "
        "efficiency",
        "threads", list(THREADS),
        {s: t.efficiency() for s, t in tables.items()}))

    sp500 = dict(zip(THREADS, tables["graph500"].speedup()))
    print(f"\nGraph500 speedup at 2 threads: {sp500[2]:.2f} "
          "(below 1.0 -- the Fig 6 dip)")

    # 2. Real kernels at bench scale.
    out = tempfile.mkdtemp(prefix="epg-scaling-")
    cfg = ExperimentConfig(
        output_dir=out, dataset="kronecker", scale=bench_scale,
        n_roots=4, algorithms=("bfs",), thread_counts=THREADS)
    print(f"\nRunning real kernels at scale {bench_scale} "
          f"(output under {out}) ...")
    analysis = Experiment(cfg).run_all()
    series = {s: analysis.scalability(s, "bfs").speedup()
              for s in SYSTEMS}
    print(format_series(
        f"Real kernels, scale {bench_scale}: BFS speedup",
        "threads", list(THREADS), series))
    print("\nNote how every real-kernel curve flattens earlier than the "
          "projection: at this size the per-invocation fixed costs are "
          "a visible fraction of each kernel.")


if __name__ == "__main__":
    main()
