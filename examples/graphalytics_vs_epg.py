"""Reproduce the paper's Sec. II argument: Graphalytics vs EPG*.

Runs the same PageRank workload on dota-league through both harnesses
and shows the timing inconsistency the paper exposes: Graphalytics'
GraphMat number silently includes reading the input file and building
the matrix, while its GraphBIG number does not.  The Granula-style
operation tree then recovers the hidden phase split.

Usage::

    python examples/graphalytics_vs_epg.py
"""

import tempfile

from repro.datasets.homogenize import homogenize
from repro.datasets.realworld import dota_league
from repro.graphalytics import GraphalyticsHarness, render_table
from repro.graphalytics.granula import standard_job_model
from repro.systems import create_system


def main() -> None:
    out = tempfile.mkdtemp(prefix="epg-vs-graphalytics-")
    dataset = homogenize(dota_league(), out)
    print(f"dota-league stand-in: {dataset.n_vertices} vertices, "
          f"{dataset.n_edges} edges\n")

    harness = GraphalyticsHarness(n_threads=32, seed=7)
    results = harness.run_matrix(
        dataset, algorithms=("bfs", "pagerank", "sssp", "wcc"))
    print(render_table(results, title="What Graphalytics reports:"))

    gm = next(r for r in results
              if r.platform == "graphmat" and r.algorithm == "pagerank")
    gb = next(r for r in results
              if r.platform == "graphbig" and r.algorithm == "pagerank")

    print("\nBut the GraphMat log tells a different story "
          "(cf. Table I excerpt):")
    print(f"  reported:   {gm.reported_s:.4g} s")
    print(f"  file read:  {gm.breakdown['file_read']:.4g} s")
    print(f"  build:      {gm.breakdown['build']:.4g} s")
    print(f"  algorithm:  {gm.breakdown['algorithm']:.4g} s")
    ratio = gm.reported_s / gm.breakdown["algorithm"]
    print(f"  -> ignoring the load phases, GraphMat would finish "
          f"{ratio:.1f}x faster than reported")
    print(f"  GraphBIG's cell ({gb.reported_s:.4g} s) already excludes "
          "its file read -- an apples-to-oranges table.")

    print("\nGranula-style operation tree for the GraphMat cell:")
    model = standard_job_model("GraphMat-PageRank-Job")
    model.attach(gm)
    print(model.report())

    print("\nWhat EPG* measures for the same execution "
          "(phases separated):")
    system = create_system("graphmat", n_threads=32)
    loaded = system.load(dataset)
    result = system.run(loaded, "pagerank", max_iterations=10)
    print(f"  read:      {loaded.read_s:.4g} s")
    print(f"  build:     {loaded.build_s:.4g} s")
    print(f"  algorithm: {result.time_s:.4g} s   <- the comparable number")


if __name__ == "__main__":
    main()
