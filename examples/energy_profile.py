"""Power and energy profiling (the paper's Table III / Fig 9 scenario).

Shows both faces of the power API:

1. the high-level harness route -- run BFS on every system with RAPL
   measurement on and print the Table III accounting; and
2. the low-level Fig 10 route -- instrument one region by hand with
   ``power_rapl_init/start/end/print`` against the simulated counters.

Usage::

    python examples/energy_profile.py
"""

import tempfile

from repro.core import Experiment, ExperimentConfig
from repro.core.report import figure_series, format_table
from repro.machine.clock import SimulatedClock
from repro.machine.spec import haswell_server
from repro.power.papi import (
    power_rapl_end,
    power_rapl_init,
    power_rapl_print,
    power_rapl_start,
)

SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")


def harness_route() -> None:
    out = tempfile.mkdtemp(prefix="epg-energy-")
    cfg = ExperimentConfig(output_dir=out, dataset="kronecker",
                           scale=12, n_roots=8, algorithms=("bfs",),
                           measure_power=True)
    print(f"Running BFS with power capture (output under {out}) ...\n")
    analysis = Experiment(cfg).run_all()

    table = analysis.energy_table("bfs", threads=32)
    rows = {
        "Time (s)": [f"{table[s].time_s:.5g}" for s in SYSTEMS],
        "Average Power per Root (W)": [
            f"{table[s].avg_pkg_watts:.2f}" for s in SYSTEMS],
        "Energy per Root (J)": [
            f"{table[s].pkg_energy_j:.4g}" for s in SYSTEMS],
        "Sleeping Energy (J)": [
            f"{table[s].sleep_energy_j:.4g}" for s in SYSTEMS],
        "Increase over Sleep": [
            f"{table[s].increase_over_sleep:.3f}" for s in SYSTEMS],
    }
    print(format_table("Table III style: BFS energy accounting",
                       [s.upper() for s in SYSTEMS], rows))
    print()
    print(figure_series(analysis, "fig9"))


def fig10_route() -> None:
    print("\n--- Fig 10 style manual instrumentation ---")
    machine = haswell_server()
    clock = SimulatedClock(idle_pkg_watts=machine.idle_pkg_watts,
                           idle_dram_watts=machine.idle_dram_watts)
    ps = power_rapl_init(clock)
    power_rapl_start(ps)
    # <region of code to profile>: pretend a kernel ran for 16.36 ms at
    # GAP's Table III power draw.
    clock.advance(0.01636, pkg_watts=72.38, dram_watts=16.5)
    power_rapl_end(ps)
    for line in power_rapl_print(ps):
        print(line)
    print(f"-> {ps.package_joules:.4g} J package over "
          f"{ps.duration_s * 1e3:.2f} ms "
          f"(paper Table III GAP row: 1.184 J over 16.36 ms)")


if __name__ == "__main__":
    harness_route()
    fig10_route()
