"""Quickstart: compare all five systems on a synthetic graph.

Runs the full easy-parallel-graph-* pipeline -- homogenize, run, parse,
analyze -- on a small Kronecker graph and prints the per-system BFS /
SSSP / PageRank timing distributions (the Fig 2-4 content).

Usage::

    python examples/quickstart.py [scale]
"""

import sys
import tempfile

from repro.core import run_comparison
from repro.core.report import figure_series


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    out_dir = tempfile.mkdtemp(prefix="epg-quickstart-")
    print(f"Running EPG* on a scale-{scale} Kronecker graph "
          f"({2**scale} vertices, ~{16 * 2**scale} edges); "
          f"output under {out_dir}\n")

    experiment, analysis = run_comparison(
        out_dir, dataset="kronecker", scale=scale, n_roots=8,
        algorithms=("bfs", "sssp", "pagerank"))

    for fig in ("fig2", "fig3", "fig4"):
        print(figure_series(analysis, fig))
        print()

    print(f"Raw measurement CSV: {experiment.config.output_dir}"
          f"/results.csv")
    print(f"Native logs:         {experiment.config.output_dir}/logs/")


if __name__ == "__main__":
    main()
