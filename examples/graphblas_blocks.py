"""Graph algorithm building blocks (the paper's Sec. V direction).

Expresses BFS, SSSP, and PageRank purely in GraphBLAS kernels (masked
semiring mxv/vxm + element-wise ops) over a Kronecker graph, verifies
them against the reference implementations, and prints the
per-primitive profile -- the kernel-level cost breakdown the paper
says "both library designers and performance analyzers" want.

Usage::

    python examples/graphblas_blocks.py [scale]
"""

import sys

import numpy as np

from repro.algorithms import bfs_levels, pagerank, sssp_dijkstra
from repro.datasets import KroneckerSpec, generate_kronecker
from repro.graph import CSRGraph
from repro.graphblas import (
    GrbMatrix,
    KernelProfiler,
    grb_bfs,
    grb_pagerank,
    grb_sssp,
)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    edges = generate_kronecker(KroneckerSpec(scale=scale, weighted=True))
    csr = CSRGraph.from_edge_list(edges, symmetrize=True)
    print(f"Kronecker scale {scale}: {csr.n_vertices} vertices, "
          f"{csr.n_edges} arcs\n")

    profiler = KernelProfiler()
    weighted = GrbMatrix(csr, profiler=profiler)
    pattern = GrbMatrix(csr, values=np.ones(csr.n_edges),
                        profiler=profiler)
    root = int(edges.src[0])

    level = grb_bfs(pattern, root)
    assert np.array_equal(level, bfs_levels(csr, root))
    print(f"BFS  (LOR-LAND vxm):  depth {level.max()}, "
          f"{(level >= 0).sum()} reached -- matches reference")

    dist = grb_sssp(weighted, root)
    ref = sssp_dijkstra(csr, root)
    assert np.allclose(dist[np.isfinite(ref)], ref[np.isfinite(ref)])
    print("SSSP (MIN-PLUS vxm):  matches Dijkstra")

    rank, iters = grb_pagerank(pattern)
    ref_rank, _ = pagerank(csr)
    assert np.abs(rank - ref_rank).sum() < 1e-6
    print(f"PR   (PLUS-TIMES vxm): {iters} sweeps -- matches reference")

    print("\nPer-primitive profile (all three algorithms):")
    print(profiler.report())


if __name__ == "__main__":
    main()
