"""Experiment planning with the feasibility predictor (paper Sec. V).

"Determining whether an algorithm will finish given a particular
machine, input size, runtime limit, and resources is an important
unanswered question."  This example answers it for a planned study:
given a machine and a per-kernel time budget, at which Kronecker scale
does each (system, algorithm) cell stop being runnable, and why?

Usage::

    python examples/feasibility_planning.py [time_limit_seconds]
"""

import sys

from repro.core.feasibility import WorkloadSize, check_feasibility
from repro.machine.spec import MachineSpec, haswell_server
from repro.systems import calibration

SCALES = (20, 22, 24, 26, 28, 30)


def max_feasible_scale(system: str, algorithm: str,
                       machine: MachineSpec,
                       time_limit_s: float) -> tuple[int | None, str]:
    """Largest probed scale that fits, and the first limiting factor."""
    best = None
    blocker = "-"
    for scale in SCALES:
        v = check_feasibility(system, algorithm,
                              WorkloadSize.kronecker(scale),
                              machine=machine,
                              time_limit_s=time_limit_s)
        if v.feasible:
            best = scale
        else:
            blocker = v.limiting_factor
            break
    return best, blocker


def main() -> None:
    time_limit = float(sys.argv[1]) if len(sys.argv) > 1 else 3600.0
    machine = haswell_server()
    print(f"machine: {machine.name} ({machine.n_threads} threads, "
          f"{machine.ram_gb} GB); per-kernel budget {time_limit:g} s\n")
    header = (f"{'system':<12}{'algorithm':<11}{'max scale':>10}"
              f"  first blocker")
    print(header)
    print("-" * len(header))
    for system in ("gap", "graph500", "graphbig", "graphmat",
                   "powergraph"):
        for algorithm in sorted(calibration._ANCHORS.get(system, {})):
            best, blocker = max_feasible_scale(system, algorithm,
                                               machine, time_limit)
            shown = str(best) if best is not None else "<20"
            print(f"{system:<12}{algorithm:<11}{shown:>10}  {blocker}")

    print("\nNote how the wedge-driven kernels (lcc, tc) hit the time "
          "budget many scales before anything runs out of the 256 GB "
          "of RAM -- the paper's observation that Graphalytics 'fails' "
          "on the computationally expensive algorithms, quantified.")


if __name__ == "__main__":
    main()
