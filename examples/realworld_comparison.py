"""Real-world dataset comparison (the paper's Fig 8 scenario).

Runs BFS / SSSP / PageRank on the synthetic stand-ins for cit-Patents
(sparse citation DAG) and dota-league (dense weighted interaction
graph), printing mean runtimes per system and the density-driven
contrasts Sec. IV-C discusses: PowerGraph has no BFS, GraphBIG's
property overhead amortizes on the dense graph, GraphMat likes
dota-league across the board.

Usage::

    python examples/realworld_comparison.py
"""

import tempfile

from repro.core import Experiment, ExperimentConfig
from repro.core.analysis import Analysis
from repro.core.report import figure_series


def main() -> None:
    records = []
    machine = None
    for ds in ("dota-league", "cit-patents"):
        out = tempfile.mkdtemp(prefix=f"epg-{ds}-")
        cfg = ExperimentConfig(
            output_dir=out, dataset=ds, n_roots=8,
            algorithms=("bfs", "sssp", "pagerank"))
        print(f"Running {ds} (output under {out}) ...")
        analysis = Experiment(cfg).run_all()
        records.extend(analysis.records)
        machine = analysis.machine

    merged = Analysis(records, machine=machine)
    print()
    print(figure_series(merged, "fig8"))

    print("\nObservations (cf. paper Sec. IV-C):")
    dota_pr = {s: merged.median_time(s, "pagerank", "dota-league")
               for s in ("gap", "graphbig", "graphmat")}
    slowest = max(dota_pr, key=dota_pr.get)
    print(f"  * slowest shared-memory PageRank on dota-league: "
          f"{slowest} ({dota_pr[slowest]:.4g}s)")
    print("  * PowerGraph BFS cells are missing: its toolkits provide "
          "no BFS")
    print("  * SSSP runs on cit-Patents here (EPG* generates weights); "
          "Graphalytics would print N/A")


if __name__ == "__main__":
    main()
