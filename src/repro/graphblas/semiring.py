"""Semirings: the algebra parameterizing every GraphBLAS kernel.

A semiring bundles an additive monoid (ufunc + identity) with a
multiplicative operator; ``mxv`` over different semirings yields
different graph algorithms (the GraphBLAS insight):

==============  ===========================  =================
semiring        add / multiply               algorithm family
==============  ===========================  =================
PLUS_TIMES      ``+`` / ``*``                PageRank, counts
MIN_PLUS        ``min`` / ``+``              shortest paths
LOR_LAND        ``or`` / ``and``             reachability/BFS
MAX_MIN         ``max`` / ``min``            bottleneck paths
==============  ===========================  =================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["Semiring", "PLUS_TIMES", "MIN_PLUS", "LOR_LAND", "MAX_MIN"]


@dataclass(frozen=True)
class Semiring:
    """An (add-monoid, multiply) pair over float64 (bools are 0/1)."""

    name: str
    add: np.ufunc
    add_identity: float
    multiply: np.ufunc

    def __post_init__(self) -> None:
        for op in (self.add, self.multiply):
            if not isinstance(op, np.ufunc):
                raise ConfigError("semiring operators must be ufuncs")

    def reduce_segments(self, values: np.ndarray,
                        seg_starts: np.ndarray) -> np.ndarray:
        """Per-segment additive reduction (the heart of mxv)."""
        if values.size == 0:
            return np.empty(0, dtype=np.float64)
        return self.add.reduceat(values, seg_starts)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise multiply of matrix entries with vector values."""
        return self.multiply(a, b)


PLUS_TIMES = Semiring("plus_times", np.add, 0.0, np.multiply)
MIN_PLUS = Semiring("min_plus", np.minimum, np.inf, np.add)
LOR_LAND = Semiring("lor_land", np.logical_or, 0.0, np.logical_and)
MAX_MIN = Semiring("max_min", np.maximum, -np.inf, np.minimum)
