"""GraphBLAS-style graph algorithm building blocks.

Paper Sec. V: "The standardization of graph algorithm building blocks
(graph kernels) is being developed by the GraphBLAS Forum.  Once this
standardization is finalized there is motivation from both library
designers and performance analyzers to implement and profile each
kernel."  This package implements that direction: a small GraphBLAS
kernel set -- semirings, masked matrix-vector products, element-wise
ops -- with a per-primitive profiler, plus the three paper algorithms
expressed purely in those primitives (the same lowering GraphMat's
engine performs internally).
"""

from repro.graphblas.algorithms import (grb_bfs, grb_cc, grb_kcore,
                                        grb_mis, grb_pagerank, grb_sssp)
from repro.graphblas.matrix import GrbMatrix
from repro.graphblas.profiler import KernelProfiler
from repro.graphblas.semiring import (
    LOR_LAND,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
)

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "LOR_LAND",
    "MAX_MIN",
    "GrbMatrix",
    "KernelProfiler",
    "grb_bfs",
    "grb_sssp",
    "grb_pagerank",
    "grb_kcore",
    "grb_mis",
    "grb_cc",
]
