"""The GraphBLAS matrix object and its kernels.

``GrbMatrix`` wraps a CSR adjacency (row-major; ``mxv`` therefore pulls
along rows) and provides the masked, semiring-parameterized kernels the
GraphBLAS standard defines:

* ``mxv(semiring, x, mask=None, complement_mask=False)``;
* ``vxm`` (x^T A, via the stored transpose);
* ``ewise_add`` / ``ewise_mult`` on vectors;
* ``reduce`` (vector -> scalar under a monoid).

Dense float64 vectors keep the implementation small; sparsity is
exploited structurally (empty rows are skipped via the row pointer) and
masks suppress both computation and output, which is what the BFS and
SSSP loops rely on for work efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.frontier import gather_slots
from repro.graph.scratch import scratch_for
from repro.graphblas.profiler import KernelProfiler
from repro.graphblas.semiring import Semiring

__all__ = ["GrbMatrix"]


class GrbMatrix:
    """A square GraphBLAS matrix over float64 values."""

    def __init__(self, csr: CSRGraph, values: np.ndarray | None = None,
                 profiler: KernelProfiler | None = None):
        self.csr = csr
        if values is None:
            values = (csr.weights if csr.weights is not None
                      else np.ones(csr.n_edges))
        values = np.asarray(values, dtype=np.float64)
        if values.shape != csr.col_idx.shape:
            raise ConfigError("values must align with the CSR pattern")
        self.values = values
        self.profiler = profiler or KernelProfiler()
        self._transpose: "GrbMatrix | None" = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.csr.n_vertices

    @property
    def nvals(self) -> int:
        return self.csr.n_edges

    def transpose(self) -> "GrbMatrix":
        """A^T, built once and cached (GraphBLAS descriptors' INP0)."""
        if self._transpose is None:
            src = self.csr.source_ids()
            t = CSRGraph.from_arrays(self.csr.col_idx, src, self.n)
            order = np.lexsort((src, self.csr.col_idx))
            self._transpose = GrbMatrix(t, self.values[order],
                                        profiler=self.profiler)
            self._transpose._transpose = self
        return self._transpose

    # ------------------------------------------------------------------
    def mxv(self, semiring: Semiring, x: np.ndarray,
            mask: np.ndarray | None = None,
            complement_mask: bool = False) -> np.ndarray:
        """``y = A (+.x) x`` with optional output mask.

        Rows excluded by the mask are neither computed nor written
        (they return the additive identity), matching the standard's
        replace semantics.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigError("vector length mismatch")
        rows = np.arange(self.n)
        if mask is not None:
            m = np.asarray(mask, dtype=bool)
            if complement_mask:
                m = ~m
            rows = rows[m]
        y = np.full(self.n, semiring.add_identity, dtype=np.float64)
        if rows.size == 0 or self.nvals == 0:
            self.profiler.record("mxv", semiring.name, 0, 0)
            return y
        counts = (self.csr.row_ptr[rows + 1] - self.csr.row_ptr[rows])
        rows_ne = rows[counts > 0]
        # Empty rows are dropped first: ``reduce_segments`` (reduceat)
        # needs every segment non-empty; the shared gather then yields
        # the identical slots/offsets the inline expansion produced.
        gs = gather_slots(self.csr.row_ptr, rows_ne,
                          scratch_for(self.csr, self.n, self.nvals))
        if gs.total:
            terms = semiring.combine(self.values[gs.slots],
                                     x[self.csr.col_idx[gs.slots]])
            y[rows_ne] = semiring.reduce_segments(
                terms.astype(np.float64), gs.offsets)
        self.profiler.record("mxv", semiring.name, gs.total, rows.size)
        return y

    def vxm(self, semiring: Semiring, x: np.ndarray,
            mask: np.ndarray | None = None,
            complement_mask: bool = False) -> np.ndarray:
        """``y = x (+.x) A`` == ``A^T (+.x) x``."""
        return self.transpose().mxv(semiring, x, mask=mask,
                                    complement_mask=complement_mask)

    # ------------------------------------------------------------------
    def ewise_add(self, semiring: Semiring, a: np.ndarray,
                  b: np.ndarray) -> np.ndarray:
        out = semiring.add(np.asarray(a, dtype=np.float64),
                           np.asarray(b, dtype=np.float64))
        self.profiler.record("ewise_add", semiring.name, a.size, a.size)
        return out

    def ewise_mult(self, semiring: Semiring, a: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
        out = semiring.multiply(np.asarray(a, dtype=np.float64),
                                np.asarray(b, dtype=np.float64))
        self.profiler.record("ewise_mult", semiring.name, a.size, a.size)
        return out

    def reduce(self, semiring: Semiring, x: np.ndarray) -> float:
        out = float(semiring.add.reduce(
            np.asarray(x, dtype=np.float64),
            initial=semiring.add_identity))
        self.profiler.record("reduce", semiring.name, x.size, 1)
        return out
