"""Per-primitive profiling of GraphBLAS kernel executions.

"There is motivation from both library designers and performance
analyzers to implement and profile each kernel" (Sec. V): every
:class:`~repro.graphblas.matrix.GrbMatrix` operation reports its name,
the entries it touched, and the output size to the attached profiler,
yielding a per-primitive cost table any backend can be compared on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelProfiler", "PrimitiveStats"]


@dataclass
class PrimitiveStats:
    """Aggregate counters for one primitive under one semiring."""

    calls: int = 0
    entries_touched: float = 0.0
    outputs_written: float = 0.0


@dataclass
class KernelProfiler:
    """Collects primitive invocations; render with :meth:`report`."""

    stats: dict[str, PrimitiveStats] = field(default_factory=dict)

    def record(self, primitive: str, semiring: str, entries: float,
               outputs: float) -> None:
        key = f"{primitive}<{semiring}>"
        s = self.stats.setdefault(key, PrimitiveStats())
        s.calls += 1
        s.entries_touched += entries
        s.outputs_written += outputs

    @property
    def total_entries(self) -> float:
        return sum(s.entries_touched for s in self.stats.values())

    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.stats.values())

    def report(self) -> str:
        lines = [f"{'primitive':<28}{'calls':>8}{'entries':>14}"
                 f"{'outputs':>12}"]
        for key in sorted(self.stats):
            s = self.stats[key]
            lines.append(f"{key:<28}{s.calls:>8}"
                         f"{s.entries_touched:>14.0f}"
                         f"{s.outputs_written:>12.0f}")
        lines.append(f"{'TOTAL':<28}{self.total_calls:>8}"
                     f"{self.total_entries:>14.0f}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.stats.clear()
