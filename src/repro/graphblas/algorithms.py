"""The paper's three algorithms written purely in GraphBLAS kernels.

Each function takes a :class:`~repro.graphblas.matrix.GrbMatrix` of the
adjacency ``A`` (arcs ``u -> v``) and touches the graph only through
``mxv``/``vxm``/element-wise/reduce -- no direct index fiddling -- so
the attached :class:`~repro.graphblas.profiler.KernelProfiler` sees the
complete cost of the algorithm, kernel by kernel.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas.matrix import GrbMatrix
from repro.graphblas.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES

__all__ = ["grb_bfs", "grb_sssp", "grb_pagerank",
           "grb_kcore", "grb_mis", "grb_cc"]


def _simple_undirected(a: GrbMatrix) -> GrbMatrix:
    """Loop-free, deduplicated, symmetric pattern matrix of ``A``.

    The structural kernels (k-core, MIS, CC) are defined on the simple
    undirected view; the unit values the pattern gets by default make
    PLUS-TIMES mxv a neighbor count and MIN-PLUS a min-gather shifted
    by exactly ``+1.0`` (exact in float64 for vertex-id payloads).
    """
    from repro.graph.csr import CSRGraph
    from repro.graph.simple import simple_undirected_view

    view = simple_undirected_view(
        a.csr.source_ids(), a.csr.col_idx, a.n)
    u_src, u_dst = view.to_edge_arrays()
    return GrbMatrix(CSRGraph.from_arrays(u_src, u_dst, a.n),
                     profiler=a.profiler)


def grb_kcore(a: GrbMatrix) -> np.ndarray:
    """Core numbers via PLUS-TIMES degree recounts over the live mask."""
    und = _simple_undirected(a)
    n = a.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    alive = np.ones(n, dtype=bool)
    deg = und.mxv(PLUS_TIMES, alive.astype(np.float64))
    level = 0
    while alive.any():
        level = max(level, int(deg[alive].min()))
        while True:
            peel = alive & (deg <= level)
            if not peel.any():
                break
            core[peel] = level
            alive[peel] = False
            if not alive.any():
                break
            # Masked recount: dead rows are neither computed nor read.
            deg = und.mxv(PLUS_TIMES, alive.astype(np.float64),
                          mask=alive)
    return core


def grb_mis(a: GrbMatrix, priorities: np.ndarray) -> np.ndarray:
    """MIS via MIN-PLUS priority gathers and LOR-LAND knockouts.

    The pattern's unit values shift every gathered minimum by +1.0, so
    the winner test is ``pr + 1 < gathered`` -- exact for integer
    priorities.  Empty or fully-decided neighborhoods gather ``inf``
    and win outright.
    """
    und = _simple_undirected(a)
    n = a.n
    in_set = np.zeros(n, dtype=bool)
    if n == 0:
        return in_set
    pr = np.asarray(priorities, dtype=np.float64)
    decided = np.zeros(n, dtype=bool)
    while not decided.all():
        masked = np.where(decided, np.inf, pr)
        best = und.mxv(MIN_PLUS, masked)
        winners = ~decided & (pr + 1.0 < best)
        in_set |= winners
        reached = und.mxv(LOR_LAND, winners.astype(np.float64)) > 0
        decided |= winners | reached
    return in_set


def grb_cc(a: GrbMatrix) -> np.ndarray:
    """Components via MIN-PLUS label propagation to fixpoint.

    LAGraph-style: each sweep pulls the minimum neighbor label (the
    +1.0 value shift is subtracted back out) and keeps the elementwise
    minimum.  On the symmetric simple pattern this converges to the
    smallest member id per weak component -- the Graphalytics
    convention, matching every system's wcc/cc output exactly.
    """
    und = _simple_undirected(a)
    n = a.n
    label = np.arange(n, dtype=np.float64)
    while True:
        gathered = und.mxv(MIN_PLUS, label)
        new = und.ewise_add(MIN_PLUS, label, gathered - 1.0)
        if np.array_equal(new, label):
            break
        label = new
    return label.astype(np.int64)


def grb_bfs(a: GrbMatrix, root: int) -> np.ndarray:
    """BFS levels via LOR-LAND vxm over the complemented visited mask."""
    n = a.n
    level = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n)
    frontier[root] = 1.0
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    level[root] = 0
    depth = 0
    while True:
        depth += 1
        # next = (frontier^T A) masked to unvisited vertices.
        nxt = a.vxm(LOR_LAND, frontier, mask=visited,
                    complement_mask=True)
        new = nxt > 0
        if not new.any():
            break
        level[new] = depth
        visited |= new
        frontier = new.astype(np.float64)
    return level


def grb_sssp(a: GrbMatrix, root: int, max_sweeps: int | None = None
             ) -> np.ndarray:
    """Bellman-Ford via MIN-PLUS vxm to fixpoint."""
    n = a.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    sweeps = max_sweeps if max_sweeps is not None else n
    for _ in range(sweeps):
        relaxed = a.vxm(MIN_PLUS, dist)
        new = a.ewise_add(MIN_PLUS, dist, relaxed)   # min(dist, relaxed)
        if np.array_equal(new, dist):
            break
        dist = new
    return dist


def grb_pagerank(a: GrbMatrix, damping: float = 0.85,
                 epsilon: float = 6e-8, max_iterations: int = 1000
                 ) -> tuple[np.ndarray, int]:
    """PageRank via PLUS-TIMES vxm with the homogenized L1 stop."""
    n = a.n
    ones = np.ones(n)
    out_deg = a.mxv(PLUS_TIMES, ones)     # row sums = out-degrees
    dangling = out_deg == 0
    inv_out = np.where(dangling, 0.0, 1.0 / np.maximum(out_deg, 1e-300))
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    iterations = max_iterations
    for it in range(1, max_iterations + 1):
        weighted = a.ewise_mult(PLUS_TIMES, rank, inv_out)
        contrib = a.vxm(PLUS_TIMES, weighted)
        dangling_mass = a.reduce(PLUS_TIMES,
                                 np.where(dangling, rank, 0.0)) / n
        new_rank = base + damping * (contrib + dangling_mass)
        delta = a.reduce(PLUS_TIMES, np.abs(new_rank - rank))
        rank = new_rank
        if delta < epsilon:
            iterations = it
            break
    return rank, iterations
