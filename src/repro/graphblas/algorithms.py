"""The paper's three algorithms written purely in GraphBLAS kernels.

Each function takes a :class:`~repro.graphblas.matrix.GrbMatrix` of the
adjacency ``A`` (arcs ``u -> v``) and touches the graph only through
``mxv``/``vxm``/element-wise/reduce -- no direct index fiddling -- so
the attached :class:`~repro.graphblas.profiler.KernelProfiler` sees the
complete cost of the algorithm, kernel by kernel.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas.matrix import GrbMatrix
from repro.graphblas.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES

__all__ = ["grb_bfs", "grb_sssp", "grb_pagerank"]


def grb_bfs(a: GrbMatrix, root: int) -> np.ndarray:
    """BFS levels via LOR-LAND vxm over the complemented visited mask."""
    n = a.n
    level = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n)
    frontier[root] = 1.0
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    level[root] = 0
    depth = 0
    while True:
        depth += 1
        # next = (frontier^T A) masked to unvisited vertices.
        nxt = a.vxm(LOR_LAND, frontier, mask=visited,
                    complement_mask=True)
        new = nxt > 0
        if not new.any():
            break
        level[new] = depth
        visited |= new
        frontier = new.astype(np.float64)
    return level


def grb_sssp(a: GrbMatrix, root: int, max_sweeps: int | None = None
             ) -> np.ndarray:
    """Bellman-Ford via MIN-PLUS vxm to fixpoint."""
    n = a.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    sweeps = max_sweeps if max_sweeps is not None else n
    for _ in range(sweeps):
        relaxed = a.vxm(MIN_PLUS, dist)
        new = a.ewise_add(MIN_PLUS, dist, relaxed)   # min(dist, relaxed)
        if np.array_equal(new, dist):
            break
        dist = new
    return dist


def grb_pagerank(a: GrbMatrix, damping: float = 0.85,
                 epsilon: float = 6e-8, max_iterations: int = 1000
                 ) -> tuple[np.ndarray, int]:
    """PageRank via PLUS-TIMES vxm with the homogenized L1 stop."""
    n = a.n
    ones = np.ones(n)
    out_deg = a.mxv(PLUS_TIMES, ones)     # row sums = out-degrees
    dangling = out_deg == 0
    inv_out = np.where(dangling, 0.0, 1.0 / np.maximum(out_deg, 1e-300))
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    iterations = max_iterations
    for it in range(1, max_iterations + 1):
        weighted = a.ewise_mult(PLUS_TIMES, rank, inv_out)
        contrib = a.vxm(PLUS_TIMES, weighted)
        dangling_mass = a.reduce(PLUS_TIMES,
                                 np.where(dangling, rank, 0.0)) / n
        new_rank = base + damping * (contrib + dangling_mass)
        delta = a.reduce(PLUS_TIMES, np.abs(new_rank - rank))
        rank = new_rank
        if delta < epsilon:
            iterations = it
            break
    return rank, iterations
