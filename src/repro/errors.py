"""Exception hierarchy for easy-parallel-graph-*.

Every error raised on purpose by this package derives from
:class:`ReproError` so callers can catch framework failures without
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """A graph file or in-memory edge list violates its format contract."""


class DatasetError(ReproError):
    """A dataset cannot be generated, located, or homogenized."""


class SystemCapabilityError(ReproError):
    """A graph system was asked for an algorithm it does not provide.

    The paper depends on these holes being real: PowerGraph ships no BFS
    reference implementation, the Graph500 ships *only* BFS, and
    Graphalytics refuses to run SSSP on unweighted graphs.
    """


class ConfigError(ReproError):
    """An experiment configuration is internally inconsistent."""


class LogParseError(ReproError):
    """A native-format log file could not be parsed back into records.

    Carries the offending file, 1-based line number, and raw line (when
    known) both as attributes and in the rendered message, so a damaged
    log can be located without re-parsing by hand.
    """

    def __init__(self, message: str, *, path=None, line_no: int | None = None,
                 line: str | None = None):
        self.path = str(path) if path is not None else None
        self.line_no = line_no
        self.line = line
        where = []
        if self.path is not None:
            where.append(self.path)
        if line_no is not None:
            where.append(f"line {line_no}")
        full = (":".join(where) + f": {message}") if where else message
        if line is not None:
            full += f" (raw: {line!r})"
        super().__init__(full)


class ValidationError(ReproError):
    """An algorithm result failed the Graph500-style output validation."""


class PowerMeasurementError(ReproError):
    """The simulated RAPL interface was used out of protocol order."""


class CellTimeoutError(ReproError):
    """A runner cell made no progress before its per-attempt deadline.

    Mirrors the paper's experience of runs that hang at high thread
    counts: the harness kills the run and either retries or quarantines
    the cell instead of waiting forever.
    """


class CellQuarantinedError(ReproError):
    """A cell exhausted its retry budget and was set aside.

    Raised only when a caller explicitly asks for a quarantined cell's
    results; the pipeline itself records the quarantine and continues,
    the way the paper tolerates PowerGraph shipping no BFS.
    """


class CheckpointError(ReproError):
    """A checkpoint manifest or suite manifest is missing or corrupt."""


class TraceError(ReproError):
    """A recorded trace is missing, malformed, or violates the span
    schema (bad nesting, non-monotonic simulated timestamps)."""


class CacheError(ReproError):
    """The artifact cache was misused (bad size spec, missing
    directory for a maintenance command).

    Never raised on a corrupt *entry*: corruption is handled by
    evicting the entry and regenerating the artifact, because a cache
    must degrade to a miss, not to a failure.
    """


class ServiceError(ReproError):
    """The query daemon was misconfigured or failed to start (bad
    graph spec, port in use, unreadable manifest).

    Never raised per-request: request failures degrade to HTTP error
    responses (429/503) so one bad query can never take the daemon
    down with it.
    """


class ShardError(ReproError):
    """The sharded execution engine lost a worker or an arena.

    Raised when a shard worker dies (crash, SIGKILL) or a superstep
    barrier times out; the engine tears down its shared-memory segments
    before raising, so an aborted sharded run never leaks ``/dev/shm``
    entries or resource-tracker warnings.
    """


class DashboardError(ReproError):
    """The live dashboard was misconfigured or failed to start
    (nothing to watch, port in use).

    Never raised while serving: a vanished run directory, an
    unreachable daemon, or an incompatible ``/stats`` schema degrade
    to error panels on the affected page, because an ops console must
    outlive the things it watches.
    """
