"""Exception hierarchy for easy-parallel-graph-*.

Every error raised on purpose by this package derives from
:class:`ReproError` so callers can catch framework failures without
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """A graph file or in-memory edge list violates its format contract."""


class DatasetError(ReproError):
    """A dataset cannot be generated, located, or homogenized."""


class SystemCapabilityError(ReproError):
    """A graph system was asked for an algorithm it does not provide.

    The paper depends on these holes being real: PowerGraph ships no BFS
    reference implementation, the Graph500 ships *only* BFS, and
    Graphalytics refuses to run SSSP on unweighted graphs.
    """


class ConfigError(ReproError):
    """An experiment configuration is internally inconsistent."""


class LogParseError(ReproError):
    """A native-format log file could not be parsed back into records."""


class ValidationError(ReproError):
    """An algorithm result failed the Graph500-style output validation."""


class PowerMeasurementError(ReproError):
    """The simulated RAPL interface was used out of protocol order."""
