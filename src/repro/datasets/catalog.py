"""Dataset catalog: every workload the harness knows, with metadata.

One registry mapping dataset names to their published statistics,
generation entry points, and provenance notes -- the "datasets" face of
the paper's Spack-packaging direction (Sec. V).  ``epg datasets``
prints it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DatasetError
from repro.graph.edgelist import EdgeList

__all__ = ["CatalogEntry", "catalog", "get_entry", "generate"]


@dataclass(frozen=True)
class CatalogEntry:
    """One known dataset family."""

    name: str
    kind: str                  # "synthetic" | "real-world-standin"
    description: str
    directed: bool
    weighted: bool
    #: Published full size, if the family models a real network.
    full_vertices: int | None
    full_edges: int | None
    source: str
    generator: Callable[..., EdgeList]


def _kron(scale: int = 14, seed: int = 20170402,
          weighted: bool = True) -> EdgeList:
    from repro.datasets.kronecker import KroneckerSpec, generate_kronecker

    return generate_kronecker(KroneckerSpec(scale=scale, seed=seed,
                                            weighted=weighted))


def _patents(factor: float | None = None, seed: int | None = None
             ) -> EdgeList:
    from repro.datasets.realworld import (
        CIT_PATENTS_DEFAULT_FACTOR,
        cit_patents,
    )

    return cit_patents(factor or CIT_PATENTS_DEFAULT_FACTOR, seed=seed)


def _dota(factor: float | None = None, seed: int | None = None
          ) -> EdgeList:
    from repro.datasets.realworld import (
        DOTA_LEAGUE_DEFAULT_FACTOR,
        dota_league,
    )

    return dota_league(factor or DOTA_LEAGUE_DEFAULT_FACTOR, seed=seed)


_CATALOG: dict[str, CatalogEntry] = {
    "kronecker": CatalogEntry(
        name="kronecker", kind="synthetic",
        description="Graph500 Kronecker generator (A=0.57, B=0.19, "
                    "C=0.19, D=0.05, edge factor 16); the paper's "
                    "scale-22/23 workload",
        directed=False, weighted=True,
        full_vertices=None, full_edges=None,
        source="Graph500 specification / paper Sec. III-B",
        generator=_kron),
    "cit-patents": CatalogEntry(
        name="cit-patents", kind="real-world-standin",
        description="NBER patent citation network stand-in: sparse "
                    "directed unweighted DAG, heavy-tailed in-degree",
        directed=True, weighted=False,
        full_vertices=3_774_768, full_edges=16_518_948,
        source="SNAP (Leskovec et al.); synthetic model in "
               "repro.datasets.realworld",
        generator=_patents),
    "dota-league": CatalogEntry(
        name="dota-league", kind="real-world-standin",
        description="Defense of the Ancients interaction graph "
                    "stand-in: dense weighted undirected, avg "
                    "out-degree ~824 at full size",
        directed=False, weighted=True,
        full_vertices=61_670, full_edges=50_870_313,
        source="Game Trace Archive via Graphalytics; synthetic model "
               "in repro.datasets.realworld",
        generator=_dota),
}


def catalog() -> list[CatalogEntry]:
    """All known entries, name-sorted."""
    return [_CATALOG[k] for k in sorted(_CATALOG)]


def get_entry(name: str) -> CatalogEntry:
    try:
        return _CATALOG[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_CATALOG)}"
        ) from None


def generate(name: str, **kwargs) -> EdgeList:
    """Generate a catalog dataset (kwargs go to its generator)."""
    return get_entry(name).generator(**kwargs)
