"""Per-system native file formats.

The paper's phase 2 ("dataset homogenizer") converts one input graph
into every system's preferred on-disk format, both for correctness and
"to speed up file I/O whenever possible by using the library designer's
serialized data structure file formats" (Sec. III-B).  Each format here
mirrors the observable layout of the real system's format:

=============  ==================================================
GAP            ``.sg`` / ``.wsg`` -- serialized CSR binary
Graph500       ``.g500`` -- packed int64 edge tuples (generator dump)
GraphBIG       ``vertex.csv`` + ``edge.csv`` (IBM System G CSV)
GraphMat       ``.mtxbin`` -- binary 1-based (src, dst, weight) triples
PowerGraph     ``.tsv`` -- whitespace edge list (snap loader)
plain          ``.el`` / ``.wel`` -- text edge list
=============  ==================================================
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = [
    "write_el", "read_el",
    "write_sg", "read_sg",
    "write_g500", "read_g500",
    "write_graphbig_csv", "read_graphbig_csv",
    "write_graphmat_bin", "read_graphmat_bin",
    "write_powergraph_tsv", "read_powergraph_tsv",
]

_SG_MAGIC = b"GAPBSSG1"
_G500_MAGIC = b"GRPH500E"
_GMAT_MAGIC = b"GMATBIN1"


# ----------------------------------------------------------------------
# Plain text edge lists (.el / .wel) -- GAP's converter input format.
# ----------------------------------------------------------------------
def write_el(edges: EdgeList, path: str | Path) -> Path:
    """Write ``src dst [weight]`` per line; extension picks weighting."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if edges.weighted:
        cols = np.column_stack([
            edges.src.astype(np.float64), edges.dst.astype(np.float64),
            edges.weights])
        np.savetxt(path, cols, fmt="%d %d %.17g")
    else:
        np.savetxt(path, np.column_stack([edges.src, edges.dst]), fmt="%d %d")
    return path


def read_el(path: str | Path, n_vertices: int | None = None,
            directed: bool = True, name: str = "graph") -> EdgeList:
    arr = np.loadtxt(path, dtype=np.float64, ndmin=2)
    if arr.size == 0:
        return EdgeList(np.zeros(0, np.int64), np.zeros(0, np.int64),
                        n_vertices or 0, directed=directed, name=name)
    src = arr[:, 0].astype(np.int64)
    dst = arr[:, 1].astype(np.int64)
    weights = arr[:, 2].copy() if arr.shape[1] >= 3 else None
    n = n_vertices if n_vertices is not None else int(
        max(src.max(), dst.max())) + 1
    return EdgeList(src, dst, n, weights=weights, directed=directed,
                    name=name)


# ----------------------------------------------------------------------
# GAP serialized graph (.sg/.wsg): header + row_ptr + col_idx (+ weights).
# ----------------------------------------------------------------------
def write_sg(edges: EdgeList, path: str | Path,
             symmetrize: bool = False) -> Path:
    """Serialize CSR the way GAP's ``converter -b`` does.

    GAP stores the *built* graph so benchmark runs skip text parsing;
    EPG* measures that difference as the read-vs-build phase split.
    """
    from repro.graph.csr import CSRGraph

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    csr = CSRGraph.from_edge_list(edges, symmetrize=symmetrize)
    with path.open("wb") as fh:
        fh.write(_SG_MAGIC)
        fh.write(struct.pack(
            "<qq?", csr.n_vertices, csr.n_edges, csr.weighted))
        fh.write(csr.row_ptr.tobytes())
        fh.write(csr.col_idx.tobytes())
        if csr.weighted:
            fh.write(csr.weights.tobytes())
    return path


def read_sg(path: str | Path):
    """Load a ``.sg`` file back into a :class:`CSRGraph`."""
    from repro.graph.csr import CSRGraph

    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(len(_SG_MAGIC))
        if magic != _SG_MAGIC:
            raise GraphFormatError(f"{path}: not a GAP .sg file")
        header = fh.read(17)
        if len(header) != 17:
            raise GraphFormatError(f"{path}: truncated .sg header")
        n, m, weighted = struct.unpack("<qq?", header)
        if n < 0 or m < 0:
            raise GraphFormatError(f"{path}: corrupt .sg header")
        rp_raw = fh.read(8 * (n + 1))
        ci_raw = fh.read(8 * m)
        if len(rp_raw) != 8 * (n + 1) or len(ci_raw) != 8 * m:
            raise GraphFormatError(f"{path}: truncated .sg body")
        row_ptr = np.frombuffer(rp_raw, dtype=np.int64)
        col_idx = np.frombuffer(ci_raw, dtype=np.int64)
        weights = None
        if weighted:
            w_raw = fh.read(8 * m)
            if len(w_raw) != 8 * m:
                raise GraphFormatError(f"{path}: truncated .sg weights")
            weights = np.frombuffer(w_raw, dtype=np.float64)
    return CSRGraph(row_ptr=row_ptr.copy(), col_idx=col_idx.copy(),
                    weights=None if weights is None else weights.copy())


# ----------------------------------------------------------------------
# Graph500 packed edge tuples (.g500).
# ----------------------------------------------------------------------
def write_g500(edges: EdgeList, path: str | Path) -> Path:
    """Packed int64 pairs (plus float64 weights), the generator dump the
    reference code can mmap straight into its edge-list kernel input."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        fh.write(_G500_MAGIC)
        fh.write(struct.pack("<qq?", edges.n_vertices, edges.n_edges,
                             edges.weighted))
        pairs = np.empty(2 * edges.n_edges, dtype=np.int64)
        pairs[0::2] = edges.src
        pairs[1::2] = edges.dst
        fh.write(pairs.tobytes())
        if edges.weighted:
            fh.write(edges.weights.tobytes())
    return path


def read_g500(path: str | Path, name: str = "graph") -> EdgeList:
    path = Path(path)
    with path.open("rb") as fh:
        if fh.read(len(_G500_MAGIC)) != _G500_MAGIC:
            raise GraphFormatError(f"{path}: not a Graph500 edge dump")
        header = fh.read(17)
        if len(header) != 17:
            raise GraphFormatError(f"{path}: truncated header")
        n, m, weighted = struct.unpack("<qq?", header)
        if n < 0 or m < 0:
            raise GraphFormatError(f"{path}: corrupt header")
        raw = fh.read(16 * m)
        if len(raw) != 16 * m:
            raise GraphFormatError(f"{path}: truncated edge tuples")
        pairs = np.frombuffer(raw, dtype=np.int64)
        weights = None
        if weighted:
            w_raw = fh.read(8 * m)
            if len(w_raw) != 8 * m:
                raise GraphFormatError(f"{path}: truncated weights")
            weights = np.frombuffer(w_raw, dtype=np.float64).copy()
    return EdgeList(pairs[0::2].copy(), pairs[1::2].copy(), n,
                    weights=weights, directed=False, name=name)


# ----------------------------------------------------------------------
# GraphBIG (IBM System G) CSV pair: vertex.csv + edge.csv.
# ----------------------------------------------------------------------
def write_graphbig_csv(edges: EdgeList, directory: str | Path) -> Path:
    """GraphBIG datasets are directories holding vertex and edge CSVs."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    vpath = directory / "vertex.csv"
    epath = directory / "edge.csv"
    with vpath.open("w", encoding="utf-8") as fh:
        fh.write("id\n")
        np.savetxt(fh, np.arange(edges.n_vertices, dtype=np.int64), fmt="%d")
    with epath.open("w", encoding="utf-8") as fh:
        if edges.weighted:
            fh.write("src,dst,weight\n")
            cols = np.column_stack([
                edges.src.astype(np.float64), edges.dst.astype(np.float64),
                edges.weights])
            np.savetxt(fh, cols, fmt="%d,%d,%.17g")
        else:
            fh.write("src,dst\n")
            np.savetxt(fh, np.column_stack([edges.src, edges.dst]),
                       fmt="%d,%d")
    return directory


def read_graphbig_csv(directory: str | Path, directed: bool = True,
                      name: str = "graph") -> EdgeList:
    directory = Path(directory)
    vpath = directory / "vertex.csv"
    epath = directory / "edge.csv"
    if not vpath.exists() or not epath.exists():
        raise GraphFormatError(f"{directory}: missing GraphBIG CSV pair")
    n = sum(1 for _ in vpath.open()) - 1
    arr = np.loadtxt(epath, dtype=np.float64, delimiter=",",
                     skiprows=1, ndmin=2)
    if arr.size == 0:
        return EdgeList(np.zeros(0, np.int64), np.zeros(0, np.int64), n,
                        directed=directed, name=name)
    weights = arr[:, 2].copy() if arr.shape[1] >= 3 else None
    return EdgeList(arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64),
                    n, weights=weights, directed=directed, name=name)


# ----------------------------------------------------------------------
# GraphMat binary matrix (.mtxbin): 1-based int32 endpoints + f32 weight.
# ----------------------------------------------------------------------
def write_graphmat_bin(edges: EdgeList, path: str | Path) -> Path:
    """GraphMat's binary edge format: (int32 src1, int32 dst1, f32 val)
    records, 1-based as in Matrix Market, preceded by a small header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    m = edges.n_edges
    rec = np.zeros(m, dtype=[("src", "<i4"), ("dst", "<i4"), ("val", "<f4")])
    rec["src"] = edges.src + 1
    rec["dst"] = edges.dst + 1
    rec["val"] = edges.weights if edges.weighted else 1.0
    with path.open("wb") as fh:
        fh.write(_GMAT_MAGIC)
        fh.write(struct.pack("<qq?", edges.n_vertices, m, edges.weighted))
        fh.write(rec.tobytes())
    return path


def read_graphmat_bin(path: str | Path, directed: bool = True,
                      name: str = "graph") -> EdgeList:
    path = Path(path)
    with path.open("rb") as fh:
        if fh.read(len(_GMAT_MAGIC)) != _GMAT_MAGIC:
            raise GraphFormatError(f"{path}: not a GraphMat binary matrix")
        header = fh.read(17)
        if len(header) != 17:
            raise GraphFormatError(f"{path}: truncated header")
        n, m, weighted = struct.unpack("<qq?", header)
        if n < 0 or m < 0:
            raise GraphFormatError(f"{path}: corrupt header")
        raw = fh.read(12 * m)
        if len(raw) != 12 * m:
            raise GraphFormatError(f"{path}: truncated records")
        rec = np.frombuffer(
            raw, dtype=[("src", "<i4"), ("dst", "<i4"), ("val", "<f4")])
    src = rec["src"].astype(np.int64) - 1
    dst = rec["dst"].astype(np.int64) - 1
    weights = rec["val"].astype(np.float64) if weighted else None
    return EdgeList(src, dst, n, weights=weights, directed=directed,
                    name=name)


# ----------------------------------------------------------------------
# PowerGraph TSV (its snap/tsv loader).
# ----------------------------------------------------------------------
def write_powergraph_tsv(edges: EdgeList, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if edges.weighted:
        cols = np.column_stack([
            edges.src.astype(np.float64), edges.dst.astype(np.float64),
            edges.weights])
        np.savetxt(path, cols, fmt="%d\t%d\t%.17g")
    else:
        np.savetxt(path, np.column_stack([edges.src, edges.dst]),
                   fmt="%d\t%d")
    return path


def read_powergraph_tsv(path: str | Path, n_vertices: int | None = None,
                        directed: bool = True,
                        name: str = "graph") -> EdgeList:
    return read_el(path, n_vertices=n_vertices, directed=directed, name=name)
