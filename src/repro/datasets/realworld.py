"""Synthetic stand-ins for the paper's two real-world datasets.

The paper evaluates on ``cit-Patents`` (SNAP: 3,774,768 vertices,
16,518,948 directed unweighted citation edges, average out-degree ~4.4)
and ``dota-league`` (Game Trace Archive via Graphalytics: 61,670
vertices, 50,870,313 weighted edges, average out-degree ~824 -- "both
weighted and more dense than the usual real-world dataset").

Neither file ships with this repo (no network, and the Game Trace
Archive download is gated), so per the substitution rule we generate
graphs that preserve the *shape properties the paper's observations
hinge on*:

* ``cit-patents`` -- a citation DAG: every vertex cites a handful of
  strictly older vertices chosen by preferential attachment with
  recency bias.  Sparse, directed, unweighted, heavy-tailed in-degree.
  (Unweighted is what makes Graphalytics print ``N/A`` for SSSP on it,
  Table I.)
* ``dota-league`` -- a dense weighted interaction graph: players meet
  other players with popularity-proportional probability; edge weights
  count match interactions.  Density and weightedness are what make
  PowerGraph's vertex-cut shine on it (Sec. IV-C).

Both are scalable: the defaults are CI-sized, and ``scaled(f)`` moves
toward the published full sizes while keeping the density contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import DatasetError
from repro.graph.edgelist import EdgeList

__all__ = [
    "DatasetSpec",
    "CIT_PATENTS_FULL",
    "DOTA_LEAGUE_FULL",
    "cit_patents",
    "dota_league",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of a dataset plus generation parameters."""

    name: str
    n_vertices: int
    n_edges: int
    directed: bool
    weighted: bool
    seed: int = 20170517

    @property
    def avg_out_degree(self) -> float:
        return self.n_edges / max(self.n_vertices, 1)

    def scaled(self, factor: float) -> "DatasetSpec":
        """Shrink (or grow) vertex count by ``factor``, preserving the
        *density contrast*: average degree shrinks by ``sqrt(factor)`` so
        that relative density between datasets is preserved while edge
        counts stay tractable."""
        if factor <= 0:
            raise DatasetError("scale factor must be positive")
        n = max(int(round(self.n_vertices * factor)), 16)
        # Sparse datasets keep their average degree; dense ones shrink it
        # by sqrt(factor) so density does not explode as n falls.
        deg = max(self.avg_out_degree * factor ** 0.5,
                  min(self.avg_out_degree, 4.5))
        m = int(round(n * deg))
        return replace(self, n_vertices=n, n_edges=m)


#: Published full sizes (paper Sec. III-B).
CIT_PATENTS_FULL = DatasetSpec(
    name="cit-Patents", n_vertices=3_774_768, n_edges=16_518_948,
    directed=True, weighted=False,
)
DOTA_LEAGUE_FULL = DatasetSpec(
    name="dota-league", n_vertices=61_670, n_edges=50_870_313,
    directed=False, weighted=True,
)

#: Default shrink factors giving second-scale pure-Python experiments
#: while keeping dota-league ~40x denser per vertex than cit-Patents.
CIT_PATENTS_DEFAULT_FACTOR = 1.0 / 256.0
DOTA_LEAGUE_DEFAULT_FACTOR = 1.0 / 64.0


def cit_patents(factor: float = CIT_PATENTS_DEFAULT_FACTOR,
                seed: int | None = None) -> EdgeList:
    """Generate the synthetic ``cit-Patents`` stand-in.

    Construction: vertices are patents in grant order.  Vertex ``v``
    cites ``k_v ~ 1 + Poisson(d - 1)`` earlier patents; each citation
    targets patent ``v - 1 - floor(x)`` where ``x`` is drawn from a
    Pareto-ish recency kernel mixed with uniform attachment, giving the
    heavy-tailed in-degree and short-range citation locality of the real
    network.  The result is a DAG (edges point old -> new is *false*;
    citations point new -> old, as in SNAP's cit-Patents).
    """
    spec = CIT_PATENTS_FULL.scaled(factor)
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    n = spec.n_vertices
    target_m = spec.n_edges
    avg_deg = target_m / n

    # Vertex 0 cannot cite anyone; spread its quota over the rest.
    k = 1 + rng.poisson(max(avg_deg - 1.0, 0.05), size=n)
    k[0] = 0
    k[1:] = np.minimum(k[1:], np.arange(1, n))  # cannot cite more than exist
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    m = src.size

    # Recency kernel: mixture of short-range (recent patents) and
    # uniform over all older patents (classic citations).
    recent = rng.random(m) < 0.7
    span = src.astype(np.float64)
    # Lomax/Pareto offsets clipped to the available history.
    offs = np.floor(rng.pareto(1.3, size=m) * 8.0) + 1.0
    offs = np.minimum(offs, span)
    uniform_t = np.floor(rng.random(m) * span)
    dst = np.where(recent, src - offs.astype(np.int64),
                   uniform_t.astype(np.int64))
    dst = np.clip(dst, 0, src - 1)

    el = EdgeList(src, dst, n, directed=True, name="cit-Patents")
    return el.deduplicated()


def dota_league(factor: float = DOTA_LEAGUE_DEFAULT_FACTOR,
                seed: int | None = None) -> EdgeList:
    """Generate the synthetic ``dota-league`` stand-in.

    Construction: each of ``n`` players has a popularity drawn from a
    log-normal; matches pair players with popularity-proportional
    probability; each pair's weight is its match count.  Undirected,
    weighted, dense (average degree hundreds of times that of
    cit-Patents), with the high-degree hubs the paper credits for
    PowerGraph's edge-cut advantage.
    """
    spec = DOTA_LEAGUE_FULL.scaled(factor)
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    n = spec.n_vertices
    target_pairs = spec.n_edges

    popularity = rng.lognormal(mean=0.0, sigma=1.0, size=n)
    p = popularity / popularity.sum()

    # Draw ~2x the target in raw matches; aggregation to unique pairs
    # with counts produces weights > 1 for repeat opponents.
    raw = int(target_pairs * 2)
    a = rng.choice(n, size=raw, p=p).astype(np.int64)
    b = rng.choice(n, size=raw, p=p).astype(np.int64)
    keep = a != b
    a, b = a[keep], b[keep]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    key = lo * np.int64(n) + hi
    uniq, counts = np.unique(key, return_counts=True)
    if uniq.size > target_pairs:
        sel = rng.choice(uniq.size, size=target_pairs, replace=False)
        sel.sort()
        uniq, counts = uniq[sel], counts[sel]
    src = (uniq // n).astype(np.int64)
    dst = (uniq % n).astype(np.int64)
    weights = counts.astype(np.float64)

    return EdgeList(src, dst, n, weights=weights, directed=False,
                    name="dota-league")
