"""SNAP edge-list text format.

Per the paper's footnote 4: *"A file in the SNAP format consists of one
edge per line, with vertices separated by whitespace and lines which
begin with # are comments."*  EPG* accepts any dataset in this format,
so this module is the ingestion point for arbitrary user graphs.

An optional third whitespace-separated column carries edge weights
(the convention the Graphalytics property-graph exports use).

Reading is vectorized through ``numpy`` string parsing rather than a
Python loop over lines; on multi-million-edge files this is the
difference between seconds and minutes.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = ["read_snap", "write_snap", "sniff_snap"]


def sniff_snap(path: str | Path, max_lines: int = 50) -> dict:
    """Peek at a SNAP file: comment header, weightedness, column count."""
    path = Path(path)
    comments: list[str] = []
    n_cols = 0
    with path.open("r", encoding="utf-8") as fh:
        for _ in range(max_lines):
            line = fh.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                comments.append(line[1:].strip())
                continue
            n_cols = len(line.split())
            break
    if n_cols not in (0, 2, 3):
        raise GraphFormatError(
            f"{path}: expected 2 or 3 columns, found {n_cols}")
    return {"comments": comments, "n_cols": n_cols,
            "weighted": n_cols == 3}


def read_snap(path: str | Path, directed: bool = True,
              name: str | None = None) -> EdgeList:
    """Parse a SNAP-format file into an :class:`EdgeList`.

    Vertex ids may be arbitrary non-negative integers; they are compacted
    to ``[0, n)`` preserving numeric order (the same normalization the
    paper's homogenization step applies so every system sees identical
    ids).
    """
    path = Path(path)
    sniff_snap(path)  # fail fast on a malformed header/column layout
    text = path.read_text(encoding="utf-8")
    # Strip comment lines, then bulk-parse.
    data_lines = [ln for ln in text.splitlines()
                  if ln.strip() and not ln.lstrip().startswith("#")]
    if not data_lines:
        return EdgeList(np.zeros(0, np.int64), np.zeros(0, np.int64), 0,
                        directed=directed, name=name or path.stem)
    buf = io.StringIO("\n".join(data_lines))
    try:
        arr = np.loadtxt(buf, dtype=np.float64, ndmin=2)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: malformed edge line: {exc}") from exc
    if arr.shape[1] not in (2, 3):
        raise GraphFormatError(
            f"{path}: expected 2 or 3 columns, found {arr.shape[1]}")
    raw_src = arr[:, 0]
    raw_dst = arr[:, 1]
    if np.any(raw_src != np.floor(raw_src)) or np.any(raw_dst != np.floor(raw_dst)):
        raise GraphFormatError(f"{path}: vertex ids must be integers")
    raw_src = raw_src.astype(np.int64)
    raw_dst = raw_dst.astype(np.int64)
    if raw_src.size and min(raw_src.min(), raw_dst.min()) < 0:
        raise GraphFormatError(f"{path}: negative vertex id")
    weights = arr[:, 2].copy() if arr.shape[1] == 3 else None

    ids = np.union1d(raw_src, raw_dst)
    src = np.searchsorted(ids, raw_src)
    dst = np.searchsorted(ids, raw_dst)
    return EdgeList(src, dst, int(ids.size), weights=weights,
                    directed=directed, name=name or path.stem)


def write_snap(edges: EdgeList, path: str | Path,
               comments: tuple[str, ...] = ()) -> Path:
    """Write an :class:`EdgeList` as a SNAP-format text file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = [f"# {c}" for c in (
        f"Nodes: {edges.n_vertices} Edges: {edges.n_edges}",
        "Directed" if edges.directed else "Undirected",
        *comments,
    )]
    if edges.weighted:
        cols = np.column_stack(
            [edges.src.astype(np.float64), edges.dst.astype(np.float64),
             edges.weights])
        fmt = "%d\t%d\t%.17g"
    else:
        cols = np.column_stack([edges.src, edges.dst])
        fmt = "%d\t%d"
    with path.open("w", encoding="utf-8") as fh:
        fh.write("\n".join(header) + "\n")
        np.savetxt(fh, cols, fmt=fmt)
    return path
