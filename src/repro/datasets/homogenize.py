"""Pipeline phase 2: dataset homogenization.

"Homogenizing the datasets creates copies of the graph files and
auxiliary files in various formats.  This is both to ensure they are
correctly formatted for each system and to speed up file I/O whenever
possible by using the library designer's serialized data structure file
formats." (paper Sec. III-B)

Given one :class:`~repro.graph.edgelist.EdgeList` (synthetic or parsed
from a SNAP file), :func:`homogenize` writes a dataset directory:

.. code-block:: text

    <out>/<name>/
        manifest.json          dataset statistics + file inventory
        <name>.el / .wel       plain edge list (weighted variant)
        <name>.sg / .wsg       GAP serialized CSR
        <name>.g500            Graph500 packed tuples
        <name>.mtxbin          GraphMat binary matrix
        <name>.tsv             PowerGraph edge TSV
        graphbig/              GraphBIG vertex.csv + edge.csv
        roots.txt              the 32 search roots (degree > 1)

Auxiliary rules from the paper:

* 32 roots per graph, each with degree greater than 1 (Graph500 rule);
* SSSP on unweighted datasets uses generated uniform weights (the
  Graph500 SSSP convention), so a ``.wel`` twin is always produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets import formats
from repro.errors import DatasetError
from repro.graph.edgelist import EdgeList

__all__ = ["HomogenizedDataset", "homogenize", "load_manifest",
           "select_roots"]

N_ROOTS_DEFAULT = 32

#: Per-format writer keys, in the order :func:`homogenize` emits them.
#: The cache restore path replays identical ``write:<key>`` spans in
#: this order so a warm trace is indistinguishable from a cold one.
_WRITER_KEYS = ("el", "wel", "sg", "wsg", "g500", "mtxbin", "tsv",
                "graphbig")


def select_roots(edges: EdgeList, n_roots: int = N_ROOTS_DEFAULT,
                 seed: int = 2):
    """Sample search roots the way the Graph500 does.

    "Each experiment uses 32 roots per graph.  As with the Graph500,
    each root is selected to have a degree greater than 1."  Sampling is
    uniform without replacement over eligible vertices; if fewer than
    ``n_roots`` vertices qualify, sampling falls back to with-replacement
    over whatever qualifies (tiny test graphs).
    """
    deg = edges.degrees()
    eligible = np.flatnonzero(deg > 1)
    if eligible.size == 0:
        raise DatasetError("no vertex has degree > 1; cannot choose roots")
    rng = np.random.default_rng(seed)
    replace = eligible.size < n_roots
    roots = rng.choice(eligible, size=n_roots, replace=replace)
    return roots.astype(np.int64)


@dataclass(frozen=True)
class HomogenizedDataset:
    """Handle to a homogenized dataset directory."""

    name: str
    directory: Path
    n_vertices: int
    n_edges: int
    directed: bool
    weighted: bool
    roots: np.ndarray
    files: dict

    def path(self, key: str) -> Path:
        """Absolute path of one homogenized artifact (e.g. ``'sg'``)."""
        try:
            return self.directory / self.files[key]
        except KeyError:
            raise DatasetError(
                f"{self.name}: no homogenized file {key!r}; "
                f"have {sorted(self.files)}") from None

    def load_edges(self) -> EdgeList:
        """Reload the canonical (possibly weighted) edge list."""
        key = "wel" if self.weighted else "el"
        el = formats.read_el(self.path(key), n_vertices=self.n_vertices,
                             directed=self.directed, name=self.name)
        return el


def _restore_tree(tree: Path, ddir: Path, tracer,
                  name: str) -> HomogenizedDataset:
    """Copy a cached homogenized tree into ``ddir``.

    Emits the same ``write:<key>`` spans, in the same order, as a cold
    :func:`homogenize` so traces stay byte-transparent to caching.
    """
    import shutil

    manifest = json.loads((tree / "manifest.json").read_text(
        encoding="utf-8"))
    files = manifest["files"]
    ddir.mkdir(parents=True, exist_ok=True)

    def _copy(rel: str) -> None:
        src, dst = tree / rel, ddir / rel
        if src.is_dir():
            shutil.copytree(src, dst, dirs_exist_ok=True)
        else:
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy2(src, dst)

    for key in _WRITER_KEYS:
        if tracer is not None:
            with tracer.span(f"write:{key}", category="dataset",
                             dataset=name):
                _copy(files[key])
        else:
            _copy(files[key])
    _copy(files["roots"])
    shutil.copy2(tree / "manifest.json", ddir / "manifest.json")
    return load_manifest(ddir)


def homogenize(edges: EdgeList, out_dir: str | Path,
               n_roots: int = N_ROOTS_DEFAULT,
               seed: int = 2, tracer=None,
               cache=None) -> HomogenizedDataset:
    """Write every per-system input file for ``edges`` under ``out_dir``.

    ``tracer`` (optional :class:`~repro.observability.tracer.Tracer`)
    records one ``dataset`` span per format written.

    ``cache`` is an optional :class:`repro.cache.ArtifactCache`; the
    finished tree is memoized under a digest of the edge list and the
    recipe (``n_roots``, ``seed``), and a hit restores the files by copy
    instead of re-serializing every format.
    """
    out_dir = Path(out_dir)
    name = edges.name
    ddir = out_dir / name

    ckey = None
    if cache is not None:
        from repro.cache.keys import homogenize_key

        ckey = homogenize_key(edges, n_roots, seed)
        entry = cache.get(ckey, kind="homogenize")
        if entry is not None:
            try:
                return _restore_tree(entry / "tree", ddir, tracer, name)
            except Exception as exc:  # noqa: BLE001 -- degrade to miss
                cache._log.warning(
                    "cache entry %s unusable (%s: %s); rebuilding",
                    ckey, type(exc).__name__, exc)
                cache._evict(cache._entry_dir(ckey))

    ddir.mkdir(parents=True, exist_ok=True)

    weighted_el = edges if edges.weighted else edges.with_random_weights(
        seed=seed ^ 0x5355)

    files: dict[str, str] = {}

    def _rel(p: Path) -> str:
        return str(p.relative_to(ddir))

    unweighted_el = EdgeList(edges.src, edges.dst, edges.n_vertices,
                             directed=edges.directed, name=name)
    writers = [
        ("el", lambda: formats.write_el(unweighted_el,
                                        ddir / f"{name}.el")),
        ("wel", lambda: formats.write_el(weighted_el,
                                         ddir / f"{name}.wel")),
        ("sg", lambda: formats.write_sg(
            edges, ddir / f"{name}.sg", symmetrize=not edges.directed)),
        ("wsg", lambda: formats.write_sg(
            weighted_el, ddir / f"{name}.wsg",
            symmetrize=not edges.directed)),
        ("g500", lambda: formats.write_g500(weighted_el,
                                            ddir / f"{name}.g500")),
        ("mtxbin", lambda: formats.write_graphmat_bin(
            weighted_el, ddir / f"{name}.mtxbin")),
        ("tsv", lambda: formats.write_powergraph_tsv(
            weighted_el, ddir / f"{name}.tsv")),
        ("graphbig", lambda: formats.write_graphbig_csv(
            weighted_el, ddir / "graphbig")),
    ]
    for key, write in writers:
        if tracer is not None:
            with tracer.span(f"write:{key}", category="dataset",
                             dataset=name):
                files[key] = _rel(write())
        else:
            files[key] = _rel(write())

    roots = select_roots(edges, n_roots=n_roots, seed=seed)
    roots_path = ddir / "roots.txt"
    np.savetxt(roots_path, roots, fmt="%d")
    files["roots"] = _rel(roots_path)

    manifest = {
        "name": name,
        "n_vertices": edges.n_vertices,
        "n_edges": edges.n_edges,
        "directed": edges.directed,
        "weighted": edges.weighted,
        "n_roots": int(roots.size),
        "files": files,
    }
    from repro.ioutil import atomic_write_json

    atomic_write_json(ddir / "manifest.json", manifest)

    if ckey is not None:
        import shutil

        cache.put(ckey, "homogenize",
                  lambda tmp: shutil.copytree(ddir, tmp / "tree"),
                  meta={"name": name})

    return HomogenizedDataset(
        name=name, directory=ddir, n_vertices=edges.n_vertices,
        n_edges=edges.n_edges, directed=edges.directed,
        weighted=edges.weighted, roots=roots, files=files,
    )


def load_manifest(directory: str | Path) -> HomogenizedDataset:
    """Reopen a previously homogenized dataset directory."""
    directory = Path(directory)
    mpath = directory / "manifest.json"
    if not mpath.exists():
        raise DatasetError(f"{directory}: no manifest.json (not homogenized?)")
    manifest = json.loads(mpath.read_text(encoding="utf-8"))
    roots = np.loadtxt(directory / manifest["files"]["roots"],
                       dtype=np.int64, ndmin=1)
    return HomogenizedDataset(
        name=manifest["name"], directory=directory,
        n_vertices=manifest["n_vertices"], n_edges=manifest["n_edges"],
        directed=manifest["directed"], weighted=manifest["weighted"],
        roots=roots, files=manifest["files"],
    )
