"""Dataset generation, file formats, and homogenization (pipeline phase 2).

The paper's datasets:

* synthetic Kronecker graphs per the Graph500 spec
  (:mod:`~repro.datasets.kronecker`) -- "a graph with scale S has 2^S
  vertices" and an average of 16 edges per vertex;
* ``cit-Patents`` (SNAP) and ``dota-league`` (Game Trace Archive /
  Graphalytics) -- rebuilt here as synthetic generators matching their
  published shape statistics (:mod:`~repro.datasets.realworld`);
* any file in the SNAP edge-list text format
  (:mod:`~repro.datasets.snap`).

:mod:`~repro.datasets.homogenize` implements the paper's phase 2: given
one dataset, write the input files every system natively reads, so no
system pays a format-conversion penalty at run time.
"""

from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.datasets.realworld import (
    CIT_PATENTS_FULL,
    DOTA_LEAGUE_FULL,
    DatasetSpec,
    cit_patents,
    dota_league,
)
from repro.datasets.snap import read_snap, write_snap

__all__ = [
    "KroneckerSpec",
    "generate_kronecker",
    "DatasetSpec",
    "cit_patents",
    "dota_league",
    "CIT_PATENTS_FULL",
    "DOTA_LEAGUE_FULL",
    "read_snap",
    "write_snap",
]
