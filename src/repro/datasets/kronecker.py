"""Graph500 Kronecker (stochastic-RMAT) graph generator.

Reimplements the reference generator's observable behaviour: initiator
probabilities ``A=0.57, B=0.19, C=0.19, D=0.05``, edge factor 16 (so a
scale-``S`` graph has ``2^S`` vertices and ``16 * 2^S`` undirected edge
tuples), a uniform random vertex permutation to destroy locality, and
uniform ``(0, 1]`` edge weights for the SSSP variant.

The recursive bit-by-bit quadrant choice is vectorized across all edges:
for each of the ``S`` levels we draw one uniform per edge and split it
against the initiator matrix, accumulating one source bit and one
destination bit -- identical in distribution to the octave/C reference,
with NumPy's PCG64 in place of its Mersenne kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graph.edgelist import EdgeList

__all__ = ["KroneckerSpec", "generate_kronecker"]

#: Initiator probabilities from the Graph500 specification (paper Sec. III-B).
INITIATOR_A = 0.57
INITIATOR_B = 0.19
INITIATOR_C = 0.19
INITIATOR_D = 1.0 - (INITIATOR_A + INITIATOR_B + INITIATOR_C)

#: Average number of undirected edges per vertex (Graph500 "edgefactor").
DEFAULT_EDGE_FACTOR = 16


@dataclass(frozen=True)
class KroneckerSpec:
    """Parameters of one synthetic graph.

    ``scale`` is the Graph500 scale: the graph has ``2**scale`` vertices
    and ``edge_factor * 2**scale`` generated edge tuples (before any
    dedup; the Graph500 explicitly keeps duplicates and self-loops in the
    edge list and leaves cleanup to the implementation).
    """

    scale: int
    edge_factor: int = DEFAULT_EDGE_FACTOR
    a: float = INITIATOR_A
    b: float = INITIATOR_B
    c: float = INITIATOR_C
    seed: int = 20170402
    weighted: bool = False

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise DatasetError("scale must be >= 1")
        if self.edge_factor < 1:
            raise DatasetError("edge_factor must be >= 1")
        if min(self.a, self.b, self.c) < 0 or self.a + self.b + self.c >= 1:
            raise DatasetError("initiator probabilities must be a sub-stochastic triple")

    @property
    def d(self) -> float:
        return 1.0 - (self.a + self.b + self.c)

    @property
    def n_vertices(self) -> int:
        return 1 << self.scale

    @property
    def n_edges(self) -> int:
        return self.edge_factor * self.n_vertices

    @property
    def name(self) -> str:
        return f"kron-scale{self.scale}"


def _sample_quadrants(rng: np.ndarray, a: float, b: float,
                      c: float) -> tuple[np.ndarray, np.ndarray]:
    """Map uniforms in [0,1) to one (src_bit, dst_bit) pair per edge.

    Quadrants: A=(0,0), B=(0,1), C=(1,0), D=(1,1).
    """
    src_bit = rng >= a + b           # rows C and D
    dst_bit = ((rng >= a) & (rng < a + b)) | (rng >= a + b + c)  # B or D
    return src_bit, dst_bit


def generate_kronecker(spec: KroneckerSpec,
                       cache=None) -> EdgeList:
    """Generate the unordered edge list for ``spec``.

    Matches the Graph500 contract: the returned list is *undirected*
    (each edge stored once, random orientation), unsorted, may contain
    duplicates and self-loops, and vertex ids have been scrambled with a
    random permutation.

    ``cache`` is an optional :class:`repro.cache.ArtifactCache`; the
    generated arrays are memoized under a digest of ``spec`` (layer 1),
    and a hit returns them as read-only memmaps of the cached files --
    byte-identical to a fresh generation.
    """
    key = None
    if cache is not None:
        from repro.cache.keys import kronecker_key

        key = kronecker_key(spec)
        hit = cache.get_arrays(key, kind="kronecker")
        if hit is not None:
            arrays, _ = hit
            return EdgeList(arrays["src"], arrays["dst"],
                            spec.n_vertices,
                            weights=arrays.get("weights"),
                            directed=False, name=spec.name)

    rng = np.random.default_rng(spec.seed)
    m = spec.n_edges
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _ in range(spec.scale):
        u = rng.random(m)
        sbit, dbit = _sample_quadrants(u, spec.a, spec.b, spec.c)
        src = (src << 1) | sbit
        dst = (dst << 1) | dbit

    # Random orientation per tuple (the reference generator is symmetric
    # in expectation; flipping makes that exact).
    flip = rng.random(m) < 0.5
    src2 = np.where(flip, dst, src)
    dst2 = np.where(flip, src, dst)

    # Scramble vertex labels.
    perm = rng.permutation(spec.n_vertices).astype(np.int64)
    src2 = perm[src2]
    dst2 = perm[dst2]

    weights = None
    if spec.weighted:
        # Graph500 SSSP weights: uniform (0, 1].
        weights = 1.0 - rng.random(m)

    edges = EdgeList(
        src2, dst2, spec.n_vertices, weights=weights, directed=False,
        name=spec.name,
    )
    if key is not None:
        arrays = {"src": edges.src, "dst": edges.dst}
        if edges.weights is not None:
            arrays["weights"] = edges.weights
        cache.put_arrays(key, "kronecker", arrays,
                         {"scale": spec.scale, "seed": spec.seed})
    return edges
