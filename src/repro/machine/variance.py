"""Deterministic run-to-run variance.

The paper plots 32-point box plots per (system, algorithm) cell and
explains the Graph500's odd 2-thread point by noise sensitivity:
"Because the Graph500 spends a shorter amount of time executing in
general ... it is more sensitive to spikes in CPU usage" (Sec. IV-B).

:class:`VarianceModel` reproduces that texture deterministically: every
measurement gets a multiplicative log-normal jitter plus an occasional
additive "background CPU spike".  Both draws are keyed by the full
measurement identity (system, algorithm, dataset, root, threads, trial),
so re-running an experiment reproduces its exact box plot, and the
*relative* impact of a spike is larger on short measurements -- which is
precisely why short kernels show wider relative spreads.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

__all__ = ["VarianceModel"]


class VarianceModel:
    """Seeded noise generator for simulated measurements.

    Parameters
    ----------
    seed:
        Experiment-level seed; all jitter derives from it.
    sigma:
        Log-normal sigma of the multiplicative jitter.
    spike_rate_hz:
        Expected background-spike arrivals per second of *wall* time;
        models other OS activity on the otherwise idle server.
    spike_scale_s:
        Mean cost of one spike (scheduler preemption + cache refill).
    sensitivity:
        Per-measurement multiplier on both effects; systems that run
        many tiny kernels back-to-back (the Graph500) use > 1.
    """

    def __init__(self, seed: int, sigma: float = 0.035,
                 spike_rate_hz: float = 0.8,
                 spike_scale_s: float = 0.006):
        self.seed = int(seed)
        self.sigma = float(sigma)
        self.spike_rate_hz = float(spike_rate_hz)
        self.spike_scale_s = float(spike_scale_s)

    # ------------------------------------------------------------------
    def _rng(self, key: tuple) -> np.random.Generator:
        """Derive an independent generator from the measurement identity."""
        h = hashlib.blake2b(digest_size=16)
        h.update(struct.pack("<q", self.seed))
        for part in key:
            h.update(repr(part).encode())
            h.update(b"\x1f")
        return np.random.default_rng(
            int.from_bytes(h.digest(), "little"))

    # ------------------------------------------------------------------
    def jitter(self, duration_s: float, key: tuple,
               sensitivity: float = 1.0) -> float:
        """Return ``duration_s`` with deterministic measurement noise.

        The multiplicative term models clock/frequency wander; the
        additive term models background CPU spikes whose *count* depends
        on exposure time but whose *relative* damage shrinks as the
        measurement grows -- short kernels can double, long ones barely
        move.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        rng = self._rng(key)
        mult = float(np.exp(rng.normal(0.0, self.sigma * sensitivity)))
        # Expected spike count over the measurement, with a floor so even
        # instantaneous kernels can be hit by an in-flight spike.
        lam = self.spike_rate_hz * max(duration_s, 0.02) * sensitivity
        n_spikes = rng.poisson(lam)
        spikes = float(rng.exponential(
            self.spike_scale_s, size=n_spikes).sum()) if n_spikes else 0.0
        return duration_s * mult + spikes

    def power_jitter(self, watts: float, key: tuple,
                     sensitivity: float = 1.0) -> float:
        """Noise for power readings (RAPL sampling quantization)."""
        rng = self._rng(("power",) + key)
        return watts * float(
            np.exp(rng.normal(0.0, 0.02 * sensitivity)))
