"""Simulated execution platform.

The paper ran on a dual-socket Intel Xeon E5-2699 v3 (Haswell) server:
36 cores, 72 hardware threads, 256 GB DDR4 (Sec. III-F).  This package
replaces that machine with a deterministic model:

* :mod:`~repro.machine.spec` -- the hardware description;
* :mod:`~repro.machine.threads` -- a work-span cost model that converts
  a kernel's measured operation counts (its :class:`WorkProfile`) into a
  simulated wall time for any thread count, including the effects the
  paper observes: memory-bandwidth saturation, load imbalance on skewed
  graphs, barrier costs, cache-line contention at small thread counts
  (the Graph500's 2-thread dip), and the reduced marginal value of
  hyperthreads beyond 36;
* :mod:`~repro.machine.variance` -- seeded run-to-run noise so repeated
  trials produce the paper's box-plot spreads, with shorter runs more
  sensitive to "spikes in CPU usage" (Sec. IV-B).

Kernels always compute *real* results; only the clock is simulated.
"""

from repro.machine.comm import (
    CommCostParams,
    CommProfile,
    ShardSimResult,
    simulate_sharded,
)
from repro.machine.spec import MachineSpec, haswell_server, laptop
from repro.machine.threads import (
    CostParams,
    SimResult,
    ThreadModel,
    WorkProfile,
    WorkRound,
)
from repro.machine.variance import VarianceModel

__all__ = [
    "MachineSpec",
    "haswell_server",
    "laptop",
    "CostParams",
    "WorkProfile",
    "WorkRound",
    "SimResult",
    "ThreadModel",
    "VarianceModel",
    "CommCostParams",
    "CommProfile",
    "ShardSimResult",
    "simulate_sharded",
]
