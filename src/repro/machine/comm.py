"""Communication pricing for sharded execution.

Ammar & Özsu's observation -- the partitioning strategy *is* the cost
model of distributed graph processing -- made quantitative: a sharded
kernel pays, on top of the :class:`~repro.machine.threads.ThreadModel`
compute price at ``n_threads = n_shards``, one synchronization and one
message exchange per superstep.  The exchanged volume is what the
engine actually moved: broadcast frontiers plus per-shard delta rings,
both proportional to the partition's cut -- an arc whose endpoints are
not co-mastered with its executor turns its update into a cross-shard
``(id, value)`` message of :data:`~repro.shard.engine.MESSAGE_BYTES`.

This module prices *estimates only*: the suite's reported kernel times
come from the serial-equivalent profile and never include these terms,
which is what keeps a ``--shards N`` run's REPORT.md byte-identical.
At ``n_shards == 1`` the communication terms vanish and
:func:`simulate_sharded` collapses to ``ThreadModel.simulate`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec
from repro.machine.threads import CostParams, SimResult, ThreadModel, WorkProfile

__all__ = ["CommCostParams", "CommProfile", "ShardSimResult",
           "simulate_sharded"]


@dataclass(frozen=True)
class CommCostParams:
    """Pricing of one process-to-process exchange path.

    Defaults model same-node shared-memory transport: a barrier plus
    ring handoff in the tens of microseconds, and memcpy-limited
    bandwidth well below DRAM peak (both sides touch the pages).
    """

    #: Fixed per-superstep synchronization cost (two barriers plus the
    #: parent's merge dispatch).
    round_latency_s: float = 25e-6
    #: Sustained cross-shard payload bandwidth.
    bytes_per_s: float = 8e9


@dataclass(frozen=True)
class CommProfile:
    """What a sharded kernel actually exchanged (engine accounting)."""

    #: Supersteps executed (two barriers each).
    rounds: int
    #: Total payload moved through frontiers and delta rings.
    bytes_exchanged: int
    #: The partition's cut (arcs whose executing shard is not the
    #: master of both endpoints); reported for analysis.
    cut_edges: int = 0


@dataclass(frozen=True)
class ShardSimResult:
    """A sharded price: compute breakdown plus communication terms."""

    time_s: float
    compute: SimResult
    comm_s: float
    latency_s: float
    transfer_s: float
    n_shards: int

    @property
    def comm_fraction(self) -> float:
        """Share of the total spent exchanging rather than computing."""
        return self.comm_s / self.time_s if self.time_s > 0 else 0.0


def simulate_sharded(profile: WorkProfile, costs: CostParams,
                     n_shards: int, comm: CommProfile,
                     machine: MachineSpec | None = None,
                     comm_costs: CommCostParams | None = None
                     ) -> ShardSimResult:
    """Price ``profile`` executed across ``n_shards`` processes.

    Compute is the thread model at ``n_threads = n_shards`` (shards are
    the parallelism); communication adds ``rounds * latency +
    bytes / bandwidth``.  A single shard exchanges nothing, so the
    result equals the serial simulation -- the cost model stays
    calibrated.
    """
    from repro.machine.spec import haswell_server

    comm_costs = comm_costs or CommCostParams()
    compute = ThreadModel(machine or haswell_server()).simulate(
        profile, costs, n_threads=n_shards)
    if n_shards <= 1:
        latency_s = transfer_s = 0.0
    else:
        latency_s = comm.rounds * comm_costs.round_latency_s
        transfer_s = comm.bytes_exchanged / comm_costs.bytes_per_s
    comm_s = latency_s + transfer_s
    return ShardSimResult(
        time_s=compute.time_s + comm_s, compute=compute, comm_s=comm_s,
        latency_s=latency_s, transfer_s=transfer_s, n_shards=n_shards)
