"""Simulated wall clock with a power-activity timeline.

All times in this reproduction are simulated (see DESIGN.md): kernels do
real work and the cost model prices it.  ``SimulatedClock`` strings those
priced durations into a timeline, tagging each segment with the
instantaneous package/DRAM power drawn while it ran.  The RAPL simulator
(:mod:`repro.power.rapl`) integrates this timeline exactly the way the
real MSR counters integrate physical power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigError

__all__ = ["PowerSegment", "SimulatedClock"]


@dataclass(frozen=True)
class PowerSegment:
    """One interval of constant simulated power draw."""

    t0: float
    t1: float
    pkg_watts: float
    dram_watts: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def energy_j(self) -> tuple[float, float]:
        return (self.pkg_watts * self.duration,
                self.dram_watts * self.duration)


@dataclass
class SimulatedClock:
    """Monotonic simulated time plus the power timeline behind it."""

    idle_pkg_watts: float
    idle_dram_watts: float
    now: float = 0.0
    segments: list[PowerSegment] = field(default_factory=list)
    #: Observer invoked (with this clock) after every ``advance``; the
    #: tracer uses it to splice per-cell clocks into one suite timeline.
    on_advance: Optional[Callable[["SimulatedClock"], None]] = field(
        default=None, repr=False, compare=False)

    def advance(self, duration_s: float, pkg_watts: float | None = None,
                dram_watts: float | None = None) -> PowerSegment:
        """Advance time by ``duration_s`` drawing the given power.

        ``None`` power means the machine idles (sleep baseline) for the
        interval -- how the harness models gaps between kernels and the
        ``sleep(10)`` baseline program of Table III.
        """
        if duration_s < 0:
            raise ConfigError("cannot advance the clock backwards")
        seg = PowerSegment(
            t0=self.now,
            t1=self.now + duration_s,
            pkg_watts=self.idle_pkg_watts if pkg_watts is None else pkg_watts,
            dram_watts=(self.idle_dram_watts if dram_watts is None
                        else dram_watts),
        )
        self.now = seg.t1
        self.segments.append(seg)
        if self.on_advance is not None:
            self.on_advance(self)
        return seg

    def energy_between(self, t0: float, t1: float) -> tuple[float, float]:
        """Integrate (package, DRAM) joules over ``[t0, t1]``.

        Gaps not covered by any segment are priced at idle power, which
        matches how a real RAPL counter keeps accumulating while the
        process sleeps.
        """
        if t1 < t0:
            raise ConfigError("t1 must be >= t0")
        pkg = 0.0
        dram = 0.0
        covered = 0.0
        for seg in self.segments:
            lo = max(seg.t0, t0)
            hi = min(seg.t1, t1)
            if hi <= lo:
                continue
            pkg += seg.pkg_watts * (hi - lo)
            dram += seg.dram_watts * (hi - lo)
            covered += hi - lo
        gap = (t1 - t0) - covered
        if gap > 0:
            pkg += self.idle_pkg_watts * gap
            dram += self.idle_dram_watts * gap
        return pkg, dram
