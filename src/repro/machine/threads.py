"""Work-span thread-scaling model.

Every kernel in :mod:`repro.systems` computes its real result with
vectorized NumPy while recording a :class:`WorkProfile`: one
:class:`WorkRound` per parallel region (a BFS level, an SSSP bucket
relaxation, a PageRank sweep) holding the number of abstract *work
units* executed (edges examined, vertices updated) and the bytes of
memory traffic they caused.  :class:`ThreadModel` then prices that
profile for an arbitrary thread count ``n``:

.. math::

    T(n) = t_{startup}
         + w_{serial} \\cdot c_{unit}
         + \\sum_r \\Big[
              \\max\\big(\\frac{w_r c_{unit}}{P(n)} \\cdot I(n) \\cdot
              X(n),\\; \\frac{b_r}{BW(n)}\\big) + t_{barrier}(n) \\Big]

with

* ``P(n)`` -- effective parallelism: full cores count 1, hyperthreads
  count ``smt_yield`` (the paper's Figs 5-6 show the 36→72 region
  flattening);
* ``I(n)`` -- load imbalance on skew-heavy rounds, growing with ``n``;
* ``X(n)`` -- cache-line/atomic contention, worst at 2-4 threads and
  decaying (models the Graph500 being *slower* on 2 threads than 1,
  Fig 6);
* ``BW(n)`` -- DRAM bandwidth reachable by ``n`` threads (roofline);
* ``t_barrier(n)`` -- OpenMP barrier/fork-join cost per round, growing
  logarithmically in ``n``.

The model is deterministic; run-to-run spread is added separately by
:class:`repro.machine.variance.VarianceModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.machine.spec import MachineSpec

__all__ = ["WorkRound", "WorkProfile", "CostParams", "SimResult",
           "ThreadModel"]


@dataclass
class WorkRound:
    """One parallel region between two barriers."""

    units: float
    memory_bytes: float = 0.0
    #: Fraction of this round's units concentrated on the heaviest
    #: vertex/partition; drives the imbalance term.  0 means perfectly
    #: balanceable.
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.units < 0 or self.memory_bytes < 0:
            raise ConfigError("work and traffic must be non-negative")
        self.skew = float(min(max(self.skew, 0.0), 1.0))


@dataclass
class WorkProfile:
    """Operation counts recorded by one kernel execution."""

    rounds: list[WorkRound] = field(default_factory=list)
    serial_units: float = 0.0

    def add_round(self, units: float, memory_bytes: float = 0.0,
                  skew: float = 0.0) -> None:
        self.rounds.append(WorkRound(units, memory_bytes, skew))

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_units(self) -> float:
        return self.serial_units + sum(r.units for r in self.rounds)

    @property
    def total_bytes(self) -> float:
        return sum(r.memory_bytes for r in self.rounds)

    def merged(self, other: "WorkProfile") -> "WorkProfile":
        """Concatenate two profiles (e.g. build phase + run phase)."""
        return WorkProfile(rounds=self.rounds + other.rounds,
                           serial_units=self.serial_units + other.serial_units)

    # ------------------------------------------------------------------
    # Serialization (repro.cache): three float64 columns, one row per
    # round.  Caching the profile (not the priced time) is what keeps
    # the cache thread-invariant -- pricing is re-simulated on restore.
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        import numpy as np

        return {
            "profile_units": np.asarray(
                [r.units for r in self.rounds], dtype=np.float64),
            "profile_mem": np.asarray(
                [r.memory_bytes for r in self.rounds], dtype=np.float64),
            "profile_skew": np.asarray(
                [r.skew for r in self.rounds], dtype=np.float64),
        }

    @staticmethod
    def from_arrays(units, memory_bytes, skew,
                    serial_units: float = 0.0) -> "WorkProfile":
        rounds = [WorkRound(float(u), float(b), float(s))
                  for u, b, s in zip(units, memory_bytes, skew)]
        return WorkProfile(rounds=rounds,
                           serial_units=float(serial_units))


@dataclass(frozen=True)
class CostParams:
    """Per-(system, kernel) pricing of abstract work units.

    These are the calibration constants of the reproduction; the values
    for each system live in :mod:`repro.systems.calibration` together
    with the paper anchors that justify them.
    """

    #: Seconds per work unit on one thread (includes per-edge instruction
    #: cost and cache behaviour of the system's data layout).
    sec_per_unit: float
    #: Fixed per-invocation cost: engine init, scheduler spin-up.
    startup_s: float = 0.0
    #: Barrier/fork-join cost coefficient (seconds); scaled by log2(n).
    barrier_s: float = 2.0e-6
    #: Load-imbalance growth with threads on skewed rounds.
    imbalance: float = 0.15
    #: Contention amplitude at 2 threads (0 disables the effect).
    contention: float = 0.0
    #: e-folding of the contention term in threads.
    contention_decay: float = 4.0
    #: Marginal throughput of a hyperthread relative to a full core.
    smt_yield: float = 0.35
    #: Average bytes of DRAM traffic per work unit (roofline term).
    bytes_per_unit: float = 16.0

    def __post_init__(self) -> None:
        if self.sec_per_unit <= 0:
            raise ConfigError("sec_per_unit must be positive")
        if not 0 <= self.smt_yield <= 1:
            raise ConfigError("smt_yield must be in [0, 1]")


@dataclass(frozen=True)
class SimResult:
    """Priced execution: simulated seconds with a component breakdown."""

    time_s: float
    compute_s: float
    memory_s: float
    barrier_s: float
    startup_s: float
    serial_s: float
    n_threads: int
    effective_parallelism: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("negative simulated time")


class ThreadModel:
    """Prices :class:`WorkProfile` objects on a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine

    # ------------------------------------------------------------------
    def effective_parallelism(self, n_threads: int, smt_yield: float) -> float:
        """Cores contribute 1.0 each; extra SMT siblings ``smt_yield``."""
        if n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        cores = self.machine.n_cores
        full = min(n_threads, cores)
        extra = max(n_threads - cores, 0)
        return full + smt_yield * extra

    def contention_factor(self, n_threads: int, costs: CostParams) -> float:
        """Cache-line/atomic contention multiplier; 1.0 for serial runs."""
        if n_threads <= 1 or costs.contention <= 0:
            return 1.0
        return 1.0 + costs.contention * math.exp(
            -(n_threads - 2) / costs.contention_decay)

    def imbalance_factor(self, n_threads: int, costs: CostParams,
                         skew: float) -> float:
        """Straggler penalty: grows with threads and with round skew."""
        if n_threads <= 1:
            return 1.0
        return 1.0 + costs.imbalance * (0.25 + skew) * math.log2(n_threads)

    def barrier_cost(self, n_threads: int, costs: CostParams) -> float:
        if n_threads <= 1:
            return 0.0
        return costs.barrier_s * (1.0 + math.log2(n_threads))

    # ------------------------------------------------------------------
    def simulate(self, profile: WorkProfile, costs: CostParams,
                 n_threads: int) -> SimResult:
        """Price ``profile`` for ``n_threads`` threads."""
        p = self.effective_parallelism(n_threads, costs.smt_yield)
        bw = self.machine.bandwidth_gbs(n_threads) * 1e9
        x = self.contention_factor(n_threads, costs)

        compute = 0.0
        memory = 0.0
        barrier = 0.0
        total = 0.0
        for r in profile.rounds:
            imb = self.imbalance_factor(n_threads, costs, r.skew)
            c = (r.units * costs.sec_per_unit / p) * imb * x
            bytes_r = r.memory_bytes if r.memory_bytes > 0 else (
                r.units * costs.bytes_per_unit)
            mem = bytes_r / bw
            b = self.barrier_cost(n_threads, costs)
            total += max(c, mem) + b
            compute += c
            memory += mem
            barrier += b

        serial = profile.serial_units * costs.sec_per_unit
        total += serial + costs.startup_s
        return SimResult(
            time_s=total,
            compute_s=compute,
            memory_s=memory,
            barrier_s=barrier,
            startup_s=costs.startup_s,
            serial_s=serial,
            n_threads=n_threads,
            effective_parallelism=p,
        )
