"""Hardware description of the simulated experiment server."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["MachineSpec", "haswell_server"]


@dataclass(frozen=True)
class MachineSpec:
    """Static machine parameters used by the cost and power models.

    The defaults (:func:`haswell_server`) model the paper's testbed:
    two Xeon E5-2699 v3 (18 cores each, SMT2), 256 GB DDR4, GNU/Linux,
    GCC 4.8.5 / OpenMP 3.1.
    """

    name: str = "haswell-2699v3"
    sockets: int = 2
    cores_per_socket: int = 18
    smt: int = 2
    base_ghz: float = 2.3
    #: Aggregate sustainable DRAM bandwidth (GB/s) with all channels busy.
    mem_bw_gbs: float = 120.0
    #: Bandwidth one thread can draw by itself (GB/s).
    mem_bw_per_thread_gbs: float = 9.0
    ram_gb: int = 256
    #: Sequential file-read throughput (MB/s) of the storage the datasets
    #: live on; drives simulated file-read phases.
    file_read_mbs: float = 450.0
    #: Idle ("sleep(10)") package power in watts.  Derived from Table III:
    #: sleeping-energy / time is 24.74 W for every system row.
    idle_pkg_watts: float = 24.74
    #: Idle DRAM power in watts (Fig 9 left, bottom of the band).
    idle_dram_watts: float = 9.6
    #: Package power ceiling (TDP-ish envelope; Fig 9 tops out ~100 W).
    max_pkg_watts: float = 145.0
    #: DRAM power ceiling per the Fig 9 band.
    max_dram_watts: float = 22.0

    def __post_init__(self) -> None:
        if min(self.sockets, self.cores_per_socket, self.smt) < 1:
            raise ConfigError("sockets, cores, and smt must be >= 1")
        if self.mem_bw_per_thread_gbs > self.mem_bw_gbs:
            raise ConfigError("per-thread bandwidth exceeds machine peak")

    @property
    def n_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def n_threads(self) -> int:
        return self.n_cores * self.smt

    def bandwidth_gbs(self, n_threads: int) -> float:
        """Aggregate DRAM bandwidth reachable by ``n_threads`` threads."""
        if n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        return min(self.mem_bw_gbs, n_threads * self.mem_bw_per_thread_gbs)

    def file_read_seconds(self, n_bytes: int | float) -> float:
        """Time to stream ``n_bytes`` from storage (text parsing included
        in per-format rate adjustments done by callers)."""
        return float(n_bytes) / (self.file_read_mbs * 1e6)


def haswell_server() -> MachineSpec:
    """The paper's 72-thread research server (Sec. III-F)."""
    return MachineSpec()


def laptop() -> MachineSpec:
    """A modest 4-core/8-thread mobile part.

    The paper's closing argument: "increasing hardware heterogeneity
    demands performance analysis be easily repeatable on the target
    architecture."  Passing ``machine=laptop()`` to an
    :class:`~repro.core.config.ExperimentConfig` reprices every
    experiment for this box -- lower core count, single memory channel
    pair, tighter power envelope -- without touching anything else.
    """
    return MachineSpec(
        name="laptop-4c8t",
        sockets=1,
        cores_per_socket=4,
        smt=2,
        base_ghz=2.8,
        mem_bw_gbs=30.0,
        mem_bw_per_thread_gbs=12.0,
        ram_gb=16,
        file_read_mbs=1800.0,   # NVMe
        idle_pkg_watts=4.5,
        idle_dram_watts=1.2,
        max_pkg_watts=28.0,
        max_dram_watts=4.0,
    )
