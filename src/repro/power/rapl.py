"""Simulated Intel RAPL energy counters.

Real RAPL exposes monotonically increasing energy counters (in units of
~15.3 microjoules) in model-specific registers, one set per package
domain (``PACKAGE_ENERGY``) and one for memory (``DRAM_ENERGY``).
Software samples the counter before and after a region and differences
the readings.  :class:`RaplSimulator` reproduces exactly that protocol on
top of the :class:`~repro.machine.clock.SimulatedClock` power timeline,
including the counter quantization, so downstream code (the PAPI shim,
the parsers) cannot tell it is not talking to ``/dev/msr``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerMeasurementError
from repro.machine.clock import SimulatedClock

__all__ = ["RaplCounters", "RaplSimulator"]

#: RAPL energy-status unit: 2^-16 J, the common Haswell setting.
RAPL_ENERGY_UNIT_J = 2.0 ** -16


@dataclass(frozen=True)
class RaplCounters:
    """One sample of the (quantized) energy counters, in counter units."""

    package: int
    dram: int
    timestamp_s: float

    def package_joules(self) -> float:
        return self.package * RAPL_ENERGY_UNIT_J

    def dram_joules(self) -> float:
        return self.dram * RAPL_ENERGY_UNIT_J


class RaplSimulator:
    """Sampling front-end over the clock's power timeline.

    Counters are cumulative from clock time zero and quantized to the
    RAPL energy unit, mirroring the register semantics (the registers
    also wrap at 32 bits; we reproduce that too so long experiments
    exercise the wrap-handling of the reader).
    """

    COUNTER_BITS = 32

    def __init__(self, clock: SimulatedClock):
        self._clock = clock

    def sample(self) -> RaplCounters:
        """Read both counters at the current simulated instant."""
        now = self._clock.now
        pkg_j, dram_j = self._clock.energy_between(0.0, now)
        mask = (1 << self.COUNTER_BITS) - 1
        return RaplCounters(
            package=int(pkg_j / RAPL_ENERGY_UNIT_J) & mask,
            dram=int(dram_j / RAPL_ENERGY_UNIT_J) & mask,
            timestamp_s=now,
        )

    @staticmethod
    def delta_joules(before: RaplCounters, after: RaplCounters
                     ) -> tuple[float, float, float]:
        """Difference two samples handling 32-bit counter wrap.

        Returns ``(package_j, dram_j, duration_s)``.
        """
        if after.timestamp_s < before.timestamp_s:
            raise PowerMeasurementError("samples out of order")
        span = 1 << RaplSimulator.COUNTER_BITS

        def _delta(a: int, b: int) -> float:
            d = b - a
            if d < 0:
                d += span
            return d * RAPL_ENERGY_UNIT_J

        return (
            _delta(before.package, after.package),
            _delta(before.dram, after.dram),
            after.timestamp_s - before.timestamp_s,
        )
