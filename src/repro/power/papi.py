"""The paper's Fig 10 instrumentation API, reproduced in Python.

The paper adds power profiling to each C/C++ system with four calls::

    power_rapl_t ps;
    power_rapl_init(&ps);
    power_rapl_start(&ps);
    /* region of code to profile */
    power_rapl_end(&ps);
    power_rapl_print(&ps);

This module provides the same four entry points (plus a context-manager
convenience) over the simulated RAPL counters.  ``power_rapl_print``
emits the log lines the EPG* parser consumes, in the same style the
paper's helper library prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerMeasurementError
from repro.machine.clock import SimulatedClock
from repro.power.rapl import RaplCounters, RaplSimulator

__all__ = ["PowerRapl", "power_rapl_init", "power_rapl_start",
           "power_rapl_end", "power_rapl_print"]


@dataclass
class PowerRapl:
    """Python counterpart of the paper's ``power_rapl_t`` struct."""

    rapl: RaplSimulator
    start_sample: RaplCounters | None = None
    end_sample: RaplCounters | None = None
    lines: list[str] = field(default_factory=list)

    # Context-manager sugar: ``with power_rapl_init(clock) as ps: ...``
    def __enter__(self) -> "PowerRapl":
        power_rapl_start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            power_rapl_end(self)

    # Results ----------------------------------------------------------
    def _require_complete(self) -> tuple[float, float, float]:
        if self.start_sample is None or self.end_sample is None:
            raise PowerMeasurementError(
                "power_rapl_end must follow power_rapl_start")
        return RaplSimulator.delta_joules(self.start_sample, self.end_sample)

    @property
    def package_joules(self) -> float:
        return self._require_complete()[0]

    @property
    def dram_joules(self) -> float:
        return self._require_complete()[1]

    @property
    def duration_s(self) -> float:
        return self._require_complete()[2]


def power_rapl_init(clock: SimulatedClock) -> PowerRapl:
    """Allocate a measurement handle (``power_rapl_init``)."""
    return PowerRapl(rapl=RaplSimulator(clock))


def power_rapl_start(ps: PowerRapl) -> None:
    """Snapshot the counters at region entry."""
    ps.start_sample = ps.rapl.sample()
    ps.end_sample = None


def power_rapl_end(ps: PowerRapl) -> None:
    """Snapshot the counters at region exit."""
    if ps.start_sample is None:
        raise PowerMeasurementError(
            "power_rapl_start must be called before power_rapl_end")
    ps.end_sample = ps.rapl.sample()


def power_rapl_print(ps: PowerRapl) -> list[str]:
    """Format the measurement like the paper's helper library.

    Returns (and records on the handle) lines such as::

        PACKAGE_ENERGY:PACKAGE0 1184213750 nJ 0.016360 s
        DRAM_ENERGY:PACKAGE0 267481600 nJ 0.016360 s
    """
    pkg_j, dram_j, dur = ps._require_complete()
    lines = [
        f"PACKAGE_ENERGY:PACKAGE0 {int(pkg_j * 1e9)} nJ {dur:.6f} s",
        f"DRAM_ENERGY:PACKAGE0 {int(dram_j * 1e9)} nJ {dur:.6f} s",
    ]
    ps.lines.extend(lines)
    return lines
