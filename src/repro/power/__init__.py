"""Simulated power and energy measurement.

The paper (Sec. IV-D) measures package and DRAM energy through PAPI's
interface to Intel RAPL -- model-specific registers that integrate power
into energy counters.  This package reproduces that stack on top of the
simulated clock:

* :mod:`~repro.power.rapl` -- the counter simulator (integrates the
  clock's power timeline, reports nanojoules as RAPL does);
* :mod:`~repro.power.papi` -- the four-call C API of the paper's Fig 10
  (``power_rapl_init/start/end/print``) as a Python context;
* :mod:`~repro.power.energy` -- per-system power parameters, the
  ``sleep(10)`` baseline, and the Table III accounting (energy per root,
  sleeping energy, increase over sleep).
"""

from repro.power.energy import (
    EnergyReport,
    PowerParams,
    instantaneous_power,
    sleep_baseline,
)
from repro.power.papi import PowerRapl, power_rapl_init
from repro.power.rapl import RaplCounters, RaplSimulator
from repro.power.wattprof import PowerTrace, WattProfBackend

__all__ = [
    "PowerParams",
    "EnergyReport",
    "instantaneous_power",
    "sleep_baseline",
    "RaplCounters",
    "RaplSimulator",
    "PowerRapl",
    "power_rapl_init",
    "PowerTrace",
    "WattProfBackend",
]
