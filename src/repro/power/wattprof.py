"""WattProf-style fine-grained power tracing.

Paper Sec. V: "while our current implementation supports measurements
based on PAPI's interface to RAPL, which is only available on Intel
platforms, the interface is simple and easy to adapt to other platforms
... In particular, fine-grained measurements provided through
potentially available custom hardware [WattProf] can be enabled through
the same interface."

This module is that adaptation: a second power backend exposing the
same ``power_rapl_*``-shaped protocol (init/start/end) but sampling the
clock's power timeline at a fixed rate into a *trace* -- per-sample
(timestamp, package W, DRAM W) tuples -- rather than two counter
snapshots, the way WattProf's dedicated acquisition board streams
channels at kHz rates.  Traces integrate to the same energy the RAPL
counters report (asserted in the test suite), and render to CSV or an
SVG time-series chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import PowerMeasurementError
from repro.machine.clock import SimulatedClock

__all__ = ["PowerTrace", "WattProfBackend"]

#: WattProf samples at kHz rates; default 1 kHz.
DEFAULT_SAMPLE_HZ = 1000.0


@dataclass
class PowerTrace:
    """A fixed-rate power trace over one measured region."""

    timestamps_s: np.ndarray
    pkg_watts: np.ndarray
    dram_watts: np.ndarray
    sample_hz: float

    @property
    def duration_s(self) -> float:
        if self.timestamps_s.size == 0:
            return 0.0
        return float(self.timestamps_s[-1] - self.timestamps_s[0]
                     + 1.0 / self.sample_hz)

    def energy_j(self) -> tuple[float, float]:
        """Riemann-sum energy over the trace (package, DRAM)."""
        dt = 1.0 / self.sample_hz
        return (float(self.pkg_watts.sum() * dt),
                float(self.dram_watts.sum() * dt))

    def peak_pkg_watts(self) -> float:
        return float(self.pkg_watts.max()) if self.pkg_watts.size else 0.0

    def to_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        cols = np.column_stack([self.timestamps_s, self.pkg_watts,
                                self.dram_watts])
        header = "t_s,pkg_w,dram_w"
        np.savetxt(path, cols, fmt="%.6f", delimiter=",",
                   header=header, comments="")
        return path

    def to_svg(self, path: str | Path, title: str = "Power trace"
               ) -> Path:
        from repro.viz.charts import line_chart

        xs = self.timestamps_s.tolist()
        chart = line_chart(
            xs, {"package": self.pkg_watts.tolist(),
                 "dram": self.dram_watts.tolist()},
            title, "time (s)", "power (W)")
        return chart.write(path)


class WattProfBackend:
    """Trace-producing power meter over the simulated clock.

    Protocol mirrors the Fig 10 RAPL shim: construct (init), ``start``,
    run the region, ``stop`` -> :class:`PowerTrace`.
    """

    def __init__(self, clock: SimulatedClock,
                 sample_hz: float = DEFAULT_SAMPLE_HZ):
        if sample_hz <= 0:
            raise PowerMeasurementError("sample rate must be positive")
        self._clock = clock
        self.sample_hz = float(sample_hz)
        self._start_t: float | None = None

    def start(self) -> None:
        self._start_t = self._clock.now

    def stop(self) -> PowerTrace:
        if self._start_t is None:
            raise PowerMeasurementError("stop() before start()")
        t0, t1 = self._start_t, self._clock.now
        self._start_t = None
        dt = 1.0 / self.sample_hz
        n = max(int(round((t1 - t0) * self.sample_hz)), 1)
        stamps = t0 + dt * np.arange(n)
        pkg = np.empty(n)
        dram = np.empty(n)
        # Sample the timeline: each sample integrates its dt window so
        # the trace's Riemann sum equals the counters' energy.
        for i, s in enumerate(stamps):
            e_pkg, e_dram = self._clock.energy_between(
                s, min(s + dt, max(t1, s + dt)))
            pkg[i] = e_pkg / dt
            dram[i] = e_dram / dt
        return PowerTrace(timestamps_s=stamps, pkg_watts=pkg,
                          dram_watts=dram, sample_hz=self.sample_hz)
