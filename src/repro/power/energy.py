"""Per-system power parameters and Table III energy accounting.

Calibration anchors (paper Table III and Fig 9, Kronecker scale 22, 32
threads during BFS):

==========  ==============  ================
system      CPU power (W)   DRAM power (W)
==========  ==============  ================
GAP         72.38           ~16.5
Graph500    97.17           ~18.5
GraphBIG    78.01           ~14.5
GraphMat    70.12           ~11.5 (lowest)
sleep(10)   24.74           ~9.6
==========  ==============  ================

The CPU column is exact (Table III); the DRAM column reads Fig 9's
boxes.  :class:`PowerParams` stores each system's 32-thread anchors;
:func:`instantaneous_power` scales them to other thread counts through
the machine model's effective parallelism (power grows with the number
of busy execution units, saturating at the package limit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.spec import MachineSpec
from repro.machine.threads import ThreadModel

__all__ = ["PowerParams", "EnergyReport", "instantaneous_power",
           "sleep_baseline"]


@dataclass(frozen=True)
class PowerParams:
    """A system's power identity: draw at the 32-thread anchor point."""

    pkg_watts_32t: float
    dram_watts_32t: float
    #: SMT yield used for the parallelism scaling (matches the system's
    #: CostParams so power tracks the same utilization curve).
    smt_yield: float = 0.35

    def __post_init__(self) -> None:
        if self.pkg_watts_32t <= 0 or self.dram_watts_32t <= 0:
            raise ConfigError("power anchors must be positive")


def instantaneous_power(machine: MachineSpec, params: PowerParams,
                        n_threads: int) -> tuple[float, float]:
    """(package, DRAM) watts while running on ``n_threads`` threads.

    Active power above idle scales with effective parallelism relative
    to the 32-thread anchor and saturates at the package envelope.
    DRAM power scales more weakly (bandwidth saturates before cores do).
    """
    tm = ThreadModel(machine)
    p = tm.effective_parallelism(n_threads, params.smt_yield)
    p32 = tm.effective_parallelism(32, params.smt_yield)

    pkg_active = (params.pkg_watts_32t - machine.idle_pkg_watts) * (p / p32)
    pkg = min(machine.idle_pkg_watts + pkg_active, machine.max_pkg_watts)

    dram_frac = min((p / p32) ** 0.5, 1.2)
    dram_active = (params.dram_watts_32t - machine.idle_dram_watts) * dram_frac
    dram = min(machine.idle_dram_watts + max(dram_active, 0.0),
               machine.max_dram_watts)
    return pkg, dram


def sleep_baseline(machine: MachineSpec, duration_s: float = 10.0
                   ) -> tuple[float, float]:
    """Power drawn by the paper's baseline program: one ``sleep(10)``.

    Returns (package watts, DRAM watts); multiply by a kernel's runtime
    to get Table III's "Sleeping Energy".
    """
    if duration_s <= 0:
        raise ConfigError("sleep duration must be positive")
    return machine.idle_pkg_watts, machine.idle_dram_watts


@dataclass(frozen=True)
class EnergyReport:
    """Table III row for one measured kernel execution."""

    time_s: float
    avg_pkg_watts: float
    avg_dram_watts: float
    pkg_energy_j: float
    dram_energy_j: float
    sleep_energy_j: float

    @property
    def increase_over_sleep(self) -> float:
        """Ratio of consumed to would-have-slept package energy."""
        if self.sleep_energy_j == 0:
            return float("inf")
        return self.pkg_energy_j / self.sleep_energy_j

    @staticmethod
    def from_measurement(pkg_j: float, dram_j: float, time_s: float,
                         machine: MachineSpec) -> "EnergyReport":
        if time_s < 0:
            raise ConfigError("negative measurement duration")
        sleep_w, _ = sleep_baseline(machine)
        avg_pkg = pkg_j / time_s if time_s > 0 else 0.0
        avg_dram = dram_j / time_s if time_s > 0 else 0.0
        return EnergyReport(
            time_s=time_s,
            avg_pkg_watts=avg_pkg,
            avg_dram_watts=avg_dram,
            pkg_energy_j=pkg_j,
            dram_energy_j=dram_j,
            sleep_energy_j=sleep_w * time_s,
        )
