"""Experiment configuration.

One :class:`ExperimentConfig` describes a full EPG* study: which
dataset, which systems, which algorithms, how many roots and trials, and
which thread counts -- the knobs the paper's shell scripts take.
Defaults mirror the paper: 32 roots of degree > 1, epsilon = 6e-8 for
PageRank, threads = 32, Kronecker edge factor 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server
from repro.systems.base import ALGORITHMS
from repro.systems.registry import ALL_SYSTEM_NAMES

__all__ = ["ExperimentConfig", "DATASET_KINDS"]

DATASET_KINDS = ("kronecker", "cit-patents", "dota-league", "snap-file")

#: The paper's PageRank epsilon: "approximately machine epsilon for a
#: single precision floating-point number" (Sec. IV-A).
DEFAULT_EPSILON = 6e-8


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one EPG* experiment needs."""

    output_dir: Path
    #: One of :data:`DATASET_KINDS`.
    dataset: str = "kronecker"
    #: Graph500 scale for synthetic graphs (paper: 22 for timing/power,
    #: 23 for scalability; defaults here are CI-sized).
    scale: int = 14
    #: Shrink factor for the synthetic real-world stand-ins (None =
    #: module defaults).
    realworld_factor: float | None = None
    #: Path to a SNAP-format file when ``dataset == "snap-file"``.
    snap_path: Path | None = None
    systems: tuple[str, ...] = ALL_SYSTEM_NAMES
    algorithms: tuple[str, ...] = ("bfs", "sssp", "pagerank")
    n_roots: int = 32
    #: Trials per root (Figs 5-6 use 4 trials "because of timing
    #: considerations"; single-thread-count studies use 1).
    n_trials: int = 1
    thread_counts: tuple[int, ...] = (32,)
    seed: int = 20170402
    epsilon: float = DEFAULT_EPSILON
    machine: MachineSpec = field(default_factory=haswell_server)
    #: Record power/energy (Table III, Fig 9).
    measure_power: bool = True
    #: Additionally capture WattProf-style fixed-rate power traces for
    #: each kernel window (Sec. V's fine-grained extension); traces land
    #: under ``<output>/traces/`` as CSV.
    capture_power_traces: bool = False
    #: Validate every kernel's output against the reference oracles
    #: during the run phase, Graph500-style ("a fast system cannot win
    #: by returning garbage").  Off by default: validation costs more
    #: than the kernels at small scales.
    validate_outputs: bool = False
    #: Trace sample rate in Hz (only used when traces are on).
    trace_sample_hz: float = 100_000.0
    #: Retries per cell after the first failed attempt; a cell that
    #: fails ``max_retries + 1`` times is quarantined, not fatal.
    max_retries: int = 2
    #: Per-attempt deadline in simulated seconds (None = the
    #: resilience default); a hung cell is killed at this deadline.
    cell_timeout_s: float | None = None
    #: Fault-injection spec (see :mod:`repro.resilience.faults` for the
    #: grammar); None disables injection.
    fault_spec: str | None = None
    #: Worker processes for the run phase (``epg run --jobs``); None or
    #: 1 executes serially.  Excluded from :meth:`to_dict` -- the job
    #: count is an execution detail that must not perturb checkpoint
    #: digests or provenance (results are identical at any level).
    jobs: int | None = None
    #: Worker processes *inside* one kernel execution (``epg run
    #: --shards``): the sharded engine splits each BFS/SSSP query
    #: across this many cores.  Like ``jobs``, an execution detail
    #: excluded from :meth:`to_dict` -- sharded outputs, profiles, and
    #: reports are bit-identical to the serial kernels.
    shards: int = 1
    #: Artifact cache master switch.  Like ``jobs``, the cache knobs are
    #: execution details: the cache is byte-transparent, so they are
    #: excluded from :meth:`to_dict` and never perturb provenance.
    cache_enabled: bool = True
    #: On-disk cache root; None disables caching even when enabled.
    cache_dir: Path | None = None
    #: LRU garbage-collection budget in bytes (None = unbounded).
    cache_max_bytes: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "output_dir", Path(self.output_dir))
        if self.dataset not in DATASET_KINDS:
            raise ConfigError(
                f"dataset must be one of {DATASET_KINDS}, got "
                f"{self.dataset!r}")
        if self.dataset == "snap-file" and self.snap_path is None:
            raise ConfigError("snap-file dataset requires snap_path")
        if self.dataset == "kronecker" and not 1 <= self.scale <= 30:
            raise ConfigError("kronecker scale must be in [1, 30]")
        unknown = set(self.systems) - set(ALL_SYSTEM_NAMES)
        if unknown:
            raise ConfigError(f"unknown systems: {sorted(unknown)}")
        bad_algos = set(self.algorithms) - set(ALGORITHMS)
        if bad_algos:
            raise ConfigError(f"unknown algorithms: {sorted(bad_algos)}")
        if self.n_roots < 1 or self.n_trials < 1:
            raise ConfigError("n_roots and n_trials must be >= 1")
        if not self.thread_counts or min(self.thread_counts) < 1:
            raise ConfigError("thread_counts must be positive")
        if max(self.thread_counts) > self.machine.n_threads:
            raise ConfigError(
                f"thread count exceeds the machine's "
                f"{self.machine.n_threads} hardware threads")
        if not 0 < self.epsilon < 1:
            raise ConfigError("epsilon must be in (0, 1)")
        if self.trace_sample_hz <= 0:
            raise ConfigError("trace_sample_hz must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ConfigError("cell_timeout_s must be positive")
        if self.fault_spec is not None:
            from repro.resilience.faults import parse_fault_spec

            parse_fault_spec(self.fault_spec)  # raises ConfigError if bad
        if self.jobs is not None and self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ConfigError(
                f"cache_max_bytes must be >= 1, got {self.cache_max_bytes}")

    @property
    def cache_active(self) -> bool:
        """Whether runs should use the artifact cache."""
        return self.cache_enabled and self.cache_dir is not None

    # ------------------------------------------------------------------
    @property
    def dataset_label(self) -> str:
        if self.dataset == "kronecker":
            return f"kron-scale{self.scale}"
        if self.dataset == "snap-file":
            return Path(self.snap_path).stem
        return {"cit-patents": "cit-Patents",
                "dota-league": "dota-league"}[self.dataset]

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        return {
            "output_dir": str(self.output_dir),
            "dataset": self.dataset,
            "scale": self.scale,
            "realworld_factor": self.realworld_factor,
            "snap_path": str(self.snap_path) if self.snap_path else None,
            "systems": list(self.systems),
            "algorithms": list(self.algorithms),
            "n_roots": self.n_roots,
            "n_trials": self.n_trials,
            "thread_counts": list(self.thread_counts),
            "seed": self.seed,
            "epsilon": self.epsilon,
            "measure_power": self.measure_power,
            "capture_power_traces": self.capture_power_traces,
            "trace_sample_hz": self.trace_sample_hz,
            "validate_outputs": self.validate_outputs,
            "max_retries": self.max_retries,
            "cell_timeout_s": self.cell_timeout_s,
            "fault_spec": self.fault_spec,
        }
