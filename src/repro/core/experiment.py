"""The five-phase EPG* pipeline (paper Fig 1).

Each phase "requires no more than a single shell command"; here each is
one method, and :meth:`Experiment.run_all` chains them:

1. :meth:`setup`      -- register/verify systems, persist the config
2. :meth:`homogenize` -- generate/convert the dataset for every system
3. :meth:`run`        -- execute algorithm x system x root x threads
4. :meth:`parse`      -- native logs -> one CSV
5. :meth:`analyze`    -- CSV -> statistics, tables, figure series
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import ExperimentConfig
from repro.core.logs import parse_all_logs
from repro.core.records import Record
from repro.core.runner import Runner
from repro.datasets.homogenize import HomogenizedDataset, homogenize
from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.datasets.realworld import (
    CIT_PATENTS_DEFAULT_FACTOR,
    DOTA_LEAGUE_DEFAULT_FACTOR,
    cit_patents,
    dota_league,
)
from repro.datasets.snap import read_snap
from repro.errors import ConfigError, LogParseError
from repro.graph.edgelist import EdgeList
from repro.ioutil import atomic_write_json
from repro.logging_util import get_logger, phase_timer
from repro.observability import Tracer
from repro.resilience import (
    CellOutcome,
    CellSupervisor,
    FaultInjector,
    RetryPolicy,
    SuiteCheckpoint,
    cell_id,
)
from repro.systems.registry import available_systems

__all__ = ["Experiment"]


class Experiment:
    """Stateful driver for one configured study."""

    def __init__(self, config: ExperimentConfig,
                 tracer: Tracer | None = None):
        self.config = config
        #: Observability sink; a constructor argument (not config) so
        #: checkpoint digests are identical with and without tracing.
        self.tracer = tracer if tracer is not None else Tracer()
        self.dataset: HomogenizedDataset | None = None
        self.records: list[Record] | None = None
        #: Terminal outcome of every cell the last run() saw, in visit
        #: order (loaded-from-checkpoint cells included, so a resumed
        #: run reports identically to an uninterrupted one).
        self.cell_outcomes: list[CellOutcome] = []
        #: Unparseable log files the last parse() salvaged around.
        self.parse_problems: list[LogParseError] = []
        self._log = get_logger("repro.pipeline")

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def setup(self) -> list[str]:
        """Verify requested systems exist; persist the configuration."""
        avail = available_systems()
        missing = [s for s in self.config.systems if s not in avail]
        if missing:
            raise ConfigError(f"systems not installed: {missing}")
        out = self.config.output_dir
        out.mkdir(parents=True, exist_ok=True)
        atomic_write_json(out / "config.json", self.config.to_dict())
        return list(self.config.systems)

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def _artifact_cache(self):
        """The configured :class:`repro.cache.ArtifactCache`, or None."""
        from repro.cache import ArtifactCache

        return ArtifactCache.from_config(self.config, tracer=self.tracer)

    def _generate_edges(self, cache=None) -> EdgeList:
        cfg = self.config
        if cfg.dataset == "kronecker":
            return generate_kronecker(KroneckerSpec(
                scale=cfg.scale, seed=cfg.seed, weighted=True),
                cache=cache)
        if cfg.dataset == "cit-patents":
            return cit_patents(cfg.realworld_factor
                               or CIT_PATENTS_DEFAULT_FACTOR,
                               seed=cfg.seed)
        if cfg.dataset == "dota-league":
            return dota_league(cfg.realworld_factor
                               or DOTA_LEAGUE_DEFAULT_FACTOR,
                               seed=cfg.seed)
        return read_snap(cfg.snap_path)

    def homogenize(self) -> HomogenizedDataset:
        """Phase 2: write every per-system input file + roots."""
        with phase_timer("homogenize", self._log, tracer=self.tracer):
            cache = self._artifact_cache()
            edges = self._generate_edges(cache=cache)
            self._log.info("dataset %s: %d vertices, %d edges",
                           edges.name, edges.n_vertices, edges.n_edges)
            self.dataset = homogenize(
                edges, self.config.output_dir / "datasets",
                n_roots=self.config.n_roots, seed=self.config.seed,
                tracer=self.tracer, cache=cache)
        return self.dataset

    # ------------------------------------------------------------------
    # Phase 3
    # ------------------------------------------------------------------
    def run(self, pool=None) -> list[Path]:
        """Phase 3: execute every requested cell; return log paths.

        Every cell runs under a :class:`CellSupervisor` (retry /
        backoff / quarantine) and its terminal outcome is recorded in
        the experiment's atomic ``checkpoint.json``: a rerun of the
        same configuration skips completed cells entirely, which is
        what makes ``epg resume`` (and plain rerun-after-crash) cheap
        and byte-identical.

        ``pool`` is an optional :class:`repro.parallel.CellPool`: the
        independent cells fan out to its workers and their results are
        committed -- checkpoint record, trace splice, outcome ledger --
        strictly in canonical cell order, so the report and trace are
        byte-identical to a serial run's.  Without a pool, a
        ``config.jobs`` greater than one creates a private pool for
        this call.
        """
        if self.dataset is None:
            self.homogenize()
        checkpoint = SuiteCheckpoint.load_or_create(
            self.config.output_dir, self.config)
        self.cell_outcomes = []
        paths: list[Path] = []
        own_pool = None
        if pool is None and (self.config.jobs or 1) > 1:
            from repro.parallel import CellPool

            shard_root = (self.tracer.directory / "workers"
                          if self.tracer.enabled else None)
            own_pool = pool = CellPool(self.config.jobs,
                                       shard_root=shard_root)
        try:
            with phase_timer("run", self._log, tracer=self.tracer):
                if pool is not None and pool.parallel:
                    self._run_parallel(pool, checkpoint, paths)
                else:
                    self._run_serial(checkpoint, paths)
        finally:
            if own_pool is not None:
                own_pool.close()
        return paths

    def _cells(self) -> list[tuple[str, str, int]]:
        """Canonical cell order: the serial visit order."""
        return [(system, algorithm, n_threads)
                for n_threads in self.config.thread_counts
                for system in self.config.systems
                for algorithm in self.config.algorithms]

    def _run_serial(self, checkpoint: SuiteCheckpoint,
                    paths: list[Path]) -> None:
        runner = Runner(self.config, self.dataset, tracer=self.tracer)
        injector = (FaultInjector(self.config.seed, self.config.fault_spec)
                    if self.config.fault_spec else None)
        supervisor = CellSupervisor(
            runner, RetryPolicy.from_config(self.config),
            injector=injector)
        for system, algorithm, n_threads in self._cells():
            cid = cell_id(system, algorithm, n_threads)
            outcome = checkpoint.get(cid)
            if outcome is None:
                if self.tracer.enabled:
                    # Route the cell through the same capture/splice a
                    # parallel worker uses, so every simulated stamp is
                    # computed cell-locally and shifted by exactly one
                    # addition -- bit-identical either way.  Bonus: an
                    # interrupted cell's partial events never reach the
                    # log, so a traced resume stays byte-identical too.
                    self.tracer.begin_capture(reset_sim=True, divert=True)
                    try:
                        outcome = supervisor.run_cell(
                            system, algorithm, n_threads)
                    finally:
                        events = self.tracer.take_capture()
                    self.tracer.ingest_cell_events(events)
                else:
                    outcome = supervisor.run_cell(
                        system, algorithm, n_threads)
                checkpoint.record(outcome)
            else:
                self.tracer.counter("epg_checkpoint_hits_total", cell=cid)
                self._log.debug("checkpoint: %s already %s",
                                cid, outcome.status)
            self._finish_cell(system, algorithm, n_threads, outcome, paths)

    def _run_parallel(self, pool, checkpoint: SuiteCheckpoint,
                      paths: list[Path]) -> None:
        cells = self._cells()
        cache = self._artifact_cache()
        if cache is not None:
            # The parent materializes every graph structure once; the
            # workers then map the cached arrays read-only (zero-copy
            # sharing instead of per-worker deserialization).
            from repro.cache.prewarm import prewarm_loaded_graphs

            prewarm_loaded_graphs(self.config, self.dataset, cache)
        # Fork safety: children inherit this file handle, and their
        # exit-time flush would duplicate whatever it still buffers.
        self.tracer.flush()
        futures = {}
        for system, algorithm, n_threads in cells:
            cid = cell_id(system, algorithm, n_threads)
            if checkpoint.get(cid) is None:
                futures[cid] = pool.submit_cell(
                    self.config, self.dataset, system, algorithm,
                    n_threads)
        # Commit sweep: canonical order, regardless of completion
        # order.  An interrupt here loses only uncommitted cells; the
        # checkpoint always holds a canonical prefix, so resume reruns
        # exactly the missing tail.
        for system, algorithm, n_threads in cells:
            cid = cell_id(system, algorithm, n_threads)
            fut = futures.get(cid)
            if fut is None:
                outcome = checkpoint.get(cid)
                self.tracer.counter("epg_checkpoint_hits_total", cell=cid)
                self._log.debug("checkpoint: %s already %s",
                                cid, outcome.status)
            else:
                outcome, events = fut.result()
                self.tracer.ingest_cell_events(events)
                checkpoint.record(outcome)
            self._finish_cell(system, algorithm, n_threads, outcome, paths)

    def _finish_cell(self, system: str, algorithm: str, n_threads: int,
                     outcome: CellOutcome, paths: list[Path]) -> None:
        self.cell_outcomes.append(outcome)
        if outcome.status == "completed":
            p = self.config.output_dir / outcome.log
            self._log.info("ran %s/%s (t=%d) -> %s", system, algorithm,
                           n_threads, p.name)
            paths.append(p)
        elif outcome.status == "unsupported":
            self._log.debug("skipped %s/%s (t=%d): not supported",
                            system, algorithm, n_threads)
        else:
            self._log.warning("quarantined %s after %d attempt(s)",
                              outcome.cell, len(outcome.attempts))

    @property
    def quarantined(self) -> list[CellOutcome]:
        """Cells the last run() left quarantined."""
        return [o for o in self.cell_outcomes
                if o.status == "quarantined"]

    # ------------------------------------------------------------------
    # Phase 4
    # ------------------------------------------------------------------
    def parse(self) -> Path:
        """Phase 4: logs -> results.csv (salvaging damaged logs)."""
        self.parse_problems = []
        records = parse_all_logs(self.config.output_dir / "logs",
                                 problems=self.parse_problems)
        self.records = records
        csv_path = self.config.output_dir / "results.csv"
        with csv_path.open("w", encoding="utf-8") as fh:
            fh.write(Record.csv_header() + "\n")
            for r in records:
                fh.write(r.to_csv_row() + "\n")
        return csv_path

    @staticmethod
    def load_csv(path: str | Path) -> list[Record]:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines or lines[0] != Record.csv_header():
            raise ConfigError(f"{path}: not an EPG results CSV")
        return [Record.from_csv_row(row) for row in lines[1:] if row]

    # ------------------------------------------------------------------
    # Phase 5
    # ------------------------------------------------------------------
    def analyze(self):
        """Phase 5: statistics over the parsed records."""
        from repro.core.analysis import Analysis

        if self.records is None:
            csv = self.config.output_dir / "results.csv"
            if csv.exists():
                self.records = self.load_csv(csv)
            else:
                raise ConfigError("run parse() before analyze()")
        return Analysis(self.records, machine=self.config.machine)

    # ------------------------------------------------------------------
    def run_all(self, pool=None):
        """All five phases, start to finish."""
        self.setup()
        self.homogenize()
        self.run(pool=pool)
        self.parse()
        return self.analyze()
