"""Phase 3: run each algorithm on each system (with power capture).

Execution protocol, mirroring the paper:

* BFS/SSSP: one fresh execution per root (32 executions; each pays its
  own file read + construction, giving Fig 2/3's construction box
  plots) -- except the Graph500, which constructs once and searches all
  roots back-to-back in a single execution (its spec'd Benchmark 1
  protocol; also why Fig 9 has a single Graph500 power point).
* PageRank: "we simply run the algorithm 32 times" (Sec. III-B).
* Power: every kernel region is wrapped in the Fig 10
  ``power_rapl_start/end`` calls on the simulated RAPL counters.
* Run-to-run spread comes from the seeded
  :class:`~repro.machine.variance.VarianceModel`; the underlying kernel
  executes once per root (results are deterministic) and its priced
  time is re-jittered per trial -- behaviourally identical to rerunning
  the binary, minus the Python-side redundancy.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.logs import LogWriter
from repro.datasets.homogenize import HomogenizedDataset
from repro.errors import CellTimeoutError, SystemCapabilityError
from repro.machine.clock import SimulatedClock
from repro.machine.variance import VarianceModel
from repro.observability import Tracer
from repro.power.energy import instantaneous_power
from repro.power.papi import (
    power_rapl_end,
    power_rapl_init,
    power_rapl_print,
    power_rapl_start,
)
from repro.systems import create_system
from repro.systems.base import GraphSystem, KernelResult

__all__ = ["Runner"]

#: Simulated idle gap between consecutive executions (scripts sleep a
#: beat between runs so RAPL windows never overlap).
_IDLE_GAP_S = 0.05


class Runner:
    """Executes one experiment's run phase and writes native logs."""

    def __init__(self, config: ExperimentConfig,
                 dataset: HomogenizedDataset, tracer: Tracer | None = None):
        self.config = config
        self.dataset = dataset
        self.tracer = tracer if tracer is not None else Tracer()
        self.variance = VarianceModel(config.seed)
        self._reference_cache: dict = {}
        #: (system, n_threads) -> (system instance, LoadedGraph).
        #: ``load()`` is deterministic and emits no trace events, so
        #: reusing it changes nothing observable -- cells just stop
        #: re-deserializing the same CSR (one load per pairing per
        #: Runner, i.e. per worker process under ``--jobs``).
        self._loaded_cache: dict = {}
        #: Optional on-disk artifact cache (layer 2: loaded graph
        #: structures).  ``None`` unless the config names a cache dir.
        from repro.cache import ArtifactCache

        self.cache = ArtifactCache.from_config(config, tracer=self.tracer)
        #: Simulated seconds the most recent cell (or faulted partial
        #: cell) consumed; the resilience supervisor prices its attempt
        #: timeline from this.
        self.last_cell_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Graph500-style output validation (config.validate_outputs)
    # ------------------------------------------------------------------
    def _reference_csr(self):
        if "csr" not in self._reference_cache:
            from repro.graph.csr import CSRGraph

            edges = self.dataset.load_edges()
            self._reference_cache["csr"] = CSRGraph.from_edge_list(
                edges, symmetrize=not self.dataset.directed)
        return self._reference_cache["csr"]

    def _validate(self, result: KernelResult, algorithm: str,
                  root: int) -> None:
        """Check a kernel result against the reference oracles; raises
        :class:`repro.errors.ValidationError` on disagreement."""
        from repro.algorithms import pagerank, sssp_dijkstra
        from repro.graph.validation import (
            validate_bfs_parents,
            validate_pagerank,
            validate_sssp_distances,
        )

        csr = self._reference_csr()
        cache = self._reference_cache
        if algorithm == "bfs" and "parent" in result.output:
            validate_bfs_parents(csr, root, result.output["parent"],
                                 directed=self.dataset.directed)
        elif algorithm == "sssp":
            key = ("sssp", root)
            if key not in cache:
                cache[key] = sssp_dijkstra(csr, root)
            validate_sssp_distances(result.output["dist"], cache[key],
                                    rtol=1e-4, atol=1e-5)
        elif algorithm == "pagerank":
            if "pr" not in cache:
                cache["pr"] = pagerank(csr)[0]
            validate_pagerank(result.output["rank"], cache["pr"],
                              tol=5e-3)
        elif algorithm in ("kcore", "mis", "cc"):
            # The structural kernels are deterministic and unique
            # (docs/algorithms.md), so the oracle contract is exact
            # array equality, not a tolerance.
            from repro.errors import ValidationError

            if algorithm == "kcore":
                from repro.algorithms import core_numbers

                if "kcore" not in cache:
                    cache["kcore"] = core_numbers(csr)
                got, want = result.output["core"], cache["kcore"]
            elif algorithm == "mis":
                from repro.algorithms import maximal_independent_set

                if "mis" not in cache:
                    cache["mis"] = maximal_independent_set(
                        csr).astype(np.int64)
                got, want = result.output["in_set"], cache["mis"]
            else:
                from repro.algorithms.wcc import (
                    weakly_connected_components,
                )

                if "cc" not in cache:
                    cache["cc"] = weakly_connected_components(csr)
                got, want = result.output["labels"], cache["cc"]
            if not np.array_equal(got, want):
                raise ValidationError(
                    f"{algorithm} output disagrees with the reference")

    # ------------------------------------------------------------------
    def log_path(self, system: str, algorithm: str, n_threads: int) -> Path:
        return (self.config.output_dir / "logs" / system /
                f"{algorithm}-t{n_threads}.log")

    def run_system_algorithm(self, system_name: str, algorithm: str,
                             n_threads: int, fault=None) -> Path | None:
        """Run one (system, algorithm, threads) cell; return the log path
        or ``None`` when the system cannot run this cell.

        ``fault`` is an optional injected :class:`repro.resilience.faults.
        Fault`: a ``crash`` advances the cell clock partway, leaves a
        truncated native log behind (the killed process's last write),
        and raises; a ``hang`` burns the whole deadline and raises
        :class:`~repro.errors.CellTimeoutError`; a ``corrupt`` lets the
        cell complete but damages one log line afterwards.
        """
        self.last_cell_seconds = 0.0
        cached = self._loaded_cache.get((system_name, n_threads))
        if cached is not None:
            system, loaded = cached
            if not system.supports(algorithm):
                return None
        else:
            system = create_system(system_name,
                                   machine=self.config.machine,
                                   n_threads=n_threads,
                                   shards=self.config.shards)
            if not system.supports(algorithm):
                return None
            try:
                loaded = system.load(self.dataset, cache=self.cache)
            except SystemCapabilityError:
                # e.g. the Graph500 refusing a non-Kronecker dataset.
                return None
            self._loaded_cache[(system_name, n_threads)] = (system, loaded)

        writer = LogWriter(system_name, self.dataset.name, n_threads,
                           algorithm)
        clock = SimulatedClock(
            idle_pkg_watts=self.config.machine.idle_pkg_watts,
            idle_dram_watts=self.config.machine.idle_dram_watts)
        self.tracer.bind_clock(clock)
        system.tracer = self.tracer

        if fault is not None and fault.kind in ("crash", "hang"):
            self._fail_cell(fault, writer, clock, system_name, algorithm,
                            n_threads)

        if system_name == "graph500":
            self._run_graph500(system, loaded, writer, clock)
        else:
            self._run_per_root(system, loaded, writer, clock, algorithm)

        path = self.log_path(system_name, algorithm, n_threads)
        writer.write(path)
        if fault is not None and fault.kind == "corrupt":
            from repro.resilience.faults import corrupt_log

            corrupt_log(path, seed=self.config.seed)
        self.last_cell_seconds = clock.now
        return path

    def _fail_cell(self, fault, writer: LogWriter, clock: SimulatedClock,
                   system_name: str, algorithm: str,
                   n_threads: int) -> None:
        """Price an injected crash/hang on the cell clock and raise."""
        from repro.resilience.faults import InjectedCrashError

        cell = f"{system_name}/{algorithm}/t{n_threads}"
        clock.advance(fault.seconds)
        self.last_cell_seconds = clock.now
        if fault.kind == "hang":
            raise CellTimeoutError(
                f"{cell}: no output after {fault.seconds:.3g}s "
                "(injected hang)")
        # A killed process leaves whatever it had flushed: the header.
        writer.write(self.log_path(system_name, algorithm, n_threads))
        raise InjectedCrashError(
            f"{cell}: killed {fault.seconds:.3g}s into the run "
            "(injected crash)")

    # ------------------------------------------------------------------
    def _roots_and_trials(self, algorithm: str) -> list[tuple[int, int]]:
        """(root, trial) pairs for one cell."""
        pairs: list[tuple[int, int]] = []
        if algorithm in ("bfs", "sssp"):
            for trial in range(self.config.n_trials):
                for root in self.dataset.roots[:self.config.n_roots]:
                    pairs.append((int(root), trial))
        else:
            for trial in range(self.config.n_roots * self.config.n_trials):
                pairs.append((-1, trial))
        return pairs

    def _jitter(self, seconds: float, system: GraphSystem, algorithm: str,
                metric: str, root: int, trial: int) -> float:
        key = (system.name, algorithm, self.dataset.name,
               system.n_threads, root, trial, metric)
        return self.variance.jitter(seconds, key,
                                    sensitivity=system.noise_sensitivity)

    def _power_draw(self, system: GraphSystem, algorithm: str, root: int,
                    trial: int) -> tuple[float, float]:
        pkg, dram = instantaneous_power(self.config.machine, system.power,
                                        system.n_threads)
        key = (system.name, algorithm, self.dataset.name,
               system.n_threads, root, trial)
        machine = self.config.machine
        # Sampling jitter never escapes the physical package envelope.
        return (min(self.variance.power_jitter(pkg, key),
                    machine.max_pkg_watts),
                min(self.variance.power_jitter(dram, ("dram",) + key),
                    machine.max_dram_watts))

    def _measured_advance(self, clock: SimulatedClock, seconds: float,
                          pkg_w: float, dram_w: float,
                          trace_name: str | None = None):
        """Advance the clock under a RAPL measurement window, optionally
        also sampling a WattProf-style trace."""
        wp = None
        if self.config.capture_power_traces and trace_name:
            from repro.power.wattprof import WattProfBackend

            wp = WattProfBackend(clock,
                                 sample_hz=self.config.trace_sample_hz)
            wp.start()
        ps = power_rapl_init(clock)
        power_rapl_start(ps)
        clock.advance(seconds, pkg_w, dram_w)
        power_rapl_end(ps)
        power_rapl_print(ps)
        if wp is not None:
            trace = wp.stop()
            trace.to_csv(self.config.output_dir / "traces"
                         / f"{trace_name}.csv")
        return ps

    # ------------------------------------------------------------------
    def _run_graph500(self, system: GraphSystem, loaded, writer: LogWriter,
                      clock: SimulatedClock) -> None:
        """One execution, all roots, one construction, one power window."""
        cfg = self.config
        scale = int(np.ceil(np.log2(max(loaded.n_vertices, 2))))
        roots = self.dataset.roots[:cfg.n_roots]
        writer.graph500_header(scale=scale, edgefactor=16,
                               nbfs=len(roots) * cfg.n_trials)
        build = self._jitter(loaded.build_s or 0.0, system, "bfs",
                             "build", -1, 0)
        with self.tracer.span("phase:read", category="phase",
                              system=system.name, algorithm="bfs"):
            clock.advance(loaded.read_s)  # untimed generator/read phase
        with self.tracer.span("phase:build", category="phase",
                              system=system.name, algorithm="bfs"):
            clock.advance(build)          # kernel 1 (timed)
        writer.graph500_construction(build)

        pkg_w, dram_w = self._power_draw(system, "bfs", -1, 0)
        ps = power_rapl_init(clock)
        power_rapl_start(ps)
        times = []
        index = 0
        kernel_cache: dict[int, KernelResult] = {}
        for trial in range(cfg.n_trials):
            for root in roots:
                root = int(root)
                if root not in kernel_cache:
                    res = system.run(loaded, "bfs", root=root)
                    if self.config.validate_outputs:
                        self._validate(res, "bfs", root)
                    kernel_cache[root] = res
                else:
                    self.tracer.counter("epg_kernel_cache_hits_total",
                                        system=system.name,
                                        algorithm="bfs")
                t = self._jitter(kernel_cache[root].time_s, system, "bfs",
                                 "time", root, trial)
                with self.tracer.span("phase:kernel", category="phase",
                                      system=system.name, algorithm="bfs",
                                      root=root, trial=trial):
                    clock.advance(t, pkg_w, dram_w)
                writer.graph500_bfs(index, root, t)
                times.append((t, kernel_cache[root]))
                index += 1
        power_rapl_end(ps)
        ts = [t for t, _ in times]
        edges = [r.counters.get("edges_examined", loaded.n_arcs)
                 for _, r in times]
        inv = [t / max(e, 1) for t, e in zip(ts, edges)]
        writer.graph500_summary(min(ts), float(np.mean(ts)), max(ts),
                                1.0 / float(np.mean(inv)))
        if self.config.measure_power:
            writer.power_lines(ps.package_joules, ps.dram_joules,
                               ps.duration_s, root=-1, trial=0)

    # ------------------------------------------------------------------
    def _run_per_root(self, system: GraphSystem, loaded, writer: LogWriter,
                      clock: SimulatedClock, algorithm: str) -> None:
        """Fresh execution per root/trial for the other four systems."""
        kernel_cache: dict[int, KernelResult] = {}
        for root, trial in self._roots_and_trials(algorithm):
            cache_key = root if algorithm in ("bfs", "sssp") else -1
            if cache_key not in kernel_cache:
                kwargs = {}
                if algorithm in ("bfs", "sssp"):
                    kwargs["root"] = root
                if algorithm == "pagerank" and system.name != "graphmat":
                    kwargs["epsilon"] = self.config.epsilon
                result = system.run(loaded, algorithm, **kwargs)
                if self.config.validate_outputs:
                    self._validate(result, algorithm, root)
                kernel_cache[cache_key] = result
            else:
                self.tracer.counter("epg_kernel_cache_hits_total",
                                    system=system.name,
                                    algorithm=algorithm)
            result = kernel_cache[cache_key]

            read = self._jitter(loaded.read_s, system, algorithm, "read",
                                root, trial)
            build = (self._jitter(loaded.build_s, system, algorithm,
                                  "build", root, trial)
                     if loaded.build_s is not None else None)
            t = self._jitter(result.time_s, system, algorithm, "time",
                             root, trial)

            clock.advance(_IDLE_GAP_S)
            # Load phases draw moderate power (streaming, not compute
            # bound): halfway between idle and the kernel draw.
            pkg_w, dram_w = self._power_draw(system, algorithm, root, trial)
            load_pkg = (self.config.machine.idle_pkg_watts + pkg_w) / 2
            load_dram = (self.config.machine.idle_dram_watts + dram_w) / 2
            with self.tracer.span("phase:read", category="phase",
                                  system=system.name, algorithm=algorithm,
                                  root=root, trial=trial):
                clock.advance(read, load_pkg, load_dram)
            if build is not None:
                with self.tracer.span("phase:build", category="phase",
                                      system=system.name,
                                      algorithm=algorithm, root=root,
                                      trial=trial):
                    clock.advance(build, load_pkg, load_dram)

            trace_name = (f"{system.name}-{algorithm}"
                          f"-t{system.n_threads}-r{root}-{trial}")
            with self.tracer.span("phase:kernel", category="phase",
                                  system=system.name, algorithm=algorithm,
                                  root=root, trial=trial) as ksp:
                ps = self._measured_advance(clock, t, pkg_w, dram_w,
                                            trace_name=trace_name)
                ksp.set(energy_pkg_j=round(ps.package_joules, 6),
                        energy_dram_j=round(ps.dram_joules, 6))

            self._emit_native(writer, system, loaded, algorithm, root,
                              trial, read, build, t, result)
            if self.config.measure_power:
                writer.power_lines(ps.package_joules, ps.dram_joules,
                                   ps.duration_s, root=root, trial=trial)

    def _emit_native(self, writer: LogWriter, system: GraphSystem, loaded,
                     algorithm: str, root: int, trial: int, read: float,
                     build: float | None, t: float,
                     result: KernelResult) -> None:
        name = system.name
        iterations = result.iterations
        if name == "gap":
            writer.gap_load(read, build or 0.0)
            writer.gap_trial(root, trial, t, iterations=iterations
                             if algorithm == "pagerank" else None)
        elif name == "graphbig":
            writer.graphbig_load(read)   # fused: read_s already has build
            writer.graphbig_run(root, trial, t, iterations=iterations)
        elif name == "graphmat":
            writer.graphmat_block(
                root=root, trial=trial, read_s=read,
                load_s=read + (build or 0.0),
                init_s=8.32e-5,
                degree_s=0.05 * (build or 0.02),
                algo_label=self._graphmat_label(algorithm),
                algo_s=t,
                print_s=loaded.n_vertices * 1.5e-8,
                deinit_s=2.2e-4,
                iterations=iterations)
        elif name == "powergraph":
            writer.powergraph_load(read)
            writer.powergraph_run(root, trial, t, iterations=iterations)
        else:  # pragma: no cover - defensive
            raise SystemCapabilityError(f"no native emitter for {name}")

    @staticmethod
    def _graphmat_label(algorithm: str) -> str:
        return {
            "bfs": "compute BFS",
            "sssp": "compute SSSP",
            "pagerank": "compute PageRank",
            "wcc": "compute Connected Components",
            "cdlp": "compute Label Propagation",
            "lcc": "compute Triangle Counting",
            "kcore": "compute KCore",
            "mis": "compute MIS",
        }[algorithm]
