"""Experiment provenance: who produced these numbers, and can anyone
reproduce them bit-for-bit?

The paper's abstract promises "easy, rigorous, and repeatable"
comparison; repeatability needs more than a seed -- it needs a record
of everything the numbers depended on and a cheap way to verify a
rerun matched.  :func:`capture` writes a ``provenance.json`` next to
the results holding the configuration, the machine model, the package
version and python/numpy versions, and a content digest of
results.csv; :func:`verify` re-checks a directory against it.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import ExperimentConfig
from repro.errors import ConfigError
from repro.ioutil import atomic_write_text

__all__ = ["Provenance", "capture", "verify", "digest_file"]


def digest_file(path: str | Path) -> str:
    """BLAKE2b content digest of one file (hex, 32 chars)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(Path(path).read_bytes())
    return h.hexdigest()


@dataclass(frozen=True)
class Provenance:
    """Everything a rerun needs to check itself against."""

    config: dict
    machine: dict
    results_digest: str
    software: dict

    def to_json(self) -> str:
        return json.dumps({
            "config": self.config,
            "machine": self.machine,
            "results_digest": self.results_digest,
            "software": self.software,
        }, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Provenance":
        d = json.loads(text)
        return Provenance(config=d["config"], machine=d["machine"],
                          results_digest=d["results_digest"],
                          software=d["software"])


def _machine_dict(config: ExperimentConfig) -> dict:
    m = config.machine
    return {
        "name": m.name, "sockets": m.sockets,
        "cores_per_socket": m.cores_per_socket, "smt": m.smt,
        "mem_bw_gbs": m.mem_bw_gbs, "ram_gb": m.ram_gb,
        "idle_pkg_watts": m.idle_pkg_watts,
    }


def capture(config: ExperimentConfig) -> Path:
    """Write ``provenance.json`` for a completed experiment."""
    import numpy

    import repro

    results = config.output_dir / "results.csv"
    if not results.exists():
        raise ConfigError(
            f"{results} missing: run the pipeline before capture()")
    prov = Provenance(
        config=config.to_dict(),
        machine=_machine_dict(config),
        results_digest=digest_file(results),
        software={
            "repro": repro.__version__,
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
    )
    path = config.output_dir / "provenance.json"
    atomic_write_text(path, prov.to_json())
    return path


def verify(output_dir: str | Path) -> tuple[bool, list[str]]:
    """Check an experiment directory against its provenance record.

    Returns ``(ok, problems)``.  A digest mismatch means results.csv no
    longer matches what was captured -- either the data was edited or a
    rerun diverged (which, given the deterministic design, indicates a
    code change).
    """
    output_dir = Path(output_dir)
    ppath = output_dir / "provenance.json"
    problems: list[str] = []
    if not ppath.exists():
        return False, ["no provenance.json"]
    prov = Provenance.from_json(ppath.read_text(encoding="utf-8"))
    results = output_dir / "results.csv"
    if not results.exists():
        problems.append("results.csv missing")
    elif digest_file(results) != prov.results_digest:
        problems.append("results.csv digest mismatch")
    cfg_path = output_dir / "config.json"
    if cfg_path.exists():
        current = json.loads(cfg_path.read_text(encoding="utf-8"))
        if current != prov.config:
            problems.append("config.json differs from captured config")
    return not problems, problems
