"""EPG*'s own HTML report — the answer to Graphalytics' Fig 7 page.

The paper contrasts Graphalytics' single-trial HTML tables with EPG*'s
distribution-bearing output.  This module closes the loop: one
self-contained HTML page per experiment with the five-number summary
tables, the inline SVG figures, and the run coordinates — everything
Graphalytics' page shows, plus the distributions it cannot.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.core.analysis import Analysis, BoxStats
from repro.errors import ConfigError

__all__ = ["render_epg_html"]

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 70em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 4px 10px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
h1 { border-bottom: 2px solid #1b6ca8; }
figure { display: inline-block; margin: 1em; }
.note { color: #555; font-size: 0.9em; }
"""


def _box_table_html(title: str, boxes: dict[str, BoxStats]) -> str:
    rows = []
    for name in sorted(boxes):
        b = boxes[name]
        rows.append(
            f"<tr><td>{escape(name)}</td><td>{b.n}</td>"
            f"<td>{b.minimum:.4g}</td><td>{b.q1:.4g}</td>"
            f"<td>{b.median:.4g}</td><td>{b.q3:.4g}</td>"
            f"<td>{b.maximum:.4g}</td><td>{b.rsd:.2f}</td></tr>")
    return (
        f"<h2>{escape(title)}</h2>"
        "<table><tr><th>group</th><th>n</th><th>min</th><th>q1</th>"
        "<th>median</th><th>q3</th><th>max</th><th>rsd</th></tr>"
        + "".join(rows) + "</table>")


def render_epg_html(analysis: Analysis, out_path: str | Path,
                    title: str = "easy-parallel-graph-* report",
                    embed_figures: bool = True,
                    observability: str | None = None) -> Path:
    """Write one self-contained HTML report for an analysis.

    ``observability`` is an optional preformatted text block (the
    REPORT.md Observability section) appended when tracing was on.
    """
    if not analysis.records:
        raise ConfigError("nothing to report")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        "<p class='note'>Every cell is a distribution over "
        f"{max(b.n for b in analysis.box('time').values())} runs "
        "&mdash; unlike a certain comparator's single-trial tables "
        "(paper Sec. II).</p>",
        f"<p>datasets: {', '.join(analysis.datasets())}; systems: "
        f"{', '.join(analysis.systems())}; threads: "
        f"{', '.join(map(str, analysis.thread_counts()))}</p>",
    ]

    for algo in analysis.algorithms():
        boxes = {k[0]: v for k, v in analysis.box("time").items()
                 if k[1] == algo}
        if boxes:
            parts.append(_box_table_html(
                f"{algo} kernel time (s)", boxes))

    builds = {f"{k[0]}": v
              for k, v in analysis.construction_box("bfs").items()}
    if builds:
        parts.append(_box_table_html(
            "data structure construction (s)", builds))

    power = analysis.power_box("pkg_watts", "bfs")
    if power:
        parts.append(_box_table_html("CPU power during BFS (W)", power))

    iters = analysis.iterations("pagerank")
    if iters:
        rows = "".join(f"<tr><td>{escape(s)}</td><td>{v:.0f}</td></tr>"
                       for s, v in sorted(iters.items()))
        parts.append("<h2>PageRank iterations</h2><table>"
                     "<tr><th>system</th><th>iterations</th></tr>"
                     + rows + "</table>")

    if embed_figures:
        from repro.viz import render_all_figures

        figures = render_all_figures(
            analysis, out_path.parent / "figures")
        for fig, paths in sorted(figures.items()):
            for p in paths:
                svg = p.read_text(encoding="utf-8")
                # Strip the XML prolog for inline embedding.
                svg_body = svg[svg.index("<svg"):]
                parts.append(f"<figure>{svg_body}"
                             f"<figcaption>{escape(p.stem)}"
                             "</figcaption></figure>")

    if observability:
        parts.append("<h2>Observability</h2>"
                     f"<pre>{escape(observability)}</pre>")

    parts.append("</body></html>")
    out_path.write_text("".join(parts), encoding="utf-8")
    return out_path
