"""Rendering: ASCII tables and figure series.

The paper's phase 5 feeds R scripts that draw the plots; this module
produces the same content as text -- paper-shaped tables (Tables I-III)
and per-figure data series (CSV-ish blocks ready for any plotting tool),
plus quick ASCII box summaries so a terminal user can eyeball the
distributions.
"""

from __future__ import annotations

from repro.core.analysis import Analysis, BoxStats

__all__ = ["format_table", "format_box_table", "format_series",
           "ascii_box", "figure_series", "format_failures_section"]


def format_table(title: str, columns: list[str],
                 rows: dict[str, list[str]]) -> str:
    """Render a paper-style table: row label + column values."""
    label_w = max([len(r) for r in rows] + [8]) + 2
    col_ws = [max(len(c), *(len(rows[r][i]) for r in rows)) + 2
              for i, c in enumerate(columns)]
    out = [title]
    header = " " * label_w + "".join(c.rjust(w) for c, w in
                                     zip(columns, col_ws))
    out.append(header)
    out.append("-" * len(header))
    for label, vals in rows.items():
        out.append(label.ljust(label_w)
                   + "".join(v.rjust(w) for v, w in zip(vals, col_ws)))
    return "\n".join(out)


def ascii_box(stats: BoxStats, width: int = 40, lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line ASCII box plot: ``|---[==|==]---|`` on a linear scale."""
    lo = stats.minimum if lo is None else lo
    hi = stats.maximum if hi is None else hi
    span = max(hi - lo, 1e-300)

    def pos(x: float) -> int:
        return int(round((x - lo) / span * (width - 1)))

    cells = [" "] * width
    for a, b, ch in ((stats.minimum, stats.q1, "-"),
                     (stats.q3, stats.maximum, "-")):
        for i in range(pos(a), pos(b) + 1):
            cells[i] = ch
    for i in range(pos(stats.q1), pos(stats.q3) + 1):
        cells[i] = "="
    cells[pos(stats.median)] = "|"
    return "".join(cells)


def format_box_table(title: str, boxes: dict[str, BoxStats],
                     unit: str = "s") -> str:
    """Per-group five-number table with an inline ASCII box."""
    if not boxes:
        return f"{title}\n(no data)"
    lo = min(b.minimum for b in boxes.values())
    hi = max(b.maximum for b in boxes.values())
    out = [title,
           f"{'group':<22}{'min':>10}{'median':>10}{'max':>10}"
           f"{'mean':>10}{'rsd':>7}  distribution ({unit})"]
    for name in sorted(boxes):
        b = boxes[name]
        out.append(
            f"{name:<22}{b.minimum:>10.4g}{b.median:>10.4g}"
            f"{b.maximum:>10.4g}{b.mean:>10.4g}{b.rsd:>7.2f}  "
            f"[{ascii_box(b, lo=lo, hi=hi)}]")
    return "\n".join(out)


def format_series(title: str, x_label: str, xs: list,
                  series: dict[str, list[float]]) -> str:
    """A figure as a CSV block: one x column + one column per series."""
    out = [f"# {title}", ",".join([x_label] + list(series))]
    for i, x in enumerate(xs):
        row = [str(x)] + [f"{series[s][i]:.6g}" for s in series]
        out.append(",".join(row))
    return "\n".join(out)


def format_failures_section(outcomes_by_label) -> str:
    """The report's "Failures and retries" section.

    ``outcomes_by_label`` maps an experiment label (e.g. the suite
    sub-directory) to its :class:`~repro.resilience.CellOutcome` list.
    Every cell that was quarantined, or that needed more than one
    attempt, is listed with its full attempt history and backoff
    schedule -- the degraded-run ledger the paper keeps implicitly when
    it reports holes like PowerGraph-without-BFS.
    """
    lines = ["## Failures and retries", ""]
    rows: list[str] = []
    for label, outcomes in outcomes_by_label.items():
        for oc in outcomes:
            failed = oc.failed_attempts
            if oc.status != "quarantined" and not failed:
                continue
            if oc.status == "quarantined":
                rows.append(f"- `{label}:{oc.cell}` **quarantined** "
                            f"after {len(oc.attempts)} attempt(s)")
            else:
                rows.append(f"- `{label}:{oc.cell}` recovered after "
                            f"{len(failed)} failed attempt(s) "
                            f"({len(oc.attempts)} total)")
            for a in oc.attempts:
                detail = (f"  - attempt {a.attempt}: {a.status}, "
                          f"t={a.started_s:.3f}s, "
                          f"duration {a.duration_s:.3f}s")
                if a.error:
                    detail += f" [{a.error}]"
                if a.backoff_s is not None:
                    detail += f"; backoff {a.backoff_s:.3f}s"
                rows.append(detail)
    if not rows:
        rows = ["All cells completed on their first attempt; "
                "no retries were needed."]
    return "\n".join(lines + rows) + "\n"


def format_observability_section(events, registry,
                                 trace_dir: str = "trace") -> str:
    """The report's "Observability" section (tracing-enabled runs only).

    ``events`` is the parsed event log; ``registry`` the metrics
    replayed from it.  Shows only simulated-clock durations so a traced
    resume reports the same numbers as an uninterrupted traced run.
    """
    from repro.observability import slowest_spans, span_events

    spans = span_events(events)
    sim_end = max((ev["t1_sim"] for ev in spans), default=0.0)
    lines = [
        "## Observability",
        "",
        f"- {len(spans)} spans recorded; simulated timeline ends at "
        f"{sim_end:.3f} s",
    ]

    def _total(name: str) -> float:
        m = registry.get(name)
        return m.total() if m is not None else 0.0

    lines.append(f"- attempts: {_total('epg_attempts_total'):.0f}, "
                 f"retries: {_total('epg_retries_total'):.0f}, "
                 f"quarantines: {_total('epg_quarantines_total'):.0f}, "
                 f"checkpoint hits: "
                 f"{_total('epg_checkpoint_hits_total'):.0f}, "
                 f"kernel cache hits: "
                 f"{_total('epg_kernel_cache_hits_total'):.0f}")
    lines.append(f"- event log: `{trace_dir}/events.jsonl`; Chrome "
                 f"trace: `{trace_dir}/trace.json` (load in Perfetto "
                 f"or chrome://tracing); metrics: "
                 f"`{trace_dir}/metrics.prom`")
    lines += ["", "Top 5 slowest spans (simulated):", ""]
    for ev in slowest_spans(events, 5):
        dur = ev["t1_sim"] - ev["t0_sim"]
        lines.append(f"- `{ev['name']}` ({ev['cat']}): {dur:.3f} s")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Figure-specific assemblies
# ----------------------------------------------------------------------
def figure_series(analysis: Analysis, figure: str) -> str:
    """Render one paper figure's data from an analysis.

    ``figure`` is one of ``fig2``..``fig6``, ``fig8``, ``fig9`` (see
    DESIGN.md's per-experiment index).
    """
    if figure == "fig2":
        return "\n\n".join([
            format_box_table(
                "Fig 2 (left): BFS time (s)",
                {k[0]: v for k, v in analysis.box("time").items()
                 if k[1] == "bfs"}),
            format_box_table(
                "Fig 2 (right): BFS data structure construction (s)",
                {k[0]: v for k, v in
                 analysis.construction_box("bfs").items()}),
        ])
    if figure == "fig3":
        return "\n\n".join([
            format_box_table(
                "Fig 3 (left): SSSP time (s)",
                {k[0]: v for k, v in analysis.box("time").items()
                 if k[1] == "sssp"}),
            format_box_table(
                "Fig 3 (right): SSSP data structure construction (s)",
                {k[0]: v for k, v in
                 analysis.construction_box("sssp").items()}),
        ])
    if figure == "fig4":
        iters = analysis.iterations("pagerank")
        return "\n\n".join([
            format_box_table(
                "Fig 4 (left): PageRank time (s)",
                {k[0]: v for k, v in analysis.box("time").items()
                 if k[1] == "pagerank"}),
            format_table(
                "Fig 4 (right): PageRank iterations",
                ["iterations"],
                {s: [f"{v:.0f}"] for s, v in sorted(iters.items())}),
        ])
    if figure in ("fig5", "fig6"):
        threads = analysis.thread_counts()
        series: dict[str, list[float]] = {}
        for system in analysis.systems():
            try:
                tab = analysis.scalability(system, "bfs")
            except Exception:
                continue
            series[system] = (tab.speedup() if figure == "fig5"
                              else tab.efficiency())
        name = ("Fig 5: BFS speedup T1/Tn" if figure == "fig5"
                else "Fig 6: BFS parallel efficiency T1/(n*Tn)")
        return format_series(name, "threads", threads, series)
    if figure == "fig8":
        datasets = analysis.datasets()
        algos = [a for a in ("bfs", "pagerank", "sssp")
                 if a in analysis.algorithms()]
        blocks = []
        for algo in algos:
            rows = {}
            for system in analysis.systems():
                vals = []
                for ds in datasets:
                    try:
                        vals.append(f"{analysis.mean_time(system, algo, ds):.4g}")
                    except Exception:
                        vals.append("N/A")
                rows[system] = vals
            blocks.append(format_table(
                f"Fig 8: mean {algo} time (s)", datasets, rows))
        return "\n\n".join(blocks)
    if figure == "fig9":
        return "\n\n".join([
            format_box_table(
                "Fig 9 (left): RAM power during BFS (W)",
                analysis.power_box("dram_watts", "bfs"), unit="W"),
            format_box_table(
                "Fig 9 (right): CPU power during BFS (W)",
                analysis.power_box("pkg_watts", "bfs"), unit="W"),
        ])
    raise ValueError(f"unknown figure {figure!r}")
