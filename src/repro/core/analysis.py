"""Phase 5: statistics over parsed records.

Produces the quantities behind every figure of Sec. IV:

* :class:`BoxStats` -- the five-number summaries behind the box plots
  (Figs 2, 3, 4, 9) plus mean/std/relative-standard-deviation (the
  paper compares PageRank's RSD to SSSP's);
* speedup ``T1/Tn`` and parallel efficiency ``T1/(n*Tn)`` tables
  (Figs 5, 6);
* the Table III energy accounting per system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.records import Record
from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server
from repro.power.energy import EnergyReport

__all__ = ["BoxStats", "EfficiencyTable", "Analysis", "summarize"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus moments of one measurement group."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    std: float

    @property
    def rsd(self) -> float:
        """Relative standard deviation (std/mean), Sec. IV-A."""
        return self.std / self.mean if self.mean else math.inf

    @staticmethod
    def from_values(values) -> "BoxStats":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ConfigError("cannot summarize an empty group")
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return BoxStats(
            n=int(arr.size), minimum=float(arr.min()), q1=float(q1),
            median=float(med), q3=float(q3), maximum=float(arr.max()),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0)


def summarize(records: list[Record], metric: str = "time",
              ) -> dict[tuple[str, str, str, int], BoxStats]:
    """Group by (system, algorithm, dataset, threads) and summarize."""
    groups: dict[tuple[str, str, str, int], list[float]] = {}
    for r in records:
        if r.metric != metric:
            continue
        key = (r.system, r.algorithm, r.dataset, r.threads)
        groups.setdefault(key, []).append(r.value)
    return {k: BoxStats.from_values(v) for k, v in groups.items()}


@dataclass
class EfficiencyTable:
    """Speedup and efficiency curves for one (system, algorithm)."""

    system: str
    algorithm: str
    threads: list[int]
    mean_times: list[float]

    @property
    def t1(self) -> float:
        try:
            idx = self.threads.index(1)
        except ValueError:
            raise ConfigError(
                "scalability analysis requires a 1-thread measurement"
            ) from None
        return self.mean_times[idx]

    def speedup(self) -> list[float]:
        """``T1 / Tn`` (Fig 5)."""
        t1 = self.t1
        return [t1 / t for t in self.mean_times]

    def efficiency(self) -> list[float]:
        """``T1 / (n * Tn)`` (Fig 6)."""
        t1 = self.t1
        return [t1 / (n * t) for n, t in zip(self.threads,
                                             self.mean_times)]


@dataclass
class Analysis:
    """All phase-5 views over one record set."""

    records: list[Record]
    machine: MachineSpec = field(default_factory=haswell_server)

    # ------------------------------------------------------------------
    def box(self, metric: str = "time"):
        return summarize(self.records, metric)

    def systems(self) -> list[str]:
        return sorted({r.system for r in self.records})

    def algorithms(self) -> list[str]:
        return sorted({r.algorithm for r in self.records})

    def datasets(self) -> list[str]:
        return sorted({r.dataset for r in self.records})

    def thread_counts(self) -> list[int]:
        return sorted({r.threads for r in self.records})

    # ------------------------------------------------------------------
    def mean_time(self, system: str, algorithm: str,
                  dataset: str | None = None,
                  threads: int | None = None,
                  metric: str = "time") -> float:
        vals = [r.value for r in self.records
                if r.system == system and r.algorithm == algorithm
                and r.metric == metric
                and (dataset is None or r.dataset == dataset)
                and (threads is None or r.threads == threads)]
        if not vals:
            raise ConfigError(
                f"no {metric} records for {system}/{algorithm}"
                f"/{dataset}/{threads}")
        return float(np.mean(vals))

    def median_time(self, system: str, algorithm: str,
                    dataset: str | None = None,
                    threads: int | None = None) -> float:
        vals = [r.value for r in self.records
                if r.system == system and r.algorithm == algorithm
                and r.metric == "time"
                and (dataset is None or r.dataset == dataset)
                and (threads is None or r.threads == threads)]
        if not vals:
            raise ConfigError(
                f"no time records for {system}/{algorithm}"
                f"/{dataset}/{threads}")
        return float(np.median(vals))

    def scalability(self, system: str, algorithm: str,
                    dataset: str | None = None) -> EfficiencyTable:
        """Speedup/efficiency data for one system (Figs 5-6).

        Aggregates trials by *median*: the paper ran only four trials
        per point for timing reasons (Sec. IV-B), and a single
        background CPU spike on the serial run would otherwise invert
        the whole curve.
        """
        threads = self.thread_counts()
        medians = [self.median_time(system, algorithm, dataset, n)
                   for n in threads]
        return EfficiencyTable(system=system, algorithm=algorithm,
                               threads=threads, mean_times=medians)

    # ------------------------------------------------------------------
    def energy_table(self, algorithm: str = "bfs",
                     threads: int | None = None) -> dict[str, EnergyReport]:
        """Table III: per-system averaged energy accounting for one
        algorithm (per root, averaged over the 32 roots)."""
        out: dict[str, EnergyReport] = {}
        for system in self.systems():
            rel = [r for r in self.records
                   if r.system == system and r.algorithm == algorithm
                   and (threads is None or r.threads == threads)]
            times = [r.value for r in rel if r.metric == "time"]
            pkg_j = [r.value for r in rel if r.metric == "pkg_joules"]
            dram_j = [r.value for r in rel if r.metric == "dram_joules"]
            if not times or not pkg_j:
                continue
            # Graph500 measures one window over all roots: divide its
            # single energy reading by the number of searches.
            n_roots = len(times)
            mean_time = float(np.mean(times))
            if len(pkg_j) == 1 and n_roots > 1:
                pkg_per_root = pkg_j[0] / n_roots
                dram_per_root = (dram_j[0] / n_roots) if dram_j else 0.0
            else:
                pkg_per_root = float(np.mean(pkg_j))
                dram_per_root = float(np.mean(dram_j)) if dram_j else 0.0
            out[system] = EnergyReport.from_measurement(
                pkg_per_root, dram_per_root, mean_time, self.machine)
        return out

    def power_box(self, metric: str = "pkg_watts",
                  algorithm: str = "bfs") -> dict[str, BoxStats]:
        """Fig 9: per-system power distribution during one algorithm."""
        groups: dict[str, list[float]] = {}
        for r in self.records:
            if r.metric == metric and r.algorithm == algorithm:
                groups.setdefault(r.system, []).append(r.value)
        return {k: BoxStats.from_values(v) for k, v in groups.items()}

    def iterations(self, algorithm: str = "pagerank") -> dict[str, float]:
        """Fig 4 right panel: mean iteration count per system."""
        groups: dict[str, list[float]] = {}
        for r in self.records:
            if r.metric == "iterations" and r.algorithm == algorithm:
                groups.setdefault(r.system, []).append(r.value)
        return {k: float(np.mean(v)) for k, v in groups.items()}

    def construction_box(self, algorithm: str | None = None
                         ) -> dict[tuple[str, str], BoxStats]:
        """Figs 2-3 right panels: construction-time distributions for
        systems whose construction is separable."""
        groups: dict[tuple[str, str], list[float]] = {}
        for r in self.records:
            if r.metric != "build":
                continue
            if algorithm is not None and r.algorithm != algorithm:
                continue
            groups.setdefault((r.system, r.algorithm), []).append(r.value)
        return {k: BoxStats.from_values(v) for k, v in groups.items()}
