"""Full-scale projections through the calibrated cost model.

Real kernels run at laptop scales; the paper's scalability study
(Figs 5-6) ran BFS on a scale-23 Kronecker graph, where per-invocation
fixed costs are negligible next to kernel work.  At small scales those
fixed costs -- genuinely -- dominate and flatten every speedup curve, so
reproducing the *shape* of Figs 5-6 requires pricing the paper's own
workload.  This module does exactly that: it builds the analytic
:class:`~repro.machine.threads.WorkProfile` each system would report at
a given scale (unit counts scaled from the calibration anchors, which
are themselves cross-checked against measured kernel counts) and prices
it across thread counts.

Used by ``benchmarks/bench_fig5.py`` / ``bench_fig6.py`` and the paper-
claims test suite; the same benchmarks also print the real-kernel curves
at bench scale for comparison.
"""

from __future__ import annotations

from repro.core.analysis import EfficiencyTable
from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server
from repro.machine.threads import ThreadModel, WorkProfile
from repro.systems import calibration

__all__ = ["projected_profile", "projected_time", "projected_scalability",
           "PAPER_SCALING_SCALE"]

#: Figs 5-6 ran "a Kronecker graph of scale 23" (Sec. IV-B).
PAPER_SCALING_SCALE = 23


def projected_profile(system: str, algorithm: str, scale: int
                      ) -> WorkProfile:
    """Analytic work profile for one kernel run at ``scale``.

    Unit counts scale linearly with the arc count relative to the
    scale-22 anchors (per-arc work fractions are scale-stable for
    Kronecker graphs at fixed edge factor; verified against measured
    kernels in the test suite).  Rounds mirror the typical BFS depth.
    """
    try:
        anchor = calibration._ANCHORS[system][algorithm]
    except KeyError:
        raise ConfigError(
            f"no anchor for {system}/{algorithm}") from None
    arcs = 2.0 * 16.0 * (1 << scale)
    units = anchor.units * (arcs / calibration.SCALE22_ARCS)
    rounds = calibration.SCALE22_BFS_LEVELS
    profile = WorkProfile()
    for _ in range(rounds):
        profile.add_round(units=units / rounds, skew=anchor.skew)
    return profile


def projected_time(system: str, algorithm: str, scale: int,
                   n_threads: int,
                   machine: MachineSpec | None = None) -> float:
    """Simulated seconds for one kernel run at full scale."""
    machine = machine or haswell_server()
    profile = projected_profile(system, algorithm, scale)
    costs = calibration.cost_params(system, algorithm, machine)
    return ThreadModel(machine).simulate(profile, costs, n_threads).time_s


def projected_scalability(system: str, algorithm: str = "bfs",
                          scale: int = PAPER_SCALING_SCALE,
                          thread_counts=(1, 2, 4, 8, 16, 32, 64, 72),
                          machine: MachineSpec | None = None
                          ) -> EfficiencyTable:
    """The Figs 5-6 curve for one system at the paper's scale."""
    times = [projected_time(system, algorithm, scale, n, machine)
             for n in thread_counts]
    return EfficiencyTable(system=system, algorithm=algorithm,
                           threads=list(thread_counts),
                           mean_times=times)
