"""easy-parallel-graph-* -- the harness itself.

The paper's contribution is not a new graph system but a framework that
makes comparing existing ones easy, rigorous, and repeatable
(Sec. III).  This package is that framework: the five pipeline phases
(install/setup, homogenize, run, parse, analyze), each independently
invocable exactly like the paper's five shell scripts (Fig 1),
plus the analysis layer that produces every table and figure of Sec. IV.
"""

from repro.core.analysis import Analysis, BoxStats, EfficiencyTable, summarize
from repro.core.api import run_comparison
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.feasibility import WorkloadSize, check_feasibility
from repro.core.projection import projected_scalability, projected_time
from repro.core.stats import compare_systems
from repro.core.suite import run_paper_suite

__all__ = [
    "ExperimentConfig",
    "Experiment",
    "run_comparison",
    "run_paper_suite",
    "summarize",
    "Analysis",
    "BoxStats",
    "EfficiencyTable",
    "WorkloadSize",
    "check_feasibility",
    "projected_time",
    "projected_scalability",
    "compare_systems",
]
