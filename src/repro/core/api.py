"""One-call convenience API.

``run_comparison`` is the 30-second quickstart: configure, run all five
phases, and get back the :class:`~repro.core.analysis.Analysis` plus the
experiment handle for deeper digging.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment

__all__ = ["run_comparison"]


def run_comparison(output_dir: str | Path, dataset: str = "kronecker",
                   scale: int = 12,
                   systems: tuple[str, ...] | None = None,
                   algorithms: tuple[str, ...] = ("bfs", "sssp",
                                                  "pagerank"),
                   thread_counts: tuple[int, ...] = (32,),
                   n_roots: int = 32, n_trials: int = 1,
                   seed: int = 20170402, **kwargs):
    """Run a full EPG* comparison and return ``(experiment, analysis)``.

    Example
    -------
    >>> exp, analysis = run_comparison("out", scale=10, n_roots=4)
    >>> stats = analysis.box("time")
    """
    from repro.systems.registry import ALL_SYSTEM_NAMES

    config = ExperimentConfig(
        output_dir=Path(output_dir), dataset=dataset, scale=scale,
        systems=tuple(systems) if systems else ALL_SYSTEM_NAMES,
        algorithms=tuple(algorithms), thread_counts=tuple(thread_counts),
        n_roots=n_roots, n_trials=n_trials, seed=seed, **kwargs)
    experiment = Experiment(config)
    analysis = experiment.run_all()
    return experiment, analysis
