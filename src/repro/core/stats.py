"""Statistical rigor for system comparisons.

The paper's core complaint about Graphalytics is single-trial
methodology ("Just one run per experiment is performed"); EPG* collects
32-point distributions.  This module supplies the inferential layer on
top of those distributions:

* bootstrap confidence intervals for medians/means;
* the Mann-Whitney U test (rank-sum) for "is system A faster than
  system B?" without normality assumptions -- runtimes are heavy-tailed
  (CPU spikes), so t-tests would be wrong;
* Cliff's delta effect size, so "significant" can be separated from
  "large";
* a :func:`compare_systems` verdict combining all three.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.records import Record
from repro.errors import ConfigError

__all__ = ["bootstrap_ci", "mann_whitney_u", "cliffs_delta",
           "ComparisonVerdict", "compare_systems"]


def bootstrap_ci(values, statistic=np.median, n_resamples: int = 2000,
                 confidence: float = 0.95, seed: int = 0
                 ) -> tuple[float, float]:
    """Percentile bootstrap CI for ``statistic`` of ``values``.

    ``statistic`` may be any callable of one 1-D sample; vectorized
    reducers taking an ``axis`` keyword (``np.median``, ``np.mean``)
    evaluate all resamples in one call, anything else is applied
    row-wise.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("cannot bootstrap an empty sample")
    if n_resamples < 1:
        raise ConfigError(f"n_resamples must be >= 1, got {n_resamples}")
    if not 0 < confidence < 1:
        raise ConfigError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    resampled = arr[idx]
    try:
        stats = np.asarray(statistic(resampled, axis=1),
                           dtype=np.float64)
        if stats.shape != (n_resamples,):
            raise TypeError("statistic is not a per-row reducer")
    except TypeError:
        stats = np.asarray([float(statistic(row)) for row in resampled])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)


def mann_whitney_u(a, b) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test via the normal approximation.

    Returns ``(U, p_value)``.  Suitable for the n=32 samples EPG*
    produces; ties are handled with the midrank correction.
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ConfigError("both samples must be non-empty")
    n1, n2 = a.size, b.size
    combined = np.concatenate([a, b])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(combined.size, dtype=np.float64)
    # Midranks for ties.
    sorted_vals = combined[order]
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and \
                sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    r1 = ranks[:n1].sum()
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    # Tie correction for the variance.
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float((counts ** 3 - counts).sum())
    n = n1 + n2
    sigma2 = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1))) \
        if n > 1 else 0.0
    if sigma2 <= 0:
        return float(u1), 1.0
    z = (u1 - mu) / math.sqrt(sigma2)
    # Two-sided p from the standard normal.
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return float(u1), float(min(max(p, 0.0), 1.0))


def cliffs_delta(a, b) -> float:
    """Cliff's delta in [-1, 1]: P(a > b) - P(a < b).

    Negative delta means sample ``a`` is stochastically *smaller*
    (faster, for runtimes).
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ConfigError("both samples must be non-empty")
    diff = a[:, None] - b[None, :]
    return float((np.sign(diff)).mean())


@dataclass(frozen=True)
class ComparisonVerdict:
    """Outcome of one pairwise system comparison."""

    system_a: str
    system_b: str
    algorithm: str
    median_a: float
    median_b: float
    ci_a: tuple[float, float]
    ci_b: tuple[float, float]
    p_value: float
    delta: float
    n_a: int
    n_b: int

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    @property
    def faster(self) -> str | None:
        """Which system is credibly faster, or None if inconclusive."""
        if not self.significant:
            return None
        return self.system_a if self.median_a < self.median_b \
            else self.system_b

    @property
    def speedup(self) -> float:
        """Median ratio slower/faster (>= 1)."""
        lo, hi = sorted((self.median_a, self.median_b))
        return hi / lo if lo > 0 else math.inf

    def summary(self) -> str:
        if self.faster is None:
            return (f"{self.system_a} vs {self.system_b} on "
                    f"{self.algorithm}: inconclusive "
                    f"(p={self.p_value:.3f})")
        return (f"{self.faster} is {self.speedup:.2f}x faster on "
                f"{self.algorithm} (p={self.p_value:.2g}, "
                f"delta={self.delta:+.2f}, "
                f"n={self.n_a}+{self.n_b})")


def compare_systems(records: list[Record], system_a: str, system_b: str,
                    algorithm: str, dataset: str | None = None,
                    threads: int | None = None,
                    seed: int = 0) -> ComparisonVerdict:
    """Pairwise comparison of kernel times from a parsed record set."""
    def _times(system):
        vals = [r.value for r in records
                if r.system == system and r.algorithm == algorithm
                and r.metric == "time"
                and (dataset is None or r.dataset == dataset)
                and (threads is None or r.threads == threads)]
        if not vals:
            raise ConfigError(
                f"no time records for {system}/{algorithm}")
        return np.asarray(vals)

    a = _times(system_a)
    b = _times(system_b)
    _, p = mann_whitney_u(a, b)
    return ComparisonVerdict(
        system_a=system_a, system_b=system_b, algorithm=algorithm,
        median_a=float(np.median(a)), median_b=float(np.median(b)),
        ci_a=bootstrap_ci(a, seed=seed),
        ci_b=bootstrap_ci(b, seed=seed + 1),
        p_value=p, delta=cliffs_delta(a, b),
        n_a=int(a.size), n_b=int(b.size))
