"""Native-format log emission and parsing.

EPG* collects execution time "by parsing log files" (Sec. III): each
system prints its own idiosyncratic lines, and the harness's AWK/Bash
parsers turn them into CSV.  This module is both halves in one place so
writer and parser can never drift apart:

* :func:`open_log` / :class:`LogWriter` -- emit each system's native
  lines (formats documented per method, modeled on the real packages;
  the GraphMat block reproduces the Table I excerpt verbatim);
* :func:`parse_log` -- regex the lines back into
  :class:`~repro.core.records.Record` rows.

Every log starts with one harness-written header line (the shell
wrapper's ``echo``), carrying the run coordinates that the native lines
do not repeat.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.records import Record
from repro.errors import LogParseError

__all__ = ["LogWriter", "parse_log", "parse_all_logs"]

_HEADER_RE = re.compile(
    r"^# epg system=(\S+) dataset=(\S+) threads=(\d+) algorithm=(\S+)\s*$")
_POWER_RE = re.compile(
    r"^(PACKAGE|DRAM)_ENERGY:PACKAGE0 (\d+) nJ ([0-9.eE+-]+) s"
    r"(?: root=(-?\d+) trial=(\d+))?\s*$")

_FLOAT = r"([0-9.eE+-]+)"


class LogWriter:
    """Accumulates one run's native log and writes it to disk."""

    def __init__(self, system: str, dataset: str, threads: int,
                 algorithm: str):
        self.system = system
        self.dataset = dataset
        self.threads = threads
        self.algorithm = algorithm
        self.lines: list[str] = [
            f"# epg system={system} dataset={dataset} threads={threads} "
            f"algorithm={algorithm}"
        ]

    # ------------------------------------------------------------------
    # Native emitters, one per system.
    # ------------------------------------------------------------------
    def gap_load(self, read_s: float, build_s: float) -> None:
        self.lines.append(f"Read Time:           {read_s:.5f}")
        self.lines.append(f"Build Time:          {build_s:.5f}")

    def gap_trial(self, root: int, trial: int, time_s: float,
                  iterations: int | None = None) -> None:
        self.lines.append(
            f"Root: {root} Trial: {trial} Trial Time:      {time_s:.6e}")
        if iterations is not None:
            self.lines.append(f"PageRank iterations: {iterations}")

    def graph500_header(self, scale: int, edgefactor: int,
                        nbfs: int) -> None:
        self.lines.append(f"SCALE: {scale}")
        self.lines.append(f"edgefactor: {edgefactor}")
        self.lines.append(f"NBFS: {nbfs}")

    def graph500_construction(self, seconds: float) -> None:
        self.lines.append(f"construction_time: {seconds:.6e}")

    def graph500_bfs(self, index: int, root: int, time_s: float) -> None:
        self.lines.append(f"bfs {index:3d} root {root} time: {time_s:.6e}")

    def graph500_summary(self, min_s: float, mean_s: float, max_s: float,
                         teps: float) -> None:
        self.lines.append(f"min_time: {min_s:.6e}")
        self.lines.append(f"mean_time: {mean_s:.6e}")
        self.lines.append(f"max_time: {max_s:.6e}")
        self.lines.append(f"harmonic_mean_TEPS: {teps:.6e}")

    def graphbig_load(self, load_s: float) -> None:
        self.lines.append("==GraphBIG==")
        self.lines.append(f"== load time: {load_s:.5f} sec")

    def graphbig_run(self, root: int, trial: int, time_s: float,
                     iterations: int | None = None) -> None:
        self.lines.append(f"== root: {root} trial: {trial}")
        self.lines.append(f"== time: {time_s:.6e} sec")
        if iterations is not None:
            self.lines.append(f"== iterations: {iterations}")

    def graphmat_block(self, root: int, trial: int, read_s: float,
                       load_s: float, init_s: float, degree_s: float,
                       algo_label: str, algo_s: float, print_s: float,
                       deinit_s: float,
                       iterations: int | None = None) -> None:
        """The exact phase block of the Table I excerpt."""
        self.lines.append(f"root: {root} trial: {trial}")
        self.lines.append(
            f"Finished file read of {self.dataset}. time: {read_s:.6g}")
        self.lines.append(f"load graph: {load_s:.6g} sec")
        self.lines.append(f"initialize engine: {init_s:.6g} sec")
        self.lines.append(
            f"run algorithm 1 (count degree): {degree_s:.6g} sec")
        self.lines.append(
            f"run algorithm 2 ({algo_label}): {algo_s:.6g} sec")
        if iterations is not None:
            self.lines.append(f"completed {iterations} iterations")
        self.lines.append(f"print output: {print_s:.6g} sec")
        self.lines.append(f"deinitialize engine: {deinit_s:.6g} sec")

    def powergraph_load(self, load_s: float) -> None:
        self.lines.append(
            f"INFO:  Loading graph. Finished in {load_s:.5f} seconds")

    def powergraph_run(self, root: int, trial: int, time_s: float,
                       iterations: int | None = None) -> None:
        self.lines.append(f"INFO:  root: {root} trial: {trial}")
        self.lines.append(
            f"INFO:  Finished Running engine in {time_s:.6e} seconds.")
        if iterations is not None:
            self.lines.append(f"INFO:  engine iterations: {iterations}")

    # ------------------------------------------------------------------
    def power_lines(self, pkg_j: float, dram_j: float, duration_s: float,
                    root: int = -1, trial: int = 0) -> None:
        """The paper's power_rapl_print output, tagged by the wrapper."""
        tag = f" root={root} trial={trial}"
        self.lines.append(
            f"PACKAGE_ENERGY:PACKAGE0 {int(pkg_j * 1e9)} nJ "
            f"{duration_s:.6f} s{tag}")
        self.lines.append(
            f"DRAM_ENERGY:PACKAGE0 {int(dram_j * 1e9)} nJ "
            f"{duration_s:.6f} s{tag}")

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.lines) + "\n", encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _ctx_records(ctx: dict, metric: str, value: float, root: int = -1,
                 trial: int = 0) -> Record:
    return Record(system=ctx["system"], algorithm=ctx["algorithm"],
                  dataset=ctx["dataset"], threads=ctx["threads"],
                  metric=metric, value=value, root=root, trial=trial)


_GAP_READ = re.compile(rf"^Read Time:\s+{_FLOAT}$")
_GAP_BUILD = re.compile(rf"^Build Time:\s+{_FLOAT}$")
_GAP_TRIAL = re.compile(
    rf"^Root: (-?\d+) Trial: (\d+) Trial Time:\s+{_FLOAT}$")
_GAP_ITER = re.compile(r"^PageRank iterations: (\d+)$")
_G500_CONS = re.compile(rf"^construction_time: {_FLOAT}$")
_G500_BFS = re.compile(rf"^bfs\s+(\d+) root (-?\d+) time: {_FLOAT}$")
_G500_TEPS = re.compile(rf"^harmonic_mean_TEPS: {_FLOAT}$")
_GBIG_LOAD = re.compile(rf"^== load time: {_FLOAT} sec$")
_GBIG_ROOT = re.compile(r"^== root: (-?\d+) trial: (\d+)$")
_GBIG_TIME = re.compile(rf"^== time: {_FLOAT} sec$")
_GBIG_ITER = re.compile(r"^== iterations: (\d+)$")
_GMAT_ROOT = re.compile(r"^root: (-?\d+) trial: (\d+)$")
_GMAT_READ = re.compile(rf"^Finished file read of \S+ time: {_FLOAT}$")
_GMAT_LOAD = re.compile(rf"^load graph: {_FLOAT} sec$")
_GMAT_ALGO = re.compile(rf"^run algorithm 2 \([^)]*\): {_FLOAT} sec$")
_GMAT_ITER = re.compile(r"^completed (\d+) iterations$")
_PG_LOAD = re.compile(
    rf"^INFO:  Loading graph\. Finished in {_FLOAT} seconds$")
_PG_ROOT = re.compile(r"^INFO:  root: (-?\d+) trial: (\d+)$")
_PG_TIME = re.compile(
    rf"^INFO:  Finished Running engine in {_FLOAT} seconds\.$")
_PG_ITER = re.compile(r"^INFO:  engine iterations: (\d+)$")


def parse_log(path: str | Path) -> list[Record]:
    """Parse one native log file into records.

    Raises :class:`LogParseError` carrying the file, line number, and
    raw line when the file is unusable.  Undecodable bytes inside an
    otherwise-valid log (a run killed mid-``fwrite``) are replaced, so
    the complete lines around the damage still parse.
    """
    path = Path(path)
    lines = path.read_bytes().decode("utf-8",
                                     errors="replace").splitlines()
    if not lines:
        raise LogParseError("empty log", path=path)
    m = _HEADER_RE.match(lines[0])
    if not m:
        raise LogParseError("missing epg header line", path=path,
                            line_no=1, line=lines[0])
    ctx = {"system": m.group(1), "dataset": m.group(2),
           "threads": int(m.group(3)), "algorithm": m.group(4)}
    system = ctx["system"]
    records: list[Record] = []
    cur_root = -1
    cur_trial = 0

    for line_no, line in enumerate(lines[1:], start=2):
        pw = _POWER_RE.match(line)
        if pw:
            kind, nj, dur = pw.group(1), int(pw.group(2)), float(pw.group(3))
            r = int(pw.group(4)) if pw.group(4) is not None else cur_root
            t = int(pw.group(5)) if pw.group(5) is not None else cur_trial
            joules = nj * 1e-9
            metric_j = "pkg_joules" if kind == "PACKAGE" else "dram_joules"
            metric_w = "pkg_watts" if kind == "PACKAGE" else "dram_watts"
            records.append(_ctx_records(ctx, metric_j, joules, r, t))
            if dur > 0:
                records.append(_ctx_records(ctx, metric_w, joules / dur,
                                            r, t))
            continue

        if system == "gap":
            if (m := _GAP_READ.match(line)):
                records.append(_ctx_records(ctx, "read", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GAP_BUILD.match(line)):
                records.append(_ctx_records(ctx, "build", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GAP_TRIAL.match(line)):
                cur_root, cur_trial = int(m.group(1)), int(m.group(2))
                records.append(_ctx_records(ctx, "time", float(m.group(3)),
                                            cur_root, cur_trial))
            elif (m := _GAP_ITER.match(line)):
                records.append(_ctx_records(ctx, "iterations",
                                            float(m.group(1)),
                                            cur_root, cur_trial))
        elif system == "graph500":
            if (m := _G500_CONS.match(line)):
                records.append(_ctx_records(ctx, "build", float(m.group(1))))
            elif (m := _G500_BFS.match(line)):
                cur_trial = int(m.group(1))
                cur_root = int(m.group(2))
                records.append(_ctx_records(ctx, "time", float(m.group(3)),
                                            cur_root, cur_trial))
            elif (m := _G500_TEPS.match(line)):
                records.append(_ctx_records(ctx, "teps",
                                            float(m.group(1))))
        elif system == "graphbig":
            if (m := _GBIG_LOAD.match(line)):
                records.append(_ctx_records(ctx, "load", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GBIG_ROOT.match(line)):
                cur_root, cur_trial = int(m.group(1)), int(m.group(2))
            elif (m := _GBIG_TIME.match(line)):
                records.append(_ctx_records(ctx, "time", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GBIG_ITER.match(line)):
                records.append(_ctx_records(ctx, "iterations",
                                            float(m.group(1)),
                                            cur_root, cur_trial))
        elif system == "graphmat":
            if (m := _GMAT_ROOT.match(line)):
                cur_root, cur_trial = int(m.group(1)), int(m.group(2))
            elif (m := _GMAT_READ.match(line)):
                records.append(_ctx_records(ctx, "read", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GMAT_LOAD.match(line)):
                # GraphMat's "load graph" includes the file read; EPG*
                # records construction as the difference (Sec. II).
                records.append(_ctx_records(ctx, "load", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GMAT_ALGO.match(line)):
                records.append(_ctx_records(ctx, "time", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _GMAT_ITER.match(line)):
                records.append(_ctx_records(ctx, "iterations",
                                            float(m.group(1)),
                                            cur_root, cur_trial))
        elif system == "powergraph":
            if (m := _PG_LOAD.match(line)):
                records.append(_ctx_records(ctx, "load", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _PG_ROOT.match(line)):
                cur_root, cur_trial = int(m.group(1)), int(m.group(2))
            elif (m := _PG_TIME.match(line)):
                records.append(_ctx_records(ctx, "time", float(m.group(1)),
                                            cur_root, cur_trial))
            elif (m := _PG_ITER.match(line)):
                records.append(_ctx_records(ctx, "iterations",
                                            float(m.group(1)),
                                            cur_root, cur_trial))
        else:
            raise LogParseError(f"unknown system {system!r}", path=path,
                                line_no=line_no, line=line)

    # Derive GraphMat construction = load - read, per root.
    if system == "graphmat":
        reads = {(r.root, r.trial): r.value for r in records
                 if r.metric == "read"}
        builds = [
            Record(system=r.system, algorithm=r.algorithm,
                   dataset=r.dataset, threads=r.threads, metric="build",
                   value=max(r.value - reads.get((r.root, r.trial), 0.0),
                             0.0),
                   root=r.root, trial=r.trial)
            for r in records if r.metric == "load"
        ]
        records.extend(builds)
    return records


def parse_all_logs(log_dir: str | Path, *, salvage: bool = True,
                   problems: list[LogParseError] | None = None,
                   ) -> list[Record]:
    """Parse every ``*.log`` under ``log_dir`` (phase 4).

    With ``salvage`` (the default) a file that cannot be parsed is
    skipped -- its :class:`LogParseError` (carrying file and line) is
    appended to ``problems`` and logged -- and every record from the
    healthy files is still returned: one truncated log must not discard
    a whole suite's results.  ``salvage=False`` restores fail-fast
    behaviour.  An empty directory, or a directory where *every* file
    is damaged, always raises.
    """
    from repro.logging_util import get_logger

    log_dir = Path(log_dir)
    records: list[Record] = []
    paths = sorted(log_dir.rglob("*.log"))
    if not paths:
        raise LogParseError("no log files found", path=log_dir)
    errors: list[LogParseError] = []
    parsed_any = False
    for p in paths:
        try:
            records.extend(parse_log(p))
            parsed_any = True
        except LogParseError as exc:
            if not salvage:
                raise
            errors.append(exc)
            get_logger("repro.pipeline").warning(
                "salvage: skipping unparseable log %s", exc)
    if errors and not parsed_any:
        raise LogParseError(
            f"all {len(paths)} log files unparseable; first: {errors[0]}",
            path=log_dir)
    if problems is not None:
        problems.extend(errors)
    return records
