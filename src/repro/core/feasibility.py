"""Feasibility prediction: will this experiment finish?

Paper Sec. V: "Graphalytics encountered circumstances with the more
computationally expensive algorithms fail, so determining whether an
algorithm will finish given a particular machine, input size, runtime
limit, and resources is an important unanswered question we plan to
pursue further."  This module pursues it: given a workload size, a
system, an algorithm, and a machine, it projects the runtime through
the calibrated cost model and the memory footprint through per-system
structure formulas, and returns a verdict against the machine's RAM
and a wall-clock budget.

The Graphalytics harness consumes these verdicts to reproduce its
documented failure behaviour on expensive cells (LCC on dense graphs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server
from repro.machine.threads import ThreadModel, WorkProfile
from repro.systems import calibration

__all__ = ["WorkloadSize", "FeasibilityVerdict", "estimate_memory_bytes",
           "estimate_runtime_s", "check_feasibility"]


@dataclass(frozen=True)
class WorkloadSize:
    """Abstract size of a graph workload.

    ``wedges`` (sum of d*(d-1)) drives LCC/TC cost; when unknown it is
    estimated from a scale-free degree model matching the Kronecker
    generator's skew: ``wedges ~= avg_deg * m * skew`` with skew ~= 10.
    """

    n_vertices: int
    n_arcs: int
    wedges: float | None = None
    weighted: bool = True

    def __post_init__(self) -> None:
        if self.n_vertices < 1 or self.n_arcs < 0:
            raise ConfigError("workload size must be positive")

    @property
    def avg_degree(self) -> float:
        return self.n_arcs / self.n_vertices

    def wedge_estimate(self) -> float:
        if self.wedges is not None:
            return self.wedges
        return 10.0 * self.avg_degree * self.n_arcs

    @staticmethod
    def kronecker(scale: int) -> "WorkloadSize":
        n = 1 << scale
        arcs = 2 * 16 * n
        # Scale the calibrated scale-22 wedge estimate by arcs^~1.16
        # (heavy-tail growth measured across scales).
        wedges = calibration.SCALE22_WEDGES * (
            arcs / calibration.SCALE22_ARCS) ** 1.16
        return WorkloadSize(n_vertices=n, n_arcs=arcs, wedges=wedges)


#: Bytes per arc / per vertex of each system's in-memory structures
#: (weighted build: indices + weights + auxiliary arrays).
_MEMORY_MODEL: dict[str, tuple[float, float]] = {
    # (bytes_per_arc, bytes_per_vertex)
    "gap": (2 * 16.0, 32.0),          # out + in CSR with weights
    "graph500": (8.0, 26.0),          # single unweighted CSR + bitmaps
    "graphbig": (24.0, 96.0),         # CSR + property records
    "graphmat": (2 * 20.0, 48.0),     # DCSR A^T + symmetric pattern
    "powergraph": (2 * 24.0, 80.0),   # partitioned CSRs + mirror tables
}


def estimate_memory_bytes(system: str, size: WorkloadSize) -> float:
    """Peak structure footprint of ``system`` holding ``size``."""
    try:
        per_arc, per_vertex = _MEMORY_MODEL[system]
    except KeyError:
        raise ConfigError(f"no memory model for {system!r}") from None
    return per_arc * size.n_arcs + per_vertex * size.n_vertices


def _units_for(system: str, algorithm: str, size: WorkloadSize,
               sweeps: float) -> float:
    anchor = calibration._ANCHORS[system][algorithm]
    if algorithm in ("lcc", "tc"):
        # Wedge-driven kernels: anchor units scale with the wedge count
        # (the tc anchor's half-wedge convention cancels in the ratio).
        return anchor.units * (size.wedge_estimate()
                               / calibration.SCALE22_WEDGES)
    per_arc = anchor.units / calibration.SCALE22_ARCS
    return per_arc * size.n_arcs * sweeps


#: Representative sweep counts for per-sweep-anchored kernels.
_SWEEPS: dict[str, float] = {
    "pagerank": 100.0, "wcc": 8.0, "cdlp": 10.0,
    "bfs": 1.0, "sssp": 1.0, "bc": 1.0, "tc": 1.0, "lcc": 1.0,
    # Structural kernels: anchors already price the whole peel /
    # round sequence, so they project as single-sweep.
    "kcore": 1.0, "mis": 1.0, "cc": 1.0,
}


def estimate_runtime_s(system: str, algorithm: str, size: WorkloadSize,
                       n_threads: int = 32,
                       machine: MachineSpec | None = None,
                       sweeps: float | None = None) -> float:
    """Projected kernel runtime through the calibrated model."""
    machine = machine or haswell_server()
    if algorithm not in calibration._ANCHORS.get(system, {}):
        raise ConfigError(
            f"{system} has no {algorithm} implementation to project")
    sweeps = sweeps if sweeps is not None else _SWEEPS[algorithm]
    units = _units_for(system, algorithm, size, sweeps)
    anchor = calibration._ANCHORS[system][algorithm]
    rounds = max(int(math.ceil(sweeps)), 1)
    profile = WorkProfile()
    for _ in range(rounds):
        profile.add_round(units=units / rounds, skew=anchor.skew)
    costs = calibration.cost_params(system, algorithm, machine)
    return ThreadModel(machine).simulate(profile, costs,
                                         n_threads).time_s


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Answer to "will it finish?"."""

    system: str
    algorithm: str
    est_runtime_s: float
    est_memory_bytes: float
    fits_memory: bool
    within_time_limit: bool
    time_limit_s: float | None

    @property
    def feasible(self) -> bool:
        return self.fits_memory and self.within_time_limit

    @property
    def limiting_factor(self) -> str | None:
        if not self.fits_memory:
            return "memory"
        if not self.within_time_limit:
            return "time"
        return None


def check_feasibility(system: str, algorithm: str, size: WorkloadSize,
                      n_threads: int = 32,
                      machine: MachineSpec | None = None,
                      time_limit_s: float | None = None
                      ) -> FeasibilityVerdict:
    """Project runtime and memory; compare against the machine/budget."""
    machine = machine or haswell_server()
    runtime = estimate_runtime_s(system, algorithm, size, n_threads,
                                 machine)
    memory = estimate_memory_bytes(system, size)
    fits = memory <= machine.ram_gb * 1e9 * 0.9  # leave OS headroom
    in_time = time_limit_s is None or runtime <= time_limit_s
    return FeasibilityVerdict(
        system=system, algorithm=algorithm, est_runtime_s=runtime,
        est_memory_bytes=memory, fits_memory=fits,
        within_time_limit=in_time, time_limit_s=time_limit_s)
