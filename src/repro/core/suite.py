"""The full-paper reproduction suite: every table and figure, one call.

``run_paper_suite(out_dir)`` executes the complete evaluation of
Sec. II + IV at a configurable reduced scale and writes one directory:

.. code-block:: text

    <out>/
        REPORT.md            every table + figure series, with captions
        suite.json           the suite's own resume manifest
        figures/*.svg        rendered Figs 2-6, 8, 9
        kron/  dota/  pat/   the underlying EPG* experiment dirs
        scaling/             the Figs 5-6 thread sweep
        graphalytics/        comparator HTML reports (Fig 7)
        kron/provenance.json (and scaling/) digests for re-verification
        */checkpoint.json    per-experiment cell ledgers (resume state)

This is what ``epg reproduce`` runs, and what EXPERIMENTS.md's numbers
come from (at the bench scale).

Resilience: every experiment cell runs under the retry/quarantine
supervisor (:mod:`repro.resilience`), so a crashing or hanging cell
degrades the report instead of discarding it, and the REPORT.md always
ends with a "Failures and retries" ledger.  An interrupted invocation
can be continued with ``run_paper_suite(..., resume=True)`` or
:func:`resume_paper_suite` (the ``epg resume <dir>`` command): already
completed cells are skipped and -- the seed fixing everything -- the
final REPORT.md is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.core.analysis import Analysis
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.projection import PAPER_SCALING_SCALE, projected_scalability
from repro.core.report import (
    figure_series,
    format_failures_section,
    format_observability_section,
    format_series,
    format_table,
)
from repro.errors import CheckpointError, ConfigError
from repro.ioutil import atomic_write_json
from repro.observability import Tracer
from repro.resilience import SuiteCheckpoint

__all__ = ["run_paper_suite", "resume_paper_suite", "SUITE_MANIFEST"]

_SCALING_SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")
_THREADS = (1, 2, 4, 8, 16, 32, 64, 72)
_SUBDIRS = ("kron", "dota", "pat", "scaling", "structural")
_STRUCTURAL_ALGOS = ("kcore", "mis", "cc")
_STRUCTURAL_SYSTEMS = ("gap", "graphbig", "graphmat", "powergraph")

#: Suite-level manifest: the parameters ``epg resume`` needs to
#: continue an interrupted invocation with identical settings.
SUITE_MANIFEST = "suite.json"


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def run_paper_suite(out_dir: str | Path, scale: int = 12,
                    n_roots: int = 8, seed: int = 20170402,
                    render_svg: bool = True, *, resume: bool = False,
                    max_retries: int = 2,
                    cell_timeout_s: float | None = None,
                    fault_spec: str | None = None,
                    trace: bool = False,
                    jobs: int | None = None,
                    shards: int = 1,
                    cache_dir: str | Path | None = None,
                    cache_max_bytes: int | None = None) -> Path:
    """Run everything; return the REPORT.md path.

    ``resume=False`` (the default) starts fresh, clearing any
    checkpoints a previous invocation left in ``out_dir``;
    ``resume=True`` keeps them, so only unfinished cells execute.
    ``trace=True`` records the whole run as hierarchical spans under
    ``<out>/trace/`` (event log, Chrome trace, Prometheus snapshot,
    timeline SVG) and appends an Observability section to REPORT.md.
    ``jobs`` greater than one fans independent cells out to that many
    worker processes (``epg reproduce --jobs``); results are committed
    in canonical order, so the report is byte-identical to a serial
    run's (see ``docs/parallel.md``).  ``None`` means serial here; the
    CLI resolves its default to the machine's core count.
    ``cache_dir`` enables the persistent artifact cache there
    (``epg reproduce --cache-dir``); ``cache_max_bytes`` sets its LRU
    garbage-collection budget.  The cache is byte-transparent (see
    ``docs/cache.md``), so warm and cold reports are identical.
    ``shards`` greater than one splits each BFS/SSSP kernel execution
    across that many worker processes (``epg reproduce --shards``;
    see ``docs/sharding.md``) -- like ``jobs`` and the cache, an
    execution detail that never changes a reported byte.
    """
    from repro.parallel import CellPool, resolve_jobs

    jobs = 1 if jobs is None else resolve_jobs(jobs)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    shard_root = out_dir / "trace" / "workers"
    if not resume:
        for sub in _SUBDIRS:
            SuiteCheckpoint.clear(out_dir / sub)
        shutil.rmtree(shard_root, ignore_errors=True)
    atomic_write_json(out_dir / SUITE_MANIFEST, {
        "scale": scale, "n_roots": n_roots, "seed": seed,
        "render_svg": render_svg, "max_retries": max_retries,
        "cell_timeout_s": cell_timeout_s, "fault_spec": fault_spec,
        "trace": trace, "jobs": jobs, "shards": shards,
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "cache_max_bytes": cache_max_bytes,
    })
    resilience = dict(max_retries=max_retries,
                      cell_timeout_s=cell_timeout_s,
                      fault_spec=fault_spec,
                      shards=shards,
                      cache_dir=cache_dir,
                      cache_max_bytes=cache_max_bytes)
    tracer = (Tracer(out_dir / "trace", resume=resume) if trace
              else Tracer())
    pool = (CellPool(jobs, shard_root=shard_root if trace else None)
            if jobs > 1 else None)
    try:
        with tracer.span("suite", category="suite", scale=scale,
                         n_roots=n_roots, seed=seed):
            sections, kron = _suite_sections(
                out_dir, scale, n_roots, seed, render_svg, resilience,
                tracer, pool)
        observability = None
        if tracer.enabled:
            observability = _export_trace(tracer, render_svg)
            sections.append(observability)

        from repro.core.html_report import render_epg_html

        render_epg_html(kron, out_dir / "report.html",
                        title=f"EPG* report: kron-scale{scale}",
                        embed_figures=render_svg,
                        observability=observability)
    finally:
        if pool is not None:
            pool.close()
        tracer.close()

    report = out_dir / "REPORT.md"
    report.write_text("\n".join(sections), encoding="utf-8")
    return report


def _export_trace(tracer: Tracer, want_svg: bool) -> str:
    """Write the trace artifacts; return the Observability section."""
    from repro.observability import (
        derive_metrics,
        read_events,
        render_svg as render_timeline,
        write_chrome_trace,
    )

    tracer.flush()
    events = read_events(tracer.path)
    trace_dir = tracer.directory
    write_chrome_trace(events, trace_dir / "trace.json")
    registry = derive_metrics(events)
    (trace_dir / "metrics.prom").write_text(registry.to_prometheus(),
                                            encoding="utf-8")
    atomic_write_json(trace_dir / "metrics.json", registry.to_dict())
    if want_svg:
        render_timeline(events, trace_dir / "timeline.svg")
    return format_observability_section(events, registry)


def _suite_sections(out_dir: Path, scale: int, n_roots: int, seed: int,
                    render_svg: bool, resilience: dict,
                    tracer: Tracer, pool=None
                    ) -> tuple[list[str], Analysis]:
    """Run every experiment; return (REPORT sections, kron analysis)."""
    sections: list[str] = [
        "# easy-parallel-graph-* full reproduction report",
        f"\nKronecker scale {scale}, {n_roots} roots, seed {seed}; "
        "see EXPERIMENTS.md for the paper-vs-measured ledger.\n",
    ]

    # --- main Kronecker experiment (Figs 2-4, 9; Table III) ----------
    kron_cfg = ExperimentConfig(
        output_dir=out_dir / "kron", dataset="kronecker", scale=scale,
        n_roots=n_roots, seed=seed,
        algorithms=("bfs", "sssp", "pagerank"), **resilience)
    kron_exp = Experiment(kron_cfg, tracer=tracer)
    with tracer.span("experiment:kron", category="experiment",
                     dataset="kronecker", scale=scale):
        kron = kron_exp.run_all(pool=pool)
    for fig, caption in (("fig2", "Fig 2: BFS time and construction"),
                         ("fig3", "Fig 3: SSSP time and construction"),
                         ("fig4", "Fig 4: PageRank time / iterations"),
                         ("fig9", "Fig 9: power during BFS")):
        sections.append(_section(caption, figure_series(kron, fig)))

    table3 = kron.energy_table("bfs", threads=32)
    systems = sorted(table3)
    rows = {
        "Time (s)": [f"{table3[s].time_s:.5g}" for s in systems],
        "Average Power per Root (W)": [
            f"{table3[s].avg_pkg_watts:.2f}" for s in systems],
        "Energy per Root (J)": [
            f"{table3[s].pkg_energy_j:.4g}" for s in systems],
        "Sleeping Energy (J)": [
            f"{table3[s].sleep_energy_j:.4g}" for s in systems],
        "Increase over Sleep": [
            f"{table3[s].increase_over_sleep:.3f}" for s in systems],
    }
    sections.append(_section(
        "Table III: BFS energy accounting",
        format_table("", [s.upper() for s in systems], rows)))

    # --- real-world experiments (Fig 8) -------------------------------
    rw_records = []
    rw_exps: dict[str, Experiment] = {}
    for ds, sub in (("dota-league", "dota"), ("cit-patents", "pat")):
        cfg = ExperimentConfig(
            output_dir=out_dir / sub, dataset=ds, n_roots=n_roots,
            seed=seed, algorithms=("bfs", "sssp", "pagerank"),
            **resilience)
        exp = Experiment(cfg, tracer=tracer)
        with tracer.span(f"experiment:{sub}", category="experiment",
                         dataset=ds):
            rw_records.extend(exp.run_all(pool=pool).records)
        rw_exps[sub] = exp
    merged = Analysis(rw_records, machine=kron_cfg.machine)
    sections.append(_section("Fig 8: real-world comparison",
                             figure_series(merged, "fig8")))

    # --- scalability (Figs 5-6): projection + bench-scale kernels ----
    proj = {s: projected_scalability(s, thread_counts=_THREADS)
            for s in _SCALING_SYSTEMS}
    sections.append(_section(
        f"Fig 5: BFS speedup (projected, scale {PAPER_SCALING_SCALE})",
        format_series("", "threads", list(_THREADS),
                      {s: t.speedup() for s, t in proj.items()})))
    sections.append(_section(
        "Fig 6: BFS parallel efficiency (projected)",
        format_series("", "threads", list(_THREADS),
                      {s: t.efficiency() for s, t in proj.items()})))

    scaling_cfg = ExperimentConfig(
        output_dir=out_dir / "scaling", dataset="kronecker",
        scale=scale, n_roots=min(n_roots, 4), seed=seed,
        algorithms=("bfs",), thread_counts=_THREADS, **resilience)
    scaling_exp = Experiment(scaling_cfg, tracer=tracer)
    with tracer.span("experiment:scaling", category="experiment",
                     dataset="kronecker"):
        scaling = scaling_exp.run_all(pool=pool)
    # Quarantined cells degrade a system's curve to absence, the way
    # the paper's figures simply omit what would not run.
    bench_speedups = {}
    for s in _SCALING_SYSTEMS:
        try:
            bench_speedups[s] = scaling.scalability(s, "bfs").speedup()
        except ConfigError:
            continue
    sections.append(_section(
        "Fig 5 (bench-scale real kernels)",
        format_series("", "threads", list(_THREADS), bench_speedups)))

    # --- structural kernels (docs/algorithms.md; beyond the paper) ----
    struct_cfg = ExperimentConfig(
        output_dir=out_dir / "structural", dataset="kronecker",
        scale=scale, n_roots=min(n_roots, 2), seed=seed,
        algorithms=_STRUCTURAL_ALGOS, **resilience)
    struct_exp = Experiment(struct_cfg, tracer=tracer)
    with tracer.span("experiment:structural", category="experiment",
                     dataset="kronecker", scale=scale):
        struct = struct_exp.run_all(pool=pool)
    struct_rows = {}
    for algo in _STRUCTURAL_ALGOS:
        cells = []
        for s in _STRUCTURAL_SYSTEMS:
            try:
                cells.append(f"{struct.mean_time(s, algo):.5g}")
            except ConfigError:
                # Unsupported (or quarantined) cell: absent, the way
                # the paper's tables leave holes.
                cells.append("-")
        struct_rows[algo] = cells
    sections.append(_section(
        "Structural kernels: k-core / MIS / CC time (s, 32 threads)",
        format_table("", [s.upper() for s in _STRUCTURAL_SYSTEMS],
                     struct_rows)))

    # --- streaming ingest + incremental repair (docs/streaming.md) ----
    # Inline and oracle-checked; every cell below is a deterministic
    # counter (no wall times), so the section is byte-identical across
    # --jobs settings and hosts.
    from repro.streaming import StreamReplay, StreamSpec, build_scenario

    stream_spec = StreamSpec(scale=min(scale, 10), n_batches=4,
                             batch_edges=32, delete_fraction=0.25,
                             seed=seed, weighted=True)
    with tracer.span("experiment:stream", category="experiment",
                     scale=stream_spec.scale,
                     n_batches=stream_spec.n_batches):
        stream_scenario = build_scenario(stream_spec)
        stream_replay = StreamReplay(stream_scenario, tracer=tracer,
                                     check=True)
        stream_rows_raw = stream_replay.run()
    stream_dir = out_dir / "stream"
    stream_dir.mkdir(parents=True, exist_ok=True)
    from repro.streaming import write_results_csv

    write_results_csv(stream_rows_raw,
                      stream_dir / "stream_results.csv")
    stream_rows = {
        f"batch {r.batch}": [
            str(r.n_inserted), str(r.n_updated), str(r.n_removed),
            str(r.n_arcs), str(r.bfs_resettled), str(r.sssp_resettled),
            str(r.pagerank_sweeps), str(r.checked)]
        for r in stream_rows_raw}
    sections.append(_section(
        f"Streaming ingest: incremental repair vs oracle "
        f"(kron-scale{stream_spec.scale}, "
        f"{stream_spec.n_batches} batches)",
        format_table("", ["new", "upd", "del", "arcs", "bfs fix",
                          "sssp fix", "pr sweeps", "checks"],
                     stream_rows)))

    # --- Graphalytics comparator (Tables I-II, Fig 7) -----------------
    from repro.datasets.homogenize import load_manifest
    from repro.graphalytics import (
        GraphalyticsHarness,
        render_html_report,
        render_table,
    )

    harness = GraphalyticsHarness(machine=kron_cfg.machine, seed=seed)
    dota_ds = load_manifest(out_dir / "dota" / "datasets" / "dota-league")
    pat_ds = load_manifest(out_dir / "pat" / "datasets" / "cit-Patents")
    kron_ds = load_manifest(
        out_dir / "kron" / "datasets" / f"kron-scale{scale}")
    # Fork safety before a submission batch (see repro.parallel).
    tracer.flush()
    t1 = (harness.run_matrix(dota_ds, pool=pool)
          + harness.run_matrix(pat_ds, pool=pool))
    sections.append(_section(
        "Table I: Graphalytics on the real-world datasets",
        render_table(t1)))
    t2 = harness.run_matrix(
        kron_ds, algorithms=("cdlp", "pagerank", "lcc", "wcc", "bfs"),
        pool=pool)
    sections.append(_section(
        "Table II: Graphalytics on the Kronecker graph",
        render_table(t2)))
    render_html_report(t1 + t2, out_dir / "graphalytics")
    sections.append("## Fig 7: Graphalytics HTML reports\n\nWritten "
                    "under `graphalytics/` (one page per platform).\n")

    # --- failures and retries ledger ----------------------------------
    sections.append(format_failures_section({
        "kron": kron_exp.cell_outcomes,
        "dota": rw_exps["dota"].cell_outcomes,
        "pat": rw_exps["pat"].cell_outcomes,
        "scaling": scaling_exp.cell_outcomes,
        "structural": struct_exp.cell_outcomes,
    }))

    # --- figures + provenance -----------------------------------------
    if render_svg:
        from repro.viz import render_all_figures

        render_all_figures(kron, out_dir / "figures")
        render_all_figures(merged, out_dir / "figures")
        render_all_figures(scaling, out_dir / "figures")

    from repro.core.provenance import capture

    for cfg in (kron_cfg, scaling_cfg):
        capture(cfg)

    return sections, kron


def resume_paper_suite(out_dir: str | Path,
                       jobs: int | None = None) -> Path:
    """Continue an interrupted ``run_paper_suite`` invocation.

    Reads the parameters the interrupted run recorded in ``suite.json``
    and re-enters the suite with ``resume=True``: completed cells are
    skipped (their outcomes reload from each experiment's
    ``checkpoint.json``) and the final REPORT.md is byte-identical to
    what the uninterrupted run would have produced.  ``jobs`` overrides
    the interrupted run's worker count (the default reuses it) -- the
    job count never affects results, so resuming a ``--jobs 8`` run
    serially, or vice versa, is safe.
    """
    out_dir = Path(out_dir)
    mpath = out_dir / SUITE_MANIFEST
    if not mpath.exists():
        raise CheckpointError(
            f"{mpath}: no suite manifest; nothing to resume")
    try:
        params = json.loads(mpath.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{mpath}: corrupt suite manifest ({exc})") from exc
    try:
        return run_paper_suite(
            out_dir, scale=params["scale"], n_roots=params["n_roots"],
            seed=params["seed"], render_svg=params["render_svg"],
            resume=True, max_retries=params["max_retries"],
            cell_timeout_s=params["cell_timeout_s"],
            fault_spec=params["fault_spec"],
            trace=params.get("trace", False),
            jobs=jobs if jobs is not None else params.get("jobs", 1),
            shards=params.get("shards", 1),
            cache_dir=params.get("cache_dir"),
            cache_max_bytes=params.get("cache_max_bytes"))
    except KeyError as exc:
        raise CheckpointError(
            f"{mpath}: suite manifest missing key {exc}") from exc
