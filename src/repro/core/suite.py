"""The full-paper reproduction suite: every table and figure, one call.

``run_paper_suite(out_dir)`` executes the complete evaluation of
Sec. II + IV at a configurable reduced scale and writes one directory:

.. code-block:: text

    <out>/
        REPORT.md            every table + figure series, with captions
        figures/*.svg        rendered Figs 2-6, 8, 9
        kron/  dota/  pat/   the underlying EPG* experiment dirs
        scaling/             the Figs 5-6 thread sweep
        graphalytics/        comparator HTML reports (Fig 7)
        kron/provenance.json (and scaling/) digests for re-verification

This is what ``epg reproduce`` runs, and what EXPERIMENTS.md's numbers
come from (at the bench scale).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.analysis import Analysis
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.projection import PAPER_SCALING_SCALE, projected_scalability
from repro.core.report import figure_series, format_series, format_table

__all__ = ["run_paper_suite"]

_SCALING_SYSTEMS = ("gap", "graph500", "graphbig", "graphmat")
_THREADS = (1, 2, 4, 8, 16, 32, 64, 72)


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def run_paper_suite(out_dir: str | Path, scale: int = 12,
                    n_roots: int = 8, seed: int = 20170402,
                    render_svg: bool = True) -> Path:
    """Run everything; return the REPORT.md path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    sections: list[str] = [
        "# easy-parallel-graph-* full reproduction report",
        f"\nKronecker scale {scale}, {n_roots} roots, seed {seed}; "
        "see EXPERIMENTS.md for the paper-vs-measured ledger.\n",
    ]

    # --- main Kronecker experiment (Figs 2-4, 9; Table III) ----------
    kron_cfg = ExperimentConfig(
        output_dir=out_dir / "kron", dataset="kronecker", scale=scale,
        n_roots=n_roots, seed=seed,
        algorithms=("bfs", "sssp", "pagerank"))
    kron = Experiment(kron_cfg).run_all()
    for fig, caption in (("fig2", "Fig 2: BFS time and construction"),
                         ("fig3", "Fig 3: SSSP time and construction"),
                         ("fig4", "Fig 4: PageRank time / iterations"),
                         ("fig9", "Fig 9: power during BFS")):
        sections.append(_section(caption, figure_series(kron, fig)))

    table3 = kron.energy_table("bfs", threads=32)
    systems = sorted(table3)
    rows = {
        "Time (s)": [f"{table3[s].time_s:.5g}" for s in systems],
        "Average Power per Root (W)": [
            f"{table3[s].avg_pkg_watts:.2f}" for s in systems],
        "Energy per Root (J)": [
            f"{table3[s].pkg_energy_j:.4g}" for s in systems],
        "Sleeping Energy (J)": [
            f"{table3[s].sleep_energy_j:.4g}" for s in systems],
        "Increase over Sleep": [
            f"{table3[s].increase_over_sleep:.3f}" for s in systems],
    }
    sections.append(_section(
        "Table III: BFS energy accounting",
        format_table("", [s.upper() for s in systems], rows)))

    # --- real-world experiments (Fig 8) -------------------------------
    rw_records = []
    for ds, sub in (("dota-league", "dota"), ("cit-patents", "pat")):
        cfg = ExperimentConfig(
            output_dir=out_dir / sub, dataset=ds, n_roots=n_roots,
            seed=seed, algorithms=("bfs", "sssp", "pagerank"))
        rw_records.extend(Experiment(cfg).run_all().records)
    merged = Analysis(rw_records, machine=kron_cfg.machine)
    sections.append(_section("Fig 8: real-world comparison",
                             figure_series(merged, "fig8")))

    # --- scalability (Figs 5-6): projection + bench-scale kernels ----
    proj = {s: projected_scalability(s, thread_counts=_THREADS)
            for s in _SCALING_SYSTEMS}
    sections.append(_section(
        f"Fig 5: BFS speedup (projected, scale {PAPER_SCALING_SCALE})",
        format_series("", "threads", list(_THREADS),
                      {s: t.speedup() for s, t in proj.items()})))
    sections.append(_section(
        "Fig 6: BFS parallel efficiency (projected)",
        format_series("", "threads", list(_THREADS),
                      {s: t.efficiency() for s, t in proj.items()})))

    scaling_cfg = ExperimentConfig(
        output_dir=out_dir / "scaling", dataset="kronecker",
        scale=scale, n_roots=min(n_roots, 4), seed=seed,
        algorithms=("bfs",), thread_counts=_THREADS)
    scaling = Experiment(scaling_cfg).run_all()
    sections.append(_section(
        "Fig 5 (bench-scale real kernels)",
        format_series("", "threads", list(_THREADS),
                      {s: scaling.scalability(s, "bfs").speedup()
                       for s in _SCALING_SYSTEMS})))

    # --- Graphalytics comparator (Tables I-II, Fig 7) -----------------
    from repro.datasets.homogenize import load_manifest
    from repro.graphalytics import (
        GraphalyticsHarness,
        render_html_report,
        render_table,
    )

    harness = GraphalyticsHarness(machine=kron_cfg.machine, seed=seed)
    dota_ds = load_manifest(out_dir / "dota" / "datasets" / "dota-league")
    pat_ds = load_manifest(out_dir / "pat" / "datasets" / "cit-Patents")
    kron_ds = load_manifest(
        out_dir / "kron" / "datasets" / f"kron-scale{scale}")
    t1 = harness.run_matrix(dota_ds) + harness.run_matrix(pat_ds)
    sections.append(_section(
        "Table I: Graphalytics on the real-world datasets",
        render_table(t1)))
    t2 = harness.run_matrix(
        kron_ds, algorithms=("cdlp", "pagerank", "lcc", "wcc", "bfs"))
    sections.append(_section(
        "Table II: Graphalytics on the Kronecker graph",
        render_table(t2)))
    render_html_report(t1 + t2, out_dir / "graphalytics")
    sections.append("## Fig 7: Graphalytics HTML reports\n\nWritten "
                    "under `graphalytics/` (one page per platform).\n")

    # --- figures + provenance -----------------------------------------
    if render_svg:
        from repro.viz import render_all_figures

        render_all_figures(kron, out_dir / "figures")
        render_all_figures(merged, out_dir / "figures")
        render_all_figures(scaling, out_dir / "figures")

    from repro.core.html_report import render_epg_html
    from repro.core.provenance import capture

    render_epg_html(kron, out_dir / "report.html",
                    title=f"EPG* report: kron-scale{scale}",
                    embed_figures=render_svg)

    for cfg in (kron_cfg, scaling_cfg):
        capture(cfg)

    report = out_dir / "REPORT.md"
    report.write_text("\n".join(sections), encoding="utf-8")
    return report
