"""The canonical measurement record.

Every log line EPG* parses becomes one :class:`Record` -- the rows of
the CSV that phase 4 produces and phase 5 analyzes (the paper's
"parse through the log files to compress the output into a CSV").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Record", "METRICS"]

#: Known metric names.
METRICS = (
    "time",           # algorithm kernel seconds (one per root/trial)
    "read",           # file-read seconds (separable-load systems)
    "build",          # data-structure construction seconds
    "load",           # fused read+build seconds (GraphBIG, PowerGraph)
    "iterations",     # PageRank sweeps / engine supersteps
    "depth",          # BFS depth
    "teps",           # Graph500 harmonic-mean traversed edges/second
    "pkg_watts",      # average package power over the measured region
    "dram_watts",     # average DRAM power
    "pkg_joules",     # package energy of the measured region
    "dram_joules",    # DRAM energy
)


@dataclass(frozen=True)
class Record:
    system: str
    algorithm: str
    dataset: str
    threads: int
    metric: str
    value: float
    #: Search root for BFS/SSSP; trial index reused for rootless runs.
    root: int = -1
    trial: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def csv_header() -> str:
        return "system,algorithm,dataset,threads,root,trial,metric,value"

    def to_csv_row(self) -> str:
        return (f"{self.system},{self.algorithm},{self.dataset},"
                f"{self.threads},{self.root},{self.trial},"
                f"{self.metric},{self.value!r}")

    @staticmethod
    def from_csv_row(row: str) -> "Record":
        parts = row.rstrip("\n").split(",")
        if len(parts) != 8:
            from repro.errors import LogParseError
            raise LogParseError(f"bad CSV row: {row!r}")
        return Record(
            system=parts[0], algorithm=parts[1], dataset=parts[2],
            threads=int(parts[3]), root=int(parts[4]), trial=int(parts[5]),
            metric=parts[6], value=float(parts[7]))
