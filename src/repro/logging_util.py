"""Harness logging.

The pipeline can run for minutes at realistic scales; these helpers
give it progress output without polluting library stdout (the paper's
scripts echo progress between phases; we use the stdlib logging module
under the ``repro`` namespace so applications keep full control).
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager

__all__ = ["get_logger", "enable_console_logging", "phase_timer"]


def get_logger(name: str = "repro") -> logging.Logger:
    """Namespaced logger; quiet unless the application configures it."""
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """One-call opt-in used by ``epg --verbose``."""
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler)
               for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s",
            datefmt="%H:%M:%S"))
        logger.addHandler(handler)
    logger.setLevel(level)


@contextmanager
def phase_timer(phase: str, logger: logging.Logger | None = None,
                tracer=None):
    """Log phase entry/exit with wall-clock duration.

    The closing line is emitted from ``finally`` so every exit path --
    success, exception, or generator teardown -- gets one.  When a
    :class:`~repro.observability.tracer.Tracer` is passed the phase
    also becomes a ``pipeline`` span, so existing call sites grow
    tracing by threading one optional argument through.
    """
    log = logger or get_logger("repro.pipeline")
    log.info("%s: starting", phase)
    t0 = time.perf_counter()
    span_cm = tracer.span(phase, category="pipeline") if tracer else None
    if span_cm is not None:
        span_cm.__enter__()
    ok = False
    try:
        yield
        ok = True
    finally:
        if span_cm is not None:
            exc_type, exc, tb = (None, None, None) if ok else sys.exc_info()
            span_cm.__exit__(exc_type, exc, tb)
        elapsed = time.perf_counter() - t0
        if ok:
            log.info("%s: done in %.2fs", phase, elapsed)
        else:
            log.error("%s: failed after %.2fs", phase, elapsed)
