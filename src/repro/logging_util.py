"""Harness logging.

The pipeline can run for minutes at realistic scales; these helpers
give it progress output without polluting library stdout (the paper's
scripts echo progress between phases; we use the stdlib logging module
under the ``repro`` namespace so applications keep full control).
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager

__all__ = ["get_logger", "enable_console_logging", "phase_timer"]


def get_logger(name: str = "repro") -> logging.Logger:
    """Namespaced logger; quiet unless the application configures it."""
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """One-call opt-in used by ``epg --verbose``."""
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler)
               for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s",
            datefmt="%H:%M:%S"))
        logger.addHandler(handler)
    logger.setLevel(level)


@contextmanager
def phase_timer(phase: str, logger: logging.Logger | None = None):
    """Log phase entry/exit with wall-clock duration."""
    log = logger or get_logger("repro.pipeline")
    log.info("%s: starting", phase)
    t0 = time.perf_counter()
    try:
        yield
    except Exception:
        log.error("%s: failed after %.2fs", phase,
                  time.perf_counter() - t0)
        raise
    log.info("%s: done in %.2fs", phase, time.perf_counter() - t0)
