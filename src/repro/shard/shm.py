"""Zero-copy array publication over POSIX shared memory.

The artifact cache publishes array bundles as ``.npy`` memmaps that
worker processes map read-only; this module is the same idiom aimed at
:mod:`multiprocessing.shared_memory`: an :class:`ShmArena` packs a
``{name: ndarray}`` map into **one** segment with an explicit layout
table, and workers attach by name to get views of the very same pages
-- no pickling, no copies, and one ``shm_open`` per arena instead of
per array.

Lifecycle is the hard part (the satellite this module closes): segments
outlive crashed processes unless someone unlinks them.  The creating
process registers a :class:`multiprocessing.util.Finalize` unlink guard
(idempotent, also called from ``ShardEngine.close()``) -- a
multiprocessing finalizer rather than plain :mod:`atexit` because
forked children exit through ``os._exit``, where atexit handlers never
run but ``util._exit_function`` still sweeps its finalizers -- and
workers are *forked*, so
every process shares one resource-tracker whose entry the creator's
``unlink`` retires exactly once -- a worker death (even SIGKILL) can
neither leak a segment nor trigger the tracker's "leaked
shared_memory objects" noise, and a hard-killed *parent* still gets
its segments reaped by the shared tracker's shutdown sweep.
"""

from __future__ import annotations

import multiprocessing.util
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ShardError

__all__ = ["ShmArena", "ArenaSpec", "ARENA_FINALIZE_PRIORITY"]

#: Exit-finalizer priority of the unlink guard; lower than the
#: engine's (:data:`repro.shard.engine.ENGINE_FINALIZE_PRIORITY`) so
#: workers are always shut down before their mappings vanish.
ARENA_FINALIZE_PRIORITY = 10


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable attachment ticket: segment name + layout table."""

    segment: str
    #: ``(key, dtype string, shape tuple, byte offset)`` per array.
    layout: tuple[tuple[str, str, tuple[int, ...], int], ...]


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class ShmArena:
    """A named bundle of ndarrays in one shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 spec: ArenaSpec, owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._closed = False
        self.arrays: dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in spec.layout:
            self.arrays[key] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf,
                offset=offset)
        self._guard = None
        if owner:
            self._guard = multiprocessing.util.Finalize(
                None, self.destroy, exitpriority=ARENA_FINALIZE_PRIORITY)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "ShmArena":
        """Publish ``arrays`` (copied once) into a fresh segment."""
        layout = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _align(offset)
            layout.append((key, arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(offset, 1))
        spec = ArenaSpec(segment=shm.name, layout=tuple(layout))
        arena = cls(shm, spec, owner=True)
        for key, arr in arrays.items():
            arena.arrays[key][...] = arr
        return arena

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "ShmArena":
        """Map an existing arena (worker side).

        Workers are forked, so they share the parent's resource-tracker
        process: their attach-time registrations dedupe into the entry
        the creator already holds, and the creator's ``unlink`` retires
        it -- no per-attacher bookkeeping, no double-unlink, and a
        SIGKILLed worker leaves the tracker state untouched.  (Under a
        spawn start method each attacher would get its *own* tracker,
        which unlinks segments it never owned; the engine only forks.)
        """
        try:
            shm = shared_memory.SharedMemory(name=spec.segment)
        except FileNotFoundError as exc:
            raise ShardError(
                f"shard arena {spec.segment!r} vanished (creator "
                f"exited?)") from exc
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    @property
    def closed(self) -> bool:
        """Whether this process's mapping was dropped (views over the
        arena are invalid once true -- touching them can segfault,
        since ``mmap`` unmaps regardless of outstanding ndarrays)."""
        return self._closed

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self.arrays.clear()
        try:
            self._shm.close()
        except Exception:
            pass

    def destroy(self) -> None:
        """Close and, when owner, unlink the segment (idempotent)."""
        owner = self._owner and not self._closed
        self.close()
        if owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            if self._guard is not None:
                self._guard.cancel()
