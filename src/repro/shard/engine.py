"""The sharded superstep engine: persistent workers, semaphores, rings.

One :class:`ShardEngine` owns a partitioned copy of a single graph:

* a **static arena** (one shared-memory segment) holding every shard's
  push/pull CSR slices plus the out-degree vector -- written once,
  read-only for the engine's lifetime;
* a **dynamic arena** holding the round state the parent and the shards
  exchange: the rank/distance double buffer, visited / in-frontier
  bitmaps, the broadcast frontier, two small control blocks, and one
  preallocated ``(ids, values, header)`` delta ring per shard.

Execution is parent-driven bulk-synchronous supersteps: the parent
writes the op code and round inputs, posts one ``go`` token per worker,
collects one ``done`` token per worker, then merges the per-shard rings
with *exact* reductions (integer/float minima, disjoint scatters).  The
round trip is plain semaphores rather than an ``mp.Barrier`` on
purpose: a barrier hides a condition lock, and a worker SIGKILLed while
holding it deadlocks every timed wait that follows -- a semaphore has
no state a dead process can leave locked.  Workers are forked once
(:func:`repro.parallel.scheduler`'s context -- the same fork preference
as the suite's cell pool) and live until :meth:`ShardEngine.close`.

Failure discipline: a worker exception lands in its ring header and the
superstep completes normally (the parent raises
:class:`~repro.errors.ShardError` after collecting the round, keeping
the pool alive); a worker *death* (crash, SIGKILL) stalls the token
collection, which the parent detects within its polling slice and
converts into the same ``ShardError`` after tearing down workers and
unlinking both arenas -- an aborted run leaves nothing in
``/dev/shm``.

When ``n_shards == 1`` -- or when process fan-out is unavailable
(daemonic parent, e.g. a suite cell worker) -- the engine runs the very
same :mod:`repro.shard.ops` bodies inline in-process, so every caller
gets identical results through one code path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.util
import os
import signal
import time

import numpy as np

from repro.errors import ConfigError, ShardError
from repro.graph.csr import CSRGraph
from repro.parallel.scheduler import _mp_context, resolve_jobs
from repro.shard import ops
from repro.shard.partition import (
    ShardPartition,
    partition_graph,
    shard_in_slice,
    shard_out_slice,
)
from repro.shard.shm import ShmArena

__all__ = ["ShardEngine", "resolve_shards", "DEFAULT_STEP_TIMEOUT_S",
           "MESSAGE_BYTES"]

#: Generous per-superstep deadline: kernels at suite scales finish each
#: round in milliseconds, so a stuck round means a dead worker.
DEFAULT_STEP_TIMEOUT_S = 120.0

#: Accounting size of one exchanged delta: an int64 vertex id plus a
#: float64 value, the rings' actual element width.
MESSAGE_BYTES = 16

#: How often an idle worker wakes to check whether its parent is still
#: alive.  A worker orphaned by a hard-killed parent (which can never
#: send ``OP_SHUTDOWN``) exits within one poll instead of blocking on
#: ``go.acquire()`` forever.
ORPHAN_POLL_S = 5.0

#: ``multiprocessing.util.Finalize`` exit priorities (higher runs
#: first): the engine's shutdown must precede the arenas' unlink guards
#: (:data:`repro.shard.shm.ARENA_FINALIZE_PRIORITY`) so it still finds
#: live mappings -- ``mmap`` unmaps even while ndarrays reference it,
#: so the reverse order would segfault.
ENGINE_FINALIZE_PRIORITY = 20


def resolve_shards(shards: int | None) -> int:
    """``None`` means "one shard per core" (the suite's single CPU-count
    source, :func:`repro.parallel.scheduler.resolve_jobs`); otherwise
    validate the count."""
    if shards is None:
        return resolve_jobs(None)
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    return int(shards)


def _build_context(shard: int, n: int, arrays, weighted: bool,
                   has_in: bool) -> ops.ShardContext:
    """Assemble one shard's op context from an arena's (or an inline
    dict's) arrays -- the single construction path for both modes."""
    return ops.ShardContext(
        shard, n,
        out_row_ptr=arrays[f"o{shard}_rp"],
        out_col_idx=arrays[f"o{shard}_ci"],
        out_weights=arrays[f"o{shard}_w"] if weighted else None,
        owned=arrays[f"i{shard}_own"] if has_in else None,
        in_row_ptr=arrays[f"i{shard}_rp"] if has_in else None,
        in_col_idx=arrays[f"i{shard}_ci"] if has_in else None,
        out_degrees=arrays["outdeg"] if has_in else None,
        vec=arrays["vec"], vec2=arrays["vec2"],
        visited=arrays["visited"], in_frontier=arrays["in_frontier"],
        frontier=arrays["frontier"], ctrl_i=arrays["ctrl_i"],
        ctrl_f=arrays["ctrl_f"], ring_ids=arrays[f"r{shard}_ids"],
        ring_val=arrays[f"r{shard}_val"], ring_hdr=arrays[f"r{shard}_hdr"])


def _worker_main(shard: int, n: int, static_spec, dyn_spec,
                 go, done, weighted: bool, has_in: bool) -> None:
    """Worker loop: attach arenas, then serve supersteps until told to
    shut down.  Each round is one ``go`` token in, one ``done`` token
    out -- plain semaphores, nothing a SIGKILLed sibling can leave
    locked (an ``mp.Barrier`` hides a condition lock that dies with
    its holder and deadlocks everyone else).  Op exceptions are already
    recorded in the ring header by :func:`~repro.shard.ops.run_op`; the
    loop swallows them so the worker always posts its token."""
    # The suite's cell-pool workers set SIGTERM to SIG_IGN (so a
    # checkpointing parent can drain them); a shard worker forked from
    # one inherits that and would then survive the ``terminate()``
    # that ``multiprocessing.util._exit_function`` sends daemonic
    # children -- deadlocking the join that follows.  Restore the
    # default so this worker is always reapable.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    ppid = os.getppid()
    static = ShmArena.attach(static_spec)
    dyn = ShmArena.attach(dyn_spec)
    arrays = dict(static.arrays)
    arrays.update(dyn.arrays)
    ctx = _build_context(shard, n, arrays, weighted, has_in)
    try:
        while True:
            while not go.acquire(True, ORPHAN_POLL_S):
                if os.getppid() != ppid:
                    return  # orphaned: parent died, shutdown never comes
            op = int(ctx.ctrl_i[ops.CTRL_OP])
            if op == ops.OP_SHUTDOWN:
                break
            try:
                ops.run_op(ctx, op)
            except Exception:
                pass
            done.release()
    finally:
        del ctx, arrays
        static.close()
        dyn.close()


class ShardEngine:
    """Persistent sharded executor for one graph.

    Parameters
    ----------
    out:
        The graph's out-CSR (push direction).
    inn:
        Optional in-CSR (pull direction).  Required for bottom-up BFS
        and PageRank; ``None`` builds a push-only engine (Graph500).
    n_shards, strategy:
        Partitioning (see :mod:`repro.shard.partition`).
    inline:
        Force (``True``) or forbid (``False``) the in-process path;
        ``None`` auto-selects: inline when ``n_shards == 1`` or the
        current process cannot fork workers.
    """

    def __init__(self, out: CSRGraph, inn: CSRGraph | None = None, *,
                 n_shards: int | None = None,
                 strategy: str = "edge_blocks",
                 step_timeout_s: float = DEFAULT_STEP_TIMEOUT_S,
                 inline: bool | None = None):
        self.n_shards = resolve_shards(n_shards)
        self.n = out.n_vertices
        self.weighted = out.weights is not None
        self.has_in = inn is not None
        self.step_timeout_s = float(step_timeout_s)
        self.partition: ShardPartition = partition_graph(
            out, self.n_shards, strategy)
        if inline is None:
            inline = (self.n_shards == 1
                      or multiprocessing.current_process().daemon)
        self.inline = bool(inline)
        self._closed = False
        #: Exchange accounting for the comm cost model and the
        #: ``epg_shard_*`` metrics (reset per kernel by the drivers).
        self.rounds = 0
        self.bytes_exchanged = 0

        static = self._build_static(out, inn)
        dyn = self._build_dynamic()
        self._static_arena = None
        self._dyn_arena = None
        self._workers: list = []
        if self.inline:
            arrays = dict(static)
            arrays.update(dyn)
            self._arrays = arrays
            self._contexts = [
                _build_context(k, self.n, arrays, self.weighted,
                               self.has_in)
                for k in range(self.n_shards)]
        else:
            self._static_arena = ShmArena.create(static)
            self._dyn_arena = ShmArena.create(dyn)
            arrays = dict(self._static_arena.arrays)
            arrays.update(self._dyn_arena.arrays)
            self._arrays = arrays
            self._contexts = []
            ctx = _mp_context()
            #: One release per worker per superstep; per-worker so a
            #: token can never be stolen by a sibling.
            self._go = [ctx.Semaphore(0) for _ in range(self.n_shards)]
            #: One completion token per worker per superstep.
            self._done = ctx.Semaphore(0)
            try:
                for k in range(self.n_shards):
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(k, self.n, self._static_arena.spec,
                              self._dyn_arena.spec, self._go[k],
                              self._done, self.weighted,
                              self.has_in),
                        daemon=True,
                        name=f"epg-shard-{k}")
                    proc.start()
                    self._workers.append(proc)
            except Exception:
                self.close()
                raise
            # A multiprocessing finalizer, NOT plain atexit: forked
            # children exit through ``os._exit`` (atexit never runs
            # there), and ``util._exit_function`` joins live children
            # *before* plain-atexit handlers would fire in the parent.
            # Finalizers with priority >= 0 run first in both paths,
            # so the pool is always shut down before anything joins or
            # unmaps -- exitpriority orders us ahead of the arenas'
            # unlink guards.
            self._exit_guard = multiprocessing.util.Finalize(
                None, self.close, exitpriority=ENGINE_FINALIZE_PRIORITY)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_static(self, out: CSRGraph,
                      inn: CSRGraph | None) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for k in range(self.n_shards):
            sl = shard_out_slice(out, self.partition, k)
            arrays[f"o{k}_rp"] = sl.row_ptr
            arrays[f"o{k}_ci"] = sl.col_idx
            if self.weighted:
                arrays[f"o{k}_w"] = sl.weights
            if inn is not None:
                owned, isl = shard_in_slice(inn, self.partition, k)
                arrays[f"i{k}_own"] = owned
                arrays[f"i{k}_rp"] = isl.row_ptr
                arrays[f"i{k}_ci"] = isl.col_idx
        if inn is not None:
            arrays["outdeg"] = out.out_degrees().astype(np.float64)
        return arrays

    def _build_dynamic(self) -> dict[str, np.ndarray]:
        n = self.n
        arrays: dict[str, np.ndarray] = {
            "ctrl_i": np.zeros(16, dtype=np.int64),
            "ctrl_f": np.zeros(8),
            "vec": np.zeros(n),
            "vec2": np.zeros(n),
            "visited": np.zeros(n, dtype=bool),
            "in_frontier": np.zeros(n, dtype=bool),
            "frontier": np.zeros(n + 1, dtype=np.int64),
        }
        for k in range(self.n_shards):
            arrays[f"r{k}_ids"] = np.zeros(n + 1, dtype=np.int64)
            arrays[f"r{k}_val"] = np.zeros(n + 1)
            arrays[f"r{k}_hdr"] = np.zeros(8, dtype=np.int64)
        return arrays

    # ------------------------------------------------------------------
    # Shared round state (drivers mutate these directly)
    # ------------------------------------------------------------------
    @property
    def vec(self) -> np.ndarray:
        return self._arrays["vec"]

    @property
    def vec2(self) -> np.ndarray:
        return self._arrays["vec2"]

    @property
    def visited(self) -> np.ndarray:
        return self._arrays["visited"]

    @property
    def in_frontier(self) -> np.ndarray:
        return self._arrays["in_frontier"]

    def reset_stats(self) -> None:
        self.rounds = 0
        self.bytes_exchanged = 0

    # ------------------------------------------------------------------
    # Superstep protocol
    # ------------------------------------------------------------------
    def _superstep(self, op: int, frontier: np.ndarray | None = None,
                   mode: int = 0) -> list[tuple[np.ndarray, np.ndarray,
                                                int]]:
        """Run one op on every shard; return per-shard
        ``(ids, values, examined)`` ring contents."""
        if self._closed:
            raise ShardError("engine is closed")
        a = self._arrays
        ctrl_i = a["ctrl_i"]
        k = 0
        if frontier is not None:
            k = frontier.size
            a["frontier"][:k] = frontier
        ctrl_i[ops.CTRL_FRONT_LEN] = k
        ctrl_i[ops.CTRL_MODE] = mode
        ctrl_i[ops.CTRL_OP] = op

        if self.inline:
            for ctx in self._contexts:
                try:
                    ops.run_op(ctx, op)
                except Exception:
                    pass
        else:
            for sem in self._go:
                sem.release()
            deadline = time.monotonic() + self.step_timeout_s
            pending = self.n_shards
            while pending:
                # Short slices so worker deaths surface promptly; a
                # plain semaphore acquire cannot deadlock on a lock a
                # SIGKILLed worker took with it.
                if self._done.acquire(True, 0.05):
                    pending -= 1
                    continue
                dead = [p.name for p in self._workers
                        if not p.is_alive()]
                if dead or time.monotonic() > deadline:
                    self.close()
                    raise ShardError(
                        "sharded superstep stalled"
                        + (f" (dead workers: {', '.join(dead)})"
                           if dead else
                           f" (timeout after {self.step_timeout_s}s)"))

        results = []
        exchanged = k * 8 * self.n_shards  # broadcast frontier
        for s in range(self.n_shards):
            hdr = a[f"r{s}_hdr"]
            if hdr[ops.HDR_ERROR]:
                # The worker is fine (it posted its token); only the
                # op failed.  Keep the pool alive -- the next kernel
                # reinitializes all round state, and run_op clears the
                # flag on entry.
                raise ShardError(f"shard {s} op {op} failed "
                                 "(see worker stderr)")
            count = int(hdr[ops.HDR_COUNT])
            results.append((a[f"r{s}_ids"][:count],
                            a[f"r{s}_val"][:count],
                            int(hdr[ops.HDR_EXAMINED])))
            exchanged += count * MESSAGE_BYTES
        self.rounds += 1
        self.bytes_exchanged += exchanged
        return results

    @staticmethod
    def _merge_min(rings) -> tuple[np.ndarray, np.ndarray]:
        """Global exact minimum per id across shard rings (handles the
        cross-shard duplicate targets a vertex-cut produces)."""
        all_ids = np.concatenate([r[0] for r in rings])
        all_val = np.concatenate([r[1] for r in rings])
        if all_ids.size == 0:
            return all_ids, all_val
        return ops._min_per_id(all_ids, all_val)

    # ------------------------------------------------------------------
    # Kernel-facing supersteps
    # ------------------------------------------------------------------
    def top_down(self, frontier: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, int]:
        """One top-down BFS expansion.  Returns ``(new_vertices,
        parents, edges_examined)``: the global minimum frontier source
        per still-unvisited target -- exactly the serial
        ``claim_first_parent`` winner -- in sorted target order."""
        rings = self._superstep(ops.OP_TD, frontier=frontier)
        ids, val = self._merge_min(rings)
        examined = sum(r[2] for r in rings)
        return ids, val.astype(np.int64), examined

    def bottom_up(self, frontier: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, int]:
        """One bottom-up BFS sweep over every shard's unvisited owned
        vertices.  Owners partition the vertex space, so shard results
        are disjoint; each shard scans *complete* in-rows, making its
        early-exit examined counts sum to the serial count."""
        f = self._arrays["in_frontier"]
        f[:] = False
        f[frontier] = True
        rings = self._superstep(ops.OP_BU)
        ids = np.concatenate([r[0] for r in rings])
        val = np.concatenate([r[1] for r in rings])
        order = np.argsort(ids, kind="stable")
        examined = sum(r[2] for r in rings)
        return ids[order], val[order].astype(np.int64), examined

    def relax(self, members: np.ndarray, mode: int
              ) -> tuple[np.ndarray, np.ndarray, int]:
        """One delta-stepping relaxation over ``members``'s (light /
        heavy / all) arcs against the shared distance vector
        (:attr:`vec`).  Returns improved destinations (sorted), their
        exact new minima, and the relaxed-arc count; the caller applies
        the scatter, keeping the parent the single writer of ``vec``."""
        rings = self._superstep(ops.OP_RELAX, frontier=members,
                                mode=mode)
        ids, val = self._merge_min(rings)
        examined = sum(r[2] for r in rings)
        return ids, val, examined

    def pagerank_sweep(self, dangling_mass: float, base: float,
                       damping: float) -> None:
        """One power-iteration sweep: each shard scatters its owned
        slice of the new rank vector into :attr:`vec2` (owners are
        disjoint, so this *is* the allreduce), reading ranks from
        :attr:`vec`."""
        a = self._arrays
        a["ctrl_f"][ops.CTRL_DANGLING] = dangling_mass
        a["ctrl_f"][ops.CTRL_BASE] = base
        a["ctrl_f"][ops.CTRL_DAMPING] = damping
        self._superstep(ops.OP_PR)
        # Each rank entry crosses once: the owner writes it, the parent
        # reads it for the residual and rebroadcasts.
        self.bytes_exchanged += self.n * 8

    def set_delta(self, delta: float) -> None:
        self._arrays["ctrl_f"][ops.CTRL_DELTA] = delta

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut workers down and unlink both arenas (idempotent; also
        runs as an exit finalizer when the owner never calls it)."""
        if self._closed:
            return
        self._closed = True
        guard = self.__dict__.get("_exit_guard")
        if guard is not None:
            guard.cancel()
        try:
            if self._workers:
                try:
                    if (self._dyn_arena is not None
                            and not self._dyn_arena.closed):
                        self._arrays["ctrl_i"][ops.CTRL_OP] = \
                            ops.OP_SHUTDOWN
                        for sem in self._go:
                            sem.release()
                except Exception:
                    pass
                for proc in self._workers:
                    proc.join(timeout=2.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=2.0)
        finally:
            self._workers = []
            self._contexts = []
            self._arrays = {}
            if self._static_arena is not None:
                self._static_arena.destroy()
            if self._dyn_arena is not None:
                self._dyn_arena.destroy()

    def __enter__(self) -> "ShardEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort backstop
        try:
            self.close()
        except Exception:
            pass
