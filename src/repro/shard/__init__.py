"""Sharded multi-process execution of single kernels.

``repro.shard`` splits one graph across persistent worker processes so
a *single* BFS/SSSP/PageRank execution spans cores -- the complement of
:mod:`repro.parallel`, which fans out independent suite cells.  The
package keeps the frontier library's hard bit-identity contract: a
sharded run's output arrays, :class:`~repro.machine.threads.WorkProfile`
unit counts, and the suite REPORT.md are byte-identical to the serial
kernels at every shard count (see ``docs/sharding.md``).

Layers:

* :mod:`repro.shard.partition` -- 1-D contiguous / balanced-edge vertex
  blocks and a PowerGraph-style greedy vertex-cut, all producing exact
  per-shard CSR slices that reassemble byte-identically;
* :mod:`repro.shard.shm` -- zero-copy array publication over
  :mod:`multiprocessing.shared_memory` (the artifact cache's
  memmap-bundle idiom, re-targeted at shared segments);
* :mod:`repro.shard.ops` -- the per-shard superstep bodies, shared
  verbatim between worker processes and the inline fallback;
* :mod:`repro.shard.engine` -- the persistent worker pool, barrier
  protocol, and preallocated delta rings;
* :mod:`repro.shard.drivers` -- sharded ports of the serial kernels
  (direction-optimizing BFS, bitmap BFS, delta-stepping SSSP, pull
  PageRank).
"""

from repro.shard.drivers import (
    shard_bfs_bitmap,
    shard_delta_stepping,
    shard_dobfs,
    shard_pagerank,
)
from repro.shard.engine import ShardEngine, resolve_shards
from repro.shard.partition import (
    PARTITION_STRATEGIES,
    ShardPartition,
    partition_graph,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "ShardEngine",
    "ShardPartition",
    "partition_graph",
    "resolve_shards",
    "shard_bfs_bitmap",
    "shard_delta_stepping",
    "shard_dobfs",
    "shard_pagerank",
]
