"""Sharded ports of the serial kernels (bit-identical by contract).

Each driver is the serial kernel's control loop run in the parent --
same switch heuristics, same bucket bookkeeping, same profile rounds --
with only the per-round edge sweep fanned out through a
:class:`~repro.shard.engine.ShardEngine` superstep.  All global
decisions (direction switches, bucket selection, convergence residuals)
are computed by the parent on full assembled arrays with the serial
kernels' exact expressions, so for every shard count and partition
strategy the outputs, :class:`~repro.machine.threads.WorkProfile`
rounds, and stats dicts are byte-identical to
:func:`repro.systems.gap.bfs.dobfs`,
:func:`repro.systems.graph500.bfs.bfs_bitmap`,
:func:`repro.systems.gap.sssp.delta_stepping`, and
:func:`repro.algorithms.pagerank.pagerank` (asserted by
``tests/shard/test_drivers.py`` and gated by
``benchmarks/bench_shard.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SystemCapabilityError
from repro.graph.csr import CSRGraph
from repro.graph.frontier import BucketQueue
from repro.machine.threads import WorkProfile
from repro.shard import ops
from repro.shard.engine import ShardEngine
from repro.systems.gap.bfs import DEFAULT_ALPHA, DEFAULT_BETA
from repro.systems.gap.graph import GapGraph
from repro.systems.gap.sssp import DEFAULT_DELTA

__all__ = ["shard_dobfs", "shard_bfs_bitmap", "shard_delta_stepping",
           "shard_pagerank"]


def shard_dobfs(graph: GapGraph, root: int, engine: ShardEngine,
                alpha: float = DEFAULT_ALPHA, beta: float = DEFAULT_BETA
                ) -> tuple[np.ndarray, np.ndarray, WorkProfile, dict]:
    """Sharded direction-optimizing BFS (= ``gap.bfs.dobfs``)."""
    n = graph.n
    out_deg = graph.out_degree()
    engine.reset_stats()
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = engine.visited
    visited[:] = False
    parent[root] = root
    level[root] = 0
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    edges_unexplored = int(out_deg.sum()) - int(out_deg[root])
    depth = 0
    steps: list[str] = []
    bottom_up = False
    max_deg = float(out_deg.max()) if n else 0.0

    while frontier.size:
        depth += 1
        edges_front = int(out_deg[frontier].sum())
        if not bottom_up and edges_front * alpha > max(edges_unexplored, 1):
            bottom_up = True
        elif bottom_up and frontier.size * beta < n:
            bottom_up = False

        if bottom_up:
            new_v, parents, examined = engine.bottom_up(frontier)
            steps.append("bu")
        else:
            new_v, parents, examined = engine.top_down(frontier)
            steps.append("td")
        parent[new_v] = parents
        visited[new_v] = True

        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + frontier.size,
                          memory_bytes=12.0 * examined, skew=skew)
        level[new_v] = depth
        edges_unexplored -= int(out_deg[new_v].sum())
        frontier = new_v

    stats = {"depth": depth, "steps": "".join(
        "B" if s == "bu" else "T" for s in steps)}
    return parent, level, profile, stats


def shard_bfs_bitmap(csr: CSRGraph, root: int, engine: ShardEngine
                     ) -> tuple[np.ndarray, np.ndarray, WorkProfile,
                                dict]:
    """Sharded level-synchronous BFS (= ``graph500.bfs.bfs_bitmap``)."""
    n = csr.n_vertices
    engine.reset_stats()
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = engine.visited
    visited[:] = False
    parent[root] = root
    level[root] = 0
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    examined_total = 0

    while frontier.size:
        depth += 1
        new_v, parents, total = engine.top_down(frontier)
        if total == 0:
            break
        examined_total += total
        skew = min(max_deg / max(total, 1.0), 1.0)
        profile.add_round(units=total + frontier.size,
                          memory_bytes=9.0 * total, skew=skew)
        parent[new_v] = parents
        visited[new_v] = True
        level[new_v] = depth
        frontier = new_v

    stats = {"depth": depth, "edges_examined": examined_total}
    return parent, level, profile, stats


def shard_delta_stepping(graph: GapGraph, root: int,
                         engine: ShardEngine,
                         delta: float = DEFAULT_DELTA
                         ) -> tuple[np.ndarray, WorkProfile, dict]:
    """Sharded delta-stepping SSSP (= ``gap.sssp.delta_stepping``).

    The parent runs the bucket logic verbatim and stays the single
    writer of the shared distance vector: shards compute per-
    destination segment minima against the pre-round distances, the
    parent applies the exact merged minimum between barriers.
    """
    out = graph.out
    if out.weights is None:
        raise SystemCapabilityError("GAP SSSP needs a weighted graph")
    if delta <= 0:
        raise SystemCapabilityError("delta must be positive")
    n = graph.n
    engine.reset_stats()
    engine.set_delta(delta)
    dist = engine.vec
    dist[:] = np.inf
    dist[root] = 0.0
    profile = WorkProfile()
    max_deg = float(out.out_degrees().max()) if n else 0.0

    bucket = np.full(n, -1, dtype=np.int64)
    bucket[root] = 0
    queue = BucketQueue()
    queue.push(np.array([root], dtype=np.int64),
               np.zeros(1, dtype=np.int64))
    relaxations = 0
    phases = 0
    while True:
        head = queue.pop(bucket)
        if head is None:
            break
        current, members = head
        settled_this_bucket: list[np.ndarray] = []
        while members.size:
            phases += 1
            improved, mins, examined = engine.relax(
                members, ops.RELAX_LIGHT)
            if improved.size:
                dist[improved] = np.minimum(dist[improved], mins)
            relaxations += examined
            skew = min(max_deg / max(examined, 1.0), 0.15)
            profile.add_round(units=examined + members.size,
                              memory_bytes=20.0 * examined, skew=skew)
            settled_this_bucket.append(members)
            bucket[members] = -2
            if improved.size:
                new_bucket = np.minimum(
                    (dist[improved] / delta).astype(np.int64),
                    np.iinfo(np.int64).max)
                stay = new_bucket == current
                bucket[improved] = new_bucket
                ahead = ~stay
                if ahead.any():
                    queue.push(improved[ahead], new_bucket[ahead])
                members = improved[stay]
            else:
                members = np.empty(0, dtype=np.int64)
        settled = np.unique(np.concatenate(settled_this_bucket))
        phases += 1
        improved, mins, examined = engine.relax(settled,
                                                ops.RELAX_HEAVY)
        if improved.size:
            dist[improved] = np.minimum(dist[improved], mins)
        relaxations += examined
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + settled.size,
                          memory_bytes=20.0 * examined, skew=skew)
        if improved.size:
            nb = (dist[improved] / delta).astype(np.int64)
            nb = np.maximum(nb, current + 1)
            bucket[improved] = nb
            queue.push(improved, nb)

    stats = {"phases": phases, "relaxations": relaxations,
             "delta": delta}
    return dist.copy(), profile, stats


def shard_pagerank(csr: CSRGraph, engine: ShardEngine,
                   damping: float = 0.85, epsilon: float = 6e-8,
                   max_iterations: int = 1000
                   ) -> tuple[np.ndarray, int]:
    """Sharded pull PageRank (= ``algorithms.pagerank.pagerank``).

    Per sweep each shard accumulates its owned destinations in full
    in-neighbor order and scatters them into the shared new-rank
    buffer; the parent computes the dangling mass and the L1 residual
    on the assembled full vectors with the serial expressions (NumPy's
    pairwise summation is deterministic for a fixed array layout, so
    both reductions are bit-identical at every shard count).
    """
    n = csr.n_vertices
    if n == 0:
        return np.zeros(0), 0
    engine.reset_stats()
    out_deg = csr.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    rank = engine.vec
    new_rank = engine.vec2
    rank[:] = 1.0 / n
    base = (1.0 - damping) / n
    for it in range(1, max_iterations + 1):
        dangling_mass = rank[dangling].sum() / n
        engine.pagerank_sweep(dangling_mass, base, damping)
        delta = np.abs(new_rank - rank).sum()
        rank[:] = new_rank
        if delta < epsilon:
            return rank.copy(), it
    return rank.copy(), max_iterations
