"""Graph partitioners for the sharded execution engine.

Three strategies, all producing the same two exact maps:

* ``owner[v]`` -- the shard that *masters* vertex ``v`` (bottom-up BFS
  scans and the PageRank rank slices are grouped by master, so every
  destination's full in-neighbor list lives on one shard and per-vertex
  accumulation order matches the serial kernels);
* ``edge_shard[e]`` -- the shard that executes arc ``e`` in push-style
  supersteps (top-down BFS, SSSP relaxation), indexed in the graph's
  global ``(src, dst)``-sorted arc order.

``blocks`` and ``edge_blocks`` are the 1-D vertex partitioners the
shared-memory systems use (contiguous ranges; the latter balances arc
counts via the in-degree prefix sum, GAP's trick for skewed Kronecker
graphs).  ``vertex_cut`` is PowerGraph's greedy heuristic (Gonzalez et
al., OSDI'12): edges are placed one chunk at a time on the least-loaded
shard that already hosts a replica of an endpoint, which bounds the
replication factor on power-law graphs.  The paper-adjacent science
(Ammar & Özsu: partitioning strategy *is* the cost model of distributed
graph processing) is priced in :mod:`repro.machine.comm`.

Every strategy is exact: each vertex has exactly one owner, each arc
exactly one executing shard, and the per-shard CSR slices reassemble
byte-identically to the input (property-tested with hypothesis in
``tests/shard/test_partition.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["ShardPartition", "ShardSlice", "partition_graph",
           "contiguous_blocks", "balanced_edge_blocks",
           "greedy_vertex_cut", "shard_out_slice", "shard_in_slice",
           "reassemble_out_slices", "PARTITION_STRATEGIES",
           "VERTEX_CUT_CHUNK"]

PARTITION_STRATEGIES = ("blocks", "edge_blocks", "vertex_cut")

#: Greedy vertex-cut placement batch: decisions within a chunk see the
#: replica table as of the chunk start (PowerGraph's distributed ingress
#: is equally stale), which keeps placement vectorized and deterministic.
VERTEX_CUT_CHUNK = 8192


@dataclass(frozen=True)
class ShardPartition:
    """An exact assignment of vertices and arcs to ``n_shards`` shards."""

    strategy: str
    n_shards: int
    n_vertices: int
    n_edges: int
    #: ``int64[n]`` master shard of every vertex.
    owner: np.ndarray
    #: ``int64[m]`` executing shard of every arc (global arc order).
    edge_shard: np.ndarray
    #: Arcs whose endpoints are not both mastered on the executing
    #: shard -- each one moves a (vertex id, value) message per round.
    cut_edges: int
    #: Mean number of shards hosting a replica of each vertex (>= 1.0;
    #: exactly 1.0 for the block strategies' interior vertices).
    replication_factor: float

    def shard_vertices(self, shard: int) -> np.ndarray:
        """Sorted ids of the vertices mastered by ``shard``."""
        return np.flatnonzero(self.owner == shard)

    def edge_balance(self) -> np.ndarray:
        """Arcs executed per shard."""
        return np.bincount(self.edge_shard, minlength=self.n_shards)


@dataclass(frozen=True)
class ShardSlice:
    """One shard's CSR slice: same row space, only its own arcs.

    ``slot_map`` carries each local arc's global slot index, which is
    what makes the slice losslessly reassemblable (and lets tests prove
    byte-identity of the decomposition).
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: np.ndarray | None
    slot_map: np.ndarray

    @property
    def n_edges(self) -> int:
        return int(self.col_idx.size)


def _validate(csr: CSRGraph, n_shards: int) -> None:
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if csr.n_vertices < 1:
        raise ConfigError("cannot partition an empty graph")


def _owner_from_bounds(bounds: np.ndarray, n_shards: int) -> np.ndarray:
    return np.repeat(np.arange(n_shards, dtype=np.int64),
                     np.diff(bounds))


def _finish_blocks(csr: CSRGraph, strategy: str, n_shards: int,
                   bounds: np.ndarray) -> ShardPartition:
    """Common tail of the two block strategies: arcs follow their
    destination's owner, so push slices and pull slices cover the same
    arc sets and block merges are duplicate-free."""
    owner = _owner_from_bounds(bounds, n_shards)
    edge_shard = owner[csr.col_idx]
    cut = int(np.count_nonzero(owner[csr.source_ids()] != edge_shard))
    # A vertex is replicated onto every shard that executes one of its
    # arcs; block interiors stay single-homed.
    touched = np.zeros((csr.n_vertices,), dtype=np.int64)
    if csr.n_edges:
        pair_src = csr.source_ids() * np.int64(n_shards) + edge_shard
        pair_dst = csr.col_idx * np.int64(n_shards) + edge_shard
        pairs = np.unique(np.concatenate([pair_src, pair_dst]))
        np.add.at(touched, pairs // n_shards, 1)
    replicas = np.maximum(touched, 1)
    return ShardPartition(
        strategy=strategy, n_shards=n_shards,
        n_vertices=csr.n_vertices, n_edges=csr.n_edges,
        owner=owner, edge_shard=edge_shard, cut_edges=cut,
        replication_factor=float(replicas.mean()))


def contiguous_blocks(csr: CSRGraph, n_shards: int) -> ShardPartition:
    """Equal-width contiguous vertex ranges (1-D block distribution)."""
    _validate(csr, n_shards)
    n = csr.n_vertices
    bounds = (np.arange(n_shards + 1, dtype=np.int64) * n) // n_shards
    return _finish_blocks(csr, "blocks", n_shards, bounds)


def balanced_edge_blocks(csr: CSRGraph, n_shards: int) -> ShardPartition:
    """Contiguous vertex ranges balancing *arc* counts per shard.

    Splits the in-degree prefix sum at ``k * m / n_shards`` (arcs are
    executed by their destination's owner): on skewed Kronecker graphs
    equal vertex counts put nearly all arcs on the hub shards, and this
    is GAP's remedy.  Balance tolerance: no shard exceeds
    ``m / n_shards + max_in_degree`` arcs, since a split point can only
    overshoot by the degree of the vertex it lands on.
    """
    _validate(csr, n_shards)
    n = csr.n_vertices
    in_prefix = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(csr.col_idx, minlength=n), out=in_prefix[1:])
    targets = (np.arange(n_shards + 1, dtype=np.int64)
               * csr.n_edges) // n_shards
    bounds = np.searchsorted(in_prefix, targets, side="left")
    bounds = np.maximum.accumulate(bounds).astype(np.int64)
    bounds[0] = 0
    bounds[-1] = n
    return _finish_blocks(csr, "edge_blocks", n_shards, bounds)


def greedy_vertex_cut(csr: CSRGraph, n_shards: int,
                      chunk: int = VERTEX_CUT_CHUNK) -> ShardPartition:
    """PowerGraph's greedy edge placement (chunked, deterministic).

    For each arc ``(u, v)`` pick, among the shards already hosting a
    replica of ``u`` or ``v`` (their intersection when non-empty), the
    least loaded; place on the globally least-loaded shard when neither
    endpoint is placed yet.  Ties break to the lowest shard id, so the
    cut is a pure function of the graph and ``n_shards``.
    """
    _validate(csr, n_shards)
    if chunk < 1:
        raise ConfigError(f"chunk must be >= 1, got {chunk}")
    n, m = csr.n_vertices, csr.n_edges
    src = csr.source_ids()
    dst = csr.col_idx
    replicas = np.zeros((n, n_shards), dtype=bool)
    load = np.zeros(n_shards, dtype=np.int64)
    edge_shard = np.empty(m, dtype=np.int64)
    # Lexicographic argmin over (load, shard id): bias each shard's load
    # by its id so np.argmin's first-minimum rule is the tie-break.
    for lo in range(0, m, chunk):
        hi = min(lo + chunk, m)
        ru = replicas[src[lo:hi]]
        rv = replicas[dst[lo:hi]]
        both = ru & rv
        either = ru | rv
        cand = np.where(both.any(axis=1)[:, None], both,
                        np.where(either.any(axis=1)[:, None], either,
                                 True))
        scores = np.where(cand, load[None, :] * np.int64(n_shards)
                          + np.arange(n_shards, dtype=np.int64),
                          np.iinfo(np.int64).max)
        pick = np.argmin(scores, axis=1).astype(np.int64)
        edge_shard[lo:hi] = pick
        replicas[src[lo:hi], pick] = True
        replicas[dst[lo:hi], pick] = True
        load += np.bincount(pick, minlength=n_shards)
    # Master = lowest-id hosting shard; isolated vertices round-robin.
    hosted = replicas.any(axis=1)
    owner = np.where(hosted, np.argmax(replicas, axis=1),
                     np.arange(n, dtype=np.int64) % n_shards
                     ).astype(np.int64)
    n_replicas = replicas.sum(axis=1)
    replication = float(np.maximum(n_replicas, 1).mean())
    if m:
        own_src = owner[src]
        own_dst = owner[dst]
        cut = int(np.count_nonzero((own_src != edge_shard)
                                   | (own_dst != edge_shard)))
    else:
        cut = 0
    return ShardPartition(
        strategy="vertex_cut", n_shards=n_shards, n_vertices=n,
        n_edges=m, owner=owner, edge_shard=edge_shard, cut_edges=cut,
        replication_factor=replication)


_STRATEGY_FNS = {
    "blocks": contiguous_blocks,
    "edge_blocks": balanced_edge_blocks,
    "vertex_cut": greedy_vertex_cut,
}


def partition_graph(csr: CSRGraph, n_shards: int,
                    strategy: str = "edge_blocks") -> ShardPartition:
    """Partition ``csr`` with the named strategy."""
    fn = _STRATEGY_FNS.get(strategy)
    if fn is None:
        raise ConfigError(
            f"unknown partition strategy {strategy!r} "
            f"(choose from {PARTITION_STRATEGIES})")
    return fn(csr, n_shards)


# ----------------------------------------------------------------------
# Per-shard CSR slices
# ----------------------------------------------------------------------
def shard_out_slice(csr: CSRGraph, part: ShardPartition,
                    shard: int) -> ShardSlice:
    """The push slice: every row, restricted to this shard's arcs.

    ``np.flatnonzero`` preserves the global arc order, so each row's
    surviving neighbor list keeps its sorted order and the slice is a
    well-formed CSR over the full vertex space.
    """
    slots = np.flatnonzero(part.edge_shard == shard)
    srcs = csr.source_ids()[slots]
    row_ptr = np.zeros(csr.n_vertices + 1, dtype=np.int64)
    np.cumsum(np.bincount(srcs, minlength=csr.n_vertices),
              out=row_ptr[1:])
    weights = (csr.weights[slots] if csr.weights is not None else None)
    return ShardSlice(row_ptr=row_ptr, col_idx=csr.col_idx[slots],
                      weights=weights, slot_map=slots)


def shard_in_slice(inn: CSRGraph, part: ShardPartition, shard: int
                   ) -> tuple[np.ndarray, ShardSlice]:
    """The pull slice: the *complete* in-rows of the mastered vertices.

    Returns ``(owned_ids, slice)`` where ``slice.row_ptr`` is local
    (``len(owned_ids) + 1`` entries).  Keeping whole rows is what makes
    bottom-up early-exit counts and PageRank's per-destination
    accumulation order identical to the serial kernels.
    """
    owned = np.flatnonzero(part.owner == shard)
    in_src = inn.source_ids()
    slots = np.flatnonzero(part.owner[in_src] == shard)
    rows = np.searchsorted(owned, in_src[slots])
    row_ptr = np.zeros(owned.size + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=owned.size), out=row_ptr[1:])
    weights = (inn.weights[slots] if inn.weights is not None else None)
    return owned, ShardSlice(row_ptr=row_ptr, col_idx=inn.col_idx[slots],
                             weights=weights, slot_map=slots)


def reassemble_out_slices(slices: list[ShardSlice], csr: CSRGraph
                          ) -> CSRGraph:
    """Scatter shard slices back into one CSR (the identity proof).

    Used by the property tests: the result must compare byte-identical
    to the input graph for every strategy and shard count.
    """
    col_idx = np.empty(csr.n_edges, dtype=np.int64)
    weights = (np.empty(csr.n_edges) if csr.weights is not None
               else None)
    for sl in slices:
        col_idx[sl.slot_map] = sl.col_idx
        if weights is not None:
            weights[sl.slot_map] = sl.weights
    return CSRGraph(row_ptr=csr.row_ptr.copy(), col_idx=col_idx,
                    weights=weights)
