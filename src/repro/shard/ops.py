"""Per-shard superstep bodies.

One :class:`ShardContext` per shard bundles that shard's CSR slices,
the shared round state (rank/distance vector, visited/frontier bitmaps,
broadcast buffer), and its preallocated delta ring.  The four op
functions below are the *entire* worker-side compute: the engine's
worker loop and its inline fallback both dispatch to these, so the
process-backed and in-process paths are the same code by construction
-- the bit-identity argument only has to be made once.

Each op reads shared state (parent-written, stable between barriers),
computes on its own slice, and writes ``(ids, values)`` deltas plus an
examined-arc count into its ring.  Reductions that must merge across
shards (min-parent, min-distance) are exact integer/float minima, which
are order-independent; floating-point *sums* never cross a shard
boundary -- PageRank accumulates per destination inside the owning
shard, in the destination's full in-neighbor order, exactly as the
serial kernel does (see ``docs/sharding.md``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.frontier import gather_slots
from repro.graph.scratch import KernelScratch

__all__ = ["ShardContext", "OP_SHUTDOWN", "OP_TD", "OP_BU", "OP_RELAX",
           "OP_PR", "run_op", "RELAX_LIGHT", "RELAX_HEAVY", "RELAX_ALL"]

OP_SHUTDOWN = 0
OP_TD = 1
OP_BU = 2
OP_RELAX = 3
OP_PR = 4

RELAX_LIGHT = 0
RELAX_HEAVY = 1
RELAX_ALL = 2

#: ctrl_i layout: [0] op, [1] frontier length, [2] relax mode.
CTRL_OP = 0
CTRL_FRONT_LEN = 1
CTRL_MODE = 2
#: ctrl_f layout: [0] delta, [1] dangling mass, [2] base, [3] damping.
CTRL_DELTA = 0
CTRL_DANGLING = 1
CTRL_BASE = 2
CTRL_DAMPING = 3

#: ring header layout: [0] delta count, [1] examined/units, [2] error.
HDR_COUNT = 0
HDR_EXAMINED = 1
HDR_ERROR = 2


class ShardContext:
    """Everything one shard's op functions touch.

    ``out_*`` is the push slice (full row space), ``in_*`` the pull
    slice (local rows over ``owned``); shared arrays are views into the
    dynamic arena (or plain arrays in inline mode).
    """

    def __init__(self, shard: int, n: int, *,
                 out_row_ptr: np.ndarray, out_col_idx: np.ndarray,
                 out_weights: np.ndarray | None,
                 owned: np.ndarray | None = None,
                 in_row_ptr: np.ndarray | None = None,
                 in_col_idx: np.ndarray | None = None,
                 out_degrees: np.ndarray | None = None,
                 vec: np.ndarray, vec2: np.ndarray,
                 visited: np.ndarray, in_frontier: np.ndarray,
                 frontier: np.ndarray, ctrl_i: np.ndarray,
                 ctrl_f: np.ndarray, ring_ids: np.ndarray,
                 ring_val: np.ndarray, ring_hdr: np.ndarray):
        self.shard = int(shard)
        self.n = int(n)
        self.out_row_ptr = out_row_ptr
        self.out_col_idx = out_col_idx
        self.out_weights = out_weights
        self.owned = owned
        self.in_row_ptr = in_row_ptr
        self.in_col_idx = in_col_idx
        self.out_degrees = out_degrees
        self.vec = vec
        self.vec2 = vec2
        self.visited = visited
        self.in_frontier = in_frontier
        self.frontier = frontier
        self.ctrl_i = ctrl_i
        self.ctrl_f = ctrl_f
        self.ring_ids = ring_ids
        self.ring_val = ring_val
        self.ring_hdr = ring_hdr
        n_edges = max(out_col_idx.size,
                      in_col_idx.size if in_col_idx is not None else 0)
        self.scratch = KernelScratch(self.n, n_edges)
        #: Local destination row per pull arc (static; PageRank's
        #: accumulation index, precomputed once per engine).
        self.pr_rows = (np.repeat(
            np.arange(self.in_row_ptr.size - 1, dtype=np.int64),
            np.diff(self.in_row_ptr))
            if in_row_ptr is not None else None)

    # ------------------------------------------------------------------
    def emit(self, ids: np.ndarray, vals: np.ndarray,
             examined: int) -> None:
        k = ids.size
        self.ring_ids[:k] = ids
        self.ring_val[:k] = vals
        self.ring_hdr[HDR_COUNT] = k
        self.ring_hdr[HDR_EXAMINED] = examined

    def emit_empty(self, examined: int) -> None:
        self.ring_hdr[HDR_COUNT] = 0
        self.ring_hdr[HDR_EXAMINED] = examined


def _min_per_id(ids: np.ndarray, vals: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """Exact (sorted unique ids, min value per id)."""
    order = np.argsort(ids, kind="stable")
    ids_s = ids[order]
    first = np.ones(ids_s.size, dtype=bool)
    first[1:] = ids_s[1:] != ids_s[:-1]
    mins = np.minimum.reduceat(vals[order], np.flatnonzero(first))
    return ids_s[first], mins


def op_td(ctx: ShardContext) -> None:
    """Top-down expansion: per-target minimum source over this shard's
    arcs, candidates restricted to unvisited targets (visited is stable
    within the superstep, so shard-side filtering equals the serial
    post-claim filter)."""
    frontier = ctx.frontier[:int(ctx.ctrl_i[CTRL_FRONT_LEN])]
    gs = gather_slots(ctx.out_row_ptr, frontier, ctx.scratch)
    if gs.total == 0:
        ctx.emit_empty(0)
        return
    nbrs = ctx.out_col_idx[gs.slots]
    srcs = np.repeat(frontier, gs.counts)
    keep = ~ctx.visited[nbrs]
    nbrs = nbrs[keep]
    srcs = srcs[keep]
    if nbrs.size == 0:
        ctx.emit_empty(gs.total)
        return
    uniq, mins = _min_per_id(nbrs, srcs)
    ctx.emit(uniq, mins.astype(np.float64), gs.total)


def op_bu(ctx: ShardContext) -> None:
    """Bottom-up parent search over the mastered vertices' full
    in-neighbor lists, replicating the serial early-exit accounting
    per vertex (scan up to and including the first frontier neighbor,
    or the whole list when there is none)."""
    owned = ctx.owned
    cand = owned[~ctx.visited[owned]]
    if cand.size == 0:
        ctx.emit_empty(0)
        return
    rows = np.searchsorted(owned, cand)
    gs = gather_slots(ctx.in_row_ptr, rows, ctx.scratch)
    if gs.total == 0:
        ctx.emit_empty(0)
        return
    slots = gs.slots
    counts = gs.counts
    hits = ctx.in_frontier[ctx.in_col_idx[slots]]
    hit_pos = np.flatnonzero(hits)
    if hit_pos.size == 0:
        ctx.emit_empty(gs.total)
        return
    seg_start = gs.offsets
    seg_end = seg_start + counts
    first_idx = np.searchsorted(hit_pos, seg_start)
    has_hit = first_idx < hit_pos.size
    first_hit = np.where(
        has_hit, hit_pos[np.minimum(first_idx, hit_pos.size - 1)], -1)
    found = has_hit & (first_hit < seg_end)
    new_v = cand[found]
    parents = ctx.in_col_idx[slots[first_hit[found]]]
    examined = np.where(found, first_hit - seg_start + 1, counts)
    ctx.emit(new_v, parents.astype(np.float64), int(examined.sum()))


def op_relax(ctx: ShardContext) -> None:
    """One relaxation round over this shard's (light/heavy/all) arcs of
    the broadcast members; per-destination segment minimum."""
    members = ctx.frontier[:int(ctx.ctrl_i[CTRL_FRONT_LEN])]
    mode = int(ctx.ctrl_i[CTRL_MODE])
    gs = gather_slots(ctx.out_row_ptr, members, ctx.scratch)
    if gs.total == 0:
        ctx.emit_empty(0)
        return
    slots = gs.slots
    srcs = np.repeat(members, gs.counts)
    if mode != RELAX_ALL:
        delta = float(ctx.ctrl_f[CTRL_DELTA])
        w = ctx.out_weights[slots]
        keep = w < delta if mode == RELAX_LIGHT else ~(w < delta)
        slots = slots[keep]
        srcs = srcs[keep]
        if slots.size == 0:
            ctx.emit_empty(gs.total)
            return
    dsts = ctx.out_col_idx[slots]
    cand = ctx.vec[srcs] + ctx.out_weights[slots]
    better = cand < ctx.vec[dsts]
    dsts_b = dsts[better]
    if dsts_b.size == 0:
        ctx.emit_empty(gs.total)
        return
    uniq, mins = _min_per_id(dsts_b, cand[better])
    ctx.emit(uniq, mins, gs.total)


def op_pr(ctx: ShardContext) -> None:
    """One PageRank sweep over the mastered destinations.

    Accumulates each destination's contributions with ``np.add.at`` in
    its full in-neighbor (ascending source) order -- the same per-
    element addition sequence as the serial kernel's global edge sweep,
    so every rank entry is bit-identical.  The shard writes its owned
    slice of the new rank vector directly (the disjoint-scatter
    "allreduce"); no float sum ever crosses a shard boundary.
    """
    dangling = float(ctx.ctrl_f[CTRL_DANGLING])
    base = float(ctx.ctrl_f[CTRL_BASE])
    damping = float(ctx.ctrl_f[CTRL_DAMPING])
    contrib = np.zeros(ctx.owned.size)
    if ctx.in_col_idx.size:
        share = ctx.vec[ctx.in_col_idx] / ctx.out_degrees[ctx.in_col_idx]
        np.add.at(contrib, ctx.pr_rows, share)
    ctx.vec2[ctx.owned] = base + damping * (contrib + dangling)
    ctx.emit_empty(ctx.in_col_idx.size)


_OPS = {OP_TD: op_td, OP_BU: op_bu, OP_RELAX: op_relax, OP_PR: op_pr}


def run_op(ctx: ShardContext, op: int) -> None:
    """Dispatch one superstep body, trapping errors into the ring
    header so a failed shard still reaches the completion barrier."""
    ctx.ring_hdr[HDR_ERROR] = 0
    try:
        _OPS[op](ctx)
    except Exception:
        ctx.ring_hdr[HDR_COUNT] = 0
        ctx.ring_hdr[HDR_EXAMINED] = 0
        ctx.ring_hdr[HDR_ERROR] = 1
        raise
