"""Span-tree renderers: indented text and an SVG Gantt timeline.

Both render the *simulated* timeline -- the deterministic clock the
paper's figures are built on -- so re-running a seed reproduces the
picture exactly.  The SVG renderer reuses :mod:`repro.viz.svg`, the
same dependency-free canvas the figure pipeline draws with.
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.export import span_events

__all__ = ["span_tree", "render_text", "render_svg", "slowest_spans"]

#: Fill colours keyed by span category (SVG renderer).
_CATEGORY_FILL = {
    "suite": "#4c72b0",
    "experiment": "#55a868",
    "pipeline": "#8172b2",
    "cell": "#c44e52",
    "attempt": "#ccb974",
    "phase": "#64b5cd",
    "exec": "#8c8c8c",
    "dataset": "#937860",
    "harness": "#b0b0b0",
}


def span_tree(events: list[dict]) -> tuple[list[dict], dict]:
    """Return (root spans, id -> children) in simulated-time order."""
    spans = sorted(span_events(events),
                   key=lambda ev: (ev["t0_sim"], ev["id"]))
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    ids = {ev["id"] for ev in spans}
    for ev in spans:
        parent = ev["parent"]
        if parent is None or parent not in ids:
            roots.append(ev)
        else:
            children.setdefault(parent, []).append(ev)
    return roots, children


def _label(ev: dict) -> str:
    attrs = ev.get("attrs") or {}
    bits = [ev["name"]]
    status = attrs.get("status")
    if status and status != "ok":
        bits.append(f"[{status}]")
    reason = attrs.get("failure_reason")
    if reason:
        bits.append(f"({reason})")
    return " ".join(bits)


def render_text(events: list[dict], max_depth: int | None = None) -> str:
    """Indented span tree with simulated durations and wall overhead."""
    roots, children = span_tree(events)
    lines: list[str] = []

    def visit(ev: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        sim = ev["t1_sim"] - ev["t0_sim"]
        wall = ev["t1_wall"] - ev["t0_wall"]
        lines.append(f"{'  ' * depth}{_label(ev)}  "
                     f"sim={sim:.6f}s wall={wall:.6f}s")
        for child in children.get(ev["id"], ()):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines) + ("\n" if lines else "")


def slowest_spans(events: list[dict], n: int = 5,
                  categories: tuple[str, ...] | None = None
                  ) -> list[dict]:
    """Top-``n`` spans by simulated duration (optionally by category)."""
    spans = span_events(events)
    if categories:
        spans = [ev for ev in spans if ev["cat"] in categories]
    return sorted(spans, key=lambda ev: ev["t0_sim"] - ev["t1_sim"])[:n]


def render_svg(events: list[dict], out_path: str | Path | None = None,
               width: float = 960.0, row_h: float = 16.0,
               max_depth: int | None = None) -> str:
    """Gantt-style timeline: one row per span, nested by depth.

    Span and dataset names are user/config-controlled strings; every
    path they take into the markup (row label, hover tooltip) goes
    through XML escaping, so a name like ``<script>`` renders as text
    rather than as an element.  ``max_depth`` drops rows below that
    nesting depth (the dashboard's timeline page uses it to keep
    in-flight renders small); ``None`` renders everything.
    """
    # Imported here, not at module scope: repro.viz pulls in repro.core,
    # which imports repro.systems.base, which imports this package --
    # a top-level import would make the cycle unresolvable.
    from repro.viz.svg import SvgCanvas, nice_ticks

    roots, children = span_tree(events)
    rows: list[tuple[dict, int]] = []

    def visit(ev: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        rows.append((ev, depth))
        for child in children.get(ev["id"], ()):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)

    margin_l, margin_r, margin_t, margin_b = 220.0, 20.0, 30.0, 30.0
    t_end = max((ev["t1_sim"] for ev, _ in rows), default=1.0) or 1.0
    plot_w = width - margin_l - margin_r
    height = margin_t + margin_b + row_h * max(len(rows), 1)
    canvas = SvgCanvas(width, height)
    canvas.text(margin_l, 18, "simulated timeline (s)", size=12)

    def x_of(t: float) -> float:
        return margin_l + plot_w * (t / t_end)

    for tick in nice_ticks(0.0, t_end):
        x = x_of(tick)
        canvas.line(x, margin_t, x, height - margin_b,
                    stroke="#dddddd")
        canvas.text(x, height - margin_b + 14, f"{tick:g}",
                    size=9, anchor="middle", fill="#555555")

    for i, (ev, depth) in enumerate(rows):
        y = margin_t + i * row_h
        x0 = x_of(ev["t0_sim"])
        x1 = x_of(ev["t1_sim"])
        fill = _CATEGORY_FILL.get(ev["cat"], "#999999")
        sim = ev["t1_sim"] - ev["t0_sim"]
        wall = ev["t1_wall"] - ev["t0_wall"]
        # Full (untruncated) label as a hover tooltip; SvgCanvas
        # escapes it, so hostile dataset/system names stay inert text.
        canvas.rect(x0, y + 2, max(x1 - x0, 0.75), row_h - 4,
                    fill=fill, stroke="none", opacity=0.9,
                    title=f"{_label(ev)} [{ev['cat']}] "
                          f"sim={sim:.6f}s wall={wall:.6f}s")
        canvas.text(margin_l - 6, y + row_h - 5,
                    ("  " * min(depth, 8)) + _label(ev)[:34],
                    size=9, anchor="end", fill="#333333")

    svg = canvas.to_string()
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(svg, encoding="utf-8")
    return svg
