"""Hierarchical tracing: spans on both the wall and simulated clocks.

The paper's central methodological point is that aggregate runtimes
hide where time actually goes -- file read, construction, and algorithm
must be separable (Sec. II).  The :class:`Tracer` makes that breakdown
a first-class artifact of *every* run: each unit of harness work
(suite, experiment, cell, execution attempt, kernel phase) is a span
with a wall-clock interval, a simulated-clock interval, and free-form
attributes (system, algorithm, root, retry index, failure reason,
simulated RAPL energy).  Closed spans are appended as single JSON lines
to ``<run>/trace/events.jsonl`` -- append-only, so checkpoint-resume
extends the same timeline instead of clobbering it.

Design points:

* **Two clocks per span.**  Wall time measures what the harness itself
  costs; simulated time is the priced timeline every figure in the
  report is built from.  Exporters use the simulated timeline (it is
  the deterministic one); wall durations ride along as attributes.
* **One global simulated timeline.**  Cell and attempt clocks each
  start at zero (so checkpointed records survive resume); the tracer
  splices them into one monotonic timeline by following bound clocks
  with max-seek semantics (:meth:`Tracer.bind_clock`).
* **Disabled is free.**  ``Tracer()`` with no directory is a null
  tracer: ``span()`` returns a shared no-op context manager and metric
  calls return immediately, so instrumented code never branches.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.observability.metrics import MetricsRegistry, buckets_for

__all__ = ["Span", "Tracer", "EVENTS_NAME", "SCHEMA_VERSION"]

#: Event-log filename inside the tracer directory.
EVENTS_NAME = "events.jsonl"

#: Version stamped into every ``meta`` event; bump on schema changes.
SCHEMA_VERSION = 1


class Span:
    """One open unit of work; becomes a ``span`` event when closed."""

    __slots__ = ("name", "category", "span_id", "parent_id",
                 "t0_wall", "t0_sim", "attrs")

    def __init__(self, name: str, category: str, span_id: int,
                 attrs: dict):
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id: int | None = None
        self.t0_wall = 0.0
        self.t0_sim = 0.0
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes to the span (e.g. status, energy)."""
        self.attrs.update(attrs)


class _NullSpan:
    __slots__ = ()

    def set(self, **attrs) -> None:
        pass


class _NullSpanCM:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CM = _NullSpanCM()


class _SpanCM:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        t = self._tracer
        sp = self._span
        sp.parent_id = t._stack[-1].span_id if t._stack else None
        sp.t0_wall = t._wall()
        sp.t0_sim = t.sim_now
        t._stack.append(sp)
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        t = self._tracer
        sp = t._stack.pop()
        if exc_type is not None and "error" not in sp.attrs:
            sp.attrs["error"] = exc_type.__name__
        t._emit_span(sp)
        return False


class Tracer:
    """Produces the run's span stream, event log, and live metrics.

    ``Tracer(directory)`` opens (or, with ``resume=True``, appends to)
    ``directory/events.jsonl``; ``Tracer()`` is the disabled null
    tracer.  On resume the tracer recovers the previous session's
    simulated-time high-water mark and next span id from the existing
    log, so the appended timeline stays globally monotonic.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 resume: bool = False):
        self.metrics = MetricsRegistry()
        self.sim_now = 0.0
        self._stack: list[Span] = []
        self._fh = None
        self._next_id = 1
        self._capture: list[dict] | None = None
        self._divert = False
        self._capture_prior: tuple[float, int] | None = None
        self._t0 = time.perf_counter()
        self.directory = Path(directory) if directory is not None else None
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path
        resumed = False
        if path.exists():
            if resume:
                resumed = self._recover(path)
            else:
                path.unlink()
        self._fh = path.open("a", encoding="utf-8")
        self._write({"type": "meta", "version": SCHEMA_VERSION,
                     "resumed": resumed, "t_sim": self.sim_now,
                     "wall_unix": time.time()})

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._fh is not None

    @property
    def path(self) -> Path | None:
        return (self.directory / EVENTS_NAME
                if self.directory is not None else None)

    def _wall(self) -> float:
        return time.perf_counter() - self._t0

    def _recover(self, path: Path) -> bool:
        """Recover sim high-water mark + next id from an existing log.

        A hard-killed writer can leave a torn partial line at the tail
        (no trailing newline); it is truncated away so the first
        appended event does not concatenate onto it.
        """
        raw = path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            with path.open("r+b") as fh:
                fh.truncate(raw.rfind(b"\n") + 1)
        found = False
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                except json.JSONDecodeError:
                    continue
                found = True
                t = ev.get("t1_sim", ev.get("t_sim"))
                if isinstance(t, (int, float)):
                    self.sim_now = max(self.sim_now, float(t))
                if ev.get("type") == "span":
                    self._next_id = max(self._next_id,
                                        int(ev.get("id", 0)) + 1)
        return found

    def _write(self, event: dict) -> None:
        if self._capture is not None:
            self._capture.append(event)
            if self._divert:
                return
        self._fh.write(json.dumps(event, sort_keys=True, default=str)
                       + "\n")

    def _emit_span(self, sp: Span) -> None:
        self._write({
            "type": "span", "id": sp.span_id, "parent": sp.parent_id,
            "name": sp.name, "cat": sp.category,
            "t0_wall": round(sp.t0_wall, 9),
            "t1_wall": round(self._wall(), 9),
            "t0_sim": sp.t0_sim, "t1_sim": self.sim_now,
            "attrs": sp.attrs,
        })
        # Cell boundaries are the natural durability points: flush so a
        # killed run's log still holds every finished cell.
        if sp.category in ("cell", "pipeline"):
            self._fh.flush()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "harness", **attrs):
        """Context manager for one span; yields the :class:`Span`."""
        if self._fh is None:
            return _NULL_CM
        sp = Span(name, category, self._next_id, attrs)
        self._next_id += 1
        return _SpanCM(self, sp)

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span (None outside any span)."""
        return self._stack[-1].span_id if self._stack else None

    def span_complete(self, name: str, category: str = "service", *,
                      duration_s: float, **attrs) -> None:
        """Append one already-finished root span.

        The serving path closes spans from many handler threads, where
        the nesting stack (:meth:`span`) would interleave; a completed
        span bypasses the stack entirely.  The span occupies
        ``[sim_now, sim_now + duration_s]`` on the simulated timeline --
        appending keeps the log's monotonic-``t1_sim`` invariant as
        long as callers serialize access (the service telemetry wrapper
        holds one lock around every tracer call).
        """
        if self._fh is None:
            return
        span_id = self._next_id
        self._next_id += 1
        duration_s = max(float(duration_s), 0.0)
        t1_wall = self._wall()
        t0_sim = self.sim_now
        self.advance_sim(duration_s)
        self._write({
            "type": "span", "id": span_id, "parent": None,
            "name": name, "cat": category,
            "t0_wall": round(max(t1_wall - duration_s, 0.0), 9),
            "t1_wall": round(t1_wall, 9),
            "t0_sim": t0_sim, "t1_sim": self.sim_now,
            "attrs": attrs,
        })
        self._fh.flush()

    # ------------------------------------------------------------------
    # Cross-process capture + merge (repro.parallel)
    # ------------------------------------------------------------------
    def begin_capture(self, *, reset_sim: bool = False,
                      divert: bool = False) -> None:
        """Start buffering emitted events as a cell-relative group.

        The worker side of process-parallel execution wraps each cell
        in ``begin_capture(reset_sim=True)`` / :meth:`take_capture`:
        the captured group travels back to the parent in the task
        result, where :meth:`ingest_cell_events` splices it onto the
        parent's global timeline.  ``reset_sim=True`` rewinds this
        tracer's simulated clock to zero first, so every captured
        group is cell-relative (the worker's shard file on disk is
        therefore a sequence of cell-relative timelines, not one
        global one).

        ``divert=True`` is the *serial* flavour: buffered events are
        kept out of the file and the live metrics registry, and the
        simulated clock and span-id counter are restored by
        :meth:`take_capture`, so the caller can ingest the group
        through exactly the same splice as a parallel run.  Routing
        both execution modes through one splice is what makes the two
        timelines bit-identical: every cell stamp is computed
        cell-locally and shifted by one addition, in the same order,
        regardless of which process ran the cell.
        """
        if self._fh is None:
            return
        self._capture = []
        self._divert = divert
        if divert:
            self._capture_prior = (self.sim_now, self._next_id)
        if reset_sim:
            self.sim_now = 0.0

    def take_capture(self) -> list[dict]:
        """Stop capturing; return the buffered event group.

        A diverting capture also restores the simulated clock and the
        span-id counter to their pre-capture values, leaving the
        tracer exactly as if the cell had not run yet -- the follow-up
        :meth:`ingest_cell_events` re-applies the group.
        """
        events = self._capture or []
        self._capture = None
        if self._divert:
            self.sim_now, self._next_id = self._capture_prior
            self._capture_prior = None
            self._divert = False
        return events

    def ingest_cell_events(self, events: list[dict],
                           parent_id: int | None = None) -> None:
        """Splice one finished cell's captured event group onto this
        tracer's timeline (cross-process span reparenting).

        Span ids are reassigned from this tracer's counter in the
        group's open order, the group's root spans are reparented under
        ``parent_id`` (default: the innermost open span, exactly where
        a serially-executed cell would nest), all simulated timestamps
        are shifted by the current simulated high-water mark, and
        metric events are replayed into the live registry.  Because
        captured groups are cell-relative (``begin_capture(reset_sim=
        True)``) the shifted timestamps are bit-identical to the ones a
        serial run would have recorded, which is what keeps a traced
        ``--jobs N`` report byte-identical to ``--jobs 1``.
        """
        if self._fh is None or not events:
            return
        if parent_id is None:
            parent_id = self.current_span_id
        base = self.sim_now
        idmap: dict[int, int] = {}
        for old in sorted(ev["id"] for ev in events
                          if ev.get("type") == "span"):
            idmap[old] = self._next_id
            self._next_id += 1
        end = base
        for ev in events:
            ev = dict(ev)
            kind = ev.get("type")
            if kind == "span":
                ev["id"] = idmap[ev["id"]]
                old_parent = ev.get("parent")
                ev["parent"] = idmap.get(old_parent, parent_id)
                ev["t0_sim"] = ev["t0_sim"] + base
                ev["t1_sim"] = ev["t1_sim"] + base
                end = max(end, ev["t1_sim"])
            elif "t_sim" in ev:
                ev["t_sim"] = ev["t_sim"] + base
                end = max(end, ev["t_sim"])
            labels = ev.get("labels") or {}
            if kind == "counter":
                self.metrics.counter(ev["name"]).inc(
                    float(ev.get("inc", 1.0)), **labels)
            elif kind == "observe":
                self.metrics.histogram(
                    ev["name"], buckets=buckets_for(ev["name"])).observe(
                    float(ev["value"]), **labels)
            elif kind == "gauge":
                self.metrics.gauge(ev["name"]).set(
                    float(ev["value"]), **labels)
            self._write(ev)
        self.sim_seek(end)
        self._fh.flush()

    # ------------------------------------------------------------------
    # Simulated timeline
    # ------------------------------------------------------------------
    def sim_seek(self, t: float) -> None:
        """Move the global simulated clock forward to ``t`` (monotone)."""
        if t > self.sim_now:
            self.sim_now = t

    def advance_sim(self, dt: float) -> None:
        if dt > 0:
            self.sim_now += dt

    def bind_clock(self, clock) -> None:
        """Splice a :class:`~repro.machine.clock.SimulatedClock` into
        the global timeline: every ``advance`` on the clock seeks the
        tracer to (bind offset + clock.now).  Cell/attempt clocks each
        start at zero; binding maps them onto the suite timeline."""
        if self._fh is None:
            return
        base = self.sim_now - clock.now

        def _follow(c) -> None:
            self.sim_seek(base + c.now)

        clock.on_advance = _follow

    # ------------------------------------------------------------------
    # Metrics (mirrored into the event log)
    # ------------------------------------------------------------------
    def counter(self, name: str, inc: float = 1.0, *, log: bool = True,
                **labels) -> None:
        """Increment a live counter; with ``log=True`` (the default)
        the update is also appended to the event log.

        ``log=False`` updates *only* the in-process registry -- for
        metrics that describe the harness rather than the run (cache
        hits/misses): keeping them out of ``events.jsonl`` is what lets
        a warm-cache trace stay byte-identical to a cold one.  Such
        events are never replayed by an ingest, so they update the
        registry even during a diverting capture.
        """
        if self._fh is None:
            return
        if not log:
            self.metrics.counter(name).inc(inc, **labels)
            return
        if not self._divert:
            # A diverting capture defers registry updates to the
            # ingest replay, so each cell's metrics count exactly once.
            self.metrics.counter(name).inc(inc, **labels)
        self._write({"type": "counter", "name": name, "labels": labels,
                     "inc": inc, "t_sim": self.sim_now})

    def observe(self, name: str, value: float, *, log: bool = True,
                **labels) -> None:
        if self._fh is None:
            return
        if not log:
            self.metrics.histogram(
                name, buckets=buckets_for(name)).observe(value, **labels)
            return
        if not self._divert:
            self.metrics.histogram(
                name, buckets=buckets_for(name)).observe(value, **labels)
        self._write({"type": "observe", "name": name, "labels": labels,
                     "value": float(value), "t_sim": self.sim_now})

    def gauge(self, name: str, value: float, *, log: bool = True,
              **labels) -> None:
        if self._fh is None:
            return
        if not log:
            self.metrics.gauge(name).set(value, **labels)
            return
        if not self._divert:
            self.metrics.gauge(name).set(value, **labels)
        self._write({"type": "gauge", "name": name, "labels": labels,
                     "value": float(value), "t_sim": self.sim_now})

    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the event log; the tracer becomes disabled."""
        if self._fh is None:
            return
        self._fh.flush()
        self._fh.close()
        self._fh = None
