"""Observability layer: tracing, metrics, and trace exporters.

The paper argues that aggregate runtimes hide where time goes; this
package makes the breakdown a recorded artifact of every run.  See
``docs/observability.md`` for the event schema and export how-tos.
"""

from repro.observability.export import (chrome_trace, derive_metrics,
                                        read_events, resolve_events_path,
                                        span_events, tail_events,
                                        validate_events,
                                        write_chrome_trace)
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         METRIC_HELP, MetricsRegistry,
                                         buckets_for)
from repro.observability.timeline import (render_svg, render_text,
                                          slowest_spans, span_tree)
from repro.observability.tracer import (EVENTS_NAME, SCHEMA_VERSION,
                                        Span, Tracer)

__all__ = [
    "Tracer", "Span", "EVENTS_NAME", "SCHEMA_VERSION",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "METRIC_HELP",
    "buckets_for",
    "read_events", "tail_events", "resolve_events_path", "span_events",
    "validate_events", "chrome_trace", "write_chrome_trace",
    "derive_metrics",
    "span_tree", "render_text", "render_svg", "slowest_spans",
]
