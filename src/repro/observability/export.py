"""Exporters and validators for recorded trace event logs.

Everything here operates on the ``events.jsonl`` a
:class:`~repro.observability.tracer.Tracer` wrote -- no live tracer is
needed, so a finished (or crashed) run directory is always inspectable:

* :func:`read_events` / :func:`tail_events` / :func:`validate_events`
  -- load the log (tolerating, and reporting, the truncated final
  line an in-flight append leaves) and check it against the span
  schema (well-formed parent nesting, monotonic simulated
  timestamps).
* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event format (``trace.json``), loadable in Perfetto or
  chrome://tracing, on the simulated timeline.
* :func:`derive_metrics` -- replay counter/observe/gauge events into a
  fresh :class:`~repro.observability.metrics.MetricsRegistry`; this is
  what ``epg metrics <dir>`` renders, and it reproduces the snapshot
  the suite wrote at completion because both sides share bucket and
  help tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TraceError
from repro.observability.metrics import MetricsRegistry, buckets_for
from repro.observability.tracer import EVENTS_NAME, SCHEMA_VERSION

__all__ = ["read_events", "tail_events", "validate_events",
           "span_events", "chrome_trace", "write_chrome_trace",
           "derive_metrics", "resolve_events_path"]

#: Keys every span event must carry.
_SPAN_KEYS = ("id", "parent", "name", "cat", "t0_wall", "t1_wall",
              "t0_sim", "t1_sim", "attrs")


def resolve_events_path(path: str | Path) -> Path:
    """Accept a run directory, a trace directory, or the file itself."""
    p = Path(path)
    if p.is_file():
        return p
    for candidate in (p / EVENTS_NAME, p / "trace" / EVENTS_NAME):
        if candidate.is_file():
            return candidate
    raise TraceError(f"no {EVENTS_NAME} under {p}")


def tail_events(path: str | Path, *,
                strict: bool = False) -> tuple[list[dict], bool]:
    """Parse every event line; return ``(events, truncated_tail)``.

    A final line with no trailing newline is the *normal* state of a
    log being appended mid-run (and the signature a hard-killed writer
    leaves): by default it is dropped and reported through the second
    return value, so an in-flight or crashed run's log stays
    inspectable.  ``strict=True`` keeps the old behavior and raises
    :class:`TraceError` on any torn tail.  Malformed JSON on a
    *complete* line is always an error — a line that made it to its
    newline can never become valid later.
    """
    p = resolve_events_path(path)
    lines = p.read_text(encoding="utf-8").splitlines(keepends=True)
    events: list[dict] = []
    truncated = False
    for i, raw in enumerate(lines, start=1):
        torn = i == len(lines) and not raw.endswith("\n")
        line = raw.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            if torn:
                if strict:
                    raise TraceError(
                        f"{p}:{i}: truncated final line (in-flight "
                        "append or hard-killed writer)") from exc
                truncated = True
                break
            raise TraceError(f"{p}:{i}: malformed JSON: {exc}") from exc
        if not isinstance(ev, dict) or "type" not in ev:
            raise TraceError(f"{p}:{i}: event is not an object "
                             "with a 'type' field")
        events.append(ev)
    if not events:
        raise TraceError(f"{p}: empty event log")
    return events, truncated


def read_events(path: str | Path, *, strict: bool = False) -> list[dict]:
    """:func:`tail_events` without the truncation flag."""
    return tail_events(path, strict=strict)[0]


def span_events(events: list[dict]) -> list[dict]:
    return [ev for ev in events if ev.get("type") == "span"]


def validate_events(events: list[dict], *,
                    truncated_tail: bool = False) -> dict:
    """Check the span schema; return summary stats or raise TraceError.

    Validates: schema version, per-span key completeness, unique span
    ids, span intervals with ``t1 >= t0`` on both clocks, children
    contained in their parent's simulated interval, and a monotonic
    simulated timeline across the event stream as written.  Spans are
    emitted at close, so a parent legally appears *after* its children
    — and a hard-killed run legally loses still-open ancestors
    entirely; such orphaned spans are counted, not rejected.  The same
    tolerance extends to a truncated final line (the normal state of a
    log being appended mid-run): pass the flag :func:`tail_events`
    returned and it is *reported* in the summary, never rejected —
    callers that want the old hard-fail behavior read with
    ``strict=True`` instead.
    """
    spans = span_events(events)
    by_id: dict[int, dict] = {}
    for ev in events:
        if ev.get("type") == "meta":
            version = ev.get("version")
            if version != SCHEMA_VERSION:
                raise TraceError(f"unsupported schema version {version!r}")
    for ev in spans:
        for key in _SPAN_KEYS:
            if key not in ev:
                raise TraceError(f"span missing key {key!r}: {ev}")
        sid = ev["id"]
        if sid in by_id:
            raise TraceError(f"duplicate span id {sid}")
        by_id[sid] = ev
        if ev["t1_sim"] < ev["t0_sim"]:
            raise TraceError(
                f"span {sid} ({ev['name']}): t1_sim < t0_sim")
        if ev["t1_wall"] < ev["t0_wall"]:
            raise TraceError(
                f"span {sid} ({ev['name']}): t1_wall < t0_wall")
    roots = 0
    orphans = 0
    for ev in spans:
        parent = ev["parent"]
        if parent is None:
            roots += 1
            continue
        pev = by_id.get(parent)
        if pev is None:
            # Spans are emitted at close, so a hard kill loses the
            # still-open ancestors of already-closed spans.  A dangling
            # parent id therefore marks an interrupted run, not a
            # corrupt log; the span is treated as a root.
            orphans += 1
            continue
        eps = 1e-9
        if (ev["t0_sim"] < pev["t0_sim"] - eps
                or ev["t1_sim"] > pev["t1_sim"] + eps):
            raise TraceError(
                f"span {ev['id']} ({ev['name']}) escapes its parent "
                f"{parent} ({pev['name']}) on the simulated timeline")
    # Monotonic simulated close times, in emission order.  Spans close
    # LIFO, so each emitted t1_sim is the tracer's high-water mark.
    last = 0.0
    for ev in events:
        t = ev.get("t1_sim", ev.get("t_sim"))
        if isinstance(t, (int, float)):
            if t < last - 1e-9:
                raise TraceError(
                    f"simulated timeline went backwards: {t} after {last}")
            last = max(last, float(t))
    return {"events": len(events), "spans": len(spans), "roots": roots,
            "orphans": orphans, "sim_end_s": last,
            "truncated_tail": truncated_tail,
            "categories": sorted({ev["cat"] for ev in spans})}


def chrome_trace(events: list[dict]) -> dict:
    """Render spans as Chrome trace-event JSON on the simulated clock.

    Spans become "X" (complete) events with microsecond timestamps;
    metric counters become "C" events so Perfetto draws retry and
    quarantine tracks alongside the span flame.
    """
    trace_events: list[dict] = [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "epg simulated timeline"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "harness"}},
    ]
    for ev in span_events(events):
        args = dict(ev.get("attrs") or {})
        args["wall_s"] = round(ev["t1_wall"] - ev["t0_wall"], 9)
        trace_events.append({
            "ph": "X", "pid": 1, "tid": 1,
            "name": ev["name"], "cat": ev["cat"],
            "ts": ev["t0_sim"] * 1e6,
            "dur": max(ev["t1_sim"] - ev["t0_sim"], 0.0) * 1e6,
            "args": args,
        })
    totals: dict[str, float] = {}
    for ev in events:
        if ev.get("type") != "counter":
            continue
        name = ev["name"]
        totals[name] = totals.get(name, 0.0) + float(ev.get("inc", 1.0))
        trace_events.append({
            "ph": "C", "pid": 1, "name": name,
            "ts": float(ev.get("t_sim", 0.0)) * 1e6,
            "args": {"value": totals[name]},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: list[dict], out_path: str | Path) -> Path:
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(events)) + "\n",
                   encoding="utf-8")
    return out


def derive_metrics(events: list[dict]) -> MetricsRegistry:
    """Replay metric events into a fresh registry."""
    reg = MetricsRegistry()
    for ev in events:
        kind = ev.get("type")
        if kind not in ("counter", "observe", "gauge"):
            continue
        name = ev["name"]
        labels = ev.get("labels") or {}
        if kind == "counter":
            reg.counter(name).inc(float(ev.get("inc", 1.0)), **labels)
        elif kind == "observe":
            reg.histogram(name, buckets=buckets_for(name)).observe(
                float(ev["value"]), **labels)
        else:
            reg.gauge(name).set(float(ev["value"]), **labels)
    return reg
