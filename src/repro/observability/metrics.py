"""Harness metrics: counters, gauges, histograms, Prometheus export.

The paper's methodological complaint is that aggregate numbers hide
mechanism; the metrics here are the aggregate side of the observability
layer (the spans are the mechanism side).  A
:class:`MetricsRegistry` accumulates labelled counters (retries,
quarantines, checkpoint and kernel-cache hits), gauges, and histograms
(per-kernel priced seconds and TEPS), and renders them either as the
Prometheus text exposition format or as a JSON snapshot.

Every metric update the :class:`~repro.observability.tracer.Tracer`
makes is *also* appended to the run's event log, so a registry can be
reconstructed from ``events.jsonl`` alone
(:func:`repro.observability.export.derive_metrics`) -- which is what
``epg metrics <dir>`` does, and why its output matches the snapshot the
suite wrote at completion.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "METRIC_HELP", "buckets_for"]

#: Help strings, shared by the live registry and the event-log replay so
#: both render identical ``# HELP`` lines.
METRIC_HELP = {
    "epg_attempts_total": "Cell execution attempts by terminal status.",
    "epg_retries_total": "Retries scheduled after failed attempts.",
    "epg_quarantines_total":
        "Cells quarantined after exhausting their retry budget.",
    "epg_cells_total": "Cells that reached a terminal status.",
    "epg_checkpoint_hits_total":
        "Cells skipped because checkpoint.json already held their outcome.",
    "epg_kernel_cache_hits_total":
        "Kernel executions served from the per-cell result cache.",
    "epg_backoff_seconds_total":
        "Simulated seconds slept in retry backoff.",
    "epg_kernel_seconds": "Priced kernel execution time (simulated s).",
    "epg_kernel_teps": "Traversed edges per second per kernel execution.",
    "epg_cache_hits_total":
        "Artifact-cache lookups served from disk, by artifact kind.",
    "epg_cache_misses_total":
        "Artifact-cache lookups that had to regenerate, by kind.",
    "epg_cache_evictions_total":
        "Artifact-cache entries evicted (LRU GC or corruption).",
    "epg_cache_bytes": "Bytes currently stored in the artifact cache.",
    "epg_kernel_gather_edges":
        "Edges expanded through the shared frontier gather, per kernel.",
    "epg_kernel_scratch_reuse":
        "Kernel scratch buffers served without a fresh allocation.",
    "epg_shard_rounds_total":
        "Supersteps executed by the sharded engine, per kernel.",
    "epg_shard_bytes_total":
        "Bytes exchanged between shards (frontiers plus ring messages).",
    "epg_shard_cut_edges":
        "Arcs crossing shard boundaries under the active partition.",
    "epg_serve_requests_total":
        "Daemon HTTP requests by endpoint and status code.",
    "epg_serve_shed_total":
        "Queries refused before execution, by reason "
        "(queue_full, circuit_open, draining, rate_limited, timeout).",
    "epg_serve_request_seconds": "End-to-end query latency (wall s).",
    "epg_serve_batch_size": "Queries coalesced per kernel sweep.",
    "epg_serve_inflight": "Queries currently admitted.",
    "epg_serve_queue_depth": "Queries queued awaiting a worker.",
    "epg_serve_faults_total": "Injected chaos faults applied, by kind.",
    "epg_serve_worker_quarantines_total":
        "Wedged workers quarantined by the watchdog.",
    "epg_serve_graphs_resident": "Graphs currently resident in RAM.",
    "epg_serve_resident_bytes":
        "Bytes of graph structures currently resident.",
    "epg_serve_recoveries_total":
        "Graphs rematerialized from the manifest at startup.",
    "epg_serve_circuit_open":
        "Circuit-breaker state per (graph, system): 1 open, 0 closed.",
    "epg_serve_circuit_transitions_total":
        "Circuit-breaker state transitions, by new state.",
}

#: Default histogram buckets (log-ish spacing over harness durations).
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

#: Per-metric bucket overrides, keyed by metric name so the replay path
#: reconstructs histograms identical to the live ones.
HISTOGRAM_BUCKETS = {
    "epg_kernel_seconds": (1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
                           60.0, 300.0),
    "epg_kernel_teps": (1e5, 1e6, 1e7, 1e8, 1e9, 1e10),
}


def buckets_for(name: str) -> tuple[float, ...]:
    return HISTOGRAM_BUCKETS.get(name, DEFAULT_BUCKETS)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _fmt_value(v: float) -> str:
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return format(float(v), ".10g")


def _escape_label(v: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote, and line feed."""
    return (v.replace("\\", "\\\\").replace('"', '\\"')
             .replace("\n", "\\n"))


def _escape_help(v: str) -> str:
    """Escape ``# HELP`` text: only backslash and line feed (quotes are
    legal there, unlike in label values)."""
    return v.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: tuple, extra: tuple = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing, labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help_: str = ""):
        self.name = name
        self.help = help_ or METRIC_HELP.get(name, "")
        self.samples: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self.samples.values())


class Gauge:
    """A labelled gauge (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help_: str = ""):
        self.name = name
        self.help = help_ or METRIC_HELP.get(name, "")
        self.samples: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self.samples[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        return self.samples.get(_label_key(labels), 0.0)


class Histogram:
    """A labelled histogram with fixed buckets (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_: str = "",
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.help = help_ or METRIC_HELP.get(name, "")
        self.buckets = tuple(sorted(buckets or buckets_for(name)))
        #: label key -> [per-bucket counts..., sum, count]
        self.samples: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        if key not in self.samples:
            self.samples[key] = [[0] * len(self.buckets), 0.0, 0]
        counts, _, _ = self.samples[key]
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                counts[i] += 1
        self.samples[key][1] += float(value)
        self.samples[key][2] += 1

    def count(self, **labels) -> int:
        entry = self.samples.get(_label_key(labels))
        return entry[2] if entry else 0


class MetricsRegistry:
    """A named collection of metrics with Prometheus/JSON rendering."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help_: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help_), "counter")

    def gauge(self, name: str, help_: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help_), "gauge")

    def histogram(self, name: str, help_: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, help_, buckets), "histogram")

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        out: list[str] = []
        for name in self.names():
            m = self._metrics[name]
            if m.help:
                out.append(f"# HELP {name} {_escape_help(m.help)}")
            out.append(f"# TYPE {name} {m.kind}")
            if m.kind in ("counter", "gauge"):
                for key in sorted(m.samples):
                    out.append(f"{name}{_render_labels(key)} "
                               f"{_fmt_value(m.samples[key])}")
            else:
                for key in sorted(m.samples):
                    counts, total, n = m.samples[key]
                    for edge, c in zip(m.buckets, counts):
                        le = (("le", _fmt_value(edge)),)
                        out.append(f"{name}_bucket"
                                   f"{_render_labels(key, le)} {c}")
                    inf = (("le", "+Inf"),)
                    out.append(f"{name}_bucket"
                               f"{_render_labels(key, inf)} {n}")
                    out.append(f"{name}_sum{_render_labels(key)} "
                               f"{_fmt_value(total)}")
                    out.append(f"{name}_count{_render_labels(key)} {n}")
        return "\n".join(out) + ("\n" if out else "")

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every metric."""
        snap: dict[str, dict] = {}
        for name in self.names():
            m = self._metrics[name]
            entry: dict = {"type": m.kind, "help": m.help, "samples": []}
            if m.kind in ("counter", "gauge"):
                for key in sorted(m.samples):
                    entry["samples"].append(
                        {"labels": dict(key), "value": m.samples[key]})
            else:
                entry["buckets"] = list(m.buckets)
                for key in sorted(m.samples):
                    counts, total, n = m.samples[key]
                    entry["samples"].append(
                        {"labels": dict(key), "sum": total, "count": n,
                         "bucket_counts": list(counts)})
            snap[name] = entry
        return snap
