"""Worker-process side of the cell scheduler.

Each pool worker owns a module-level :data:`_STATE`: one shard
:class:`~repro.observability.tracer.Tracer` (when the run is traced),
one :class:`~repro.resilience.supervisor.CellSupervisor` per experiment
directory, and one Graphalytics harness per parameter set.  The
supervisors hold the worker's :class:`~repro.core.runner.Runner`, whose
loaded-graph cache means a worker deserializes each (system, threads)
CSR once, not once per cell.

When the run names a ``--cache-dir``, the parent prewarms every graph
structure into the on-disk artifact cache before the fan-out, and each
worker's Runner maps the cached ``.npy`` arrays read-only
(``np.load(mmap_mode="r")``): the OS page cache backs one physical copy
of each graph shared zero-copy across all workers, instead of every
worker parsing and building its own (see ``docs/cache.md``).

Tasks return plain picklable values.  A cell task returns the
:class:`~repro.resilience.supervisor.CellOutcome` together with the
cell's captured trace-event group; the parent splices the group onto
the global timeline in canonical order
(:meth:`~repro.observability.tracer.Tracer.ingest_cell_events`).
Everything a worker computes is a pure function of the experiment
seed -- kernels, jitter, backoff, injected faults -- so which worker
runs a cell never changes its result.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["init_worker", "run_cell_task", "run_graphalytics_task"]

#: Per-process state, populated by :func:`init_worker` in each pool
#: worker (or lazily on first task for direct in-process calls).
_STATE: dict = {}


def init_worker(shard_root: str | None) -> None:
    """Pool initializer: open this worker's trace shard (if tracing).

    The shard at ``<shard_root>/worker-<pid>/events.jsonl`` is a
    durability/debug artifact: a sequence of *cell-relative* timelines
    (each capture resets the simulated clock), useful for inspecting a
    crashed worker.  The authoritative events travel back to the
    parent inside task results.
    """
    import signal

    from repro.observability import Tracer

    # Termination signals belong to the parent: it drains, checkpoints
    # completed cells, and exits 130.  A worker that died to a
    # group-delivered SIGTERM/SIGINT mid-cell would instead tear a
    # result the commit sweep was about to persist.
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    tracer = (Tracer(Path(shard_root) / f"worker-{os.getpid()}")
              if shard_root else Tracer())
    _STATE["tracer"] = tracer
    _STATE["supervisors"] = {}
    _STATE["harnesses"] = {}


def _tracer():
    if "tracer" not in _STATE:
        init_worker(None)
    return _STATE["tracer"]


def _supervisor(config, dataset):
    """The worker's supervisor for one experiment directory (cached)."""
    from repro.core.runner import Runner
    from repro.resilience import CellSupervisor, FaultInjector, RetryPolicy

    key = str(config.output_dir)
    sup = _STATE.setdefault("supervisors", {}).get(key)
    if sup is None:
        runner = Runner(config, dataset, tracer=_tracer())
        injector = (FaultInjector(config.seed, config.fault_spec)
                    if config.fault_spec else None)
        sup = CellSupervisor(runner, RetryPolicy.from_config(config),
                             injector=injector)
        _STATE["supervisors"][key] = sup
    return sup


def run_cell_task(config, dataset, system: str, algorithm: str,
                  n_threads: int):
    """Run one supervised cell; return (outcome, captured events)."""
    tracer = _tracer()
    tracer.begin_capture(reset_sim=True)
    try:
        outcome = _supervisor(config, dataset).run_cell(
            system, algorithm, n_threads)
    finally:
        events = tracer.take_capture()
    return outcome, events


def run_graphalytics_task(machine, n_threads: int, seed: int,
                          time_limit_s, platform: str, algorithm: str,
                          dataset):
    """Run one Graphalytics cell (the harness emits no trace events)."""
    from repro.graphalytics.harness import GraphalyticsHarness

    key = (n_threads, seed, time_limit_s)
    harness = _STATE.setdefault("harnesses", {}).get(key)
    if harness is None:
        harness = GraphalyticsHarness(machine=machine, n_threads=n_threads,
                                      seed=seed, time_limit_s=time_limit_s)
        _STATE["harnesses"][key] = harness
    return harness.run_cell(platform, algorithm, dataset)
