"""Parent-process side: job resolution and the worker pool.

:class:`CellPool` wraps a lazily created
:class:`~concurrent.futures.ProcessPoolExecutor`.  The scheduling
discipline lives in the callers (:meth:`repro.core.experiment.
Experiment.run` and :meth:`repro.graphalytics.harness.
GraphalyticsHarness.run_matrix`): submit every outstanding cell, then
*commit results strictly in canonical cell order*, blocking on each
future in turn.  Completion order is irrelevant -- checkpoint records,
trace splices, and the failures ledger are applied in the same order a
serial run would apply them, which is the deterministic-merge
invariant ``--jobs N`` rests on (REPORT.md is byte-identical to
``--jobs 1``).

Fork discipline: workers inherit the parent's open trace file handle,
and a worker's exit-time flush would duplicate any bytes still
buffered in it at fork time.  Callers therefore flush the parent
tracer before a submission batch; the pool spawns workers only during
submission, never during the commit sweep.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path

from repro.errors import ConfigError
from repro.parallel.worker import (
    init_worker,
    run_cell_task,
    run_graphalytics_task,
)

__all__ = ["CellPool", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """``None`` means "use every core"; otherwise validate the count."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


def _mp_context():
    # Fork is preferred where available (Linux): workers skip module
    # re-import and dataset arguments share pages until written.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class CellPool:
    """A lazily created pool of cell workers, shared across a suite.

    ``shard_root`` (set when the run is traced) is where each worker
    opens its debug event shard; ``None`` gives workers a disabled
    tracer, so untraced parallel runs pay no event-capture cost.
    """

    def __init__(self, jobs: int | None,
                 shard_root: str | Path | None = None):
        self.jobs = resolve_jobs(jobs)
        self.shard_root = (Path(shard_root) if shard_root is not None
                           else None)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def parallel(self) -> bool:
        """False for a one-job pool; callers fall back to serial."""
        return self.jobs > 1

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            if self.shard_root is not None:
                self.shard_root.mkdir(parents=True, exist_ok=True)
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_mp_context(),
                initializer=init_worker,
                initargs=(str(self.shard_root)
                          if self.shard_root is not None else None,))
        return self._executor

    # ------------------------------------------------------------------
    def submit_cell(self, config, dataset, system: str, algorithm: str,
                    n_threads: int) -> Future:
        return self._ensure().submit(run_cell_task, config, dataset,
                                     system, algorithm, n_threads)

    def submit_graphalytics(self, machine, n_threads: int, seed: int,
                            time_limit_s, platform: str, algorithm: str,
                            dataset) -> Future:
        return self._ensure().submit(
            run_graphalytics_task, machine, n_threads, seed,
            time_limit_s, platform, algorithm, dataset)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        if self._executor is not None:
            executor, self._executor = self._executor, None
            try:
                executor.shutdown(wait=wait, cancel_futures=True)
            except KeyboardInterrupt:
                # A second interrupt while draining: stop waiting for
                # in-flight cells but still release the pool.
                executor.shutdown(wait=False, cancel_futures=True)
                raise

    def __enter__(self) -> "CellPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
