"""Process-parallel execution of independent suite cells.

The paper's evaluation grid is embarrassingly parallel: every
(system, algorithm, threads) cell is seeded independently, so the
harness can fan cells out to a pool of worker processes and still
produce the exact report a serial run would.  :class:`CellPool` is the
parent-side scheduler (``epg reproduce --jobs N``); workers run the
full retry/quarantine supervision per cell and ship each cell's
outcome plus its captured trace-event group back for a deterministic,
canonical-order merge (see :mod:`repro.parallel.scheduler` and
``docs/parallel.md`` for the invariant).
"""

from repro.parallel.scheduler import CellPool, resolve_jobs
from repro.parallel.worker import run_cell_task, run_graphalytics_task

__all__ = ["CellPool", "resolve_jobs", "run_cell_task",
           "run_graphalytics_task"]
