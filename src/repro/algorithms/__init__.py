"""Reference graph kernels.

These are the trusted, straightforward implementations of the
algorithms the study touches -- BFS, SSSP, PageRank (the paper's three
"building blocks", Sec. III-D), WCC, CDLP and LCC (needed by the
Graphalytics comparison in Tables I-II), plus the widened structural
matrix: triangle counting, k-core decomposition, maximal independent
set, and Afforest connected components.  Every reimplemented system in
:mod:`repro.systems` is validated against these in the test suite; the
systems themselves do *not* call into this package (each has its own
genuinely distinct implementation, as in the paper).
"""

from repro.algorithms.bfs import bfs_levels, bfs_parents
from repro.algorithms.cc import afforest
from repro.algorithms.cdlp import cdlp
from repro.algorithms.incremental import (
    IncrementalBFS,
    IncrementalPageRank,
    IncrementalSSSP,
    RepairStats,
    pagerank_l1_bound,
    pagerank_warm,
)
from repro.algorithms.kcore import core_numbers, core_numbers_naive
from repro.algorithms.lcc import local_clustering
from repro.algorithms.mis import maximal_independent_set, mis_priorities
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp_dijkstra
from repro.algorithms.tc import triangle_count
from repro.algorithms.wcc import weakly_connected_components

__all__ = [
    "bfs_parents",
    "bfs_levels",
    "sssp_dijkstra",
    "pagerank",
    "weakly_connected_components",
    "cdlp",
    "local_clustering",
    "triangle_count",
    "core_numbers",
    "core_numbers_naive",
    "maximal_independent_set",
    "mis_priorities",
    "afforest",
    "IncrementalBFS",
    "IncrementalSSSP",
    "IncrementalPageRank",
    "RepairStats",
    "pagerank_warm",
    "pagerank_l1_bound",
]
