"""Reference connected components via Afforest-style sampling.

Afforest (Sutton, Ben-Nun & Barak) observes that on skewed graphs a
couple of *sampled* hook rounds -- each vertex links through its r-th
neighbor only -- already collapses most of the graph into one giant
component, after which the full edge list needs to be walked only for
the leftover vertices.  The union structure here is a label array with
min-hooking applied to the *roots* of the endpoint labels, then pointer
compression to a fixpoint; because hooks always take the minimum vertex
id, the converged labels are automatically the Graphalytics-canonical
"smallest member id" -- no relabeling pass needed, and exact equality
with :func:`repro.algorithms.wcc.weakly_connected_components` holds.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["afforest", "DEFAULT_NEIGHBOR_ROUNDS"]

DEFAULT_NEIGHBOR_ROUNDS = 2


def _hook_compress(comp: np.ndarray, s: np.ndarray, d: np.ndarray) -> None:
    """Min-hook the roots of ``comp[s]``/``comp[d]`` until stable.

    Hooking the root (``comp[high] = min(...)``, not ``comp[s]``) is
    what lets a later, smaller label absorb an entire already-merged
    set: compression re-points every member through the captured root.
    """
    while True:
        ls = comp[s]
        ld = comp[d]
        diff = ls != ld
        if not diff.any():
            return
        low = np.minimum(ls[diff], ld[diff])
        high = np.maximum(ls[diff], ld[diff])
        np.minimum.at(comp, high, low)
        while True:
            nxt = comp[comp]
            if np.array_equal(nxt, comp):
                break
            comp[:] = nxt


def afforest(graph: CSRGraph,
             neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS) -> np.ndarray:
    """Component label (minimum member id) per vertex.

    Directed arcs are treated as undirected links, matching weak
    connectivity; self-loops and duplicate edges hook harmlessly.
    """
    n = graph.n_vertices
    comp = np.arange(n, dtype=np.int64)
    if n == 0 or graph.n_edges == 0:
        return comp
    src = graph.source_ids()
    dst = graph.col_idx
    deg = np.diff(graph.row_ptr)
    for r in range(neighbor_rounds):
        sampled = np.flatnonzero(deg > r)
        if sampled.size == 0:
            break
        _hook_compress(comp, sampled, dst[graph.row_ptr[sampled] + r])
    # Skip the inside of the biggest sampled component: those edges can
    # only re-derive a label their endpoints already share.
    giant = int(np.bincount(comp, minlength=n).argmax())
    rest = (comp[src] != giant) | (comp[dst] != giant)
    if rest.any():
        _hook_compress(comp, src[rest], dst[rest])
    return comp
