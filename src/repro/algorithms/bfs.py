"""Reference breadth-first search (level-synchronous, vectorized).

One frontier expansion per level: gather all neighbors of the frontier,
keep the unvisited ones, record parents with "first writer wins"
semantics resolved deterministically (lowest parent id), matching what a
sequential textbook BFS would produce so results are reproducible.

The expansion and parent claim are the shared
:func:`~repro.graph.frontier.gather_slots` /
:func:`~repro.graph.frontier.claim_first_parent` primitives
(bit-identical to the historical lexsort idiom; see ``docs/kernels.md``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.frontier import claim_first_parent, gather_slots
from repro.graph.scratch import scratch_for

__all__ = ["bfs_parents", "bfs_levels"]


def bfs_parents(graph: CSRGraph, root: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(parent, level)`` arrays for a BFS from ``root``.

    ``parent[v] == -1`` and ``level[v] == -1`` mark unreached vertices;
    ``parent[root] == root``.
    """
    n = graph.n_vertices
    scratch = scratch_for(graph, n, graph.n_edges)
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    parent[root] = root
    level[root] = 0
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        gs = gather_slots(graph.row_ptr, frontier, scratch)
        if gs.total == 0:
            break
        nbrs = graph.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        # Deterministic tie-break: lowest source id claims the vertex.
        new_v = claim_first_parent(nbrs, srcs, visited, parent, scratch)
        level[new_v] = depth
        frontier = new_v
    return parent, level


def bfs_levels(graph: CSRGraph, root: int) -> np.ndarray:
    """Levels only (cheaper to compare across systems: levels are unique
    for a given graph and root, while parent trees are not)."""
    return bfs_parents(graph, root)[1]
