"""Reference breadth-first search (level-synchronous, vectorized).

One frontier expansion per level: gather all neighbors of the frontier,
keep the unvisited ones, record parents with "first writer wins"
semantics resolved deterministically (lowest parent id), matching what a
sequential textbook BFS would produce so results are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["bfs_parents", "bfs_levels"]


def bfs_parents(graph: CSRGraph, root: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(parent, level)`` arrays for a BFS from ``root``.

    ``parent[v] == -1`` and ``level[v] == -1`` mark unreached vertices;
    ``parent[root] == root``.
    """
    n = graph.n_vertices
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        starts = graph.row_ptr[frontier]
        counts = graph.row_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all neighbor slots of the frontier in one shot.
        idx = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                        counts) + np.arange(total)
        nbrs = graph.col_idx[idx]
        srcs = np.repeat(frontier, counts)
        fresh = parent[nbrs] == -1
        nbrs = nbrs[fresh]
        srcs = srcs[fresh]
        if nbrs.size == 0:
            break
        # Deterministic tie-break: lowest source id claims the vertex.
        order = np.lexsort((srcs, nbrs))
        nbrs_sorted = nbrs[order]
        srcs_sorted = srcs[order]
        first = np.ones(nbrs_sorted.size, dtype=bool)
        first[1:] = nbrs_sorted[1:] != nbrs_sorted[:-1]
        new_v = nbrs_sorted[first]
        parent[new_v] = srcs_sorted[first]
        level[new_v] = depth
        frontier = new_v
    return parent, level


def bfs_levels(graph: CSRGraph, root: int) -> np.ndarray:
    """Levels only (cheaper to compare across systems: levels are unique
    for a given graph and root, while parent trees are not)."""
    return bfs_parents(graph, root)[1]
